#!/usr/bin/env python
"""Figure 6.3 — core-count scaling of the Pi Approximation benchmark.

Sweeps the RCCE core count and reports speedup over the single-core
Pthreads program, plus efficiency (speedup / cores), showing where the
near-linear scaling of compute-bound HSM programs starts to dip.

Run: python examples/scaling_study.py
"""

from repro import ExperimentHarness
from repro.bench.figures import render_bars
from repro.bench.workloads import Workload

CORE_COUNTS = (1, 2, 4, 8, 16, 32)


def main():
    harness = ExperimentHarness(
        num_ues=32,
        workloads={"pi": Workload("pi", {"steps": 8192}, 256)})

    rows = harness.figure_6_3("pi", CORE_COUNTS)
    print(render_bars(rows, "cores", "speedup",
                      title="Figure 6.3: Pi Approximation speedup vs "
                      "core count"))

    print("\ncores  speedup  efficiency")
    for row in rows:
        print("%5d  %7.2f  %9.1f%%"
              % (row["cores"], row["speedup"],
                 100.0 * row["speedup"] / row["cores"]))


if __name__ == "__main__":
    main()
