#!/usr/bin/env python
"""Quickstart: translate a Pthreads program to RCCE and simulate both.

Walks the full pipeline on a small pi-approximation program:
1. analyze   — Stages 1-3 find the shared data,
2. partition — Stage 4 splits it across on-/off-chip shared memory,
3. translate — Stage 5 emits the RCCE multiprocess program,
4. simulate  — run both variants on the simulated SCC and compare.

Run: python examples/quickstart.py
"""

from repro import TranslationFramework
from repro.core.reports import format_table, table_4_2
from repro.sim import run_pthread_single_core, run_rcce

SOURCE = r'''
#include <stdio.h>
#include <pthread.h>

#define NTHREADS 8
#define STEPS 2048

double partial[8];

void *pi_worker(void *tid) {
    int id = (int)tid;
    double sum = 0.0;
    double step = 1.0 / STEPS;
    for (int i = id; i < STEPS; i += NTHREADS) {
        double x = (i + 0.5) * step;
        sum = sum + 4.0 / (1.0 + x * x);
    }
    partial[id] = sum;
    pthread_exit(NULL);
}

int main() {
    pthread_t threads[8];
    double pi = 0.0;
    for (int t = 0; t < NTHREADS; t++)
        pthread_create(&threads[t], NULL, pi_worker, (void *)t);
    for (int t = 0; t < NTHREADS; t++)
        pthread_join(threads[t], NULL);
    for (int t = 0; t < NTHREADS; t++)
        pi += partial[t];
    printf("pi = %.6f\n", pi / STEPS);
    return 0;
}
'''


def main():
    framework = TranslationFramework()

    print("=== Stage 1-3: what is shared? ===")
    analysis = framework.analyze(SOURCE)
    print(format_table(table_4_2(analysis)))
    shared = [v.name for v in analysis.variables.shared()]
    print("\nshared superset:", ", ".join(shared))

    print("\n=== Stage 4: partitioning ===")
    partitioned = framework.partition(SOURCE)
    print(partitioned.plan)

    print("\n=== Stage 5: the translated RCCE program ===")
    translated = framework.translate(SOURCE)
    print(translated.rcce_source)

    print("=== Simulation on the SCC model ===")
    baseline = run_pthread_single_core(SOURCE)
    print("Pthreads, 8 threads on 1 core : %12d cycles  (%s)"
          % (baseline.cycles, baseline.stdout().strip()))
    rcce = run_rcce(translated.unit, 8)
    answer = rcce.stdout().strip().splitlines()[0]
    print("RCCE, 8 cores                 : %12d cycles  (%s)"
          % (rcce.cycles, answer))
    print("speedup: %.2fx" % (baseline.cycles / rcce.cycles))


if __name__ == "__main__":
    main()
