#!/usr/bin/env python
"""Capture a Chrome trace, a metrics snapshot, and a pipeline profile.

Walks the full observability surface on a small mutex-counter program:
1. translate — with a PipelineProfiler timing every stage,
2. simulate  — with an EventTracer attached to the chip,
3. export    — Chrome trace JSON (open in chrome://tracing or
   https://ui.perfetto.dev), metrics JSON, and text dumps.

Run: python examples/trace_capture.py
"""

import json
import os
import tempfile

from repro import TranslationFramework
from repro.obs import (
    EventTracer,
    PipelineProfiler,
    render_metrics_text,
    write_chrome_trace,
    write_metrics_json,
)
from repro.scc.chip import SCCChip
from repro.scc.config import Table61Config
from repro.sim import run_rcce

SOURCE = r'''
#include <pthread.h>
#include <stdio.h>

#define NTHREADS 4

pthread_mutex_t lock = PTHREAD_MUTEX_INITIALIZER;
int counter = 0;

void *worker(void *arg) {
    int i;
    for (i = 0; i < 8; i = i + 1) {
        pthread_mutex_lock(&lock);
        counter = counter + 1;
        pthread_mutex_unlock(&lock);
    }
    return 0;
}

int main() {
    pthread_t threads[NTHREADS];
    int i;
    for (i = 0; i < NTHREADS; i = i + 1) {
        pthread_create(&threads[i], 0, worker, 0);
    }
    for (i = 0; i < NTHREADS; i = i + 1) {
        pthread_join(threads[i], 0);
    }
    printf("counter = %d\n", counter);
    return 0;
}
'''


def main():
    # 1. translate, profiled: every stage and IR pass gets a span
    profiler = PipelineProfiler()
    framework = TranslationFramework(profiler=profiler)
    translated = framework.translate(SOURCE)
    print(profiler.render())
    print()

    # 2. simulate with event tracing attached to the chip
    tracer = EventTracer()
    chip = SCCChip(Table61Config())
    chip.attach_events(tracer, pid=0, name="rcce x4 cores")
    result = run_rcce(translated.unit, 4, chip.config, chip)
    print("program output:", result.stdout().strip().splitlines()[0])
    print("simulated cycles:", result.cycles)
    print()

    # 3. export
    outdir = tempfile.mkdtemp(prefix="repro-trace-")
    trace_path = os.path.join(outdir, "trace.json")
    metrics_path = os.path.join(outdir, "metrics.json")
    events = write_chrome_trace(tracer, trace_path, chip.config)
    write_metrics_json(result.metrics, metrics_path)
    print("trace events:", events, "->", trace_path)
    print("core tracks:", sorted(tid for _pid, tid
                                 in tracer.core_tracks()))
    with open(trace_path) as handle:
        json.load(handle)  # the file is valid JSON
    print()
    print("metrics snapshot:")
    print(render_metrics_text(result.metrics))


if __name__ == "__main__":
    main()
