#!/usr/bin/env python
"""The SCC's power-management mechanisms (paper §5.1).

"The frequency of the mesh and the cores is variable and can be set in
a variety of ways.  First, the frequency for each core can be set all
at the same time by setting the frequency of the entire chip.  Second,
groups of cores may have their frequency changed by changing the
frequency of the power domain they fall under.  Third, both of these
steps can be carried out dynamically within a program by making
procedure calls to the power management API."

This example demonstrates all three against the calibrated power model
(0.7 V / 125 MHz / 25 W up to 1.14 V / 1 GHz / 125 W).

Run: python examples/power_management.py
"""

from repro.scc.chip import SCCChip
from repro.scc.config import Table61Config
from repro.sim import run_rcce


def main():
    chip = SCCChip(Table61Config())
    print("Calibrated envelope: %.1f W at 0.70V/125MHz, %.1f W at "
          "1.14V/1GHz" % (chip.power.operating_point_power(0.70, 125),
                          chip.power.operating_point_power(1.14, 1000)))
    print("Running point (%d MHz everywhere): %.1f W\n"
          % (chip.config.core_freq_mhz, chip.power.chip_power_watts()))

    # Mechanism 1: whole chip at once
    chip.power.set_chip_frequency(533, voltage=0.9)
    print("mechanism 1 - chip to 533 MHz @ 0.9 V : %.1f W"
          % chip.power.chip_power_watts())
    chip.power.set_chip_frequency(800, voltage=1.1)

    # Mechanism 2: one power domain
    chip.power.set_domain_frequency(0, 125, voltage=0.70)
    print("mechanism 2 - domain 0 to 125 MHz     : %.1f W"
          % chip.power.chip_power_watts())
    chip.power.set_domain_frequency(0, 800, voltage=1.1)

    # Mechanism 3: from inside a program, via the RCCE power API
    source = '''
    #include <stdio.h>
    #include <RCCE.h>
    int RCCE_APP(int argc, char **argv) {
        RCCE_init(&argc, &argv);
        printf("UE %d is in power domain %d\\n",
               RCCE_ue(), RCCE_power_domain());
        if (RCCE_ue() == 0) {
            RCCE_iset_power(4);   /* divide my domain's clock by 4 */
            RCCE_wait_power();
        }
        RCCE_finalize();
        return 0;
    }
    '''
    before = chip.power.chip_power_watts()
    result = run_rcce(source, 4, chip.config, chip)
    after = chip.power.chip_power_watts()
    print("mechanism 3 - RCCE_iset_power(4) from UE 0: "
          "%.1f W -> %.1f W" % (before, after))
    print()
    print(result.stdout())


if __name__ == "__main__":
    main()
