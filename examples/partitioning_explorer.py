#!/usr/bin/env python
"""Explore Stage 4: how on-chip capacity and policy change the plan.

Sweeps the on-chip shared-memory capacity for the Stream benchmark and
shows which variables Algorithm 3 places on-chip at each size, for both
the paper's ascending-size policy and the frequency-density refinement
— then simulates the actual runtime effect of each plan.

Run: python examples/partitioning_explorer.py
"""

from repro import TranslationFramework
from repro.bench.programs import benchmark_source
from repro.sim import run_rcce

CAPACITIES = (0, 512, 4 * 1024, 16 * 1024, 64 * 1024)
NUM_UES = 8


def describe(plan):
    on = ", ".join(sorted(p.info.name for p in plan.on_chip())) or "-"
    off = ", ".join(sorted(p.info.name for p in plan.off_chip())) or "-"
    return on, off


def main():
    source = benchmark_source("stream", nthreads=NUM_UES, n=512)

    print("Stream benchmark shared data: a, b, c (4 KB each), "
          "checksum (64 B)\n")
    header = "%-9s %-8s  %-28s %-22s %s" % (
        "capacity", "policy", "on-chip", "off-chip", "cycles")
    print(header)
    print("-" * len(header))

    for capacity in CAPACITIES:
        for policy in ("size", "frequency"):
            framework = TranslationFramework(on_chip_capacity=capacity,
                                             partition_policy=policy)
            translated = framework.translate(source)
            result = run_rcce(translated.unit, NUM_UES)
            on, off = describe(translated.plan)
            print("%-9d %-8s  %-28s %-22s %d"
                  % (capacity, policy, on, off, result.cycles))

    print("\nLarger on-chip capacity pulls the hot arrays out of the "
          "uncached shared DRAM,\nwhich is exactly the Figure 6.2 "
          "effect.  Stream's arrays are all equally hot,\nso both "
          "policies agree here; benchmarks/bench_ablation_partition.py "
          "shows a\nworkload where the frequency policy wins.")


if __name__ == "__main__":
    main()
