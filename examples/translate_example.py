#!/usr/bin/env python
"""The paper's running example: Example Code 4.1 -> Example Code 4.2.

Prints Table 4.1 (per-variable information), Table 4.2 (sharing status
after each stage), the points-to relationships that promote `tmp`, and
the final translated RCCE source — everything Chapter 4 of the paper
derives by hand.

Run: python examples/translate_example.py
"""

from repro import TranslationFramework
from repro.bench.programs import EXAMPLE_4_1
from repro.core.reports import format_table, table_4_1, table_4_2


def main():
    print("=== Example Code 4.1 (input) ===")
    print(EXAMPLE_4_1.strip())

    framework = TranslationFramework()
    analysis = framework.analyze(EXAMPLE_4_1)

    print("\n=== Table 4.1: information extracted per variable ===")
    print(format_table(table_4_1(analysis)))

    print("\n=== Table 4.2: sharing status after each stage ===")
    print(format_table(table_4_2(analysis)))

    print("\n=== Points-to relationships (Stage 3) ===")
    for pointer, targets in sorted(analysis.points_to.items(),
                                   key=str):
        for target, definite in sorted(targets.items(), key=str):
            kind = "definite" if definite else "possibly"
            print("  %-14s -> %-14s (%s)"
                  % ("%s.%s" % (pointer[0] or "<global>", pointer[1]),
                     "%s.%s" % (target[0] or "<global>", str(target[1])),
                     kind))

    print("\n=== Example Code 4.2 (translated output) ===")
    translated = framework.translate(EXAMPLE_4_1,
                                     policy="off-chip-only")
    print(translated.rcce_source)


if __name__ == "__main__":
    main()
