#!/usr/bin/env python
"""Hand-written RCCE: the substrate below the translator.

The translator targets the RCCE shared-memory API, but RCCE itself is a
message-passing library (put/get, send/recv, MPB flags, collectives —
van der Wijngaart et al.).  This example runs a hand-written RCCE
program that uses that layer directly: a ring token pass, a
flag-synchronized producer/consumer, and an allreduce — demonstrating
that the simulated runtime is the full library, not just the subset the
translator emits.

Run: python examples/message_passing.py
"""

from repro.sim import run_rcce

SOURCE = r'''
#include <stdio.h>
#include <RCCE.h>

int RCCE_APP(int argc, char **argv) {
    RCCE_init(&argc, &argv);
    int me = RCCE_ue();
    int n = RCCE_num_ues();

    /* 1. ring: pass a token all the way around */
    int token[1];
    int incoming[1];
    token[0] = 1000 + me;
    if (me % 2 == 0) {
        RCCE_send(token, sizeof(int), (me + 1) % n);
        RCCE_recv(incoming, sizeof(int), (me + n - 1) % n);
    } else {
        RCCE_recv(incoming, sizeof(int), (me + n - 1) % n);
        RCCE_send(token, sizeof(int), (me + 1) % n);
    }
    printf("UE %d received token %d\n", me, incoming[0]);
    RCCE_barrier(&RCCE_COMM_WORLD);

    /* 2. producer/consumer through shared memory, gated by a flag */
    int *mailbox = (int *)RCCE_shmalloc(sizeof(int) * 1);
    RCCE_FLAG ready;
    RCCE_flag_alloc(&ready);
    if (me == 0) {
        mailbox[0] = 777;
        RCCE_flag_write(&ready, RCCE_FLAG_SET, 1);
    }
    if (me == n - 1) {
        RCCE_wait_until(ready, RCCE_FLAG_SET);
        printf("UE %d read mailbox %d\n", me, mailbox[0]);
    }
    RCCE_barrier(&RCCE_COMM_WORLD);

    /* 3. collective: global sum of squares */
    double mine[1];
    double total[1];
    mine[0] = (double)(me * me);
    RCCE_allreduce(mine, total, 1, RCCE_DOUBLE, RCCE_SUM,
                   RCCE_COMM_WORLD);
    if (me == 0) {
        printf("sum of squares over %d UEs = %.1f\n", n, total[0]);
    }
    RCCE_finalize();
    return 0;
}
'''


def main():
    result = run_rcce(SOURCE, 8)
    print(result.stdout())
    print("slowest core: %d cycles (%.3f ms simulated)"
          % (result.cycles, result.seconds * 1000))
    print("messages sent: ring of %d + flag handshake" % 8)


if __name__ == "__main__":
    main()
