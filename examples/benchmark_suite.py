#!/usr/bin/env python
"""Run the paper's benchmark suite end to end (reduced scale).

Reproduces the structure of Figures 6.1 and 6.2 with 8 UEs and small
workloads so it finishes in seconds.  For the full 32-UE matrix run
``pytest benchmarks/ --benchmark-only``.

Run: python examples/benchmark_suite.py
"""

from repro import ExperimentHarness
from repro.bench.figures import render_bars
from repro.bench.workloads import Workload


def small_workloads():
    return {
        "pi": Workload("pi", {"steps": 4096}, 64),
        "sum35": Workload("sum35", {"limit": 4096}, 64),
        "primes": Workload("primes", {"limit": 768}, 32),
        "stream": Workload("stream", {"n": 512}, 512 * 24),
        "dot": Workload("dot", {"n": 512}, 512 * 16),
        "lu": Workload("lu", {"batch": 8, "dim": 12}, 8 * 12 * 12 * 8),
    }


def main():
    harness = ExperimentHarness(num_ues=8,
                                workloads=small_workloads(),
                                on_chip_capacity=16 * 1024)

    print("Running %d benchmarks x 3 configurations "
          "(pthread / rcce-off / rcce-on)...\n" % len(small_workloads()))

    rows_61 = harness.figure_6_1()
    print(render_bars(rows_61, "benchmark", "speedup",
                      title="Figure 6.1 (8 UEs): RCCE off-chip speedup "
                      "over 1-core Pthreads"))

    rows_62 = harness.figure_6_2()
    print()
    print(render_bars(rows_62, "benchmark", "improvement",
                      title="Figure 6.2 (8 UEs): on-chip MPB "
                      "improvement over off-chip"))
    print("\ngeometric-mean on-chip improvement: %.2fx"
          % harness.average_onchip_improvement())

    print("\nverification: every translated program printed the same "
          "answer as its Pthreads original.")
    for name in small_workloads():
        print("  %-7s %s" % (name,
                             harness.run(name, "pthread").result_line()))


if __name__ == "__main__":
    main()
