"""Parallel host backend: wall-clock speedup vs worker count.

Runs the LU and Stream workloads (full Fig. 6.1 sizes, 32 UEs) under
the process backend at 1, 2, 4 and 8 workers, times the end-to-end
``run_rcce`` call, verifies the byte-identity contract (cycles,
per-core cycles, and stdout must match the sequential run exactly),
and writes a machine-readable report to ``BENCH_parallel.json`` at the
repo root.

Wall-clock speedup is a property of the *host*: a single-CPU runner
time-slices the workers and measures ~1x no matter how good the
backend is, so the report records ``host_cpus`` and the acceptance
floor (>= 2.5x at 8 workers) is only asserted when the host has at
least 4 CPUs.  The byte-identity flag is asserted unconditionally —
that is the part no host can excuse.

Usage::

    PYTHONPATH=src python benchmarks/bench_parallel_speedup.py           # full set
    PYTHONPATH=src python benchmarks/bench_parallel_speedup.py --smoke   # CI subset
    pytest benchmarks/bench_parallel_speedup.py                          # smoke test
"""

import argparse
import json
import os
import sys
import time

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
if os.path.join(ROOT, "src") not in sys.path:
    sys.path.insert(0, os.path.join(ROOT, "src"))

from repro.bench.harness import ExperimentHarness  # noqa: E402
from repro.bench.workloads import Workload  # noqa: E402
from repro.scc.chip import SCCChip  # noqa: E402
from repro.sim.runner import run_rcce  # noqa: E402

BENCHMARKS = ("lu", "stream")
JOBS = (1, 2, 4, 8)
DEFAULT_OUTPUT = os.path.join(ROOT, "BENCH_parallel.json")

FULL_SPEEDUP_FLOOR = 2.5   # at 8 workers, multicore hosts only
MIN_HOST_CPUS = 4          # below this the floor cannot be measured

SMOKE_WORKLOADS = {
    "lu": Workload("lu", {"batch": 4, "dim": 8},
                   4 * 8 * 8 * 8 + 32 * 8),
    "stream": Workload("stream", {"n": 128}, 3 * 128 * 8 + 32 * 8),
}


def _signature(result):
    return (result.cycles, dict(result.per_core_cycles),
            result.stdout())


def measure(benchmarks=BENCHMARKS, num_ues=32, jobs_list=JOBS,
            workloads=None, max_steps=500_000_000):
    """Time ``run_rcce`` for each benchmark at each worker count.

    jobs=1 (the sequential engine) is the baseline for both the
    speedup and the byte-identity check.
    """
    harness = ExperimentHarness(num_ues=num_ues, workloads=workloads,
                                max_steps=max_steps)
    report_workloads = {}
    byte_identical = True
    for name in benchmarks:
        source = harness.framework("size").translate(
            harness.source_for(name)).rcce_source
        rows = {}
        baseline = None
        for jobs in jobs_list:
            chip = harness._fresh_chip()
            start = time.perf_counter()
            result = run_rcce(source, num_ues, chip.config, chip,
                              max_steps=max_steps, jobs=jobs)
            wall = time.perf_counter() - start
            signature = _signature(result)
            if jobs == 1:
                baseline = (signature, wall)
            identical = signature == baseline[0]
            byte_identical = byte_identical and identical
            rows[str(jobs)] = {
                "wall_seconds": wall,
                "speedup": baseline[1] / wall,
                "byte_identical": identical,
                "reconciliations":
                    (result.stats.get("parallel") or {}).get(
                        "reconciliations", 0),
            }
        report_workloads[name] = {
            "cycles": baseline and _cycles_of(baseline[0]),
            "jobs": rows,
        }
    best = max(row["speedup"]
               for entry in report_workloads.values()
               for row in entry["jobs"].values())
    return {
        "benchmarks": list(benchmarks),
        "num_ues": num_ues,
        "jobs": list(jobs_list),
        "host_cpus": os.cpu_count(),
        "measure": "end-to-end run_rcce wall seconds (translation "
                   "excluded); jobs=1 sequential engine is the "
                   "baseline",
        "byte_identical": byte_identical,
        "best_speedup": best,
        "workloads": report_workloads,
    }


def _cycles_of(signature):
    return signature[0]


def render(report):
    lines = ["%-10s %6s %12s %8s %10s"
             % ("workload", "jobs", "wall s", "speedup", "identical")]
    for name, entry in report["workloads"].items():
        for jobs, row in entry["jobs"].items():
            lines.append("%-10s %6s %12.3f %7.2fx %10s" % (
                name, jobs, row["wall_seconds"], row["speedup"],
                row["byte_identical"]))
    lines.append("host cpus: %s  byte_identical: %s  best: %.2fx"
                 % (report["host_cpus"], report["byte_identical"],
                    report["best_speedup"]))
    return "\n".join(lines)


# -- pytest entry (smoke scale) -------------------------------------------------


def test_parallel_backend_smoke(tmp_path):
    report = measure(num_ues=8, jobs_list=(1, 2, 4),
                     workloads=dict(SMOKE_WORKLOADS))
    (tmp_path / "BENCH_parallel.json").write_text(
        json.dumps(report, indent=2))
    assert report["byte_identical"]


# -- script entry ----------------------------------------------------------------


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="CI subset: scaled sizes at 8 UEs, "
                        "byte-identity only")
    parser.add_argument("-o", "--output", default=DEFAULT_OUTPUT,
                        help="report path (default %s)" % DEFAULT_OUTPUT)
    parser.add_argument("--ues", type=int, default=None,
                        help="override the UE count")
    args = parser.parse_args(argv)

    if args.smoke:
        report = measure(num_ues=args.ues or 8, jobs_list=(1, 2, 4),
                         workloads=dict(SMOKE_WORKLOADS))
        report["mode"] = "smoke"
    else:
        report = measure(num_ues=args.ues or 32)
        report["mode"] = "full"
    with open(args.output, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(render(report))
    print("report written to %s" % args.output)
    if not report["byte_identical"]:
        print("FAIL: parallel run diverged from the sequential engine")
        return 1
    cpus = report["host_cpus"] or 1
    if not args.smoke and cpus >= MIN_HOST_CPUS:
        eight = max(entry["jobs"].get("8", {}).get("speedup", 0.0)
                    for entry in report["workloads"].values())
        if eight < FULL_SPEEDUP_FLOOR:
            print("FAIL: %.2fx at 8 workers < %.1fx floor"
                  % (eight, FULL_SPEEDUP_FLOOR))
            return 1
    elif not args.smoke:
        print("NOTE: host has %d cpu(s); the %.1fx floor needs >= %d "
              "and was not asserted" % (cpus, FULL_SPEEDUP_FLOOR,
                                        MIN_HOST_CPUS))
    return 0


if __name__ == "__main__":
    sys.exit(main())
