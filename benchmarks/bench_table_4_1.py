"""Table 4.1 — per-variable information for Example Code 4.1.

Regenerates the table and benchmarks the Stage 1-3 analysis pipeline
(the paper's compile-time cost)."""

from conftest import write_result

from repro.bench.programs import EXAMPLE_4_1
from repro.bench.tables import PAPER_TABLE_4_1
from repro.core.framework import TranslationFramework
from repro.core.reports import format_table, table_4_1


def test_table_4_1(benchmark, results_dir):
    framework = TranslationFramework()

    def analyze():
        return framework.analyze(EXAMPLE_4_1)

    result = benchmark(analyze)
    rows = table_4_1(result)

    rendered = format_table(
        rows, title="Table 4.1: Information extracted per variable "
        "(post Stage 3)")
    comparison = ["", "paper values (thesis p.19):"]
    for name, paper in PAPER_TABLE_4_1.items():
        comparison.append("  %-8s rd=%s wr=%s size=%s"
                          % (name, paper["rd"], paper["wr"],
                             paper["size"]))
    write_result(results_dir, "table_4_1.txt",
                 rendered + "\n" + "\n".join(comparison))

    by_name = {row["name"]: row for row in rows}
    # the consistent cells must match the paper exactly
    assert by_name["ptr"]["rd"] == PAPER_TABLE_4_1["ptr"]["rd"]
    assert by_name["tmp"]["wr"] == PAPER_TABLE_4_1["tmp"]["wr"]
    assert by_name["threads"]["rd"] == PAPER_TABLE_4_1["threads"]["rd"]
    assert by_name["tLocal"]["rd"] == PAPER_TABLE_4_1["tLocal"]["rd"]
