"""Figure 6.3 — Pi Approximation speedup with varying core count.

Paper: programs with sufficient computation scale with the number of
cores; the series must be monotonically increasing and near-linear.
"""

from conftest import write_result

from repro.bench.figures import render_bars

CORE_COUNTS = (1, 2, 4, 8, 16, 32)


def test_figure_6_3(benchmark, harness, results_dir):
    rows = benchmark.pedantic(
        lambda: harness.figure_6_3("pi", CORE_COUNTS),
        rounds=1, iterations=1)
    chart = render_bars(rows, "cores", "speedup",
                        title="Figure 6.3: Pi Approximation speedup "
                        "vs core count")
    write_result(results_dir, "figure_6_3.txt", chart)

    speedups = [row["speedup"] for row in rows]

    # strictly increasing with core count
    assert all(b > a for a, b in zip(speedups, speedups[1:]))

    # near-linear scaling: doubling cores buys >= 1.6x each step
    ratios = [b / a for a, b in zip(speedups, speedups[1:])]
    assert all(ratio > 1.6 for ratio in ratios)

    # 32 cores land in the paper's ballpark
    assert speedups[-1] > 25.0
