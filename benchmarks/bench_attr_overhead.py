"""Enabled-mode cycle-attribution overhead (must stay under 5%).

Unlike the race detector (whose bench pins the *disabled* hook cost),
attribution is priced with the engine ON: the contract is that full
per-cycle accounting — cells baked into the chip's per-site fast-path
closures, mem-op and cache-hit totals read off the chip's own
counters, sync-event recording at every barrier/send/recv — costs at
most 1.05x the plain run's wall time.

The timed workload runs on the *single-core* pthread runner: it is
host-single-threaded, so wall time actually measures interpreter and
hook work.  The multi-threaded RCCE runner's wall time is dominated
by OS thread scheduling — enabling attribution perturbs thread wake
order enough that run-to-run wall-clock scatter is several times the
effect being measured (its *CPU* time with attribution on measures
lower as often as higher).  The RCCE ``dot`` run still rides along
functionally: the attributed run must report exactly the plain run's
cycles and output, the attributed cycles must conserve (sum per core
to the core's total), and the critical path must tile the makespan.

Usage::

    PYTHONPATH=src python benchmarks/bench_attr_overhead.py  # BENCH_attr.json
    pytest benchmarks/bench_attr_overhead.py                 # gate only
"""

import gc
import json
import os
import sys
import time

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
if os.path.join(ROOT, "src") not in sys.path:
    sys.path.insert(0, os.path.join(ROOT, "src"))

from conftest import write_result  # noqa: E402

from repro.bench.harness import SCALED_ON_CHIP_CAPACITY  # noqa: E402
from repro.bench.programs import benchmark_source  # noqa: E402
from repro.bench.workloads import scaled_config  # noqa: E402
from repro.cfront.frontend import parse_program  # noqa: E402
from repro.core.framework import TranslationFramework  # noqa: E402
from repro.scc.chip import SCCChip  # noqa: E402
from repro.scc.config import Table61Config  # noqa: E402
from repro.sim.runner import run_pthread_single_core, run_rcce  # noqa: E402

NUM_UES = 4
PAIRS = 32        # alternating baseline/enabled run pairs
OVERHEAD_CEILING = 1.05
DEFAULT_OUTPUT = os.path.join(ROOT, "BENCH_attr.json")

# Single-core pthread workload: hot cached private array (the L1-hit
# fast path), a contended mutex (lock_spin hooks), thread create/join
# and context switches (sched_overhead hooks) — every hook the
# single-core runner can fire, on the host's only thread.
PTHREAD_SOURCE = """
#include <stdio.h>
#include <pthread.h>

#define NTHREADS 4
#define N 256
#define ROUNDS 24

double hot[256];
double partial[4];
int counter;
pthread_mutex_t lock;

void *worker(void *tid) {
    int id = (int)tid;
    int chunk = N / NTHREADS;
    int lo = id * chunk;
    int j;
    int r;
    double local = 0.0;
    for (j = lo; j < lo + chunk; j++)
        hot[j] = 1.0 + j;
    for (r = 0; r < ROUNDS; r++) {
        for (j = lo; j < lo + chunk; j++)
            local += hot[j] * 0.5;
        pthread_mutex_lock(&lock);
        counter = counter + 1;
        pthread_mutex_unlock(&lock);
    }
    partial[id] = local;
    pthread_exit(NULL);
}

int main(void) {
    pthread_t th[4];
    int t;
    double total = 0.0;
    pthread_mutex_init(&lock, NULL);
    for (t = 0; t < NTHREADS; t++)
        pthread_create(&th[t], NULL, worker, (void *)t);
    for (t = 0; t < NTHREADS; t++)
        pthread_join(th[t], NULL);
    for (t = 0; t < NTHREADS; t++)
        total += partial[t];
    printf("%.1f %d\\n", total, counter);
    return 0;
}
"""


def _rcce_unit():
    framework = TranslationFramework(
        on_chip_capacity=SCALED_ON_CHIP_CAPACITY,
        partition_policy="size")
    return framework.translate(
        benchmark_source("dot", NUM_UES, n=192)).unit


def _run_rcce(unit, attribution):
    chip = SCCChip(scaled_config())
    return run_rcce(unit, NUM_UES, chip.config, chip,
                    max_steps=100_000_000, attribution=attribution)


def _run_pthread(unit, attribution):
    chip = SCCChip(Table61Config())
    return run_pthread_single_core(unit, chip.config, chip,
                                   attribution=attribution)


def _median(values):
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def _median_pair_ratio(baseline_fn, enabled_fn):
    """Median enabled/baseline ratio over PAIRS back-to-back run
    pairs, alternating the in-pair order so load drift hits both
    sides equally.  The median shrugs off the occasional pair where a
    load spike hit one side; a best-of (min) estimator does not — one
    spike-free run on only one side skews it.  The clock is
    ``process_time``: the workload runs on one host thread, so its
    CPU time *is* its wall time minus preemption by unrelated load —
    exactly the quantity the contract bounds.  GC stays off inside
    the timed region."""
    ratios = []
    baselines = []
    enableds = []
    gc.disable()
    try:
        for pair in range(PAIRS):
            if pair % 2 == 0:
                start = time.process_time()
                baseline_fn()
                base = time.process_time() - start
                start = time.process_time()
                enabled_fn()
                enab = time.process_time() - start
            else:
                start = time.process_time()
                enabled_fn()
                enab = time.process_time() - start
                start = time.process_time()
                baseline_fn()
                base = time.process_time() - start
            ratios.append(enab / base)
            baselines.append(base)
            enableds.append(enab)
    finally:
        gc.enable()
    return _median(baselines), _median(enableds), _median(ratios)


def measure():
    # functional contract on the message-passing runner: identical
    # cycles/output, exact conservation, critical path == makespan
    rcce = _rcce_unit()
    plain = _run_rcce(rcce, attribution=False)
    attributed = _run_rcce(rcce, attribution=True)
    assert attributed.cycles == plain.cycles
    assert attributed.per_core_cycles == plain.per_core_cycles
    assert attributed.stdout() == plain.stdout()
    report = attributed.attribution
    for core, classes in report.per_core.items():
        assert sum(classes.values()) == \
            attributed.per_core_cycles[core]
    assert report.critical_path.path_length == report.makespan

    # wall-overhead gate on the host-single-threaded runner
    pthread = parse_program(PTHREAD_SOURCE)
    p_plain = _run_pthread(pthread, attribution=False)
    p_attr = _run_pthread(pthread, attribution=True)
    assert p_attr.cycles == p_plain.cycles
    assert p_attr.stdout() == p_plain.stdout()
    baseline, enabled, ratio = _median_pair_ratio(
        lambda: _run_pthread(pthread, attribution=False),
        lambda: _run_pthread(pthread, attribution=True))
    return {
        "workload": "pthread 4 threads single-core (mutex + hot "
                    "array); identity checked on dot n=192 rcce x%d"
                    % NUM_UES,
        "pairs": PAIRS,
        "baseline_us": baseline * 1e6,
        "enabled_us": enabled * 1e6,
        "ratio": ratio,
        "ceiling": OVERHEAD_CEILING,
        "cycles_identical": True,
        "conserves": True,
        "measure": "median enabled/baseline process_time ratio over "
                   "%d alternating run_pthread_single_core pairs, "
                   "full attribution vs plain run (single host "
                   "thread: CPU time is wall time minus preemption, "
                   "and measures hook work, not thread scheduling)"
                   % PAIRS,
    }


# -- pytest entry ---------------------------------------------------------------


def test_enabled_mode_overhead_under_5_percent(results_dir):
    report = measure()
    write_result(results_dir, "attr_overhead.txt",
                 "enabled-mode attribution: baseline %.1f us, "
                 "enabled %.1f us, ratio %.3f"
                 % (report["baseline_us"], report["enabled_us"],
                    report["ratio"]))
    assert report["ratio"] <= OVERHEAD_CEILING, (
        "enabled-mode attribution overhead %.1f%% exceeds 5%%"
        % ((report["ratio"] - 1.0) * 100.0))


def test_attribution_run_is_cycle_identical():
    unit = _rcce_unit()
    plain = _run_rcce(unit, attribution=False)
    attributed = _run_rcce(unit, attribution=True)
    assert attributed.cycles == plain.cycles
    assert attributed.stdout() == plain.stdout()


# -- script entry ----------------------------------------------------------------


def main(argv=None):
    report = measure()
    with open(DEFAULT_OUTPUT, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print("enabled-mode ratio %.3f (ceiling %.2f) -> %s"
          % (report["ratio"], OVERHEAD_CEILING, DEFAULT_OUTPUT))
    return 0 if report["ratio"] <= OVERHEAD_CEILING else 1


if __name__ == "__main__":
    sys.exit(main())
