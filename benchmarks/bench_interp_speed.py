"""Interpreter engine speed: closure-compiled vs the reference tree-walker.

Runs the Fig. 6.1 workload set (every benchmark in both the ``pthread``
baseline and ``rcce-off`` configurations) under both engines, measures
the *simulate* pipeline stage (the interpreter's own work — translation
and output verification are engine-independent and excluded), checks
that simulated cycle counts are byte-identical, and writes a
machine-readable report to ``BENCH_interp.json`` at the repo root.

Usage::

    PYTHONPATH=src python benchmarks/bench_interp_speed.py           # full set
    PYTHONPATH=src python benchmarks/bench_interp_speed.py --smoke   # CI subset
    pytest benchmarks/bench_interp_speed.py                          # smoke test

Full mode asserts the overall speedup is >= 3x (the PR's acceptance
bar); smoke mode only asserts cycle identity and a modest >1.2x so CI
machine jitter cannot flake the job.
"""

import argparse
import json
import os
import sys

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
if os.path.join(ROOT, "src") not in sys.path:
    sys.path.insert(0, os.path.join(ROOT, "src"))

from repro.bench.harness import ExperimentHarness  # noqa: E402

FIG_6_1_BENCHMARKS = ("pi", "sum35", "primes", "stream", "dot", "lu")
SMOKE_BENCHMARKS = ("pi", "stream")
CONFIGURATIONS = ("pthread", "rcce-off")
DEFAULT_OUTPUT = os.path.join(ROOT, "BENCH_interp.json")

FULL_SPEEDUP_FLOOR = 3.0
SMOKE_SPEEDUP_FLOOR = 1.2


def _simulate_seconds(run):
    """Wall seconds of the harness's 'simulate' profiler span."""
    for stage in run.instrumentation["stages"]:
        if stage["stage"] == "simulate":
            return stage["wall_seconds"]
    raise LookupError("no simulate span recorded")


def _total_steps(run):
    """Total interpreter steps across all cores (from the metrics
    registry's sim_steps counter)."""
    samples = run.instrumentation["metrics"].get(
        "counters", {}).get("sim_steps", [])
    return sum(sample["value"] for sample in samples)


def measure(benchmarks, num_ues, verify=True):
    """Run ``benchmarks`` x CONFIGURATIONS under both engines.

    Returns the report dict (see module docstring).  Raises
    AssertionError if any workload's simulated cycles differ between
    engines — the differential guarantee is part of the measurement.
    """
    engines = ("compiled", "tree")
    raw = {}
    for engine in engines:
        harness = ExperimentHarness(num_ues=num_ues, engine=engine,
                                    verify=verify)
        for name in benchmarks:
            for configuration in CONFIGURATIONS:
                run = harness.run(name, configuration)
                raw[(engine, name, configuration)] = {
                    "cycles": run.cycles,
                    "steps": _total_steps(run),
                    "wall_seconds": _simulate_seconds(run),
                }

    workloads = {}
    totals = {engine: 0.0 for engine in engines}
    for name in benchmarks:
        for configuration in CONFIGURATIONS:
            compiled = raw[("compiled", name, configuration)]
            tree = raw[("tree", name, configuration)]
            assert compiled["cycles"] == tree["cycles"], (
                "%s/%s: compiled %d cycles != tree %d cycles"
                % (name, configuration, compiled["cycles"],
                   tree["cycles"]))
            assert compiled["steps"] == tree["steps"], (
                "%s/%s: step counts diverged" % (name, configuration))
            totals["compiled"] += compiled["wall_seconds"]
            totals["tree"] += tree["wall_seconds"]
            workloads["%s/%s" % (name, configuration)] = {
                "cycles": compiled["cycles"],
                "steps": compiled["steps"],
                "compiled_wall_seconds": compiled["wall_seconds"],
                "tree_wall_seconds": tree["wall_seconds"],
                "compiled_ops_per_sec":
                    compiled["steps"] / compiled["wall_seconds"],
                "tree_ops_per_sec":
                    tree["steps"] / tree["wall_seconds"],
                "speedup":
                    tree["wall_seconds"] / compiled["wall_seconds"],
            }

    speedups = [entry["speedup"] for entry in workloads.values()]
    product = 1.0
    for value in speedups:
        product *= value
    return {
        "workload_set": "fig_6_1",
        "benchmarks": list(benchmarks),
        "configurations": list(CONFIGURATIONS),
        "num_ues": num_ues,
        "measure": "simulate-stage wall seconds (translation and "
                   "verification excluded; identical in both engines)",
        "cycles_identical": True,
        "workloads": workloads,
        "total_compiled_seconds": totals["compiled"],
        "total_tree_seconds": totals["tree"],
        "overall_speedup": totals["tree"] / totals["compiled"],
        "geomean_speedup": product ** (1.0 / len(speedups)),
        "min_speedup": min(speedups),
        "max_speedup": max(speedups),
    }


def render(report):
    lines = ["%-18s %12s %10s %10s %8s"
             % ("workload", "cycles", "tree s", "compiled s", "speedup")]
    for key, entry in report["workloads"].items():
        lines.append("%-18s %12d %10.3f %10.3f %7.2fx" % (
            key, entry["cycles"], entry["tree_wall_seconds"],
            entry["compiled_wall_seconds"], entry["speedup"]))
    lines.append("overall: %.2fx  (geomean %.2fx, min %.2fx, "
                 "tree %.1fs -> compiled %.1fs)" % (
                     report["overall_speedup"],
                     report["geomean_speedup"], report["min_speedup"],
                     report["total_tree_seconds"],
                     report["total_compiled_seconds"]))
    return "\n".join(lines)


# -- pytest entry (smoke scale) -------------------------------------------------


def test_interp_speed_smoke(tmp_path):
    report = measure(SMOKE_BENCHMARKS, num_ues=8)
    (tmp_path / "BENCH_interp.json").write_text(
        json.dumps(report, indent=2))
    assert report["cycles_identical"]
    assert report["overall_speedup"] > SMOKE_SPEEDUP_FLOOR


# -- script entry ----------------------------------------------------------------


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="CI subset: %s at 8 UEs, no 3x gate"
                        % (SMOKE_BENCHMARKS,))
    parser.add_argument("-o", "--output", default=DEFAULT_OUTPUT,
                        help="report path (default %s)" % DEFAULT_OUTPUT)
    parser.add_argument("--ues", type=int, default=None,
                        help="override the UE count")
    args = parser.parse_args(argv)

    if args.smoke:
        benchmarks, num_ues, floor = (
            SMOKE_BENCHMARKS, args.ues or 8, SMOKE_SPEEDUP_FLOOR)
    else:
        benchmarks, num_ues, floor = (
            FIG_6_1_BENCHMARKS, args.ues or 32, FULL_SPEEDUP_FLOOR)

    report = measure(benchmarks, num_ues)
    report["mode"] = "smoke" if args.smoke else "full"
    with open(args.output, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(render(report))
    print("report written to %s" % args.output)
    if report["overall_speedup"] < floor:
        print("FAIL: overall speedup %.2fx < %.1fx floor"
              % (report["overall_speedup"], floor))
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
