"""Table 6.1 — the SCC experimental configuration."""

from conftest import write_result

from repro.bench.tables import table_6_1
from repro.core.reports import format_table
from repro.scc.chip import SCCChip
from repro.scc.config import Table61Config


def test_table_6_1(benchmark, results_dir):
    def build():
        config = Table61Config()
        SCCChip(config)  # the full chip assembles under this config
        return config

    config = benchmark(build)
    rows = table_6_1(config, execution_units=32)
    write_result(results_dir, "table_6_1.txt", format_table(
        rows, columns=["parameter", "rcce", "pthreads"],
        title="Table 6.1: SCC configuration"))

    by_param = {row["parameter"]: row for row in rows}
    assert by_param["Core Frequency"]["rcce"] == "800 MHz"
    assert by_param["Communication Network"]["rcce"] == "1600 MHz"
    assert by_param["Off-chip Memory"]["rcce"] == "1066 MHz"
    assert by_param["Execution Units"]["rcce"] == "32 cores"
    assert by_param["Execution Units"]["pthreads"] == "32 threads"
