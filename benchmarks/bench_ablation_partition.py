"""Ablation — Stage 4 partition policy: ascending-size (Algorithm 3)
vs access-frequency density (the paper's suggested refinement).

A workload with a small-but-cold table and a large-but-hot array,
under a capacity that can hold only one of them, separates the two
policies: size-greedy protects the cold table, frequency-greedy puts
the hot array on-chip and wins.
"""

from conftest import write_result

from repro.core.framework import TranslationFramework
from repro.sim.runner import run_rcce

SOURCE = """
#include <stdio.h>
#include <pthread.h>

#define NTHREADS 8
#define HOT 256
#define COLD 32

double hot[256];
int cold[32];
double checksum[8];

void *worker(void *tid) {
    int id = (int)tid;
    int chunk = HOT / NTHREADS;
    int lo = id * chunk;
    int j;
    int r;
    double local = 0.0;
    for (j = lo; j < lo + chunk; j++) {
        hot[j] = 1.0 + j;
    }
    for (r = 0; r < 20; r++) {
        for (j = lo; j < lo + chunk; j++) {
            local += hot[j];
        }
    }
    checksum[id] = local;
    pthread_exit(NULL);
}

int main(void) {
    pthread_t th[8];
    int t;
    int j;
    double total = 0.0;
    for (t = 0; t < NTHREADS; t++)
        pthread_create(&th[t], NULL, worker, (void *)t);
    for (t = 0; t < NTHREADS; t++)
        pthread_join(th[t], NULL);
    for (j = 0; j < COLD; j++)
        cold[j] = j;
    for (t = 0; t < NTHREADS; t++)
        total += checksum[t];
    printf("%.1f\\n", total);
    return 0;
}
"""

# hot = 2048 B, cold = 128 B, checksum = 64 B; capacity fits hot OR
# (cold + checksum), not both.
CAPACITY = 2112


def run_policy(policy):
    framework = TranslationFramework(on_chip_capacity=CAPACITY,
                                     partition_policy=policy)
    translated = framework.translate(SOURCE)
    return run_rcce(translated.unit, 8), translated


def test_partition_policy_ablation(benchmark, results_dir):
    size_result, size_tr = run_policy("size")

    def frequency_run():
        return run_policy("frequency")

    freq_result, freq_tr = benchmark.pedantic(frequency_run, rounds=1,
                                              iterations=1)

    # both are correct
    assert size_result.stdout() == freq_result.stdout()

    # size policy protected the small cold table; frequency policy the
    # hot array
    assert size_tr.plan.bank_of("cold").value == "on-chip"
    assert size_tr.plan.bank_of("hot").value == "off-chip"
    assert freq_tr.plan.bank_of("hot").value == "on-chip"

    # and the frequency policy is faster on this workload
    gain = size_result.cycles / freq_result.cycles
    write_result(results_dir, "ablation_partition.txt",
                 "size policy:      %d cycles\n"
                 "frequency policy: %d cycles\n"
                 "frequency gain:   %.2fx"
                 % (size_result.cycles, freq_result.cycles, gain))
    assert gain > 1.5
