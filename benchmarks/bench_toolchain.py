"""Toolchain throughput: translator compile-time and simulator speed."""

from conftest import write_result

from repro.bench.programs import BENCHMARKS
from repro.core.framework import TranslationFramework
from repro.sim.runner import run_pthread_single_core


def test_translate_all_benchmarks(benchmark, results_dir):
    """Full five-stage translation of the whole corpus."""
    framework = TranslationFramework()
    sources = [builder(nthreads=32) for builder in BENCHMARKS.values()]

    def translate_all():
        return [framework.translate(source) for source in sources]

    results = benchmark(translate_all)
    lines = sum(r.rcce_source.count("\n") for r in results)
    write_result(results_dir, "toolchain_translate.txt",
                 "translated %d programs, %d lines of RCCE C"
                 % (len(results), lines))
    assert len(results) == len(BENCHMARKS)


def test_simulator_throughput(benchmark, results_dir):
    """Simulated cycles per wall-clock second on the pi kernel."""
    source = BENCHMARKS["pi"](nthreads=4, steps=2048)

    def simulate():
        return run_pthread_single_core(source)

    result = benchmark.pedantic(simulate, rounds=3, iterations=1)
    write_result(results_dir, "toolchain_simulate.txt",
                 "pi(2048 steps, 4 threads): %d simulated cycles"
                 % result.cycles)
    assert result.stdout().startswith("pi = 3.14")
