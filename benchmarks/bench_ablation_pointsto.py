"""Ablation — what Stage 3 (points-to) contributes.

Without the alias analysis, data reachable only through shared
pointers would be classified private and the translated program would
break (the paper's `tmp` case).  We measure how many extra variables
Stage 3 promotes on pointer-heavy code, and its compile-time cost.
"""

from conftest import write_result

from repro.core.framework import TranslationFramework
from repro.core.stage1_scope import ScopeAnalysis
from repro.core.stage2_interthread import InterThreadAnalysis
from repro.ir.passes import Driver, ProgramContext
from repro.cfront.frontend import parse_program

POINTER_HEAVY = """
#include <pthread.h>

int *p0;
int *p1;
int *p2;

void *tf(void *tid) {
    *p0 += 1;
    *p1 += 2;
    *p2 += 3;
    return 0;
}

int main(void) {
    int a = 0;
    int b = 0;
    int c = 0;
    p0 = &a;
    p1 = &b;
    p2 = p1;
    p2 = &c;
    pthread_t th[4];
    for (int i = 0; i < 4; i++)
        pthread_create(&th[i], 0, tf, (void *)i);
    for (int i = 0; i < 4; i++)
        pthread_join(th[i], 0);
    return 0;
}
"""


def shared_without_stage3(source):
    context = ProgramContext(parse_program(source))
    Driver([ScopeAnalysis(), InterThreadAnalysis()]).run(context)
    return {v.name for v in context.facts["variables"] if v.is_shared}


def shared_with_stage3(source):
    result = TranslationFramework().analyze(source)
    return {v.name for v in result.variables if v.is_shared}


def test_pointsto_ablation(benchmark, results_dir):
    without = shared_without_stage3(POINTER_HEAVY)
    with_stage3 = benchmark(lambda: shared_with_stage3(POINTER_HEAVY))

    promoted = with_stage3 - without
    write_result(results_dir, "ablation_pointsto.txt",
                 "shared without Stage 3: %s\n"
                 "shared with Stage 3:    %s\n"
                 "promoted by Stage 3:    %s"
                 % (sorted(without), sorted(with_stage3),
                    sorted(promoted)))

    # the pointers themselves are global: shared either way
    assert {"p0", "p1", "p2"} <= without

    # the pointees are only found by the alias analysis
    assert {"a", "b", "c"} <= promoted

    # missing them would translate to an incorrect program: a/b/c are
    # written by every process but would live in private memory
    assert not ({"a", "b", "c"} & without)
