"""Disabled-mode observability overhead (must stay under 5%).

The instrumentation hooks are guarded by one attribute read
(``events.enabled``) at every emit site, so a chip with no tracer
attached — the default — must price memory accesses at effectively the
pre-instrumentation cost.  This bench replays the pre-PR hot-path
arithmetic (the seed's ``access_cost`` body, inlined below as plain
functions over the same components) against today's instrumented
``SCCChip.access_cost`` in disabled mode, and fails if the instrumented
path costs more than 1.05x the replica.

Wall-clock comparisons are noisy; both sides are measured as the best
of several repetitions, which is stable well below the 5% margin.
"""

import time

from conftest import write_result

from repro.scc.chip import SCCChip
from repro.scc.config import SCCConfig
from repro.scc.memmap import SegmentKind

ACCESSES = 2_000
REPEATS = 9


def _baseline_access_cost(chip):
    """The seed's ``access_cost`` (pre-observability), verbatim except
    for closing over ``chip`` instead of ``self``."""
    config = chip.config
    address_space = chip.address_space
    cores = chip.cores
    luts = chip.luts
    reconfigured = chip._reconfigured_cores
    mesh = chip.mesh
    controllers = chip.controllers
    mpb = chip.mpb

    def private_cost(core, state, addr):
        if state.l1.access(addr):
            return config.l1_hit_cycles
        if state.l2.access(addr):
            return config.l2_hit_cycles
        controller_id = mesh.controller_of(core)
        hops = mesh.hops_to_controller(core, controller_id)
        return controllers[controller_id].access_cycles("read", hops)

    def shared_cost(core, kind):
        controller_id = mesh.controller_of(core)
        hops = mesh.hops_to_controller(core, controller_id)
        if mesh.record_traffic:
            mesh.record_route(mesh.coords_of(core),
                              mesh.controller_coords(controller_id))
        cost = controllers[controller_id].access_cycles(kind, hops)
        return cost + config.uncached_shared_penalty

    def mpb_cost(core, addr, kind, size):
        state = cores[core]
        if kind == "read" and state.l1.access(addr):
            return config.l1_hit_cycles
        if kind == "write":
            state.l1.access(addr)
        offset = address_space.mpb_offset(addr)
        if mesh.record_traffic:
            owner = mpb.owner_of_offset(offset)
            mesh.record_route(mesh.coords_of(core),
                              mesh.coords_of(owner))
        return mpb.access_cycles(core, offset, kind, size)

    def access_cost(core, addr, kind="read", size=4):
        state = cores[core]
        segment, physical = address_space.resolve(addr)
        if core in reconfigured:
            entry = luts[core].lookup(addr)
            if entry is not None and entry.kind in (
                    SegmentKind.PRIVATE, SegmentKind.SHARED):
                segment = entry.kind
        state.accesses[segment] += 1
        if segment is SegmentKind.PRIVATE:
            return private_cost(core, state, physical)
        if segment is SegmentKind.SHARED:
            return shared_cost(core, kind)
        return mpb_cost(core, physical, kind, size)

    return access_cost


def _workload(chip):
    """A deterministic private/shared/MPB access mix."""
    private = chip.address_space.alloc_private(0, 4096)
    shared = chip.address_space.alloc_shared(4096)
    mpb = chip.address_space.alloc_mpb(256)
    accesses = []
    for index in range(ACCESSES):
        bucket = index % 8
        if bucket < 5:
            accesses.append((private.base + (index * 4) % 4096,
                             "read", 4))
        elif bucket < 7:
            accesses.append((shared.base + (index * 4) % 4096,
                             "write", 4))
        else:
            accesses.append((mpb.base + (index * 4) % 256, "read", 4))
    return accesses


def _best_of(fn, repeats=REPEATS):
    best = None
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        elapsed = time.perf_counter() - start
        if best is None or elapsed < best:
            best = elapsed
    return best


def test_disabled_mode_overhead_under_5_percent(results_dir):
    chip = SCCChip(SCCConfig())
    accesses = _workload(chip)
    baseline_cost = _baseline_access_cost(chip)
    instrumented_cost = chip.access_cost
    assert not chip.events.enabled  # disabled is the default

    def run_baseline():
        for addr, kind, size in accesses:
            baseline_cost(0, addr, kind, size)

    def run_instrumented():
        for addr, kind, size in accesses:
            instrumented_cost(0, addr, kind, size)

    # prime caches/JIT-free interpreter state identically
    run_baseline()
    run_instrumented()

    baseline = _best_of(run_baseline)
    instrumented = _best_of(run_instrumented)
    ratio = instrumented / baseline
    write_result(results_dir, "obs_overhead.txt",
                 "disabled-mode access_cost: baseline %.1f us, "
                 "instrumented %.1f us, ratio %.3f"
                 % (baseline * 1e6, instrumented * 1e6, ratio))
    assert ratio <= 1.05, (
        "disabled-mode instrumentation overhead %.1f%% exceeds 5%%"
        % ((ratio - 1.0) * 100.0))


def test_both_paths_price_identically():
    """The replica and the instrumented path must agree on cycles —
    otherwise the timing comparison compares different work."""
    chip_a = SCCChip(SCCConfig())
    chip_b = SCCChip(SCCConfig())
    costs_a = [_baseline_access_cost(chip_a)(0, addr, kind, size)
               for addr, kind, size in _workload(chip_a)]
    costs_b = [chip_b.access_cost(0, addr, kind, size)
               for addr, kind, size in _workload(chip_b)]
    assert costs_a == costs_b
