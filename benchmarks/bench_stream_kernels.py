"""Per-kernel STREAM breakdown (Appendix C, Algorithms 13-16).

The paper's Figure 6.1/6.2 shows one "Stream" bar; its Appendix C
defines the four kernels separately.  This bench times Copy / Scale /
Add / Triad individually across the three configurations, so the
memory-operation mix (1 read + 1 write up to 2 reads + 1 write + FLOPs)
is visible in the speedups.
"""

from conftest import write_result

from repro.bench.programs import STREAM_KERNELS, stream_kernel
from repro.bench.workloads import scaled_config
from repro.core.framework import TranslationFramework
from repro.scc.chip import SCCChip
from repro.sim.runner import run_pthread_single_core, run_rcce

NUM_UES = 16
N = 512


def run_kernel_matrix():
    rows = []
    for kernel in STREAM_KERNELS:
        source = stream_kernel(kernel, nthreads=NUM_UES, n=N)
        chip = SCCChip(scaled_config())
        baseline = run_pthread_single_core(source, chip.config, chip)

        off_tr = TranslationFramework(
            partition_policy="off-chip-only").translate(source)
        chip = SCCChip(scaled_config())
        off = run_rcce(off_tr.unit, NUM_UES, chip.config, chip)

        on_tr = TranslationFramework(
            on_chip_capacity=48 * 1024).translate(source)
        chip = SCCChip(scaled_config())
        on = run_rcce(on_tr.unit, NUM_UES, chip.config, chip)

        expected = baseline.stdout()
        for line in off.stdout().strip().splitlines():
            assert line + "\n" == expected, kernel
        for line in on.stdout().strip().splitlines():
            assert line + "\n" == expected, kernel

        rows.append({
            "kernel": kernel,
            "pthread": baseline.cycles,
            "rcce_off": off.cycles,
            "rcce_on": on.cycles,
            "fig61": baseline.cycles / off.cycles,
            "fig62": off.cycles / on.cycles,
        })
    return rows


def test_stream_kernel_breakdown(benchmark, results_dir):
    rows = benchmark.pedantic(run_kernel_matrix, rounds=1, iterations=1)

    lines = ["%-6s pthread=%8d off=%8d on=%8d  fig6.1=%5.2fx "
             "fig6.2=%5.2fx" % (row["kernel"], row["pthread"],
                                row["rcce_off"], row["rcce_on"],
                                row["fig61"], row["fig62"])
             for row in rows]
    write_result(results_dir, "stream_kernels.txt", "\n".join(lines))

    by_kernel = {row["kernel"]: row for row in rows}
    # every kernel gains from both parallelism and the MPB
    assert all(row["fig61"] > 1.5 for row in rows)
    assert all(row["fig62"] > 1.2 for row in rows)
    # triad does the most FLOPs per element: moving memory on-chip
    # helps it no more than pure-copy (copy is the most memory-bound)
    assert by_kernel["copy"]["fig62"] >= 0.8 * by_kernel["triad"]["fig62"]
