"""Figure 6.2 — RCCE off-chip shared memory vs the on-chip MPB.

Paper: memory-heavy programs benefit most (Stream), LU's matrix does
not fit into the on-chip shared memory so it gains almost nothing.
"""

from conftest import write_result

from repro.bench.figures import render_bars


def test_figure_6_2(benchmark, harness, results_dir):
    rows = benchmark.pedantic(
        lambda: harness.figure_6_2(), rounds=1, iterations=1)
    chart = render_bars(rows, "benchmark", "improvement",
                        title="Figure 6.2: on-chip (MPB) improvement "
                        "over off-chip shared memory")
    average = harness.average_onchip_improvement()
    chart += "\n\ngeometric-mean improvement: %.2fx" % average
    write_result(results_dir, "figure_6_2.txt", chart)

    improvement = {row["benchmark"]: row["improvement"] for row in rows}

    # on-chip never loses
    assert all(value >= 0.95 for value in improvement.values())

    # memory-operations benchmarks benefit the most
    top_two = sorted(improvement, key=improvement.get)[-2:]
    assert set(top_two) <= {"stream", "dot"}
    assert improvement["stream"] > 2.0

    # LU does not fit in the MPB: marginal gain (paper: "very slight")
    assert improvement["lu"] < 1.15
    assert improvement["lu"] == min(improvement.values())

    # compute-bound benchmarks barely move
    assert improvement["pi"] < 1.5
