"""Extension — §4.4 split allocation on the LU no-fit case.

Figure 6.2's discussion: the LU matrix does not fit the MPB, but "for
a very slight performance improvement a small portion of the matrix,
for example a few rows, may be allocated separately on the MPB".  With
``allow_split`` Stage 4 does exactly that: the head of the batch goes
to SRAM, the tail to DRAM.  The expected result is a small-but-real
gain — bigger than the no-split on-chip configuration (which spills
the whole batch), far smaller than a workload that fits.
"""

from conftest import write_result

from repro.bench.workloads import SCALED_ON_CHIP_CAPACITY, scaled_config
from repro.bench.programs import benchmark_source
from repro.core.framework import TranslationFramework
from repro.scc.chip import SCCChip
from repro.sim.runner import run_rcce

NUM_UES = 16
SIZES = {"batch": 16, "dim": 16}  # 32 KB of matrices > 24 KB capacity
CAPACITY = 24 * 1024


def run_variant(source, **framework_kwargs):
    translated = TranslationFramework(**framework_kwargs).translate(
        source)
    chip = SCCChip(scaled_config())
    return run_rcce(translated.unit, NUM_UES, chip.config, chip), \
        translated


def test_split_allocation_on_lu(benchmark, results_dir):
    source = benchmark_source("lu", nthreads=NUM_UES, **SIZES)

    no_split, no_split_tr = run_variant(
        source, on_chip_capacity=CAPACITY)

    def with_split():
        return run_variant(source, on_chip_capacity=CAPACITY,
                           allow_split=True)

    split, split_tr = benchmark.pedantic(with_split, rounds=1,
                                         iterations=1)

    # identical numerics
    assert split.stdout() == no_split.stdout()

    # without split the matrices spilled entirely; with split their
    # head rows live on-chip
    assert no_split_tr.plan.bank_of("mats").value == "off-chip"
    assert split_tr.plan.bank_of("mats").value == "split"

    improvement = no_split.cycles / split.cycles
    write_result(results_dir, "ablation_split.txt",
                 "LU without split: %8d cycles\n"
                 "LU with split:    %8d cycles\n"
                 "improvement:      %.3fx  (paper: 'very slight')\n"
                 "why so slight: cores whose matrices landed in the\n"
                 "SRAM head finish early, but wall time is the max\n"
                 "over cores and the slowest core's matrix still\n"
                 "lives in the DRAM tail"
                 % (no_split.cycles, split.cycles, improvement))

    # the paper's 'very slight performance improvement': real but small
    assert 1.0 < improvement < 2.0
