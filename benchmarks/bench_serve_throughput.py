"""Job service: submission-to-completion throughput and overhead.

Pushes a batch of small Figure 6.1 kernels (distinct sizes, so the
result memo never short-circuits the measurement) through a
:class:`repro.serve.Scheduler`, times the batch end to end, and
compares against running the identical jobs in-process with
``execute_job`` — no queue, no worker fork, no IPC.  Three numbers
come out:

* ``overhead_ratio`` — pool-1 service wall / direct wall for the same
  batch.  The cost of supervision (fork, pipes, scheduling rounds)
  relative to the simulation itself; machine-relative, so it is the
  quantity the perf guard pins.
* ``jobs_per_second`` at the full pool — throughput a multi-CPU host
  gets from running workers concurrently.  Like the parallel-backend
  speedup, this is a property of the *host*: a single-CPU runner
  time-slices the workers, so the guard only asserts it where
  ``host_cpus >= 4`` (and the report records ``host_cpus`` so a
  committed single-CPU baseline is never mistaken for one with a
  measured pool speedup).
* ``byte_identical`` — every service result must match its direct
  run exactly.  Asserted on every host, no excuses.

A second, memo-warm pass over the same batch measures cache-hit
throughput (``cached_jobs_per_second``) — hits never touch a worker.

Usage::

    PYTHONPATH=src python benchmarks/bench_serve_throughput.py           # full set
    PYTHONPATH=src python benchmarks/bench_serve_throughput.py --smoke   # CI subset
    pytest benchmarks/bench_serve_throughput.py                          # smoke test
"""

import argparse
import json
import os
import sys
import time

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
if os.path.join(ROOT, "src") not in sys.path:
    sys.path.insert(0, os.path.join(ROOT, "src"))

from repro.bench.programs import benchmark_source  # noqa: E402
from repro.serve import JobSpec, Scheduler, execute_job  # noqa: E402
from repro.serve.job import Job  # noqa: E402

DEFAULT_OUTPUT = os.path.join(ROOT, "BENCH_serve.json")
POOL_SIZE = 4
MIN_HOST_CPUS = 4   # below this, pool throughput is not measurable

# (kernel, sizes) x 2 distinct sizes each: 8 jobs, no two identical,
# so the memo stays cold on the first pass
FULL_BATCH = [
    ("pi", {"steps": 64}), ("pi", {"steps": 128}),
    ("stream", {"n": 64}), ("stream", {"n": 96}),
    ("dot", {"n": 64}), ("dot", {"n": 96}),
    ("sum35", {"limit": 64}), ("sum35", {"limit": 96}),
]
SMOKE_BATCH = FULL_BATCH[:4]

NUM_UES = 4
MAX_STEPS = 20_000_000


def _sources(batch):
    return [benchmark_source(name, NUM_UES, **sizes)
            for name, sizes in batch]


def _signature(payload):
    return (payload["cycles"], payload["per_core_cycles"],
            payload["stdout"], payload["exit_value"])


def _run_batch(sources, pool_size, state_dir, timeout=1200.0):
    sched = Scheduler(pool_size=pool_size, state_dir=state_dir)
    start = time.perf_counter()
    jobs = [sched.submit(source,
                         spec=JobSpec(num_ues=NUM_UES,
                                      max_steps=MAX_STEPS))
            for source in sources]
    sched.run_until_idle(timeout=timeout)
    wall = time.perf_counter() - start
    assert all(job.state == "done" for job in jobs), \
        [(job.job_id, job.state, job.outcome) for job in jobs]
    return wall, jobs, sched


def measure(batch=FULL_BATCH, pool_size=POOL_SIZE, workdir=None):
    import tempfile

    workdir = workdir or tempfile.mkdtemp(prefix="bench-serve-")
    sources = _sources(batch)

    direct_start = time.perf_counter()
    direct = [execute_job(Job("direct%d" % i, source,
                              JobSpec(num_ues=NUM_UES,
                                      max_steps=MAX_STEPS)))
              for i, source in enumerate(sources)]
    direct_wall = time.perf_counter() - direct_start

    pool1_wall, pool1_jobs, _ = _run_batch(
        sources, 1, os.path.join(workdir, "pool1"))
    pool_wall, pool_jobs, sched = _run_batch(
        sources, pool_size, os.path.join(workdir, "pool%d" % pool_size))

    byte_identical = all(
        _signature(job.result) == _signature(expected)
        for jobs in (pool1_jobs, pool_jobs)
        for job, expected in zip(jobs, direct))

    # memo-warm second pass: same batch against the pool scheduler's
    # populated memo — pure cache-hit throughput
    cached_start = time.perf_counter()
    cached_jobs = [sched.submit(source,
                                spec=JobSpec(num_ues=NUM_UES,
                                             max_steps=MAX_STEPS))
                   for source in sources]
    cached_wall = time.perf_counter() - cached_start
    all_cached = all(job.result and job.result.get("cached")
                     for job in cached_jobs)

    return {
        "batch": ["%s %s" % (name, sizes) for name, sizes in batch],
        "num_ues": NUM_UES,
        "pool_size": pool_size,
        "host_cpus": os.cpu_count(),
        "measure": "submit-to-idle wall seconds for the batch; "
                   "direct = same jobs via execute_job in-process; "
                   "overhead_ratio = pool-1 service / direct",
        "jobs": len(sources),
        "direct_seconds": direct_wall,
        "pool1_seconds": pool1_wall,
        "pool_seconds": pool_wall,
        "overhead_ratio": pool1_wall / direct_wall,
        "jobs_per_second": len(sources) / pool_wall,
        "pool_speedup": pool1_wall / pool_wall,
        "cached_jobs_per_second": len(sources) / cached_wall,
        "all_cached": all_cached,
        "byte_identical": byte_identical,
    }


def render(report):
    return "\n".join([
        "%d jobs (%d UEs) on pool %d" % (report["jobs"],
                                         report["num_ues"],
                                         report["pool_size"]),
        "direct       %8.2fs" % report["direct_seconds"],
        "service x1   %8.2fs  (overhead ratio %.2f)"
        % (report["pool1_seconds"], report["overhead_ratio"]),
        "service x%d   %8.2fs  (%.2f jobs/s, %.2fx vs pool 1)"
        % (report["pool_size"], report["pool_seconds"],
           report["jobs_per_second"], report["pool_speedup"]),
        "memo-warm    %8.2f jobs/s (all_cached=%s)"
        % (report["cached_jobs_per_second"], report["all_cached"]),
        "host cpus: %s  byte_identical: %s"
        % (report["host_cpus"], report["byte_identical"]),
    ])


# -- pytest entry (smoke scale) -------------------------------------------------


def test_serve_throughput_smoke(tmp_path):
    report = measure(batch=SMOKE_BATCH, pool_size=2,
                     workdir=str(tmp_path))
    assert report["byte_identical"]
    assert report["all_cached"]


# -- script entry ----------------------------------------------------------------


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="CI subset: 4 jobs on a pool of 2")
    parser.add_argument("-o", "--output", default=DEFAULT_OUTPUT,
                        help="report path (default %s)" % DEFAULT_OUTPUT)
    args = parser.parse_args(argv)

    if args.smoke:
        report = measure(batch=SMOKE_BATCH, pool_size=2)
        report["mode"] = "smoke"
    else:
        report = measure()
        report["mode"] = "full"
    with open(args.output, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(render(report))
    print("report written to %s" % args.output)
    if not report["byte_identical"]:
        print("FAIL: a service result diverged from its direct run")
        return 1
    if not report["all_cached"]:
        print("FAIL: the memo-warm pass missed the cache")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
