"""Figure 6.1 — RCCE (32 cores, off-chip shared memory) speedup over
the 32-thread Pthreads baseline on one core.

Paper: Pi 32x, 3-5-Sum 29x, Count Primes 16x, Stream 17x; Dot Product
and LU Decomposition trail because of memory-controller contention.
Shape assertions check the ordering and rough magnitudes, not the
absolute silicon numbers (we run a latency model, not the SCC).
"""

from conftest import write_result

from repro.bench.figures import render_bars


def test_figure_6_1(benchmark, harness, results_dir):
    rows = benchmark.pedantic(
        lambda: harness.figure_6_1(), rounds=1, iterations=1)
    chart = render_bars(rows, "benchmark", "speedup",
                        title="Figure 6.1: speedup over 1-core "
                        "Pthreads (32 UEs, off-chip shared memory)")
    write_result(results_dir, "figure_6_1.txt", chart)

    speedup = {row["benchmark"]: row["speedup"] for row in rows}

    # every benchmark gains substantially from 32 cores
    assert all(value > 3.0 for value in speedup.values())

    # compute-bound, balanced benchmarks reach ~32x
    assert speedup["pi"] > 25.0
    assert speedup["sum35"] > 25.0

    # block-distributed Count Primes is imbalance-limited (~half ideal)
    assert 10.0 < speedup["primes"] < 22.0
    assert speedup["primes"] < speedup["pi"]

    # memory-bound benchmarks trail the compute-bound ones
    assert speedup["stream"] < speedup["sum35"]
    assert speedup["dot"] < speedup["sum35"]

    # LU (large arrays + cache-friendly baseline) is the worst case
    assert speedup["lu"] == min(speedup.values())
