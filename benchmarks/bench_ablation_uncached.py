"""Ablation — what non-coherent uncacheability actually costs.

The whole premise of the paper's Stage 4 is that shared pages on an
HSM machine are uncacheable.  This bench quantifies that premise with
the LUT page-table knob: run the same single-core kernel twice, once
with its data in a private *cacheable* window and once with the very
same window remapped shared-uncacheable (``SCCChip.configure_window``),
and measure the gap the MPB exists to close.
"""

from conftest import write_result

from repro.scc.chip import SCCChip
from repro.sim.runner import run_pthread_single_core
from repro.bench.workloads import scaled_config

KERNEL = """
#include <stdio.h>

int data[512];

int main(void) {
    int sum = 0;
    for (int r = 0; r < 8; r++) {
        for (int i = 0; i < 512; i++) {
            data[i] = i;
        }
        for (int i = 0; i < 512; i++) {
            sum += data[i];
        }
    }
    printf("%d\\n", sum);
    return 0;
}
"""


def run_kernel(make_uncached):
    chip = SCCChip(scaled_config())
    if make_uncached:
        # remap core 0's whole private window to shared-uncacheable
        from repro.scc.memmap import PRIVATE_BASE
        chip.configure_window(0, PRIVATE_BASE, shared=True)
    return run_pthread_single_core(KERNEL, chip.config, chip)


def test_uncacheability_cost(benchmark, results_dir):
    cached = run_kernel(make_uncached=False)
    uncached = benchmark.pedantic(
        lambda: run_kernel(make_uncached=True), rounds=1, iterations=1)

    # identical program results either way
    assert cached.stdout() == uncached.stdout()

    slowdown = uncached.cycles / cached.cycles
    write_result(results_dir, "ablation_uncached.txt",
                 "cacheable private window:   %8d cycles\n"
                 "uncacheable shared window:  %8d cycles\n"
                 "uncacheability cost:        %.2fx"
                 % (cached.cycles, uncached.cycles, slowdown))

    # the gap the paper's on-chip mapping fights: several-fold
    assert slowdown > 2.0
