"""Disabled-mode race-detector overhead (must stay under 5%).

The detector hooks every interpreter load/store behind one attribute
test (``self._race is not None``) — the same contract as the tracer
and fault-injector probes.  With no detector attached (the default),
those branches must price memory accesses at effectively the
pre-detector cost.  This bench replays the pre-PR ``load``/``store``
bodies (inlined below, verbatim minus the race branch) against today's
hooked methods on an identical access mix, and fails if the hooked
path costs more than 1.05x the replica.

Usage::

    PYTHONPATH=src python benchmarks/bench_race_overhead.py  # BENCH_race.json
    pytest benchmarks/bench_race_overhead.py                 # gate only
"""

import json
import os
import sys
import time

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
if os.path.join(ROOT, "src") not in sys.path:
    sys.path.insert(0, os.path.join(ROOT, "src"))

from conftest import write_result  # noqa: E402

from repro.cfront.frontend import parse_program  # noqa: E402
from repro.scc.chip import SCCChip  # noqa: E402
from repro.scc.config import SCCConfig  # noqa: E402
from repro.sim.interpreter import Interpreter  # noqa: E402
from repro.sim.machine import Memory  # noqa: E402

ACCESSES = 2_000
REPEATS = 9
OVERHEAD_CEILING = 1.05
DEFAULT_OUTPUT = os.path.join(ROOT, "BENCH_race.json")


def _fresh_interp():
    unit = parse_program("int main(void) { return 0; }")
    return Interpreter(unit, SCCChip(SCCConfig()), 0, Memory())


def _pre_race_paths(interp):
    """The seed's ``load``/``store`` (pre-detector), verbatim except
    for closing over ``interp`` instead of ``self``: every pre-PR
    branch (tracer, faults, ctype coercion) is kept so the timing
    difference isolates exactly the added race probe."""
    from repro.cfront import ctypes
    from repro.sim.values import coerce
    chip = interp.chip

    def load(addr, ctype=None):
        interp.cycles += chip.access_cost(interp.core_id, addr,
                                          "read", 4, interp.cycles)
        if interp.tracer is not None:
            interp.tracer.record(interp, addr, "read")
        value = interp.memory.load(addr)
        if interp._faults is not None:
            raw = value
            value = interp._faults.filter_load(interp, addr, value)
            if interp._ecc is not None and value is not raw:
                value = interp._ecc.scrub(interp, addr, value, raw)
        if ctype is not None and isinstance(value, int) and \
                isinstance(ctype, ctypes.PrimitiveType) and \
                ctype.is_floating:
            return float(value)
        return value

    def store(addr, value, ctype=None):
        interp.cycles += chip.access_cost(interp.core_id, addr,
                                          "write", 4, interp.cycles)
        if interp.tracer is not None:
            interp.tracer.record(interp, addr, "write")
        if ctype is not None:
            value = coerce(ctype, value)
        interp.memory.store(addr, value)
        return value

    return load, store


def _workload(chip):
    """A deterministic private/shared access mix."""
    private = chip.address_space.alloc_private(0, 4096)
    shared = chip.address_space.alloc_shared(4096)
    accesses = []
    for index in range(ACCESSES):
        if index % 4 < 3:
            accesses.append((private.base + (index * 4) % 4096,
                             "read"))
        else:
            accesses.append((shared.base + (index * 4) % 4096,
                             "write"))
    return accesses


def _best_of(fn, repeats=REPEATS):
    best = None
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        elapsed = time.perf_counter() - start
        if best is None or elapsed < best:
            best = elapsed
    return best


def measure():
    baseline_interp = _fresh_interp()
    hooked_interp = _fresh_interp()
    assert hooked_interp._race is None  # disabled is the default
    baseline_load, baseline_store = _pre_race_paths(baseline_interp)
    accesses = _workload(baseline_interp.chip)
    _workload(hooked_interp.chip)  # identical layout on both chips

    def run_baseline():
        for addr, kind in accesses:
            if kind == "read":
                baseline_load(addr)
            else:
                baseline_store(addr, 1)

    def run_hooked():
        for addr, kind in accesses:
            if kind == "read":
                hooked_interp.load(addr)
            else:
                hooked_interp.store(addr, 1)

    # prime cache state identically before timing
    run_baseline()
    run_hooked()

    baseline = _best_of(run_baseline)
    hooked = _best_of(run_hooked)
    return {
        "accesses": ACCESSES,
        "repeats": REPEATS,
        "baseline_us": baseline * 1e6,
        "hooked_us": hooked * 1e6,
        "ratio": hooked / baseline,
        "ceiling": OVERHEAD_CEILING,
        "measure": "best-of-%d wall time of %d interpreter "
                   "loads/stores, race hooks present but detector "
                   "detached, vs the pre-detector bodies"
                   % (REPEATS, ACCESSES),
    }


# -- pytest entry ---------------------------------------------------------------


def test_disabled_mode_overhead_under_5_percent(results_dir):
    report = measure()
    write_result(results_dir, "race_overhead.txt",
                 "disabled-mode load/store: baseline %.1f us, "
                 "hooked %.1f us, ratio %.3f"
                 % (report["baseline_us"], report["hooked_us"],
                    report["ratio"]))
    assert report["ratio"] <= OVERHEAD_CEILING, (
        "disabled-mode race-hook overhead %.1f%% exceeds 5%%"
        % ((report["ratio"] - 1.0) * 100.0))


def test_both_paths_charge_identical_cycles():
    """The replica and the hooked path must agree on simulated cycles
    — otherwise the timing comparison compares different work."""
    baseline_interp = _fresh_interp()
    hooked_interp = _fresh_interp()
    baseline_load, baseline_store = _pre_race_paths(baseline_interp)
    for addr, kind in _workload(baseline_interp.chip):
        if kind == "read":
            baseline_load(addr)
        else:
            baseline_store(addr, 1)
    for addr, kind in _workload(hooked_interp.chip):
        if kind == "read":
            hooked_interp.load(addr)
        else:
            hooked_interp.store(addr, 1)
    assert hooked_interp.cycles == baseline_interp.cycles


# -- script entry ----------------------------------------------------------------


def main(argv=None):
    report = measure()
    with open(DEFAULT_OUTPUT, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print("disabled-mode ratio %.3f (ceiling %.2f) -> %s"
          % (report["ratio"], OVERHEAD_CEILING, DEFAULT_OUTPUT))
    return 0 if report["ratio"] <= OVERHEAD_CEILING else 1


if __name__ == "__main__":
    sys.exit(main())
