"""Shared fixtures for the benchmark suite.

The session-scoped harness caches every (benchmark, configuration) run,
so the figure benches share simulation work instead of re-running the
full matrix per module.  Rendered tables/series are also written to
``benchmarks/results/`` so EXPERIMENTS.md can cite them.
"""

import os

import pytest

from repro.bench.harness import ExperimentHarness

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


@pytest.fixture(scope="session")
def harness():
    """The paper's configuration: 32 UEs, scaled workloads."""
    return ExperimentHarness(num_ues=32)


@pytest.fixture(scope="session")
def results_dir():
    os.makedirs(RESULTS_DIR, exist_ok=True)
    return RESULTS_DIR


def write_result(results_dir, name, text):
    path = os.path.join(results_dir, name)
    with open(path, "w") as handle:
        handle.write(text + "\n")
    return path
