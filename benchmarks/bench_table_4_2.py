"""Table 4.2 — sharing status after each analysis stage.

Must match the thesis table exactly, row for row."""

from conftest import write_result

from repro.bench.programs import EXAMPLE_4_1
from repro.bench.tables import PAPER_TABLE_4_2
from repro.core.framework import TranslationFramework
from repro.core.reports import format_table, table_4_2


def test_table_4_2(benchmark, results_dir):
    framework = TranslationFramework()

    def analyze():
        return framework.analyze(EXAMPLE_4_1)

    result = benchmark(analyze)
    rows = table_4_2(result)
    write_result(results_dir, "table_4_2.txt", format_table(
        rows, title="Table 4.2: Variables sharing status"))

    by_name = {row["variable"]: row for row in rows}
    for name, (stage1, stage2, stage3) in PAPER_TABLE_4_2.items():
        assert by_name[name]["stage1"] == stage1, name
        assert by_name[name]["stage2"] == stage2, name
        assert by_name[name]["stage3"] == stage3, name
