"""Perf-regression guard over the committed benchmark reports.

Re-runs the workloads behind the committed ``BENCH_interp.json``,
``BENCH_race.json``, and ``BENCH_attr.json`` and fails when any of
them regresses by more than 15% against its committed number.  Raw
wall seconds are not portable across machines, so each guard compares
the machine-relative quantity its report pins:

* ``BENCH_race.json`` — the disabled-mode hook ratio (hooked/plain
  load-store wall time).  Guard: current ratio <= committed x 1.15.
* ``BENCH_attr.json`` — the enabled-mode attribution ratio.  Guard:
  current ratio <= committed x 1.15.
* ``BENCH_interp.json`` — compiled-vs-tree speedup.  The committed
  report is full scale (six benchmarks, 32 UEs); the guard re-runs
  the smoke subset and compares against the committed geomean over
  that same subset.  Guard: current speedup >= committed / 1.15,
  cycles identical between engines.
* ``BENCH_parallel.json`` — the process backend's byte-identity flag
  (guarded on every host) and wall-clock speedup (guarded only when
  both the committed report and the current host have >= 4 CPUs —
  a single-CPU runner time-slices the workers and measures ~1x
  regardless of backend quality).
* ``BENCH_serve.json`` — the job service's byte-identity and
  memo-hit flags plus its supervision overhead ratio (pool-1
  service / direct, guarded on every host); pool throughput follows
  the same >= 4 CPU rule as the parallel speedup.

Usage::

    pytest benchmarks/perf_guard.py            # the CI guard job
    PYTHONPATH=src python benchmarks/perf_guard.py
"""

import json
import math
import os
import sys

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
for path in (os.path.join(ROOT, "src"), os.path.dirname(os.path.abspath(__file__))):
    if path not in sys.path:
        sys.path.insert(0, path)

import bench_attr_overhead  # noqa: E402
import bench_interp_speed  # noqa: E402
import bench_parallel_speedup  # noqa: E402
import bench_race_overhead  # noqa: E402
import bench_serve_throughput  # noqa: E402

SLACK = 1.15  # fail on >15% slowdown against the committed number
SMOKE_UES = 8


def _committed(name):
    with open(os.path.join(ROOT, name)) as handle:
        return json.load(handle)


def _host_cpus():
    return os.cpu_count() or 1


def _host_note():
    """Every guard report pins the host parallelism it measured on —
    a number that looks regressed is meaningless without it."""
    return " [host_cpus=%d]" % _host_cpus()


def _geomean(values):
    return math.exp(sum(math.log(v) for v in values) / len(values))


def _committed_smoke_speedup(report):
    """Committed geomean over the smoke subset's workload rows."""
    speedups = [row["speedup"]
                for key, row in report["workloads"].items()
                if key.split("/")[0] in bench_interp_speed.SMOKE_BENCHMARKS]
    return _geomean(speedups)


def guard_race():
    committed = _committed("BENCH_race.json")
    # the race bench times ~2000 accesses (sub-millisecond), so any
    # single measure() can catch a load spike; noise on this clock is
    # strictly additive, so the best of a few full measurements is
    # the faithful estimate
    ratio = min(bench_race_overhead.measure()["ratio"]
                for _ in range(3))
    bound = committed["ratio"] * SLACK
    ok = ratio <= bound
    return ok, ("race disabled-mode ratio %.3f (committed %.3f, "
                "bound %.3f)" % (ratio, committed["ratio"], bound)
                + _host_note())


def guard_attr():
    committed = _committed("BENCH_attr.json")
    current = bench_attr_overhead.measure()
    bound = committed["ratio"] * SLACK
    ok = current["ratio"] <= bound
    return ok, ("attr enabled-mode ratio %.3f (committed %.3f, "
                "bound %.3f)" % (current["ratio"], committed["ratio"],
                                 bound) + _host_note())


def guard_interp():
    committed = _committed_smoke_speedup(_committed("BENCH_interp.json"))
    # a genuine engine regression lowers *every* measurement, while
    # host load only smears individual ones — so the best of two full
    # measures is the guard's estimate
    runs = [bench_interp_speed.measure(
                bench_interp_speed.SMOKE_BENCHMARKS, num_ues=SMOKE_UES)
            for _ in range(2)]
    speedup = max(run["overall_speedup"] for run in runs)
    identical = all(run["cycles_identical"] for run in runs)
    floor = committed / SLACK
    ok = identical and speedup >= floor
    return ok, ("interp smoke speedup %.2fx (committed subset "
                "geomean %.2fx, floor %.2fx, cycles_identical=%s)"
                % (speedup, committed, floor, identical)
                + _host_note())


def guard_parallel():
    """Re-run the parallel smoke subset: byte-identity is guarded on
    every host; the committed speedup floor only where wall-clock
    parallelism is measurable (the committed report records its own
    ``host_cpus`` for the same reason)."""
    committed = _committed("BENCH_parallel.json")
    report = bench_parallel_speedup.measure(
        num_ues=SMOKE_UES, jobs_list=(1, 2, 4),
        workloads=dict(bench_parallel_speedup.SMOKE_WORKLOADS))
    ok = report["byte_identical"] and committed["byte_identical"]
    message = ("parallel byte_identical=%s (committed %s)"
               % (report["byte_identical"],
                  committed["byte_identical"]))
    cpus = _host_cpus()
    minimum = bench_parallel_speedup.MIN_HOST_CPUS
    committed_cpus = committed.get("host_cpus") or 1
    if ok and cpus >= minimum and committed_cpus >= minimum:
        floor = committed["best_speedup"] / SLACK
        best = report["best_speedup"]
        ok = best >= floor
        message += (", smoke speedup %.2fx (committed best %.2fx, "
                    "floor %.2fx)" % (best, committed["best_speedup"],
                                      floor))
    elif ok:
        # the skip must say exactly what was not checked and why: a
        # green guard on a small runner must not read as "speedup OK"
        reasons = []
        if cpus < minimum:
            reasons.append("this host has %d CPU(s) < %d"
                           % (cpus, minimum))
        if committed_cpus < minimum:
            reasons.append("the committed report was measured on "
                           "%s CPU(s) < %d" % (committed_cpus,
                                               minimum))
        message += (", SKIPPED speedup floor %.2fx/%.2f: "
                    % (committed["best_speedup"], SLACK)
                    + " and ".join(reasons)
                    + " (byte-identity was still guarded)")
    return ok, message + _host_note()


def guard_serve():
    """Re-run the job-service batch: byte-identity and the memo are
    guarded on every host; the supervision overhead ratio (pool-1
    service wall / direct wall) is machine-relative, so it is guarded
    everywhere too — with the best of three runs, since fork-cost
    noise on a loaded host is strictly additive.  Pool throughput,
    like the parallel-backend speedup, needs real host parallelism
    and is only guarded where both the committed report and this host
    have >= 4 CPUs."""
    committed = _committed("BENCH_serve.json")
    runs = [bench_serve_throughput.measure() for _ in range(3)]
    identical = all(run["byte_identical"] for run in runs)
    cached = all(run["all_cached"] for run in runs)
    ratio = min(run["overhead_ratio"] for run in runs)
    bound = committed["overhead_ratio"] * SLACK
    ok = identical and cached and ratio <= bound
    message = ("serve byte_identical=%s all_cached=%s overhead "
               "ratio %.3f (committed %.3f, bound %.3f)"
               % (identical, cached, ratio,
                  committed["overhead_ratio"], bound))
    cpus = _host_cpus()
    minimum = bench_serve_throughput.MIN_HOST_CPUS
    committed_cpus = committed.get("host_cpus") or 1
    if ok and cpus >= minimum and committed_cpus >= minimum:
        floor = committed["jobs_per_second"] / SLACK
        best = max(run["jobs_per_second"] for run in runs)
        ok = best >= floor
        message += (", throughput %.2f jobs/s (committed %.2f, "
                    "floor %.2f)" % (best,
                                     committed["jobs_per_second"],
                                     floor))
    elif ok:
        # the skip must say exactly what was not checked and why
        reasons = []
        if cpus < minimum:
            reasons.append("this host has %d CPU(s) < %d"
                           % (cpus, minimum))
        if committed_cpus < minimum:
            reasons.append("the committed report was measured on "
                           "%s CPU(s) < %d" % (committed_cpus,
                                               minimum))
        message += (", SKIPPED throughput floor %.2f/%.2f: "
                    % (committed["jobs_per_second"], SLACK)
                    + " and ".join(reasons)
                    + " (byte-identity and overhead were still "
                    "guarded)")
    return ok, message + _host_note()


# -- pytest entry ---------------------------------------------------------------


def test_race_overhead_has_not_regressed(results_dir):
    from conftest import write_result
    ok, message = guard_race()
    write_result(results_dir, "perf_guard_race.txt", message)
    assert ok, message


def test_attr_overhead_has_not_regressed(results_dir):
    from conftest import write_result
    ok, message = guard_attr()
    write_result(results_dir, "perf_guard_attr.txt", message)
    assert ok, message


def test_interp_speedup_has_not_regressed(results_dir):
    from conftest import write_result
    ok, message = guard_interp()
    write_result(results_dir, "perf_guard_interp.txt", message)
    assert ok, message


def test_parallel_backend_has_not_regressed(results_dir):
    from conftest import write_result
    ok, message = guard_parallel()
    write_result(results_dir, "perf_guard_parallel.txt", message)
    assert ok, message


def test_serve_throughput_has_not_regressed(results_dir):
    from conftest import write_result
    ok, message = guard_serve()
    write_result(results_dir, "perf_guard_serve.txt", message)
    assert ok, message


# -- script entry ----------------------------------------------------------------


def main(argv=None):
    failures = 0
    for guard in (guard_race, guard_attr, guard_interp,
                  guard_parallel, guard_serve):
        ok, message = guard()
        print(("PASS: " if ok else "FAIL: ") + message)
        failures += 0 if ok else 1
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
