"""Sensitivity sweep — Figure 6.2's dependence on MPB capacity.

Sweeps the on-chip shared capacity the Stage 4 partitioner is given
and reruns the Stream benchmark: the on-chip improvement must be flat
(≈1x) until the arrays fit, then jump — locating the fit/no-fit
crossover the LU discussion in the paper hinges on.
"""

from conftest import write_result

from repro.bench.workloads import scaled_config
from repro.bench.programs import benchmark_source
from repro.core.framework import TranslationFramework
from repro.scc.chip import SCCChip
from repro.sim.runner import run_rcce

NUM_UES = 16
N = 512
# stream shared data: 3 arrays x 512 doubles = 12 KB + checksum
CAPACITIES = (0, 2 * 1024, 8 * 1024, 16 * 1024, 64 * 1024)


def run_at_capacity(source, capacity):
    framework = TranslationFramework(on_chip_capacity=capacity)
    translated = framework.translate(source)
    chip = SCCChip(scaled_config())
    result = run_rcce(translated.unit, NUM_UES, chip.config, chip)
    return result.cycles, translated.plan.on_chip_bytes


def sweep():
    source = benchmark_source("stream", nthreads=NUM_UES, n=N)
    baseline_cycles, _ = run_at_capacity(source, 0)
    rows = []
    for capacity in CAPACITIES:
        cycles, on_chip_bytes = run_at_capacity(source, capacity)
        rows.append({
            "capacity": capacity,
            "on_chip_bytes": on_chip_bytes,
            "cycles": cycles,
            "improvement": baseline_cycles / cycles,
        })
    return rows


def test_capacity_sweep(benchmark, results_dir):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)

    lines = ["capacity=%6d  on-chip=%6d B  cycles=%8d  %5.2fx"
             % (row["capacity"], row["on_chip_bytes"], row["cycles"],
                row["improvement"]) for row in rows]
    write_result(results_dir, "sweep_capacity.txt", "\n".join(lines))

    by_capacity = {row["capacity"]: row for row in rows}

    # below the fit point, nothing meaningful lands on-chip
    assert by_capacity[0]["improvement"] == 1.0
    assert by_capacity[2048]["improvement"] < 1.3

    # past the fit point (>= 13 KB needed) the improvement jumps
    assert by_capacity[16 * 1024]["improvement"] > 1.5
    # and more capacity beyond "everything fits" changes nothing
    assert by_capacity[64 * 1024]["cycles"] == \
        by_capacity[16 * 1024]["cycles"]

    # improvement is monotone in capacity on this workload
    improvements = [row["improvement"] for row in rows]
    assert all(b >= a - 0.02 for a, b in zip(improvements,
                                             improvements[1:]))
