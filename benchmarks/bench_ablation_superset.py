"""Measurement — how tight is the static shared superset?

The paper claims a "tight superset of shared data".  For every
benchmark we compare Stage 1-3's static shared set against what a
runtime detector actually observes (the related-work approach the
paper's §2 contrasts with), asserting soundness (no misses) and
reporting the tightness ratio.
"""

from conftest import write_result

from repro.bench.programs import BENCHMARKS, benchmark_source
from repro.core.dynamic import compare_static_dynamic

SIZES = {
    "pi": {"steps": 128},
    "sum35": {"limit": 128},
    "primes": {"limit": 64},
    "stream": {"n": 64},
    "dot": {"n": 64},
    "lu": {"batch": 4, "dim": 5},
}


def compare_all():
    results = {}
    for name in sorted(BENCHMARKS):
        source = benchmark_source(name, nthreads=4, **SIZES[name])
        results[name] = compare_static_dynamic(source)
    return results


def test_superset_tightness(benchmark, results_dir):
    results = benchmark.pedantic(compare_all, rounds=1, iterations=1)

    lines = ["%-8s static=%2d dynamic=%2d missed=%d tightness=%.2f"
             % (name, len(c.static_shared), len(c.dynamic_shared),
                len(c.missed), c.tightness)
             for name, c in results.items()]
    write_result(results_dir, "ablation_superset.txt",
                 "\n".join(lines))

    for name, comparison in results.items():
        # soundness on every benchmark: nothing shared was missed
        assert comparison.is_conservative_superset, name
        # and the superset is tight: better than half of the static
        # set is observably shared at runtime
        assert comparison.tightness >= 0.5, name
