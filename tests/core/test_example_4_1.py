"""Golden tests: the paper's running example end to end.

Table 4.2 must match the thesis exactly.  Table 4.1 matches except
three cells where the thesis numbers are mutually inconsistent (see
EXPERIMENTS.md).  The translated output must carry every structural
feature of Example Code 4.2.
"""

import pytest

from repro.bench.tables import PAPER_TABLE_4_2
from repro.core.reports import table_4_1, table_4_2


class TestTable41(object):
    def test_all_variables_present(self, analyzed_example):
        rows = {row["name"]: row for row in table_4_1(analyzed_example)}
        assert set(rows) == {"global", "ptr", "sum", "tLocal", "tid",
                             "local", "tmp", "threads", "rc"}

    def test_matching_cells(self, analyzed_example):
        """Every cell the thesis table states consistently."""
        rows = {row["name"]: row for row in table_4_1(analyzed_example)}
        assert rows["global"]["rd"] == 0 and rows["global"]["wr"] == 0
        assert rows["ptr"]["rd"] == 1 and rows["ptr"]["wr"] == 1
        assert rows["sum"]["wr"] == 2 and rows["sum"]["size"] == 3
        assert rows["tLocal"]["rd"] == 3 and rows["tLocal"]["wr"] == 1
        assert rows["tid"]["rd"] == 1 and rows["tid"]["wr"] == 0
        assert rows["local"]["rd"] == 8
        assert rows["tmp"]["rd"] == 1 and rows["tmp"]["wr"] == 1
        assert rows["threads"]["rd"] == 2 and rows["threads"]["wr"] == 0
        assert rows["rc"]["rd"] == 0

    def test_use_def_columns(self, analyzed_example):
        rows = {row["name"]: row for row in table_4_1(analyzed_example)}
        assert rows["ptr"]["use_in"] == "tf"
        assert rows["ptr"]["def_in"] == "main"
        assert rows["sum"]["use_in"] == "main, tf"
        assert rows["sum"]["def_in"] == "tf"
        assert rows["global"]["use_in"] == "null"
        assert rows["global"]["def_in"] == "null"
        assert rows["rc"]["use_in"] == "null"

    def test_types_column(self, analyzed_example):
        rows = {row["name"]: row for row in table_4_1(analyzed_example)}
        assert rows["sum"]["type"] == "int *"
        assert rows["threads"]["type"] == "pthread_t *"
        assert rows["tid"]["type"] == "n/a"


class TestTable42(object):
    def test_exact_match_with_paper(self, analyzed_example):
        rows = {row["variable"]: row for row in table_4_2(analyzed_example)}
        for name, (s1, s2, s3) in PAPER_TABLE_4_2.items():
            assert rows[name]["stage1"] == s1, name
            assert rows[name]["stage2"] == s2, name
            assert rows[name]["stage3"] == s3, name


class TestExampleCode42(object):
    """Structural checks against the paper's translated output."""

    @pytest.fixture
    def text(self, framework, example_source):
        return framework.translate(
            example_source, policy="off-chip-only").rcce_source

    def test_includes(self, text):
        assert "#include <stdio.h>" in text
        assert "#include <RCCE.h>" in text
        assert "pthread.h" not in text

    def test_globals(self, text):
        assert "int *ptr;" in text
        assert "int *sum;" in text
        assert "int global;" not in text  # unused, removed

    def test_rcce_app_entry(self, text):
        assert "int RCCE_APP(" in text

    def test_init_and_allocs(self, text):
        assert "RCCE_init(&argc, &argv);" in text
        assert "sum = (int *)RCCE_shmalloc(sizeof(int) * 3);" in text
        assert "ptr = (int *)RCCE_shmalloc(sizeof(int) * 1);" in text

    def test_core_id(self, text):
        assert "int myID;" in text
        assert "myID = RCCE_ue();" in text

    def test_tmp_kept_and_ptr_assigned(self, text):
        assert "int tmp = 1;" in text
        assert "ptr = &tmp;" in text

    def test_direct_thread_call(self, text):
        assert "tf((void *)myID);" in text

    def test_barrier_and_print(self, text):
        assert "RCCE_barrier(&RCCE_COMM_WORLD);" in text
        assert 'printf("Sum Array: %d\\n", sum[myID]);' in text

    def test_finalize_and_return(self, text):
        assert "RCCE_finalize();" in text
        assert "return (0);" in text

    def test_worker_preserved(self, text):
        assert "int tLocal = (int)tid;" in text
        assert "sum[tLocal] += tLocal;" in text
        assert "sum[tLocal] += *ptr;" in text

    def test_dead_locals_removed(self, text):
        assert "int local" not in text
        assert "int rc" not in text
        assert "pthread_t" not in text

    def test_statement_order_matches_paper(self, text):
        """init < allocs < myID < tmp < tf < barrier < printf <
        finalize < return."""
        indices = [text.index(marker) for marker in (
            "RCCE_init(", "RCCE_shmalloc", "myID = RCCE_ue();",
            "int tmp = 1;", "tf((void *)myID);", "RCCE_barrier(",
            "printf(", "RCCE_finalize();", "return (0);")]
        assert indices == sorted(indices)

    def test_onchip_variant_uses_rcce_malloc(self, framework,
                                             example_source):
        text = framework.translate(example_source,
                                   policy="size").rcce_source
        assert "RCCE_malloc(sizeof(int) * 3)" in text
