"""Stage 3 (alias & points-to analysis, Algorithm 2) tests."""

from repro.core.framework import TranslationFramework
from repro.core.varinfo import Sharing


def analyze(source):
    return TranslationFramework().analyze(source)


class TestPointsToRelations:
    def test_address_of_local(self):
        result = analyze("""
        int *p;
        int main(void) { int t = 1; p = &t; return *p; }
        """)
        relations = result.points_to
        targets = relations.get((None, "p"), {})
        assert targets.get(("main", "t")) is True  # definite

    def test_pointer_copy(self):
        result = analyze("""
        int *p; int *q;
        int main(void) { int t = 1; p = &t; q = p; return 0; }
        """)
        targets = result.points_to.get((None, "q"), {})
        assert ("main", "t") in targets

    def test_branch_makes_possible(self):
        result = analyze("""
        int *p;
        int main(void) {
            int a = 1; int b = 2;
            if (a) { p = &a; } else { p = &b; }
            return *p;
        }
        """)
        targets = result.points_to.get((None, "p"), {})
        assert targets.get(("main", "a")) is False  # possibly
        assert targets.get(("main", "b")) is False

    def test_one_sided_branch_possible(self):
        result = analyze("""
        int *p;
        int main(void) {
            int a = 1;
            p = &a;
            if (a) { int b = 2; p = &b; }
            return 0;
        }
        """)
        targets = result.points_to.get((None, "p"), {})
        # after the merge, both are merely possible
        assert targets.get(("main", "b")) is False

    def test_malloc_creates_heap_target(self):
        result = analyze("""
        int *p;
        int main(void) { p = (int *)malloc(8); return 0; }
        """)
        targets = result.points_to.get((None, "p"), {})
        assert any(key[0] == "heap" for key in targets)

    def test_array_decay(self):
        result = analyze("""
        int arr[4]; int *p;
        int main(void) { p = arr; return 0; }
        """)
        targets = result.points_to.get((None, "p"), {})
        assert targets.get((None, "arr")) is True

    def test_interprocedural_argument_binding(self):
        result = analyze("""
        int g;
        void callee(int *ptr) { *ptr = 1; }
        int main(void) { callee(&g); return 0; }
        """)
        targets = result.points_to.get(("callee", "ptr"), {})
        assert targets.get((None, "g")) is True


class TestAlgorithm2:
    def test_definite_target_of_shared_pointer_becomes_shared(self):
        result = analyze("""
        #include <pthread.h>
        int *p;
        void *tf(void *a) { *p = 2; return 0; }
        int main(void) {
            int t = 1;
            p = &t;
            pthread_t th;
            pthread_create(&th, 0, tf, 0);
            return 0;
        }
        """)
        info = result.variables.get_exact("t", "main")
        assert info.sharing is Sharing.TRUE
        assert info.sharing_history[3] is Sharing.TRUE

    def test_possible_target_not_promoted(self):
        result = analyze("""
        int *p;
        int main(void) {
            int a = 1; int b = 2;
            if (a) { p = &a; } else { p = &b; }
            return 0;
        }
        """)
        # relationships are only "possibly": Algorithm 2 skips them
        assert result.variables.get_exact("a", "main").sharing \
            is Sharing.FALSE

    def test_private_pointer_does_not_promote(self):
        result = analyze("""
        int main(void) {
            int t = 1;
            int *lp = &t;
            return *lp;
        }
        """)
        assert result.variables.get_exact("t", "main").sharing \
            is Sharing.FALSE

    def test_transitive_promotion_through_pointer_chain(self):
        result = analyze("""
        int *p; int *q;
        int main(void) { int t = 1; q = &t; p = q; return 0; }
        """)
        assert result.variables.get_exact("t", "main").sharing \
            is Sharing.TRUE


class TestPostProcessing:
    def test_unused_global_demoted(self):
        result = analyze("int unused; int main(void) { return 0; }")
        info = result.variables.get_exact("unused", None)
        assert info.sharing is Sharing.FALSE
        assert info.sharing_history[3] is Sharing.FALSE

    def test_used_global_not_demoted(self):
        result = analyze("int used; int main(void) { return used; }")
        assert result.variables.get_exact("used", None).sharing \
            is Sharing.TRUE
