"""Stage 4 (data partitioning, Algorithm 3) tests, including
property-based invariants."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cfront import ctypes
from repro.core.stage4_partition import (
    MemoryBank,
    partition_shared_variables,
)
from repro.core.varinfo import Sharing, VariableInfo


def var(name, nbytes, weighted=0):
    info = VariableInfo(name, ctypes.ArrayType(ctypes.CHAR, nbytes),
                        "global")
    info.set_sharing(Sharing.TRUE, 1)
    info.weighted_reads = weighted
    return info


class TestAlgorithm3:
    def test_everything_fits(self):
        plan = partition_shared_variables([var("a", 10), var("b", 20)],
                                          capacity=100)
        assert plan.fits_entirely_on_chip
        assert plan.on_chip_bytes == 30

    def test_exact_fit(self):
        plan = partition_shared_variables([var("a", 60), var("b", 40)],
                                          capacity=100)
        assert plan.fits_entirely_on_chip

    def test_overflow_sorts_ascending_by_size(self):
        # capacity 50: a(10) then b(20) fit, c(40) spills
        plan = partition_shared_variables(
            [var("c", 40), var("a", 10), var("b", 20)], capacity=50)
        assert plan.bank_of("a") is MemoryBank.ON_CHIP
        assert plan.bank_of("b") is MemoryBank.ON_CHIP
        assert plan.bank_of("c") is MemoryBank.OFF_CHIP

    def test_greedy_continues_after_spill(self):
        # d(30) doesn't fit after a+b, but e(5) still does
        plan = partition_shared_variables(
            [var("a", 10), var("b", 10), var("d", 30), var("e", 5)],
            capacity=26)
        assert plan.bank_of("e") is MemoryBank.ON_CHIP
        assert plan.bank_of("d") is MemoryBank.OFF_CHIP

    def test_off_chip_only_policy(self):
        plan = partition_shared_variables([var("a", 1)], capacity=1000,
                                          policy="off-chip-only")
        assert plan.bank_of("a") is MemoryBank.OFF_CHIP
        assert plan.on_chip_bytes == 0

    def test_frequency_policy_prefers_hot_data(self):
        cold = var("cold", 10, weighted=1)
        hot = var("hot", 10, weighted=1000)
        plan = partition_shared_variables([cold, hot], capacity=10,
                                          policy="frequency")
        assert plan.bank_of("hot") is MemoryBank.ON_CHIP
        assert plan.bank_of("cold") is MemoryBank.OFF_CHIP

    def test_size_policy_ignores_frequency(self):
        small_cold = var("small", 5, weighted=1)
        big_hot = var("big", 50, weighted=10_000)
        plan = partition_shared_variables([small_cold, big_hot],
                                          capacity=20)
        assert plan.bank_of("small") is MemoryBank.ON_CHIP
        assert plan.bank_of("big") is MemoryBank.OFF_CHIP

    def test_unknown_policy_raises(self):
        with pytest.raises(ValueError):
            partition_shared_variables([var("a", 1)], 10,
                                       policy="bogus")

    def test_empty_input(self):
        plan = partition_shared_variables([], capacity=100)
        assert plan.total_shared_bytes == 0
        assert plan.fits_entirely_on_chip

    def test_offsets_assigned_contiguously(self):
        plan = partition_shared_variables([var("a", 8), var("b", 8)],
                                          capacity=100)
        offsets = sorted(p.offset for p in plan.on_chip())
        assert offsets == [0, 8]

    def test_bank_of_unknown_is_none(self):
        plan = partition_shared_variables([], capacity=10)
        assert plan.bank_of("ghost") is None


# -- property-based invariants ----------------------------------------------

_sizes = st.lists(st.integers(min_value=1, max_value=500),
                  min_size=0, max_size=30)
_capacity = st.integers(min_value=0, max_value=2000)
_policy = st.sampled_from(["size", "frequency", "off-chip-only"])


class TestPartitionProperties:
    @settings(max_examples=150, deadline=None)
    @given(_sizes, _capacity, _policy)
    def test_invariants(self, sizes, capacity, policy):
        variables = [var("v%d" % i, size, weighted=i * 7)
                     for i, size in enumerate(sizes)]
        plan = partition_shared_variables(variables, capacity, policy)

        # every variable is placed exactly once
        assert len(plan.placements) == len(variables)

        # on-chip usage never exceeds capacity (unless everything fit,
        # in which case Algorithm 3 skips the capacity check by design)
        if not plan.fits_entirely_on_chip:
            assert plan.on_chip_bytes <= capacity

        # accounting adds up
        assert plan.on_chip_bytes + plan.off_chip_bytes == \
            sum(v.mem_size for v in variables)

        # on-chip offsets are disjoint and within the used range
        placements = sorted(plan.on_chip(), key=lambda p: p.offset)
        cursor = 0
        for placement in placements:
            assert placement.offset >= cursor
            cursor = placement.offset + placement.info.mem_size
        assert cursor == plan.on_chip_bytes

    @settings(max_examples=100, deadline=None)
    @given(_sizes, _capacity)
    def test_size_policy_is_greedy_optimal_count(self, sizes, capacity):
        """Ascending-size greedy maximizes the NUMBER of on-chip
        variables; verify no off-chip variable could still fit."""
        variables = [var("v%d" % i, size)
                     for i, size in enumerate(sizes)]
        plan = partition_shared_variables(variables, capacity, "size")
        if plan.fits_entirely_on_chip:
            return
        remaining = capacity - plan.on_chip_bytes
        smallest_off = min((p.info.mem_size for p in plan.off_chip()),
                           default=None)
        if smallest_off is not None:
            assert smallest_off > remaining
