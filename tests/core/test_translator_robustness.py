"""Translator robustness on unusual-but-legal program shapes."""

import pytest

from repro.core.framework import TranslationFramework
from repro.sim.runner import run_pthread_single_core, run_rcce


def translate_and_run(source, ues=2, **kwargs):
    baseline = run_pthread_single_core(source)
    translated = TranslationFramework(**kwargs).translate(source)
    result = run_rcce(translated.unit, ues)
    return baseline, translated, result


class TestUnusualShapes:
    def test_launch_through_function_pointer_variable(self):
        source = """
        #include <stdio.h>
        #include <pthread.h>
        int x;
        void *tf(void *a) { x = 9; return 0; }
        int main(void) {
            void *(*fp)(void *) = tf;
            pthread_t t;
            pthread_create(&t, 0, fp, 0);
            pthread_join(t, 0);
            printf("%d\\n", x);
            return 0;
        }
        """
        baseline, translated, result = translate_and_run(source)
        assert baseline.stdout() == "9\n"
        # the pointer call survives and runs on the designated core
        assert "fp(0);" in translated.rcce_source
        assert "9" in result.stdout()

    def test_nested_compound_blocks(self):
        source = """
        #include <stdio.h>
        #include <pthread.h>
        int out[2];
        void *tf(void *t) { out[(int)t] = 1 + (int)t; return 0; }
        int main(void) {
            {
                pthread_t th[2];
                {
                    for (int i = 0; i < 2; i++)
                        pthread_create(&th[i], 0, tf, (void *)i);
                }
                for (int i = 0; i < 2; i++)
                    pthread_join(th[i], 0);
            }
            printf("%d\\n", out[0] + out[1]);
            return 0;
        }
        """
        baseline, _, result = translate_and_run(source)
        assert baseline.stdout() == "3\n"
        assert all(line == "3"
                   for line in result.stdout().strip().splitlines())

    def test_create_without_assignment_wrapper(self):
        source = """
        #include <pthread.h>
        int v;
        void *tf(void *t) { v = 5; return 0; }
        int main(void) {
            pthread_t t;
            pthread_create(&t, 0, tf, 0);
            pthread_join(t, 0);
            return v;
        }
        """
        _, translated, _ = translate_and_run(source)
        assert "pthread_create" not in translated.rcce_source

    def test_multiple_join_loops(self):
        source = """
        #include <stdio.h>
        #include <pthread.h>
        int a[2];
        int b[2];
        void *ta(void *t) { a[(int)t] = 1; return 0; }
        void *tb(void *t) { b[(int)t] = 2; return 0; }
        int main(void) {
            pthread_t tha[2];
            pthread_t thb[2];
            for (int i = 0; i < 2; i++)
                pthread_create(&tha[i], 0, ta, (void *)i);
            for (int i = 0; i < 2; i++)
                pthread_join(tha[i], 0);
            for (int i = 0; i < 2; i++)
                pthread_create(&thb[i], 0, tb, (void *)i);
            for (int i = 0; i < 2; i++)
                pthread_join(thb[i], 0);
            printf("%d\\n", a[0] + a[1] + b[0] + b[1]);
            return 0;
        }
        """
        baseline, translated, result = translate_and_run(source)
        assert baseline.stdout() == "6\n"
        assert translated.rcce_source.count("RCCE_barrier") >= 2
        assert all(line == "6"
                   for line in result.stdout().strip().splitlines())

    def test_empty_thread_function(self):
        source = """
        #include <pthread.h>
        void *noop(void *t) { return 0; }
        int main(void) {
            pthread_t t;
            pthread_create(&t, 0, noop, 0);
            pthread_join(t, 0);
            return 0;
        }
        """
        _, translated, result = translate_and_run(source)
        assert result.cycles > 0

    def test_thread_arg_expression_kept_when_not_thread_id(self):
        source = """
        #include <stdio.h>
        #include <pthread.h>
        int got;
        void *tf(void *v) { got = (int)v; return 0; }
        int main(void) {
            pthread_t t;
            pthread_create(&t, 0, tf, (void *)123);
            pthread_join(t, 0);
            printf("%d\\n", got);
            return 0;
        }
        """
        baseline, translated, result = translate_and_run(source)
        assert baseline.stdout() == "123\n"
        assert "tf((void *)123);" in translated.rcce_source
        assert "123" in result.stdout()
