"""Graceful-degradation tests: the pipeline's Diagnostic records,
lenient vs strict Driver behaviour, and the stage-5 warnings."""

import pytest

from repro.diagnostics import Diagnostic, PipelineReport
from repro.core.framework import TranslationFramework
from repro.ir.passes import AnalysisPass, Driver, PassError, ProgramContext


class TestDiagnostic:
    def test_format_with_location(self):
        diag = Diagnostic("stage1", "error", "boom", "x.c", 3, 7)
        assert diag.format() == "error[stage1]: boom (x.c, line 3, col 7)"

    def test_format_without_location(self):
        diag = Diagnostic("stage1", "warning", "meh")
        assert diag.format() == "warning[stage1]: meh"

    def test_from_exception_extracts_coords(self):
        from repro.cfront.errors import ParseError
        exc = ParseError("bad token", 4, 2, "y.c")
        diag = Diagnostic.from_exception("frontend", exc)
        assert diag.is_error
        assert diag.line == 4
        assert diag.filename == "y.c"

    def test_as_dict_round_trip(self):
        diag = Diagnostic("s", "info", "m", "f.c", 1, 2)
        data = diag.as_dict()
        assert data["stage"] == "s"
        assert data["line"] == 1


class TestPipelineReport:
    def test_counts_and_errors(self):
        report = PipelineReport([
            Diagnostic("a", "error", "e1"),
            Diagnostic("a", "warning", "w1"),
            Diagnostic("b", "warning", "w2"),
        ])
        assert report.has_errors
        assert not report.ok
        counts = report.counts()
        assert counts["error"] == 1
        assert counts["warning"] == 2
        assert set(report.by_stage()) == {"a", "b"}

    def test_empty_report_is_ok(self):
        report = PipelineReport([])
        assert report.ok
        assert len(report) == 0

    def test_render_mentions_every_finding(self):
        report = PipelineReport([Diagnostic("a", "error", "e1"),
                                 Diagnostic("b", "warning", "w2")])
        rendered = report.render()
        assert "e1" in rendered and "w2" in rendered


class _Boom(AnalysisPass):
    name = "boom"

    def run(self, context):
        raise PassError("synthetic failure")


class _Record(AnalysisPass):
    name = "record"

    def run(self, context):
        context.provide("reached", True)


class TestDriverStrictness:
    def test_strict_driver_raises(self):
        from repro.cfront.frontend import parse_program
        unit = parse_program("int main() { return 0; }")
        with pytest.raises(PassError):
            Driver([_Boom(), _Record()], strict=True).run(unit)

    def test_lenient_driver_collects_and_continues(self):
        from repro.cfront.frontend import parse_program
        unit = parse_program("int main() { return 0; }")
        context = Driver([_Boom(), _Record()], strict=False).run(unit)
        assert context.facts.get("reached") is True
        assert len(context.diagnostics) == 1
        diag = context.diagnostics[0]
        assert diag.stage == "boom"
        assert diag.is_error
        assert "synthetic failure" in diag.message

    def test_context_diagnose_helper(self):
        from repro.cfront.frontend import parse_program
        unit = parse_program("int main() { return 0; }")
        context = ProgramContext(unit)
        context.diagnose("stageX", "warning", "careful")
        assert context.diagnostics[0].severity == "warning"


MANY_MUTEXES = """
#include <pthread.h>
pthread_mutex_t m0, m1, m2, m3, m4;
int shared_value;
void *worker(void *arg) {
    pthread_mutex_lock(&m0);
    shared_value++;
    pthread_mutex_unlock(&m0);
    pthread_mutex_lock(&m1);
    pthread_mutex_unlock(&m1);
    pthread_mutex_lock(&m2);
    pthread_mutex_unlock(&m2);
    pthread_mutex_lock(&m3);
    pthread_mutex_unlock(&m3);
    pthread_mutex_lock(&m4);
    pthread_mutex_unlock(&m4);
    return 0;
}
int main() {
    pthread_t threads[2];
    int i;
    for (i = 0; i < 2; i++)
        pthread_create(&threads[i], 0, worker, (void *)i);
    for (i = 0; i < 2; i++)
        pthread_join(threads[i], 0);
    return 0;
}
"""


class TestStage5Warnings:
    def test_register_aliasing_warns(self):
        # a 4-register chip cannot give 5 mutexes distinct registers
        framework = TranslationFramework(num_cores=4)
        result = framework.translate(MANY_MUTEXES)
        warnings = [d for d in result.diagnostics
                    if d.severity == "warning"]
        assert any("test-and-set registers" in d.message
                   for d in warnings)
        assert result.ok  # warnings alone leave the run ok

    def test_enough_registers_no_warning(self):
        framework = TranslationFramework(num_cores=48)
        result = framework.translate(MANY_MUTEXES)
        assert not result.diagnostics

    def test_framework_report_property(self):
        framework = TranslationFramework(num_cores=4)
        result = framework.translate(MANY_MUTEXES)
        report = result.report
        assert isinstance(report, PipelineReport)
        assert report.counts().get("warning", 0) >= 1


class TestFrameworkLenient:
    def test_lenient_framework_reports_instead_of_raising(self):
        # scope analysis chokes on a program with no main; lenient
        # mode must turn that into a diagnostic, not a traceback
        framework = TranslationFramework(strict=False)
        result = framework.translate(
            "int helper(int x) { return x + 1; }")
        assert not result.ok
        assert any(d.is_error for d in result.diagnostics)

    def test_strict_framework_raises(self):
        framework = TranslationFramework(strict=True)
        with pytest.raises(Exception):
            framework.translate("int helper(int x) { return x + 1; }")
