"""§7.1 extension: pthread calls wrapped in macros.

The thesis notes its CETUS-based parser cannot see Pthread code hidden
behind macros ("Pthread code wrapped within macros is inaccessible to
the parser and cannot be sufficiently translated").  Our frontend runs
a real preprocessor first, so macro-wrapped abstractions like
``CreateThread``/``Barrier`` expand before analysis and translate like
plain calls — the expansion §7.1 proposes as future work.
"""

from repro.core.framework import TranslationFramework
from repro.sim.runner import run_pthread_single_core, run_rcce

MACRO_PROGRAM = """
#include <stdio.h>
#include <pthread.h>

#define NTHREADS 4
#define CreateThread(handle, func, arg) \\
    pthread_create(&handle, NULL, func, (void *)arg)
#define JoinThread(handle) pthread_join(handle, NULL)

int results[NTHREADS];

void *worker(void *tid) {
    int id = (int)tid;
    results[id] = id * 3;
    pthread_exit(NULL);
}

int main(void) {
    pthread_t th[NTHREADS];
    int total = 0;
    for (int i = 0; i < NTHREADS; i++) {
        CreateThread(th[i], worker, i);
    }
    for (int i = 0; i < NTHREADS; i++) {
        JoinThread(th[i]);
    }
    for (int i = 0; i < NTHREADS; i++) {
        total += results[i];
    }
    printf("total=%d\\n", total);
    return 0;
}
"""


class TestMacroWrappedPthreads:
    def test_launches_found_through_macros(self):
        result = TranslationFramework().analyze(MACRO_PROGRAM)
        assert result.thread_functions == {"worker"}
        assert result.thread_launches[0].in_loop

    def test_shared_data_found(self):
        result = TranslationFramework().analyze(MACRO_PROGRAM)
        shared = {v.name for v in result.variables.shared()}
        assert "results" in shared

    def test_translates_cleanly(self):
        translated = TranslationFramework().translate(MACRO_PROGRAM)
        text = translated.rcce_source
        assert "pthread" not in text
        assert "worker((void *)myID);" in text

    def test_translated_program_correct(self):
        baseline = run_pthread_single_core(MACRO_PROGRAM)
        assert baseline.stdout() == "total=18\n"
        translated = TranslationFramework(
            partition_policy="off-chip-only").translate(MACRO_PROGRAM)
        result = run_rcce(translated.unit, 4)
        assert all(line == "total=18"
                   for line in result.stdout().strip().splitlines())
