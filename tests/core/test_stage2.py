"""Stage 2 (inter-thread analysis, Algorithm 1) tests."""

from repro.core.framework import TranslationFramework
from repro.core.varinfo import Sharing, ThreadPresence


def analyze(source):
    return TranslationFramework().analyze(source)


LOOP_LAUNCH = """
#include <pthread.h>
int shared_data;
void *tf(void *tid) { shared_data = 1; return 0; }
int main(void) {
    pthread_t th[4];
    for (int i = 0; i < 4; i++)
        pthread_create(&th[i], 0, tf, (void *)i);
    return 0;
}
"""

SINGLE_LAUNCH = """
#include <pthread.h>
int a;
void *one(void *arg) { a = 1; return 0; }
int main(void) {
    pthread_t t;
    pthread_create(&t, 0, one, 0);
    return 0;
}
"""

TWO_LAUNCHES_SAME_FUNC = """
#include <pthread.h>
int a;
void *tf(void *arg) { a = 1; return 0; }
int main(void) {
    pthread_t t1, t2;
    pthread_create(&t1, 0, tf, 0);
    pthread_create(&t2, 0, tf, 0);
    return 0;
}
"""


class TestLaunchDiscovery:
    def test_loop_launch_found(self):
        result = analyze(LOOP_LAUNCH)
        launches = result.thread_launches
        assert len(launches) == 1
        assert launches[0].function_name == "tf"
        assert launches[0].in_loop
        assert launches[0].caller == "main"

    def test_thread_functions_set(self):
        result = analyze(LOOP_LAUNCH)
        assert result.thread_functions == {"tf"}

    def test_launch_via_address_of(self):
        result = analyze(SINGLE_LAUNCH.replace("one, 0", "&one, 0"))
        assert result.thread_functions == {"one"}

    def test_no_pthreads_no_launches(self):
        result = analyze("int main(void) { return 0; }")
        assert result.thread_launches == []


class TestAlgorithm1:
    def test_variable_in_multiple_threads_loop(self):
        result = analyze(LOOP_LAUNCH)
        info = result.variables.get_exact("shared_data", None)
        assert info.thread_presence is ThreadPresence.MULTIPLE_THREADS

    def test_variable_in_single_thread(self):
        result = analyze(SINGLE_LAUNCH)
        info = result.variables.get_exact("a", None)
        assert info.thread_presence is ThreadPresence.SINGLE_THREAD

    def test_repeated_launch_counts_as_multiple(self):
        result = analyze(TWO_LAUNCHES_SAME_FUNC)
        info = result.variables.get_exact("a", None)
        assert info.thread_presence is ThreadPresence.MULTIPLE_THREADS

    def test_variable_not_in_thread(self):
        result = analyze(LOOP_LAUNCH)
        info = result.variables.get_exact("th", "main")
        assert info.thread_presence is ThreadPresence.NOT_IN_THREAD

    def test_thread_local_is_in_thread(self):
        source = LOOP_LAUNCH.replace(
            "{ shared_data = 1; return 0; }",
            "{ int mine = 2; shared_data = mine; return 0; }")
        result = analyze(source)
        info = result.variables.get_exact("mine", "tf")
        assert info.thread_presence is ThreadPresence.MULTIPLE_THREADS


class TestSharingRefinement:
    def test_locals_become_private(self):
        result = analyze(LOOP_LAUNCH)
        info = result.variables.get_exact("i", "main")
        assert info.sharing_history[2] is Sharing.FALSE

    def test_thread_function_locals_private(self):
        source = LOOP_LAUNCH.replace(
            "{ shared_data = 1; return 0; }",
            "{ int mine = 2; shared_data = mine; return 0; }")
        result = analyze(source)
        info = result.variables.get_exact("mine", "tf")
        assert info.sharing is Sharing.FALSE

    def test_globals_stay_shared(self):
        result = analyze(LOOP_LAUNCH)
        info = result.variables.get_exact("shared_data", None)
        assert info.sharing_history[2] is Sharing.TRUE

    def test_params_private(self):
        result = analyze(LOOP_LAUNCH)
        info = result.variables.get_exact("tid", "tf")
        assert info.sharing is Sharing.FALSE

    def test_no_null_left_after_stage2(self):
        result = analyze(LOOP_LAUNCH)
        assert all(v.sharing is not Sharing.NULL
                   for v in result.variables)
