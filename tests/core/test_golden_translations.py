"""Golden-file regression tests for the translator.

Each benchmark's translated RCCE source is pinned under
``tests/golden/``; any change to the translator's output shows up as a
diff here.  To intentionally update the goldens run::

    GOLDEN_UPDATE=1 pytest tests/core/test_golden_translations.py
"""

import os

import pytest

from repro.bench.programs import BENCHMARKS, EXAMPLE_4_1
from repro.core.framework import TranslationFramework

GOLDEN_DIR = os.path.join(os.path.dirname(__file__), "..", "golden")

SIZES = {
    "pi": {"steps": 256},
    "sum35": {"limit": 256},
    "primes": {"limit": 128},
    "stream": {"n": 64},
    "dot": {"n": 64},
    "lu": {"batch": 4, "dim": 6},
}


def translate(name):
    framework = TranslationFramework(partition_policy="off-chip-only")
    if name == "example_4_1":
        source = EXAMPLE_4_1
    else:
        source = BENCHMARKS[name](nthreads=8, **SIZES[name])
    return framework.translate(source).rcce_source


def golden_path(name):
    return os.path.join(GOLDEN_DIR, "%s.rcce.c" % name)


def check_or_update(name):
    actual = translate(name)
    path = golden_path(name)
    if os.environ.get("GOLDEN_UPDATE"):
        with open(path, "w") as handle:
            handle.write(actual)
        return
    with open(path) as handle:
        expected = handle.read()
    assert actual == expected, (
        "translator output changed for %s; run with GOLDEN_UPDATE=1 "
        "to accept" % name)


@pytest.mark.parametrize("name",
                         sorted(BENCHMARKS) + ["example_4_1"])
def test_golden(name):
    check_or_update(name)


def test_translation_is_deterministic():
    assert translate("pi") == translate("pi")
