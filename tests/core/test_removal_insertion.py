"""Appendix A/B pass tests (Algorithms 5-10) run in isolation."""

from repro.cfront import c_ast
from repro.cfront.parser import parse
from repro.cfront.visitor import find_calls
from repro.ir.passes import Driver, ProgramContext
from repro.core.insertion import (
    AddRCCEFinalizeCall,
    AddRCCEInitCall,
    RewriteIncludes,
)
from repro.core.removal import (
    RemovePthreadAPICalls,
    RemovePthreadDataTypes,
    RemovePthreadJoinCalls,
    RemovePthreadSelfCalls,
    RemoveUnusedPrivates,
)


def run_pass(pass_, source):
    context = ProgramContext(parse(source))
    Driver([pass_]).run(context)
    return context.unit


class TestAlgorithm5Join:
    def test_standalone_join_removed(self):
        unit = run_pass(RemovePthreadJoinCalls(), """
        int main(void) { pthread_t t; pthread_join(t, 0); return 0; }
        """)
        assert find_calls(unit, "pthread_join") == []

    def test_other_statements_preserved(self):
        unit = run_pass(RemovePthreadJoinCalls(), """
        int g;
        int main(void) { pthread_join(0, 0); g = 1; return 0; }
        """)
        assert len(find_calls(unit, "pthread_join")) == 0
        assigns = [n for n in c_ast.walk(unit)
                   if isinstance(n, c_ast.Assignment)]
        assert len(assigns) == 1


class TestAlgorithm6Self:
    def test_self_replaced_with_rcce_ue(self):
        unit = run_pass(RemovePthreadSelfCalls(), """
        int main(void) { int id = (int)pthread_self(); return id; }
        """)
        assert find_calls(unit, "pthread_self") == []
        assert len(find_calls(unit, "RCCE_ue")) == 1


class TestAlgorithm7DataTypes:
    def test_local_pthread_decl_removed(self):
        unit = run_pass(RemovePthreadDataTypes(), """
        int main(void) { pthread_t t; int keep; return 0; }
        """)
        decls = [d for n in c_ast.walk(unit)
                 if isinstance(n, c_ast.DeclStmt) for d in n.decls]
        assert [d.name for d in decls] == ["keep"]

    def test_global_pthread_decl_removed(self):
        unit = run_pass(RemovePthreadDataTypes(), """
        pthread_mutex_t lock;
        int keep;
        int main(void) { return 0; }
        """)
        assert [d.name for d in unit.global_decls()] == ["keep"]

    def test_array_of_pthread_type_removed(self):
        unit = run_pass(RemovePthreadDataTypes(), """
        int main(void) { pthread_t threads[8]; return 0; }
        """)
        decls = [d for n in c_ast.walk(unit)
                 if isinstance(n, c_ast.DeclStmt) for d in n.decls]
        assert decls == []

    def test_mixed_declstmt_partially_kept(self):
        unit = run_pass(RemovePthreadDataTypes(), """
        int main(void) { pthread_cond_t c; return 0; }
        """)
        assert all(not isinstance(n, c_ast.DeclStmt) or n.decls
                   for n in c_ast.walk(unit))


class TestAlgorithm8APICalls:
    def test_exit_and_attr_calls_removed(self):
        unit = run_pass(RemovePthreadAPICalls(), """
        void *tf(void *a) { pthread_exit(0); return 0; }
        int main(void) { pthread_attr_init(0); return 0; }
        """)
        assert find_calls(unit, "pthread_exit") == []
        assert find_calls(unit, "pthread_attr_init") == []

    def test_non_pthread_calls_kept(self):
        unit = run_pass(RemovePthreadAPICalls(), """
        int main(void) { printf("hi"); pthread_exit(0); return 0; }
        """)
        assert len(find_calls(unit, "printf")) == 1


class TestAlgorithm9Init:
    def test_init_is_first_statement(self):
        unit = run_pass(AddRCCEInitCall(), "int main(void) { return 0; }")
        first = unit.find_function("main").body.items[0]
        assert first.expr.callee_name == "RCCE_init"

    def test_init_arguments(self):
        unit = run_pass(AddRCCEInitCall(), "int main(void) { return 0; }")
        call = unit.find_function("main").body.items[0].expr
        assert all(isinstance(arg, c_ast.UnaryOp) and arg.op == "&"
                   for arg in call.args)

    def test_idempotent(self):
        context = ProgramContext(parse("int main(void) { return 0; }"))
        Driver([AddRCCEInitCall(), AddRCCEInitCall()]).run(context)
        calls = find_calls(context.unit, "RCCE_init")
        assert len(calls) == 1


class TestAlgorithm10Finalize:
    def test_finalize_before_return(self):
        unit = run_pass(AddRCCEFinalizeCall(),
                        "int main(void) { int x = 1; return x; }")
        items = unit.find_function("main").body.items
        assert items[-2].expr.callee_name == "RCCE_finalize"
        assert isinstance(items[-1], c_ast.Return)

    def test_finalize_appended_without_return(self):
        unit = run_pass(AddRCCEFinalizeCall(),
                        "void main(void) { int x = 1; }")
        items = unit.find_function("main").body.items
        assert items[-1].expr.callee_name == "RCCE_finalize"

    def test_idempotent(self):
        context = ProgramContext(parse("int main(void) { return 0; }"))
        Driver([AddRCCEFinalizeCall(), AddRCCEFinalizeCall()]).run(context)
        assert len(find_calls(context.unit, "RCCE_finalize")) == 1


class TestRewriteIncludes:
    def test_pthread_swapped_for_rcce(self):
        context = ProgramContext(parse("int x;"))
        context.unit.includes = ["stdio.h", "pthread.h"]
        Driver([RewriteIncludes()]).run(context)
        assert context.unit.includes == ["stdio.h", "RCCE.h"]

    def test_rcce_added_even_without_pthread(self):
        context = ProgramContext(parse("int x;"))
        context.unit.includes = ["stdio.h"]
        Driver([RewriteIncludes()]).run(context)
        assert "RCCE.h" in context.unit.includes


class TestRemoveUnusedPrivates:
    def test_dead_local_removed(self):
        unit = run_pass(RemoveUnusedPrivates(),
                        "int main(void) { int dead = 1; return 0; }")
        assert "dead" not in str(
            [n for n in c_ast.walk(unit) if isinstance(n, c_ast.Decl)])

    def test_used_local_kept(self):
        unit = run_pass(RemoveUnusedPrivates(),
                        "int main(void) { int live = 1; return live; }")
        decls = [d for n in c_ast.walk(unit)
                 if isinstance(n, c_ast.DeclStmt) for d in n.decls]
        assert [d.name for d in decls] == ["live"]

    def test_side_effect_initializer_kept(self):
        unit = run_pass(RemoveUnusedPrivates(), """
        int f(void) { return 1; }
        int main(void) { int dead = f(); return 0; }
        """)
        decls = [d for n in c_ast.walk(unit)
                 if isinstance(n, c_ast.DeclStmt) for d in n.decls]
        assert [d.name for d in decls] == ["dead"]

    def test_cascading_removal(self):
        # b is only used by dead a: both must go
        unit = run_pass(RemoveUnusedPrivates(), """
        int main(void) { int b = 1; int a = b; return 0; }
        """)
        decls = [d for n in c_ast.walk(unit)
                 if isinstance(n, c_ast.DeclStmt) for d in n.decls]
        assert decls == []

    def test_unused_global_removed(self):
        unit = run_pass(RemoveUnusedPrivates(),
                        "int dead; int main(void) { return 0; }")
        assert unit.global_decls() == []

    def test_parameters_never_removed(self):
        unit = run_pass(RemoveUnusedPrivates(),
                        "int f(int unused) { return 0; } "
                        "int main(void) { return f(1); }")
        assert len(unit.find_function("f").params) == 1
