"""Unit tests for the access classifier (repro.core.accesses)."""

from repro.cfront.parser import parse
from repro.core.accesses import Access, base_variable, classify_expr
from repro.cfront import c_ast


def expr_of(text):
    unit = parse("void f(void) { %s; }" % text)
    return unit.functions()[0].body.items[0].expr


def classify(text, weight=1):
    accesses = classify_expr(expr_of(text), "f", weight)
    return [(a.name, a.kind, a.weight) for a in accesses]


class TestBaseVariable:
    def test_plain_id(self):
        assert base_variable(expr_of("x")) == "x"

    def test_array_ref(self):
        assert base_variable(expr_of("a[i]")) == "a"

    def test_nested_array_ref(self):
        assert base_variable(expr_of("m[i][j]")) == "m"

    def test_member_ref(self):
        assert base_variable(expr_of("s.field")) == "s"

    def test_deref_is_none(self):
        assert base_variable(expr_of("*p")) is None


class TestClassification:
    def test_read(self):
        assert classify("x") == [("x", Access.READ, 1)]

    def test_plain_assign(self):
        result = classify("x = y")
        assert ("x", Access.WRITE, 1) in result
        assert ("y", Access.READ, 1) in result
        assert ("x", Access.READ, 1) not in result

    def test_compound_assign(self):
        result = classify("x += y")
        assert ("x", Access.READ, 1) in result
        assert ("x", Access.WRITE, 1) in result

    def test_array_assign_index_read(self):
        result = classify("a[i] = 0")
        assert ("a", Access.WRITE, 1) in result
        assert ("i", Access.READ, 1) in result

    def test_deref_write_reads_pointer(self):
        result = classify("*p = 1")
        assert ("p", Access.READ, 1) in result
        # the pointee is statically unknown: no write recorded
        assert all(kind != Access.WRITE for _, kind, _ in result)

    def test_increment(self):
        result = classify("n++")
        assert ("n", Access.READ, 1) in result
        assert ("n", Access.WRITE, 1) in result

    def test_weight_propagates(self):
        assert classify("x", weight=7) == [("x", Access.READ, 7)]

    def test_call_arguments_read(self):
        result = classify("g(x, y + z)")
        names = {name for name, _, _ in result}
        assert names == {"x", "y", "z"}

    def test_callee_name_not_an_access(self):
        result = classify("g(1)")
        assert result == []

    def test_ternary_all_arms(self):
        result = classify("c ? t : e")
        assert {name for name, _, _ in result} == {"c", "t", "e"}

    def test_sizeof_unevaluated(self):
        assert classify("sizeof x") == []

    def test_address_of_reads(self):
        assert classify("&x") == [("x", Access.READ, 1)]

    def test_comma_both_sides(self):
        result = classify("a = 1, b = 2")
        writes = {n for n, k, _ in result if k == Access.WRITE}
        assert writes == {"a", "b"}

    def test_chained_assignment(self):
        result = classify("a = b = 1")
        writes = {n for n, k, _ in result if k == Access.WRITE}
        assert writes == {"a", "b"}
