"""§7.2 extension tests: many-to-one thread-to-core folding."""

import pytest

from repro.bench.programs import benchmark_source
from repro.core.framework import TranslationFramework
from repro.sim.runner import run_pthread_single_core, run_rcce


def folded(source, **kwargs):
    framework = TranslationFramework(fold_threads=True, **kwargs)
    return framework.translate(source)


class TestFoldedTranslation:
    def test_fold_loop_emitted(self):
        source = benchmark_source("pi", nthreads=16, steps=256)
        result = folded(source)
        text = result.rcce_source
        assert "for (tIdx = myID; tIdx < 16; tIdx += RCCE_num_ues())" \
            in text
        assert "pi_worker((void *)tIdx);" in text

    def test_unfolded_translation_unchanged(self):
        source = benchmark_source("pi", nthreads=16, steps=256)
        result = TranslationFramework().translate(source)
        assert "tIdx" not in result.rcce_source
        assert "pi_worker((void *)myID);" in result.rcce_source

    def test_fold_without_constant_trip_falls_back(self):
        source = """
        #include <pthread.h>
        int d[4];
        void *tf(void *t) { d[(int)t] = 1; return 0; }
        int main(void) {
            int n = 4;
            pthread_t th[4];
            for (int i = 0; i < n; i++)
                pthread_create(&th[i], 0, tf, (void *)i);
            for (int i = 0; i < n; i++)
                pthread_join(th[i], 0);
            return 0;
        }
        """
        result = folded(source)
        assert "tIdx" not in result.rcce_source
        assert "tf((void *)myID);" in result.rcce_source


class TestFoldedExecution:
    """16 threads on 4 cores must compute the same answers as the
    16-thread Pthreads original."""

    @pytest.mark.parametrize("name,sizes,cores", [
        ("pi", {"steps": 512}, 4),
        ("sum35", {"limit": 512}, 4),
        ("dot", {"n": 64}, 4),
        ("stream", {"n": 64}, 2),
    ])
    def test_more_threads_than_cores(self, name, sizes, cores):
        source = benchmark_source(name, nthreads=16, **sizes)
        baseline = run_pthread_single_core(source)
        translated = folded(source, partition_policy="off-chip-only")
        result = run_rcce(translated.unit, cores)
        lines = result.stdout().strip().splitlines()
        assert len(lines) == cores
        assert all(line + "\n" == baseline.stdout() for line in lines)

    def test_single_core_fold_runs_all_threads(self):
        source = benchmark_source("sum35", nthreads=8, limit=256)
        baseline = run_pthread_single_core(source)
        translated = folded(source, partition_policy="off-chip-only")
        result = run_rcce(translated.unit, 1)
        assert result.stdout() == baseline.stdout()

    def test_fold_still_parallel(self):
        """4 cores folding 16 threads beat 1 core folding them."""
        source = benchmark_source("pi", nthreads=16, steps=2048)
        translated = folded(source, partition_policy="off-chip-only")
        one = run_rcce(translated.unit, 1)
        four = run_rcce(translated.unit, 4)
        assert one.cycles / four.cycles > 2.5
