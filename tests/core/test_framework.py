"""Framework facade and report formatting tests."""

import pytest

from repro.core.framework import TranslationFramework
from repro.core.reports import format_table, table_4_1, table_4_2
from repro.core.stage4_partition import MemoryBank


class TestFacade:
    def test_analyze_runs_three_stages(self, framework, example_source):
        result = framework.analyze(example_source)
        assert result.pass_log == [
            "stage1-variable-scope-analysis",
            "stage2-inter-thread-analysis",
            "stage3-alias-pointer-analysis",
        ]
        assert result.plan is None

    def test_partition_runs_four_stages(self, framework, example_source):
        result = framework.partition(example_source)
        assert result.plan is not None
        assert result.pass_log[-1] == "stage4-data-partitioning"

    def test_translate_runs_everything(self, framework, example_source):
        result = framework.translate(example_source)
        assert "stage5-threads-to-processes" in result.pass_log
        assert result.rcce_source.startswith("#include")

    def test_policy_override_per_call(self, example_source):
        framework = TranslationFramework(partition_policy="size")
        result = framework.partition(example_source,
                                     policy="off-chip-only")
        assert result.plan.on_chip_bytes == 0

    def test_accepts_parsed_unit(self, framework, example_unit):
        result = framework.analyze(example_unit)
        assert result.unit is example_unit

    def test_capacity_respected(self, example_source):
        framework = TranslationFramework(on_chip_capacity=8)
        result = framework.partition(example_source)
        # sum (12 bytes) cannot fit in 8 bytes of on-chip memory
        assert result.plan.bank_of("sum") is MemoryBank.OFF_CHIP
        assert result.plan.bank_of("ptr") is MemoryBank.ON_CHIP

    def test_sharing_table_exposed(self, analyzed_example):
        table = analyzed_example.sharing_table()
        assert "sum" in table

    def test_program_without_threads_translates(self, framework):
        result = framework.translate(
            "#include <stdio.h>\nint main(void) "
            "{ printf(\"x\"); return 0; }")
        text = result.rcce_source
        assert "RCCE_init" in text
        assert "RCCE_finalize" in text

    def test_thread_launch_metadata(self, analyzed_example):
        launches = analyzed_example.thread_launches
        assert len(launches) == 1
        assert launches[0].in_loop
        assert analyzed_example.thread_functions == {"tf"}


class TestReportFormatting:
    def test_format_table_renders_all_rows(self, analyzed_example):
        text = format_table(table_4_1(analyzed_example),
                            title="Table 4.1")
        assert "Table 4.1" in text
        assert "threads" in text
        assert text.count("\n") >= 10

    def test_format_empty(self):
        assert format_table([]) == "(empty table)"

    def test_table_4_2_columns(self, analyzed_example):
        rows = table_4_2(analyzed_example)
        assert all(set(row) == {"variable", "stage1", "stage2", "stage3"}
                   for row in rows)
