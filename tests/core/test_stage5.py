"""Stage 5 (translation, Algorithm 4 + conversions) tests."""

import pytest

from repro.cfront import c_ast
from repro.cfront.visitor import find_all, find_calls
from repro.core.framework import TranslationFramework


def translate(source, **kwargs):
    return TranslationFramework(**kwargs).translate(source)


PTHREAD_PROGRAM = """
#include <stdio.h>
#include <pthread.h>

int data[8];

void *worker(void *tid) {
    int id = (int)tid;
    data[id] = id;
    pthread_exit(NULL);
}

int main(void) {
    pthread_t th[8];
    int i;
    for (i = 0; i < 8; i++) {
        pthread_create(&th[i], NULL, worker, (void *)i);
    }
    for (i = 0; i < 8; i++) {
        pthread_join(th[i], NULL);
        printf("%d\\n", data[i]);
    }
    return 0;
}
"""


class TestThreadsToProcesses:
    def test_main_renamed_to_rcce_app(self):
        result = translate(PTHREAD_PROGRAM)
        assert result.unit.find_function("RCCE_APP") is not None
        assert result.unit.find_function("main") is None

    def test_rcce_app_signature(self):
        result = translate(PTHREAD_PROGRAM)
        func = result.unit.find_function("RCCE_APP")
        assert [p.name for p in func.params] == ["argc", "argv"]

    def test_no_pthread_create_left(self):
        result = translate(PTHREAD_PROGRAM)
        assert find_calls(result.unit, "pthread_create") == []

    def test_no_pthread_join_left(self):
        result = translate(PTHREAD_PROGRAM)
        assert find_calls(result.unit, "pthread_join") == []

    def test_direct_call_with_core_id(self):
        result = translate(PTHREAD_PROGRAM)
        calls = find_calls(result.unit, "worker")
        assert len(calls) == 1
        arg = calls[0].args[0]
        assert isinstance(arg, c_ast.Cast)
        assert arg.expr.name == "myID"

    def test_create_loop_removed(self):
        result = translate(PTHREAD_PROGRAM)
        main = result.unit.find_function("RCCE_APP")
        loops = find_all(main, c_ast.For)
        assert loops == []  # both loops consumed

    def test_join_becomes_barrier(self):
        result = translate(PTHREAD_PROGRAM)
        assert len(find_calls(result.unit, "RCCE_barrier")) >= 1

    def test_join_loop_body_hoisted_with_myid(self):
        result = translate(PTHREAD_PROGRAM)
        assert "data[myID]" in result.rcce_source

    def test_myid_initialized_from_rcce_ue(self):
        result = translate(PTHREAD_PROGRAM)
        assert "myID = RCCE_ue();" in result.rcce_source

    def test_init_first_finalize_before_return(self):
        result = translate(PTHREAD_PROGRAM)
        body = result.unit.find_function("RCCE_APP").body.items
        first = body[0]
        assert first.expr.callee_name == "RCCE_init"
        assert body[-1].__class__ is c_ast.Return
        assert body[-2].expr.callee_name == "RCCE_finalize"

    def test_standalone_create_wrapped_in_core_guard(self):
        source = """
        #include <pthread.h>
        int x;
        void *taskA(void *a) { x = 1; return 0; }
        void *taskB(void *a) { x = 2; return 0; }
        int main(void) {
            pthread_t t1, t2;
            pthread_create(&t1, 0, taskA, 0);
            pthread_create(&t2, 0, taskB, 0);
            pthread_join(t1, 0);
            pthread_join(t2, 0);
            return 0;
        }
        """
        result = translate(source)
        text = result.rcce_source
        assert "if (myID == 0)" in text
        assert "if (myID == 1)" in text
        assert "taskA" in text and "taskB" in text

    def test_consecutive_barriers_collapsed(self):
        source = """
        #include <pthread.h>
        int x;
        void *t1(void *a) { x = 1; return 0; }
        int main(void) {
            pthread_t a, b;
            pthread_create(&a, 0, t1, 0);
            pthread_create(&b, 0, t1, 0);
            pthread_join(a, 0);
            pthread_join(b, 0);
            return 0;
        }
        """
        result = translate(source)
        assert result.rcce_source.count("RCCE_barrier") == 1


class TestSharedVariableConversion:
    def test_shared_array_becomes_pointer_with_shmalloc(self):
        result = translate(PTHREAD_PROGRAM,
                           partition_policy="off-chip-only")
        text = result.rcce_source
        assert "int *data;" in text
        assert "data = (int *)RCCE_shmalloc(sizeof(int) * 8);" in text

    def test_on_chip_uses_rcce_malloc(self):
        result = translate(PTHREAD_PROGRAM, partition_policy="size")
        assert "RCCE_malloc(sizeof(int) * 8)" in result.rcce_source

    def test_capacity_zero_forces_off_chip(self):
        result = translate(PTHREAD_PROGRAM, on_chip_capacity=0)
        assert "RCCE_shmalloc" in result.rcce_source
        assert "RCCE_malloc(" not in result.rcce_source

    def test_alloc_inserted_after_init(self):
        result = translate(PTHREAD_PROGRAM)
        body = result.unit.find_function("RCCE_APP").body.items
        assert body[0].expr.callee_name == "RCCE_init"
        assert isinstance(body[1].expr, c_ast.Assignment)

    def test_existing_malloc_renamed(self):
        source = """
        #include <pthread.h>
        #include <stdlib.h>
        int *buf;
        void *tf(void *a) { buf[0] = 1; return 0; }
        int main(void) {
            pthread_t t;
            buf = (int *)malloc(64);
            pthread_create(&t, 0, tf, 0);
            pthread_join(t, 0);
            return 0;
        }
        """
        result = translate(source, partition_policy="off-chip-only")
        text = result.rcce_source
        assert "RCCE_shmalloc(64)" in text
        assert "(int *)malloc(" not in text

    def test_global_initializer_dropped(self):
        result = translate(PTHREAD_PROGRAM)
        assert "= {0}" not in result.rcce_source

    def test_shared_scalar_promoted_to_pointer(self):
        source = """
        #include <pthread.h>
        int counter;
        void *tf(void *a) { counter = counter + 1; return 0; }
        int main(void) {
            pthread_t t;
            pthread_create(&t, 0, tf, 0);
            pthread_join(t, 0);
            return 0;
        }
        """
        result = translate(source, partition_policy="off-chip-only")
        text = result.rcce_source
        assert "int *counter;" in text
        assert "counter = (int *)RCCE_shmalloc(sizeof(int) * 1);" in text
        assert "*counter = *counter + 1;" in text


class TestCleanupPasses:
    def test_pthread_types_removed(self):
        result = translate(PTHREAD_PROGRAM)
        assert "pthread_t" not in result.rcce_source

    def test_pthread_exit_removed(self):
        result = translate(PTHREAD_PROGRAM)
        assert "pthread_exit" not in result.rcce_source

    def test_include_swapped(self):
        result = translate(PTHREAD_PROGRAM)
        assert "RCCE.h" in result.unit.includes
        assert "pthread.h" not in result.unit.includes
        assert "stdio.h" in result.unit.includes

    def test_unused_locals_removed(self):
        result = translate(PTHREAD_PROGRAM)
        main_text = result.rcce_source
        assert "int i;" not in main_text

    def test_unused_private_global_removed(self):
        source = PTHREAD_PROGRAM.replace("int data[8];",
                                         "int data[8];\nint dead;")
        result = translate(source)
        assert "int dead;" not in result.rcce_source


class TestMutexConversion:
    MUTEX_PROGRAM = """
    #include <pthread.h>
    int counter;
    pthread_mutex_t lock;
    void *inc(void *a) {
        pthread_mutex_lock(&lock);
        counter = counter + 1;
        pthread_mutex_unlock(&lock);
        return 0;
    }
    int main(void) {
        pthread_t th[4];
        pthread_mutex_init(&lock, 0);
        for (int i = 0; i < 4; i++)
            pthread_create(&th[i], 0, inc, (void *)i);
        for (int i = 0; i < 4; i++)
            pthread_join(th[i], 0);
        pthread_mutex_destroy(&lock);
        return 0;
    }
    """

    def test_lock_unlock_converted(self):
        result = translate(self.MUTEX_PROGRAM)
        text = result.rcce_source
        assert "RCCE_acquire_lock(0)" in text
        assert "RCCE_release_lock(0)" in text

    def test_mutex_decl_and_init_removed(self):
        result = translate(self.MUTEX_PROGRAM)
        text = result.rcce_source
        assert "pthread_mutex_t" not in text
        assert "pthread_mutex_init" not in text
        assert "pthread_mutex_destroy" not in text

    def test_distinct_mutexes_get_distinct_registers(self):
        source = self.MUTEX_PROGRAM.replace(
            "pthread_mutex_t lock;",
            "pthread_mutex_t lock;\npthread_mutex_t lock2;").replace(
            "pthread_mutex_unlock(&lock);",
            "pthread_mutex_unlock(&lock);\n"
            "        pthread_mutex_lock(&lock2);\n"
            "        pthread_mutex_unlock(&lock2);")
        result = translate(source)
        text = result.rcce_source
        assert "RCCE_acquire_lock(1)" in text

    def test_pthread_self_replaced(self):
        source = """
        #include <pthread.h>
        int ids[2];
        void *tf(void *a) { ids[0] = (int)pthread_self(); return 0; }
        int main(void) {
            pthread_t t;
            pthread_create(&t, 0, tf, 0);
            pthread_join(t, 0);
            return 0;
        }
        """
        result = translate(source)
        assert "pthread_self" not in result.rcce_source
        assert "RCCE_ue()" in result.rcce_source
