"""§4.4 split-allocation tests: arrays split between SRAM and DRAM."""

import pytest

from repro.cfront import ctypes
from repro.core.framework import TranslationFramework
from repro.core.stage4_partition import (
    MemoryBank,
    partition_shared_variables,
)
from repro.core.varinfo import Sharing, VariableInfo
from repro.scc.chip import SCCChip
from repro.scc.config import SCCConfig
from repro.scc.memmap import SegmentKind
from repro.sim.runner import run_pthread_single_core, run_rcce


def var(name, nbytes):
    info = VariableInfo(name, ctypes.ArrayType(ctypes.CHAR, nbytes),
                        "global")
    info.set_sharing(Sharing.TRUE, 1)
    return info


class TestPartitionerSplit:
    def test_oversized_variable_split(self):
        plan = partition_shared_variables([var("big", 1000)],
                                          capacity=256,
                                          allow_split=True)
        placement = plan.placements[(None, "big")]
        assert placement.bank is MemoryBank.SPLIT
        assert placement.on_chip_bytes == 256
        assert plan.on_chip_bytes == 256
        assert plan.off_chip_bytes == 744

    def test_split_disabled_by_default(self):
        plan = partition_shared_variables([var("big", 1000)],
                                          capacity=256)
        assert plan.placements[(None, "big")].bank is \
            MemoryBank.OFF_CHIP

    def test_tiny_remainder_not_split(self):
        plan = partition_shared_variables(
            [var("small", 60), var("big", 1000)], capacity=64,
            allow_split=True)
        # after small (60B), only 4B remain: below MIN_SPLIT_BYTES
        assert plan.placements[(None, "big")].bank is \
            MemoryBank.OFF_CHIP

    def test_fitting_variables_unaffected(self):
        plan = partition_shared_variables(
            [var("fits", 100), var("big", 1000)], capacity=400,
            allow_split=True)
        assert plan.placements[(None, "fits")].bank is \
            MemoryBank.ON_CHIP
        assert plan.placements[(None, "big")].bank is MemoryBank.SPLIT
        assert plan.placements[(None, "big")].on_chip_bytes == 300


class TestAddressSpaceSplit:
    def test_resolution_by_offset(self):
        chip = SCCChip(SCCConfig())
        segment = chip.address_space.alloc_split(1024, 256)
        kind, _ = chip.address_space.resolve(segment.base)
        assert kind is SegmentKind.MPB
        kind, _ = chip.address_space.resolve(segment.base + 255)
        assert kind is SegmentKind.MPB
        kind, _ = chip.address_space.resolve(segment.base + 256)
        assert kind is SegmentKind.SHARED

    def test_head_cheaper_than_tail(self):
        chip = SCCChip(SCCConfig())
        segment = chip.address_space.alloc_split(1024, 256)
        chip.access_cost(0, segment.base, "write")
        head = chip.access_cost(0, segment.base, "read")  # L1-cached MPB
        tail = chip.access_cost(0, segment.base + 512, "read")
        assert head < tail

    def test_two_splits_disjoint(self):
        chip = SCCChip(SCCConfig())
        first = chip.address_space.alloc_split(512, 128)
        second = chip.address_space.alloc_split(512, 128)
        assert first.end <= second.base


class TestEndToEndSplit:
    SOURCE = """
    #include <stdio.h>
    #include <pthread.h>

    #define NTHREADS 4
    #define N 256

    double big[256];
    double checksum[4];

    void *worker(void *tid) {
        int id = (int)tid;
        int chunk = N / NTHREADS;
        int lo = id * chunk;
        int j;
        double local = 0.0;
        for (j = lo; j < lo + chunk; j++) {
            big[j] = j + 0.5;
        }
        for (j = lo; j < lo + chunk; j++) {
            local += big[j];
        }
        checksum[id] = local;
        pthread_exit(NULL);
    }

    int main(void) {
        pthread_t th[4];
        int t;
        double total = 0.0;
        for (t = 0; t < NTHREADS; t++)
            pthread_create(&th[t], NULL, worker, (void *)t);
        for (t = 0; t < NTHREADS; t++)
            pthread_join(th[t], NULL);
        for (t = 0; t < NTHREADS; t++)
            total += checksum[t];
        printf("%.1f\\n", total);
        return 0;
    }
    """

    def framework(self):
        # capacity fits checksum (32B) + part of big (2048B)
        return TranslationFramework(on_chip_capacity=1024,
                                    allow_split=True)

    def test_translation_emits_split_alloc(self):
        translated = self.framework().translate(self.SOURCE)
        text = translated.rcce_source
        assert "RCCE_shmalloc_split(sizeof(double) * 256" in text

    def test_split_program_correct(self):
        baseline = run_pthread_single_core(self.SOURCE)
        translated = self.framework().translate(self.SOURCE)
        result = run_rcce(translated.unit, 4)
        assert all(line + "\n" == baseline.stdout()
                   for line in result.stdout().strip().splitlines())

    def test_split_faster_than_off_chip_slower_than_full_mpb(self):
        """The paper's 'very slight performance improvement': split
        sits between all-DRAM and all-MPB."""
        translated_off = TranslationFramework(
            partition_policy="off-chip-only").translate(self.SOURCE)
        off = run_rcce(translated_off.unit, 4).cycles

        translated_split = self.framework().translate(self.SOURCE)
        split = run_rcce(translated_split.unit, 4).cycles

        translated_on = TranslationFramework(
            on_chip_capacity=64 * 1024).translate(self.SOURCE)
        on = run_rcce(translated_on.unit, 4).cycles

        assert on < split < off
