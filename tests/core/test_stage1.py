"""Stage 1 (variable scope analysis) tests."""

import pytest

from repro.core.framework import TranslationFramework
from repro.core.varinfo import Sharing


def analyze(source):
    return TranslationFramework().analyze(source).variables


class TestScopeClassification:
    def test_global_vs_local(self):
        table = analyze("""
        int g;
        void f(void) { int l; l = g; }
        int main(void) { return 0; }
        """)
        assert table.get_exact("g", None).scope_kind == "global"
        assert table.get_exact("l", "f").scope_kind == "local"

    def test_params_recorded(self):
        table = analyze("void f(int a, double b) { } "
                        "int main(void) { return 0; }")
        assert table.get_exact("a", "f").scope_kind == "param"
        assert table.get_exact("b", "f").ctype.name == "double"

    def test_globals_marked_shared_after_stage1(self):
        table = analyze("int g; int main(void) { return g; }")
        info = table.get_exact("g", None)
        assert info.sharing_history[1] is Sharing.TRUE

    def test_locals_null_after_stage1(self):
        table = analyze("int main(void) { int l = 0; return l; }")
        info = table.get_exact("l", "main")
        assert info.sharing_history[1] is Sharing.NULL

    def test_nested_block_locals_found(self):
        table = analyze("int main(void) { { int inner = 1; } return 0; }")
        assert table.get_exact("inner", "main") is not None

    def test_typedefs_not_variables(self):
        table = analyze("typedef int myint; int main(void) { return 0; }")
        assert table.get_exact("myint", None) is None


class TestAccessCounting:
    """The documented counting rules (see repro/core/accesses.py)."""

    def source(self, body):
        return "int g; int arr[4];\nint main(void) { %s return 0; }" % body

    def test_plain_read(self):
        table = analyze(self.source("int x = g;"))
        assert table.get_exact("g", None).read_count == 1
        assert table.get_exact("g", None).write_count == 0

    def test_plain_write(self):
        table = analyze(self.source("g = 1;"))
        info = table.get_exact("g", None)
        assert (info.read_count, info.write_count) == (0, 1)

    def test_compound_assign_reads_and_writes(self):
        table = analyze(self.source("g += 2;"))
        info = table.get_exact("g", None)
        assert (info.read_count, info.write_count) == (1, 1)

    def test_increment_reads_and_writes(self):
        table = analyze(self.source("g++;"))
        info = table.get_exact("g", None)
        assert (info.read_count, info.write_count) == (1, 1)

    def test_local_decl_init_is_a_write(self):
        table = analyze(self.source("int x = 1;"))
        info = table.get_exact("x", "main")
        assert info.write_count == 1

    def test_global_initializer_not_a_runtime_write(self):
        table = analyze("int g = 5; int main(void) { return 0; }")
        assert table.get_exact("g", None).write_count == 0

    def test_array_write_counts_base_and_index(self):
        table = analyze(self.source("int i = 0; arr[i] = 1;"))
        arr = table.get_exact("arr", None)
        i = table.get_exact("i", "main")
        assert (arr.read_count, arr.write_count) == (0, 1)
        assert i.read_count == 1

    def test_address_of_is_a_read(self):
        table = analyze(self.source("int *p = &g;"))
        assert table.get_exact("g", None).read_count == 1

    def test_deref_write_reads_pointer(self):
        table = analyze("int *p;\nint main(void) { *p = 3; return 0; }")
        info = table.get_exact("p", None)
        assert (info.read_count, info.write_count) == (1, 0)

    def test_call_args_are_reads(self):
        table = analyze("""
        int helper(int v) { return v; }
        int main(void) { int x = 1; helper(x); return 0; }
        """)
        assert table.get_exact("x", "main").read_count == 1

    def test_function_name_not_counted(self):
        table = analyze("""
        int helper(void) { return 1; }
        int main(void) { return helper(); }
        """)
        # helper is a function, never enters the variable table
        assert table.get_exact("helper", None) is None

    def test_use_in_def_in(self):
        table = analyze("""
        int g;
        void w(void) { g = 1; }
        void r(void) { int x = g; }
        int main(void) { w(); r(); return 0; }
        """)
        info = table.get_exact("g", None)
        assert info.def_in == {"w"}
        assert info.use_in == {"r"}

    def test_shadowing_counts_to_inner(self):
        table = analyze("""
        int x;
        int main(void) { int x = 0; x = 1; return 0; }
        """)
        assert table.get_exact("x", "main").write_count == 2
        assert table.get_exact("x", None).write_count == 0

    def test_sizeof_operand_unevaluated(self):
        table = analyze(self.source("int s = sizeof g;"))
        assert table.get_exact("g", None).read_count == 0


class TestWeightedCounts:
    def test_loop_multiplies_weight(self):
        table = analyze("""
        int g;
        int main(void) {
            for (int i = 0; i < 10; i++) { g = i; }
            return 0;
        }
        """)
        info = table.get_exact("g", None)
        assert info.write_count == 1        # syntactic
        assert info.weighted_writes == 10   # trip-weighted

    def test_nested_loops_multiply(self):
        table = analyze("""
        int g;
        int main(void) {
            for (int i = 0; i < 4; i++)
                for (int j = 0; j < 5; j++)
                    g++;
            return 0;
        }
        """)
        assert table.get_exact("g", None).weighted_writes == 20

    def test_condition_weighted_by_inner_count(self):
        table = analyze("""
        int n;
        int main(void) {
            for (int i = 0; i < 8; i++) { }
            return n;
        }
        """)
        i = table.get_exact("i", "main")
        assert i.weighted_reads >= 8


class TestExample41Table:
    """Table 4.1 for the running example, under the documented rules.

    Three cells differ from the thesis' hand-made table (sum Rd, local
    Wr, rc Wr) — the thesis numbers are mutually inconsistent; see
    EXPERIMENTS.md for the cell-by-cell comparison.
    """

    @pytest.fixture
    def table(self, example_source):
        return analyze(example_source)

    def test_global(self, table):
        info = table.get_exact("global", None)
        assert (info.read_count, info.write_count) == (0, 0)
        assert info.use_in == set() and info.def_in == set()

    def test_ptr(self, table):
        info = table.get_exact("ptr", None)
        assert (info.read_count, info.write_count) == (1, 1)
        assert info.use_in == {"tf"}
        assert info.def_in == {"main"}

    def test_sum(self, table):
        info = table.get_exact("sum", None)
        assert info.write_count == 2
        assert info.use_in == {"tf", "main"}
        assert info.def_in == {"tf"}
        assert info.element_count == 3
        assert info.display_type == "int *"

    def test_tlocal(self, table):
        info = table.get_exact("tLocal", "tf")
        assert (info.read_count, info.write_count) == (3, 1)

    def test_tid(self, table):
        info = table.get_exact("tid", "tf")
        assert (info.read_count, info.write_count) == (1, 0)

    def test_local_reads(self, table):
        assert table.get_exact("local", "main").read_count == 8

    def test_tmp(self, table):
        info = table.get_exact("tmp", "main")
        assert (info.read_count, info.write_count) == (1, 1)

    def test_threads(self, table):
        info = table.get_exact("threads", "main")
        assert (info.read_count, info.write_count) == (2, 0)
        assert info.element_count == 3

    def test_rc_never_read(self, table):
        assert table.get_exact("rc", "main").read_count == 0
