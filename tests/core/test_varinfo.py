"""VariableInfo / VariableTable / sharing-status rule tests."""

import pytest

from repro.cfront import ctypes
from repro.core.varinfo import (
    Sharing,
    SharingTransitionError,
    VariableInfo,
    VariableTable,
)


def make(name="v", ctype=None, scope="global", function=None):
    return VariableInfo(name, ctype or ctypes.INT, scope, function)


class TestSharingMonotonicity:
    """Paper §4.1: status may be refined from true to false or false to
    true ONCE, and never reverts; changes from null are always
    accepted."""

    def test_null_to_true(self):
        info = make()
        info.set_sharing(Sharing.TRUE, 1)
        assert info.sharing is Sharing.TRUE

    def test_null_to_false(self):
        info = make()
        info.set_sharing(Sharing.FALSE, 2)
        assert info.sharing is Sharing.FALSE

    def test_single_flip_allowed(self):
        info = make()
        info.set_sharing(Sharing.TRUE, 1)
        info.set_sharing(Sharing.FALSE, 3)
        assert info.sharing is Sharing.FALSE

    def test_second_flip_rejected(self):
        info = make()
        info.set_sharing(Sharing.TRUE, 1)
        info.set_sharing(Sharing.FALSE, 2)
        with pytest.raises(SharingTransitionError):
            info.set_sharing(Sharing.TRUE, 3)

    def test_same_value_is_not_a_flip(self):
        info = make()
        info.set_sharing(Sharing.TRUE, 1)
        info.set_sharing(Sharing.TRUE, 2)
        info.set_sharing(Sharing.FALSE, 3)  # first real flip, fine
        assert info.sharing is Sharing.FALSE

    def test_reset_to_null_rejected(self):
        info = make()
        info.set_sharing(Sharing.TRUE, 1)
        with pytest.raises(SharingTransitionError):
            info.set_sharing(Sharing.NULL, 2)

    def test_history_recorded_per_stage(self):
        info = make()
        info.set_sharing(Sharing.TRUE, 1)
        info.record_stage(2)
        info.set_sharing(Sharing.FALSE, 3)
        assert info.sharing_history == {
            1: Sharing.TRUE, 2: Sharing.TRUE, 3: Sharing.FALSE}

    def test_non_enum_rejected(self):
        with pytest.raises(TypeError):
            make().set_sharing(True, 1)


class TestTable41Columns:
    def test_array_displays_as_pointer(self):
        info = make(ctype=ctypes.ArrayType(ctypes.INT, 3))
        assert info.display_type == "int *"
        assert info.element_count == 3

    def test_scalar_display(self):
        info = make(ctype=ctypes.DOUBLE)
        assert info.display_type == "double"
        assert info.element_count == 1

    def test_mem_size_array(self):
        info = make(ctype=ctypes.ArrayType(ctypes.DOUBLE, 4))
        assert info.mem_size == 32

    def test_mem_size_pointer(self):
        info = make(ctype=ctypes.PointerType(ctypes.INT))
        assert info.mem_size == 4

    def test_row_shape(self):
        info = make("sum", ctypes.ArrayType(ctypes.INT, 3))
        info.read_count = 2
        info.use_in.add("tf")
        row = info.row()
        assert row["name"] == "sum"
        assert row["size"] == 3
        assert row["use_in"] == ["tf"]
        assert row["def_in"] is None

    def test_weighted_counts_independent(self):
        info = make()
        info.read_count = 1
        info.weighted_reads = 100
        assert info.access_count == 1
        assert info.weighted_access_count == 100


class TestVariableTable:
    def test_scoped_lookup_prefers_local(self):
        table = VariableTable()
        table.add(make("x", scope="global"))
        local = make("x", scope="local", function="f")
        table.add(local)
        assert table.get("x", "f") is local
        assert table.get("x") is not local

    def test_global_fallback(self):
        table = VariableTable()
        glob = make("g")
        table.add(glob)
        assert table.get("g", "f") is glob

    def test_get_exact(self):
        table = VariableTable()
        glob = make("x")
        table.add(glob)
        assert table.get_exact("x", "f") is None
        assert table.get_exact("x", None) is glob

    def test_globals_and_locals_split(self):
        table = VariableTable()
        table.add(make("g", scope="global"))
        table.add(make("l", scope="local", function="f"))
        table.add(make("p", scope="param", function="f"))
        assert len(table.globals()) == 1
        assert len(table.locals()) == 2

    def test_shared_sorted_and_filtered(self):
        table = VariableTable()
        b = make("b")
        b.set_sharing(Sharing.TRUE, 1)
        a = make("a")
        a.set_sharing(Sharing.TRUE, 1)
        c = make("c")
        c.set_sharing(Sharing.FALSE, 1)
        for info in (b, a, c):
            table.add(info)
        assert [v.name for v in table.shared()] == ["a", "b"]

    def test_len_and_iter(self):
        table = VariableTable()
        table.add(make("a"))
        table.add(make("b"))
        assert len(table) == 2
        assert {v.name for v in table} == {"a", "b"}

    def test_by_name_across_scopes(self):
        table = VariableTable()
        table.add(make("x"))
        table.add(make("x", scope="local", function="f"))
        assert len(table.by_name("x")) == 2
