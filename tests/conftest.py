"""Shared fixtures for the test suite."""

import pytest

from repro.bench.programs import EXAMPLE_4_1
from repro.cfront.frontend import parse_program
from repro.core.framework import TranslationFramework


@pytest.fixture
def example_source():
    """The paper's running example (Example Code 4.1)."""
    return EXAMPLE_4_1


@pytest.fixture
def example_unit(example_source):
    return parse_program(example_source)


@pytest.fixture
def framework():
    return TranslationFramework()


@pytest.fixture
def analyzed_example(framework, example_source):
    """Stages 1-3 over the running example."""
    return framework.analyze(example_source)


@pytest.fixture
def translated_example(framework, example_source):
    """The full five-stage pipeline over the running example."""
    return framework.translate(example_source)
