"""Smoke tests: the example scripts must keep running.

Only the fast examples execute here (the heavier sweeps are exercised
through the harness tests and the benchmark suite)."""

import os
import runpy
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "examples")

FAST_EXAMPLES = [
    "quickstart.py",
    "translate_example.py",
    "message_passing.py",
    "power_management.py",
    "trace_capture.py",
]


@pytest.mark.parametrize("script", FAST_EXAMPLES)
def test_example_runs(script, capsys):
    path = os.path.join(EXAMPLES_DIR, script)
    runpy.run_path(path, run_name="__main__")
    output = capsys.readouterr().out
    assert output.strip(), script


def test_quickstart_shows_speedup(capsys):
    runpy.run_path(os.path.join(EXAMPLES_DIR, "quickstart.py"),
                   run_name="__main__")
    output = capsys.readouterr().out
    assert "speedup:" in output
    assert "pi = 3.14" in output


def test_translate_example_shows_tables(capsys):
    runpy.run_path(os.path.join(EXAMPLES_DIR, "translate_example.py"),
                   run_name="__main__")
    output = capsys.readouterr().out
    assert "Table 4.1" in output
    assert "Table 4.2" in output
    assert "RCCE_shmalloc" in output


def test_message_passing_answers(capsys):
    runpy.run_path(os.path.join(EXAMPLES_DIR, "message_passing.py"),
                   run_name="__main__")
    output = capsys.readouterr().out
    assert "sum of squares over 8 UEs = 140.0" in output
    assert "read mailbox 777" in output


def test_trace_capture_outputs(capsys):
    runpy.run_path(os.path.join(EXAMPLES_DIR, "trace_capture.py"),
                   run_name="__main__")
    output = capsys.readouterr().out
    assert "pipeline profile" in output
    assert "counter = 32" in output
    assert "trace events:" in output
    assert "rcce_lock_acquisitions" in output


def test_all_examples_exist():
    expected = {
        "quickstart.py", "translate_example.py", "benchmark_suite.py",
        "scaling_study.py", "partitioning_explorer.py",
        "message_passing.py", "power_management.py",
        "trace_capture.py",
    }
    present = {name for name in os.listdir(EXAMPLES_DIR)
               if name.endswith(".py")}
    assert expected <= present
