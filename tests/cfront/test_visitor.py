"""Visitor / transformer / search helper tests."""

from repro.cfront import c_ast
from repro.cfront.parser import parse
from repro.cfront.visitor import (
    NodeTransformer,
    NodeVisitor,
    enclosing,
    find_all,
    find_calls,
    find_first,
    is_inside_loop,
)


SOURCE = """
int g;
void f(void) {
    int i;
    for (i = 0; i < 3; i++) {
        g = g + helper(i);
    }
    helper(9);
}
int helper(int x) { return x * 2; }
"""


class TestNodeVisitor:
    def test_visit_counts_nodes(self):
        unit = parse(SOURCE)

        class Counter(NodeVisitor):
            def __init__(self):
                self.ids = 0

            def visit_Id(self, node):
                self.ids += 1

        counter = Counter()
        counter.visit(unit)
        assert counter.ids > 5

    def test_generic_visit_recurses(self):
        unit = parse(SOURCE)

        class CallCollector(NodeVisitor):
            def __init__(self):
                self.calls = []

            def visit_FuncCall(self, node):
                self.calls.append(node.callee_name)
                self.generic_visit(node)

        collector = CallCollector()
        collector.visit(unit)
        assert collector.calls == ["helper", "helper"]


class TestNodeTransformer:
    def test_delete_statement(self):
        unit = parse("void f(void) { a = 1; b = 2; }")

        class DropFirst(NodeTransformer):
            def visit_ExprStmt(self, node):
                if isinstance(node.expr, c_ast.Assignment) and \
                        node.expr.lvalue.name == "a":
                    return None
                return node

        DropFirst().visit(unit)
        body = unit.functions()[0].body
        assert len(body.items) == 1
        assert body.items[0].expr.lvalue.name == "b"

    def test_splice_list(self):
        unit = parse("void f(void) { a = 1; }")

        class Duplicate(NodeTransformer):
            def visit_ExprStmt(self, node):
                return [node, c_ast.ExprStmt(c_ast.Assignment(
                    "=", c_ast.Id("c"), c_ast.Constant("int", 3, "3")))]

        Duplicate().visit(unit)
        assert len(unit.functions()[0].body.items) == 2

    def test_replace_node(self):
        unit = parse("void f(void) { x = old_name; }")

        class Rename(NodeTransformer):
            def visit_Id(self, node):
                if node.name == "old_name":
                    node.name = "new_name"
                return node

        Rename().visit(unit)
        stmt = unit.functions()[0].body.items[0]
        assert stmt.expr.rvalue.name == "new_name"


class TestSearchHelpers:
    def test_find_all(self):
        unit = parse(SOURCE)
        loops = find_all(unit, c_ast.For)
        assert len(loops) == 1

    def test_find_first(self):
        unit = parse(SOURCE)
        call = find_first(unit, c_ast.FuncCall)
        assert call.callee_name == "helper"

    def test_find_first_none(self):
        unit = parse("int x;")
        assert find_first(unit, c_ast.For) is None

    def test_find_calls(self):
        unit = parse(SOURCE)
        assert len(find_calls(unit, "helper")) == 2
        assert find_calls(unit, "missing") == []

    def test_enclosing(self):
        unit = parse(SOURCE)
        call = find_first(unit, c_ast.FuncCall)
        loop = enclosing(call, c_ast.For)
        assert isinstance(loop, c_ast.For)
        func = enclosing(call, c_ast.FuncDef)
        assert func.name == "f"

    def test_is_inside_loop(self):
        unit = parse(SOURCE)
        calls = find_calls(unit, "helper")
        assert is_inside_loop(calls[0])
        assert not is_inside_loop(calls[1])

    def test_walk_preorder(self):
        unit = parse("int a; int b;")
        nodes = list(c_ast.walk(unit))
        assert nodes[0] is unit
