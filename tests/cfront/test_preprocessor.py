"""Preprocessor unit tests."""

import pytest

from repro.cfront.errors import PreprocessError
from repro.cfront.preprocessor import Preprocessor, preprocess


class TestIncludes:
    def test_system_include_recorded_and_removed(self):
        result = preprocess("#include <stdio.h>\nint x;")
        assert result.includes == ["stdio.h"]
        assert "#include" not in result.text
        assert "int x;" in result.text

    def test_quoted_include(self):
        result = preprocess('#include "RCCE.h"')
        assert result.includes == ["RCCE.h"]

    def test_multiple_includes_in_order(self):
        result = preprocess("#include <a.h>\n#include <b.h>\n")
        assert result.includes == ["a.h", "b.h"]

    def test_malformed_include_raises(self):
        with pytest.raises(PreprocessError):
            preprocess("#include stdio.h")

    def test_header_map_expansion(self):
        result = preprocess(
            "#include <my.h>\nint y = FOO;",
            header_map={"my.h": "#define FOO 7\n"})
        assert "int y = 7;" in result.text

    def test_line_numbering_preserved(self):
        result = preprocess("#include <a.h>\nint x;\nint y;")
        lines = result.text.split("\n")
        assert lines[1] == "int x;"
        assert lines[2] == "int y;"


class TestObjectMacros:
    def test_simple_define(self):
        result = preprocess("#define N 32\nint a[N];")
        assert "int a[32];" in result.text

    def test_define_used_twice(self):
        result = preprocess("#define N 4\nint a = N + N;")
        assert "int a = 4 + 4;" in result.text

    def test_nested_macro_expansion(self):
        result = preprocess(
            "#define A 1\n#define B A + A\nint x = B;")
        assert "int x = 1 + 1;" in result.text

    def test_self_referential_macro_terminates(self):
        result = preprocess("#define X X\nint X;")
        assert "int X;" in result.text

    def test_macro_not_expanded_in_string(self):
        result = preprocess('#define N 9\nchar *s = "N";')
        assert '"N"' in result.text

    def test_macro_not_expanded_as_substring(self):
        result = preprocess("#define N 9\nint NN = 1;")
        assert "int NN = 1;" in result.text

    def test_undef(self):
        result = preprocess("#define N 9\n#undef N\nint N;")
        assert "int N;" in result.text

    def test_predefined_macros(self):
        result = preprocess("int a[N];", predefined={"N": 16})
        assert "int a[16];" in result.text

    def test_macros_exported_in_result(self):
        result = preprocess("#define LIMIT 100\n")
        assert "LIMIT" in result.macros
        assert result.macros["LIMIT"].body == "100"


class TestFunctionMacros:
    def test_simple_function_macro(self):
        result = preprocess("#define SQ(x) ((x) * (x))\nint y = SQ(3);")
        assert "int y = ((3) * (3));" in result.text

    def test_two_parameter_macro(self):
        result = preprocess(
            "#define MIN(a, b) ((a) < (b) ? (a) : (b))\n"
            "int m = MIN(p, q);")
        assert "((p) < (q) ? (p) : (q))" in result.text

    def test_function_macro_without_call_left_alone(self):
        result = preprocess("#define F(x) x\nint F;")
        assert "int F;" in result.text

    def test_nested_parens_in_argument(self):
        result = preprocess("#define ID(x) x\nint y = ID((1 + 2));")
        assert "int y = (1 + 2);" in result.text

    def test_comma_in_nested_parens_not_a_separator(self):
        result = preprocess("#define ID(x) x\nint y = ID(f(a, b));")
        assert "int y = f(a, b);" in result.text

    def test_wrong_arity_raises(self):
        with pytest.raises(PreprocessError):
            preprocess("#define TWO(a, b) a b\nint x = TWO(1);")


class TestConditionals:
    def test_ifdef_taken(self):
        result = preprocess("#define D 1\n#ifdef D\nint x;\n#endif")
        assert "int x;" in result.text

    def test_ifdef_not_taken(self):
        result = preprocess("#ifdef D\nint x;\n#endif\nint y;")
        assert "int x;" not in result.text
        assert "int y;" in result.text

    def test_ifndef(self):
        result = preprocess("#ifndef D\nint x;\n#endif")
        assert "int x;" in result.text

    def test_else_branch(self):
        result = preprocess(
            "#ifdef D\nint x;\n#else\nint y;\n#endif")
        assert "int x;" not in result.text
        assert "int y;" in result.text

    def test_nested_conditionals(self):
        source = ("#define A 1\n#ifdef A\n#ifdef B\nint x;\n#endif\n"
                  "int y;\n#endif")
        result = preprocess(source)
        assert "int x;" not in result.text
        assert "int y;" in result.text

    def test_defines_inside_untaken_branch_ignored(self):
        result = preprocess(
            "#ifdef NO\n#define N 1\n#endif\nint a[N];",
            predefined={"N": 2})
        assert "int a[2];" in result.text

    def test_unterminated_if_raises(self):
        with pytest.raises(PreprocessError):
            preprocess("#ifdef D\nint x;")

    def test_stray_endif_raises(self):
        with pytest.raises(PreprocessError):
            preprocess("#endif")

    def test_stray_else_raises(self):
        with pytest.raises(PreprocessError):
            preprocess("#else")


class TestMisc:
    def test_pragma_ignored(self):
        result = preprocess("#pragma once\nint x;")
        assert "int x;" in result.text

    def test_unknown_directive_raises(self):
        with pytest.raises(PreprocessError):
            preprocess("#frobnicate")

    def test_continuation_in_define(self):
        result = preprocess("#define N 1 + \\\n  2\nint x = N;")
        assert "int x = 1 +   2;" in result.text

    def test_shared_macro_state_isolated_between_instances(self):
        preprocess("#define N 1\n")
        result = preprocess("int a[N];", predefined={"N": 3})
        assert "int a[3];" in result.text

    def test_preprocessor_class_reuse(self):
        pp = Preprocessor(predefined={"K": 5})
        first = pp.process("int a[K];")
        assert "int a[5];" in first.text
