"""The parse memoization layer: repeat parses of one source must come
from cache, callers must get independent (or explicitly shared) ASTs,
and differing predefines/headers must not collide."""

import pytest

from repro.cfront.frontend import (
    parse_cache_clear,
    parse_cache_info,
    parse_program,
)

SOURCE = "int x = 3;\nint main(void) { return x; }"


@pytest.fixture(autouse=True)
def _fresh_cache():
    parse_cache_clear()
    yield
    parse_cache_clear()


def test_repeat_parse_hits_cache():
    parse_program(SOURCE)
    before = parse_cache_info()
    parse_program(SOURCE)
    after = parse_cache_info()
    assert after["hits"] == before["hits"] + 1
    assert after["misses"] == before["misses"]


def test_default_returns_are_independent_copies():
    first = parse_program(SOURCE)
    second = parse_program(SOURCE)
    assert first is not second
    # mutating one caller's AST must not leak into the next caller's
    first.decls[0].name = "mutated"
    assert parse_program(SOURCE).decls[0].name != "mutated"


def test_share_returns_the_master_copy():
    shared_one = parse_program(SOURCE, share=True)
    shared_two = parse_program(SOURCE, share=True)
    assert shared_one is shared_two


def test_predefines_are_part_of_the_key():
    with_a = parse_program("int main(void) { return N; }",
                           predefined={"N": 1})
    with_b = parse_program("int main(void) { return N; }",
                           predefined={"N": 2})
    assert parse_cache_info()["misses"] == 2
    assert with_a is not with_b


def test_cache_is_bounded():
    for index in range(80):
        parse_program("int main(void) { return %d; }" % index)
    info = parse_cache_info()
    assert info["entries"] <= info["max"]
