"""Symbol table tests."""

from repro.cfront import ctypes
from repro.cfront.parser import parse
from repro.cfront.symbols import Scope, Symbol, SymbolTableBuilder

SOURCE = """
int g;
int *p;
void f(int a) {
    int x;
    {
        double y;
    }
}
int main(void) {
    int x;
    return 0;
}
"""


class TestScope:
    def test_define_and_lookup(self):
        scope = Scope()
        symbol = Symbol("x", ctypes.INT, "local")
        scope.define(symbol)
        assert scope.lookup("x") is symbol

    def test_parent_fallback(self):
        parent = Scope()
        parent.define(Symbol("g", ctypes.INT, "global"))
        child = Scope(parent)
        assert child.lookup("g").name == "g"

    def test_shadowing(self):
        parent = Scope()
        parent.define(Symbol("x", ctypes.INT, "global"))
        child = Scope(parent)
        inner = Symbol("x", ctypes.DOUBLE, "local")
        child.define(inner)
        assert child.lookup("x") is inner
        assert parent.lookup("x") is not inner

    def test_contains(self):
        scope = Scope()
        scope.define(Symbol("a", ctypes.INT, "local"))
        assert "a" in scope
        assert "b" not in scope


class TestSymbolTableBuilder:
    def test_globals_collected(self):
        table = SymbolTableBuilder(parse(SOURCE))
        assert set(table.globals) == {"g", "p"}
        assert table.globals["g"].is_global

    def test_function_locals_collected(self):
        table = SymbolTableBuilder(parse(SOURCE))
        f_symbols = table.by_function["f"]
        assert set(f_symbols) == {"a", "x", "y"}
        assert f_symbols["a"].scope_kind == "param"
        assert f_symbols["x"].scope_kind == "local"

    def test_lookup_scoping(self):
        table = SymbolTableBuilder(parse(SOURCE))
        assert table.lookup("x", "f").function == "f"
        assert table.lookup("x", "main").function == "main"
        assert table.lookup("g", "f").is_global
        assert table.lookup("missing", "f") is None

    def test_same_name_different_functions_distinct(self):
        table = SymbolTableBuilder(parse(SOURCE))
        assert table.lookup("x", "f") is not table.lookup("x", "main")

    def test_all_symbols(self):
        table = SymbolTableBuilder(parse(SOURCE))
        names = [s.name for s in table.all_symbols()]
        assert names.count("x") == 2
        assert "g" in names

    def test_function_prototypes_not_variables(self):
        table = SymbolTableBuilder(parse("int f(int x); int g;"))
        assert set(table.globals) == {"g"}
