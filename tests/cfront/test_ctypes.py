"""C type model tests (IA-32 / ILP32 sizes)."""

import pytest

from repro.cfront import ctypes


class TestSizeof:
    @pytest.mark.parametrize("name,size", [
        ("char", 1), ("short", 2), ("int", 4), ("long", 4),
        ("long long", 8), ("float", 4), ("double", 8), ("void", 0),
        ("unsigned int", 4), ("unsigned long", 4),
    ])
    def test_primitive_sizes(self, name, size):
        assert ctypes.PrimitiveType(name).sizeof() == size

    def test_pointer_is_4_bytes(self):
        assert ctypes.PointerType(ctypes.DOUBLE).sizeof() == 4

    def test_array_size(self):
        assert ctypes.ArrayType(ctypes.INT, 3).sizeof() == 12

    def test_2d_array_size(self):
        inner = ctypes.ArrayType(ctypes.DOUBLE, 4)
        assert ctypes.ArrayType(inner, 3).sizeof() == 96

    def test_incomplete_array_size_zero(self):
        assert ctypes.ArrayType(ctypes.INT, None).sizeof() == 0

    def test_pthread_t_opaque_size(self):
        assert ctypes.NamedType("pthread_t").sizeof() == 4

    def test_pthread_mutex_t_size(self):
        assert ctypes.NamedType("pthread_mutex_t").sizeof() == 24

    def test_named_type_with_underlying(self):
        named = ctypes.NamedType("myint", ctypes.DOUBLE)
        assert named.sizeof() == 8

    def test_unknown_opaque_defaults_to_word(self):
        assert ctypes.NamedType("whatever_t").sizeof() == 4

    def test_struct_size_with_alignment(self):
        struct = ctypes.StructType("s", [("c", ctypes.CHAR),
                                         ("i", ctypes.INT)])
        assert struct.sizeof() == 8  # char padded to int boundary

    def test_union_size_is_max(self):
        union = ctypes.StructType("u", [("c", ctypes.CHAR),
                                        ("d", ctypes.DOUBLE)],
                                  is_union=True)
        assert union.sizeof() == 8

    def test_function_type_decays(self):
        ftype = ctypes.FunctionType(ctypes.INT, [ctypes.INT])
        assert ftype.sizeof() == 4

    def test_unknown_primitive_raises(self):
        with pytest.raises(ValueError):
            ctypes.PrimitiveType("quad")


class TestElementCount:
    def test_scalar(self):
        assert ctypes.INT.element_count() == 1

    def test_array(self):
        assert ctypes.ArrayType(ctypes.INT, 3).element_count() == 3

    def test_2d_array(self):
        inner = ctypes.ArrayType(ctypes.INT, 4)
        assert ctypes.ArrayType(inner, 3).element_count() == 12

    def test_pointer_is_one(self):
        assert ctypes.PointerType(ctypes.INT).element_count() == 1


class TestRendering:
    def test_simple(self):
        assert ctypes.INT.to_c("x") == "int x"

    def test_pointer(self):
        assert ctypes.PointerType(ctypes.INT).to_c("p") == "int *p"

    def test_pointer_to_pointer(self):
        ctype = ctypes.PointerType(ctypes.PointerType(ctypes.CHAR))
        assert ctype.to_c("argv") == "char **argv"

    def test_array(self):
        assert ctypes.ArrayType(ctypes.DOUBLE, 8).to_c("a") == \
            "double a[8]"

    def test_pointer_to_array_parenthesized(self):
        ctype = ctypes.PointerType(ctypes.ArrayType(ctypes.INT, 4))
        assert ctype.to_c("p") == "int (*p)[4]"

    def test_function_pointer(self):
        ftype = ctypes.FunctionType(ctypes.VOID, [ctypes.INT])
        ctype = ctypes.PointerType(ftype)
        assert ctype.to_c("handler") == "void (*handler)(int)"

    def test_function_no_params(self):
        ftype = ctypes.FunctionType(ctypes.INT, [])
        assert ftype.to_c("f") == "int f(void)"

    def test_struct_tag(self):
        struct = ctypes.StructType("point", [("x", ctypes.INT)])
        assert struct.to_c("p") == "struct point p"


class TestPredicates:
    def test_is_pointer(self):
        assert ctypes.PointerType(ctypes.INT).is_pointer
        assert not ctypes.INT.is_pointer

    def test_is_floating(self):
        assert ctypes.DOUBLE.is_floating
        assert ctypes.FLOAT.is_floating
        assert not ctypes.INT.is_floating

    def test_is_integral(self):
        assert ctypes.INT.is_integral
        assert not ctypes.DOUBLE.is_integral
        assert not ctypes.VOID.is_integral

    def test_strip_arrays(self):
        nested = ctypes.ArrayType(ctypes.ArrayType(ctypes.INT, 2), 3)
        assert ctypes.strip_arrays(nested) == ctypes.INT

    def test_pointee(self):
        assert ctypes.pointee(ctypes.PointerType(ctypes.INT)) == \
            ctypes.INT
        assert ctypes.pointee(ctypes.ArrayType(ctypes.INT, 3)) == \
            ctypes.INT
        assert ctypes.pointee(ctypes.INT) is None

    def test_equality(self):
        assert ctypes.PointerType(ctypes.INT) == \
            ctypes.PointerType(ctypes.INT)
        assert ctypes.PointerType(ctypes.INT) != \
            ctypes.PointerType(ctypes.DOUBLE)


class TestStructOffsets:
    def test_field_offsets(self):
        struct = ctypes.StructType("s", [
            ("a", ctypes.CHAR), ("b", ctypes.INT), ("c", ctypes.DOUBLE)])
        assert struct.field_offset("a") == 0
        assert struct.field_offset("b") == 4
        assert struct.field_offset("c") == 8

    def test_union_offsets_all_zero(self):
        union = ctypes.StructType("u", [("a", ctypes.INT),
                                        ("b", ctypes.DOUBLE)],
                                  is_union=True)
        assert union.field_offset("a") == 0
        assert union.field_offset("b") == 0

    def test_missing_field_raises(self):
        struct = ctypes.StructType("s", [("a", ctypes.INT)])
        with pytest.raises(KeyError):
            struct.field_offset("z")

    def test_field_type(self):
        struct = ctypes.StructType("s", [("a", ctypes.INT)])
        assert struct.field_type("a") == ctypes.INT
