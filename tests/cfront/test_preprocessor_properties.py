"""Property-based preprocessor tests."""

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.cfront.preprocessor import preprocess

_names = st.from_regex(r"[A-Z][A-Z0-9_]{0,8}", fullmatch=True)
_values = st.integers(min_value=0, max_value=10 ** 6)


class TestMacroProperties:
    @settings(max_examples=100, deadline=None)
    @given(_names, _values)
    def test_define_substitutes_exact_value(self, name, value):
        assume(name not in ("IF", "DO"))  # avoid keyword-ish noise
        result = preprocess("#define %s %d\nint a[%s];"
                            % (name, value, name))
        assert "int a[%d];" % value in result.text

    @settings(max_examples=100, deadline=None)
    @given(_names, _values, _values)
    def test_redefinition_last_wins(self, name, first, second):
        result = preprocess(
            "#define %s %d\n#define %s %d\nint x = %s;"
            % (name, first, name, second, name))
        assert "int x = %d;" % second in result.text

    @settings(max_examples=100, deadline=None)
    @given(st.dictionaries(_names, _values, min_size=1, max_size=5))
    def test_many_macros_independent(self, macros):
        lines = ["#define %s %d" % (name, value)
                 for name, value in macros.items()]
        uses = ["int v%d = %s;" % (index, name)
                for index, name in enumerate(macros)]
        result = preprocess("\n".join(lines + uses))
        for index, (name, value) in enumerate(macros.items()):
            assert "int v%d = %d;" % (index, value) in result.text

    @settings(max_examples=60, deadline=None)
    @given(_names, _values)
    def test_text_without_macro_untouched(self, name, value):
        source = "int unrelated = 1;\nchar *s = \"keep\";"
        result = preprocess("#define %s %d\n%s" % (name, value, source))
        assert "int unrelated = 1;" in result.text
        assert '"keep"' in result.text

    @settings(max_examples=60, deadline=None)
    @given(_names, _values)
    def test_undef_round_trip(self, name, value):
        result = preprocess(
            "#define %s %d\n#undef %s\nint %s;" % (name, value, name,
                                                   name))
        assert "int %s;" % name in result.text

    @settings(max_examples=60, deadline=None)
    @given(_values)
    def test_line_count_preserved(self, value):
        source = "#define K %d\nint a;\nint b[K];\nint c;" % value
        result = preprocess(source)
        assert result.text.count("\n") == source.count("\n")
