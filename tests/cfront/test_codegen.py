"""Code generator tests, including parse -> generate round trips."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cfront import c_ast, ctypes
from repro.cfront.codegen import generate
from repro.cfront.parser import parse


def roundtrip(source):
    """generate(parse(source)) must re-parse to the same C text."""
    first = generate(parse(source))
    second = generate(parse(first))
    assert first == second
    return first


class TestExpressions:
    def test_simple_binop(self):
        expr = c_ast.BinaryOp("+", c_ast.Id("a"), c_ast.Id("b"))
        assert generate(expr) == "a + b"

    def test_precedence_parens_preserved(self):
        text = roundtrip("int x = (a + b) * c;")
        assert "(a + b) * c" in text

    def test_no_spurious_parens(self):
        text = roundtrip("int x = a + b * c;")
        assert "a + b * c" in text

    def test_unary_minus_of_sum(self):
        text = roundtrip("int x = -(a + b);")
        assert "-(a + b)" in text

    def test_nested_assignment(self):
        text = roundtrip("void f(void) { a = b = c; }")
        assert "a = b = c;" in text

    def test_ternary(self):
        text = roundtrip("int x = a ? b : c;")
        assert "a ? b : c" in text

    def test_cast_rendering(self):
        text = roundtrip("void f(void) { x = (void *)t; }")
        assert "(void *)t" in text

    def test_sizeof_type(self):
        text = roundtrip("int s = sizeof(double);")
        assert "sizeof(double)" in text

    def test_array_ref(self):
        text = roundtrip("void f(void) { a[i] = b[i][j]; }")
        assert "a[i] = b[i][j];" in text

    def test_string_escapes(self):
        expr = c_ast.StringLiteral("a\nb\"c")
        assert generate(expr) == '"a\\nb\\"c"'

    def test_pointer_deref_assignment(self):
        text = roundtrip("void f(void) { *p = *q + 1; }")
        assert "*p = *q + 1;" in text

    def test_postfix_increment(self):
        text = roundtrip("void f(void) { i++; --j; }")
        assert "i++;" in text
        assert "--j;" in text


class TestDeclarations:
    def test_global_with_init(self):
        assert "int x = 5;" in roundtrip("int x = 5;")

    def test_array_decl(self):
        assert "int sum[3] = {0};" in roundtrip("int sum[3] = {0};")

    def test_pointer_decl(self):
        assert "int *p;" in roundtrip("int *p;")

    def test_function_pointer_decl(self):
        text = roundtrip("void (*handler)(int);")
        assert "void (*handler)(int);" in text

    def test_static_storage(self):
        assert "static int s;" in roundtrip("static int s;")

    def test_struct_definition(self):
        text = roundtrip("struct point { int x; int y; };")
        assert "struct point {" in text


class TestStatements:
    def test_if_else(self):
        text = roundtrip(
            "void f(void) { if (x) { y = 1; } else { y = 2; } }")
        assert "if (x)" in text
        assert "else" in text

    def test_for_loop(self):
        text = roundtrip(
            "void f(void) { for (i = 0; i < 10; i++) { s += i; } }")
        assert "for (i = 0; i < 10; i++)" in text

    def test_for_with_decl(self):
        text = roundtrip(
            "void f(void) { for (int i = 0; i < 3; i++) ; }")
        assert "for (int i = 0; i < 3; i++)" in text

    def test_while(self):
        text = roundtrip("void f(void) { while (n > 0) n--; }")
        assert "while (n > 0)" in text

    def test_do_while(self):
        text = roundtrip("void f(void) { do { n--; } while (n); }")
        assert "do" in text
        assert "while (n);" in text

    def test_switch(self):
        text = roundtrip(
            "void f(void) { switch (x) { case 1: y = 1; break; "
            "default: y = 0; } }")
        assert "switch (x)" in text
        assert "case 1:" in text
        assert "default:" in text

    def test_return_value_parenthesized(self):
        text = roundtrip("int f(void) { return 0; }")
        assert "return (0);" in text

    def test_includes_emitted(self):
        unit = parse("int x;", includes=["stdio.h", "RCCE.h"])
        text = generate(unit)
        assert text.startswith("#include <stdio.h>\n#include <RCCE.h>")


class TestRoundTripPrograms:
    def test_example_4_1_round_trips(self):
        from repro.bench.programs import EXAMPLE_4_1
        from repro.cfront.frontend import parse_program
        first = generate(parse_program(EXAMPLE_4_1))
        # strip includes before re-parsing (parse() is post-preprocess)
        body = "\n".join(line for line in first.splitlines()
                         if not line.startswith("#include"))
        second = generate(parse(body))
        body2 = "\n".join(line for line in second.splitlines()
                          if not line.startswith("#include"))
        assert body.strip() == body2.strip()

    def test_all_benchmarks_round_trip(self):
        from repro.bench.programs import BENCHMARKS
        from repro.cfront.frontend import parse_program
        for name, builder in BENCHMARKS.items():
            source = builder(nthreads=4)
            first = generate(parse_program(source))
            body = "\n".join(l for l in first.splitlines()
                             if not l.startswith("#include"))
            second = generate(parse(body))
            body2 = "\n".join(l for l in second.splitlines()
                              if not l.startswith("#include"))
            assert body.strip() == body2.strip(), name


# -- property-based round-trip over generated expressions ------------------

_names = st.sampled_from(["a", "b", "c", "x", "y"])
_ints = st.integers(min_value=0, max_value=999)


def _leaf():
    return st.one_of(
        _names.map(c_ast.Id),
        _ints.map(lambda v: c_ast.Constant("int", v, str(v))),
    )


def _expr_strategy():
    binops = st.sampled_from(["+", "-", "*", "/", "%", "<", ">", "==",
                              "&&", "||", "&", "|", "^", "<<", ">>"])
    unops = st.sampled_from(["-", "!", "~"])
    return st.recursive(
        _leaf(),
        lambda children: st.one_of(
            st.tuples(binops, children, children).map(
                lambda t: c_ast.BinaryOp(t[0], t[1], t[2])),
            st.tuples(unops, children).map(
                lambda t: c_ast.UnaryOp(t[0], t[1])),
            st.tuples(children, children, children).map(
                lambda t: c_ast.TernaryOp(t[0], t[1], t[2])),
        ),
        max_leaves=12,
    )


def _expr_fingerprint(expr):
    """Structure + values, ignoring coordinates."""
    if isinstance(expr, c_ast.Id):
        return ("id", expr.name)
    if isinstance(expr, c_ast.Constant):
        return ("const", expr.value)
    if isinstance(expr, c_ast.BinaryOp):
        return ("bin", expr.op, _expr_fingerprint(expr.left),
                _expr_fingerprint(expr.right))
    if isinstance(expr, c_ast.UnaryOp):
        return ("un", expr.op, _expr_fingerprint(expr.operand))
    if isinstance(expr, c_ast.TernaryOp):
        return ("tern", _expr_fingerprint(expr.cond),
                _expr_fingerprint(expr.then), _expr_fingerprint(expr.els))
    raise AssertionError("unexpected node %r" % expr)


class TestExpressionRoundTripProperty:
    @settings(max_examples=200, deadline=None)
    @given(_expr_strategy())
    def test_generate_parse_preserves_structure(self, expr):
        """Rendering an arbitrary expression and re-parsing it must
        reproduce the exact same tree (precedence correctness)."""
        text = generate(expr)
        unit = parse("void f(void) { x = %s; }" % text)
        stmt = unit.functions()[0].body.items[0]
        reparsed = stmt.expr.rvalue
        assert _expr_fingerprint(reparsed) == _expr_fingerprint(expr)
