"""Property: arbitrary declarations survive a generate -> parse round
trip with identical types (the declarator grammar is the hairiest part
of C)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cfront import c_ast, ctypes
from repro.cfront.codegen import generate
from repro.cfront.parser import parse

_base_types = st.sampled_from([
    ctypes.INT, ctypes.CHAR, ctypes.DOUBLE, ctypes.FLOAT,
    ctypes.LONG, ctypes.UINT,
])


def _type_strategy():
    return st.recursive(
        _base_types,
        lambda children: st.one_of(
            children.map(ctypes.PointerType),
            st.tuples(children,
                      st.integers(min_value=1, max_value=64)).map(
                lambda t: ctypes.ArrayType(t[0], t[1])),
        ),
        max_leaves=4,
    )


def _valid(ctype):
    """C forbids arrays of functions etc.; arrays of arrays-of-pointers
    are fine.  Our strategy only builds pointer/array stacks, which are
    all legal."""
    return True


def _normalize(ctype):
    """Structural fingerprint of a type."""
    if isinstance(ctype, ctypes.PointerType):
        return ("ptr", _normalize(ctype.base))
    if isinstance(ctype, ctypes.ArrayType):
        return ("arr", ctype.length, _normalize(ctype.base))
    return ("prim", ctype.name)


class TestDeclarationRoundTrip:
    @settings(max_examples=200, deadline=None)
    @given(_type_strategy())
    def test_global_declaration(self, ctype):
        decl = c_ast.Decl("v", ctype)
        text = generate(c_ast.TranslationUnit([decl]))
        unit = parse(text)
        reparsed = unit.global_decls()[0]
        assert reparsed.name == "v"
        assert _normalize(reparsed.ctype) == _normalize(ctype)

    @settings(max_examples=100, deadline=None)
    @given(_type_strategy(), _type_strategy())
    def test_two_declarations_independent(self, first, second):
        unit_in = c_ast.TranslationUnit([
            c_ast.Decl("a", first), c_ast.Decl("b", second)])
        unit = parse(generate(unit_in))
        decls = unit.global_decls()
        assert _normalize(decls[0].ctype) == _normalize(first)
        assert _normalize(decls[1].ctype) == _normalize(second)

    @settings(max_examples=100, deadline=None)
    @given(_type_strategy())
    def test_sizeof_stable_across_roundtrip(self, ctype):
        decl = c_ast.Decl("v", ctype)
        unit = parse(generate(c_ast.TranslationUnit([decl])))
        assert unit.global_decls()[0].ctype.sizeof() == ctype.sizeof()
