"""Parser unit tests."""

import pytest

from repro.cfront import c_ast, ctypes
from repro.cfront.errors import ParseError
from repro.cfront.parser import parse


def parse_expr(text):
    """Parse an expression by wrapping it in a function body."""
    unit = parse("void f(void) { %s; }" % text)
    stmt = unit.functions()[0].body.items[0]
    assert isinstance(stmt, c_ast.ExprStmt)
    return stmt.expr


def parse_stmt(text):
    unit = parse("void f(void) { %s }" % text)
    return unit.functions()[0].body.items[0]


class TestDeclarations:
    def test_global_scalar(self):
        unit = parse("int x;")
        decl = unit.decls[0]
        assert decl.name == "x"
        assert decl.ctype == ctypes.INT

    def test_pointer(self):
        unit = parse("int *p;")
        assert unit.decls[0].ctype == ctypes.PointerType(ctypes.INT)

    def test_pointer_to_pointer(self):
        unit = parse("char **argv;")
        ctype = unit.decls[0].ctype
        assert isinstance(ctype, ctypes.PointerType)
        assert isinstance(ctype.base, ctypes.PointerType)

    def test_array(self):
        unit = parse("double a[10];")
        ctype = unit.decls[0].ctype
        assert isinstance(ctype, ctypes.ArrayType)
        assert ctype.length == 10
        assert ctype.base == ctypes.DOUBLE

    def test_two_dimensional_array(self):
        unit = parse("int m[3][4];")
        ctype = unit.decls[0].ctype
        assert ctype.length == 3
        assert ctype.base.length == 4

    def test_array_length_constant_expression(self):
        unit = parse("int a[4 * 8];")
        assert unit.decls[0].ctype.length == 32

    def test_multiple_declarators(self):
        unit = parse("int a, *b, c[2];")
        names = [d.name for d in unit.decls]
        assert names == ["a", "b", "c"]
        assert isinstance(unit.decls[1].ctype, ctypes.PointerType)
        assert isinstance(unit.decls[2].ctype, ctypes.ArrayType)

    def test_initializer(self):
        unit = parse("int x = 5;")
        assert isinstance(unit.decls[0].init, c_ast.Constant)
        assert unit.decls[0].init.value == 5

    def test_init_list(self):
        unit = parse("int a[3] = {1, 2, 3};")
        init = unit.decls[0].init
        assert isinstance(init, c_ast.InitList)
        assert [e.value for e in init.exprs] == [1, 2, 3]

    def test_storage_classes(self):
        unit = parse("static int s; extern int e;")
        assert unit.decls[0].storage == "static"
        assert unit.decls[1].storage == "extern"

    def test_qualifiers(self):
        unit = parse("const int c = 1;")
        assert "const" in unit.decls[0].quals

    def test_unsigned_combinations(self):
        unit = parse("unsigned int a; unsigned long b; "
                     "long long c; unsigned d;")
        names = [d.ctype.name for d in unit.decls]
        assert names == ["unsigned int", "unsigned long", "long long",
                         "unsigned int"]

    def test_typedef_introduces_type_name(self):
        unit = parse("typedef int myint; myint x;")
        assert unit.decls[1].ctype.name == "myint"

    def test_pthread_t_known(self):
        unit = parse("pthread_t threads[3];")
        ctype = unit.decls[0].ctype
        assert isinstance(ctype, ctypes.ArrayType)
        assert ctype.base.name == "pthread_t"

    def test_struct_definition(self):
        unit = parse("struct point { int x; int y; };")
        struct = unit.decls[0].struct_type
        assert struct.name == "point"
        assert [f[0] for f in struct.fields] == ["x", "y"]

    def test_struct_variable(self):
        unit = parse("struct point { int x; int y; } ;"
                     "struct point p;")
        decl = unit.decls[1]
        assert isinstance(decl.ctype, ctypes.StructType)
        assert decl.ctype.fields is not None

    def test_function_pointer_declarator(self):
        unit = parse("void (*handler)(int);")
        ctype = unit.decls[0].ctype
        assert isinstance(ctype, ctypes.PointerType)
        assert isinstance(ctype.base, ctypes.FunctionType)


class TestFunctions:
    def test_simple_function(self):
        unit = parse("int add(int a, int b) { return a + b; }")
        func = unit.functions()[0]
        assert func.name == "add"
        assert func.return_type == ctypes.INT
        assert [p.name for p in func.params] == ["a", "b"]

    def test_void_params(self):
        unit = parse("int f(void) { return 0; }")
        assert unit.functions()[0].params == []

    def test_pointer_return(self):
        unit = parse("void *tf(void *arg) { return arg; }")
        func = unit.functions()[0]
        assert isinstance(func.return_type, ctypes.PointerType)

    def test_prototype_is_decl_not_funcdef(self):
        unit = parse("int f(int x);")
        assert unit.functions() == []
        assert unit.decls[0].ctype.is_function

    def test_array_param_decays(self):
        unit = parse("int f(int a[]) { return a[0]; }")
        param = unit.functions()[0].params[0]
        assert isinstance(param.ctype, ctypes.PointerType)

    def test_varargs(self):
        unit = parse("int my_printf(char *fmt, ...);")
        assert unit.decls[0].ctype.varargs


class TestStatements:
    def test_if_else(self):
        stmt = parse_stmt("if (x) { y = 1; } else { y = 2; }")
        assert isinstance(stmt, c_ast.If)
        assert stmt.els is not None

    def test_dangling_else(self):
        stmt = parse_stmt("if (a) if (b) x = 1; else x = 2;")
        assert stmt.els is None
        assert stmt.then.els is not None

    def test_while(self):
        stmt = parse_stmt("while (i < 10) i++;")
        assert isinstance(stmt, c_ast.While)

    def test_do_while(self):
        stmt = parse_stmt("do { i++; } while (i < 10);")
        assert isinstance(stmt, c_ast.DoWhile)

    def test_for_with_decl(self):
        stmt = parse_stmt("for (int i = 0; i < 10; i++) ;")
        assert isinstance(stmt.init, c_ast.DeclStmt)

    def test_for_with_expr_init(self):
        stmt = parse_stmt("for (i = 0; i < 10; i++) ;")
        assert isinstance(stmt.init, c_ast.ExprStmt)

    def test_for_empty_clauses(self):
        stmt = parse_stmt("for (;;) break;")
        assert stmt.init is None
        assert stmt.cond is None
        assert stmt.step is None

    def test_break_continue_return(self):
        unit = parse("void f(void) { for(;;) { break; continue; } "
                     "return; }")
        body = unit.functions()[0].body.items[0].body
        assert isinstance(body.items[0], c_ast.Break)
        assert isinstance(body.items[1], c_ast.Continue)

    def test_switch_cases(self):
        stmt = parse_stmt(
            "switch (x) { case 1: y = 1; break; default: y = 0; }")
        assert isinstance(stmt, c_ast.Switch)
        assert isinstance(stmt.body.items[0], c_ast.Case)
        assert isinstance(stmt.body.items[1], c_ast.Default)

    def test_goto_and_label(self):
        stmt = parse_stmt("top: x = 1;")
        assert isinstance(stmt, c_ast.Label)
        assert stmt.name == "top"

    def test_nested_blocks(self):
        stmt = parse_stmt("{ { int x; } }")
        assert isinstance(stmt, c_ast.Compound)


class TestExpressions:
    def test_precedence_mul_over_add(self):
        expr = parse_expr("a + b * c")
        assert expr.op == "+"
        assert expr.right.op == "*"

    def test_left_associativity(self):
        expr = parse_expr("a - b - c")
        assert expr.op == "-"
        assert expr.left.op == "-"

    def test_assignment_right_associative(self):
        expr = parse_expr("a = b = c")
        assert isinstance(expr.rvalue, c_ast.Assignment)

    def test_compound_assignment(self):
        expr = parse_expr("x += 2")
        assert expr.op == "+="

    def test_ternary(self):
        expr = parse_expr("a ? b : c")
        assert isinstance(expr, c_ast.TernaryOp)

    def test_logical_short_circuit_structure(self):
        expr = parse_expr("a && b || c")
        assert expr.op == "||"
        assert expr.left.op == "&&"

    def test_unary_operators(self):
        for op in ("-", "!", "~", "*", "&"):
            expr = parse_expr("%sx" % op)
            assert isinstance(expr, c_ast.UnaryOp)
            assert expr.op == op

    def test_prefix_and_postfix_increments(self):
        assert parse_expr("++i").op == "++"
        assert parse_expr("i++").op == "p++"
        assert parse_expr("i--").op == "p--"

    def test_cast(self):
        expr = parse_expr("(int)x")
        assert isinstance(expr, c_ast.Cast)
        assert expr.ctype == ctypes.INT

    def test_cast_to_pointer(self):
        expr = parse_expr("(void *)t")
        assert isinstance(expr, c_ast.Cast)
        assert isinstance(expr.ctype, ctypes.PointerType)

    def test_parenthesized_expr_not_cast(self):
        expr = parse_expr("(x) + 1")
        assert isinstance(expr, c_ast.BinaryOp)

    def test_sizeof_type(self):
        expr = parse_expr("sizeof(double)")
        assert isinstance(expr, c_ast.SizeofType)
        assert expr.ctype == ctypes.DOUBLE

    def test_sizeof_expr(self):
        expr = parse_expr("sizeof x")
        assert isinstance(expr, c_ast.UnaryOp)
        assert expr.op == "sizeof"

    def test_function_call_args(self):
        expr = parse_expr("f(1, a, b + c)")
        assert isinstance(expr, c_ast.FuncCall)
        assert expr.callee_name == "f"
        assert len(expr.args) == 3

    def test_array_subscript_chain(self):
        expr = parse_expr("m[i][j]")
        assert isinstance(expr, c_ast.ArrayRef)
        assert isinstance(expr.base, c_ast.ArrayRef)

    def test_member_access(self):
        dot = parse_expr("p.x")
        arrow = parse_expr("p->x")
        assert not dot.arrow
        assert arrow.arrow

    def test_comma_expression(self):
        expr = parse_expr("a = 1, b = 2")
        assert isinstance(expr, c_ast.Comma)
        assert len(expr.exprs) == 2

    def test_string_concatenation(self):
        expr = parse_expr('"ab" "cd"')
        assert isinstance(expr, c_ast.StringLiteral)
        assert expr.value == "abcd"

    def test_pthread_create_call_shape(self):
        expr = parse_expr(
            "pthread_create(&threads[i], NULL, tf, (void *)i)")
        assert expr.callee_name == "pthread_create"
        assert len(expr.args) == 4
        assert isinstance(expr.args[0], c_ast.UnaryOp)
        assert isinstance(expr.args[3], c_ast.Cast)


class TestErrors:
    def test_missing_semicolon(self):
        with pytest.raises(ParseError):
            parse("int x")

    def test_unbalanced_brace(self):
        with pytest.raises(ParseError):
            parse("void f(void) { if (x) {")

    def test_garbage_expression(self):
        with pytest.raises(ParseError):
            parse("void f(void) { x = ; }")

    def test_error_has_location(self):
        with pytest.raises(ParseError) as info:
            parse("int x;\nint = 4;")
        assert info.value.line == 2


class TestParentLinks:
    def test_parents_linked(self):
        unit = parse("void f(void) { int x; x = 1; }")
        func = unit.functions()[0]
        assert func.parent is unit
        assert func.body.parent is func

    def test_walk_covers_all(self):
        unit = parse("int a; void f(void) { a = 1 + 2; }")
        names = [type(n).__name__ for n in c_ast.walk(unit)]
        assert "TranslationUnit" in names
        assert "Assignment" in names
        assert "BinaryOp" in names
