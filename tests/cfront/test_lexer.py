"""Lexer unit tests."""

import pytest

from repro.cfront.errors import LexError
from repro.cfront.lexer import Lexer, tokenize
from repro.cfront.tokens import TokenKind as K


def kinds(source):
    return [t.kind for t in tokenize(source)][:-1]  # drop EOF


def values(source):
    return [t.value for t in tokenize(source)][:-1]


class TestBasicTokens:
    def test_empty_source_yields_only_eof(self):
        tokens = tokenize("")
        assert len(tokens) == 1
        assert tokens[0].kind is K.EOF

    def test_whitespace_only(self):
        assert kinds("  \t\n  \r\n") == []

    def test_identifier(self):
        assert kinds("foo") == [K.IDENT]

    def test_identifier_with_underscore_and_digits(self):
        assert values("_foo_2bar") == ["_foo_2bar"]

    def test_keyword_recognized(self):
        assert kinds("while") == [K.KW_WHILE]

    def test_keyword_prefix_is_identifier(self):
        assert kinds("whilex") == [K.IDENT]

    def test_all_keywords(self):
        source = "int char void for if else return struct typedef"
        assert kinds(source) == [
            K.KW_INT, K.KW_CHAR, K.KW_VOID, K.KW_FOR, K.KW_IF,
            K.KW_ELSE, K.KW_RETURN, K.KW_STRUCT, K.KW_TYPEDEF,
        ]


class TestNumbers:
    def test_decimal_int(self):
        token = tokenize("42")[0]
        assert token.kind is K.INT_CONST
        assert token.value == "42"

    def test_hex_int(self):
        token = tokenize("0xFF")[0]
        assert token.kind is K.INT_CONST
        assert int(token.value, 0) == 255

    def test_int_suffixes_skipped(self):
        assert kinds("10UL 5LL 7u") == [K.INT_CONST] * 3

    def test_float(self):
        token = tokenize("3.25")[0]
        assert token.kind is K.FLOAT_CONST

    def test_float_exponent(self):
        assert kinds("1e10 1.5e-3 2E+4") == [K.FLOAT_CONST] * 3

    def test_float_leading_dot(self):
        assert kinds(".5") == [K.FLOAT_CONST]

    def test_float_suffix(self):
        assert kinds("1.0f") == [K.FLOAT_CONST]

    def test_integer_then_member_access_not_float(self):
        # "x.y" after ident must not eat the dot as a float
        assert kinds("a.b") == [K.IDENT, K.DOT, K.IDENT]

    def test_malformed_hex_raises(self):
        with pytest.raises(LexError):
            tokenize("0x")


class TestStringsAndChars:
    def test_string(self):
        token = tokenize('"hello"')[0]
        assert token.kind is K.STRING
        assert token.value == "hello"

    def test_string_escapes(self):
        token = tokenize(r'"a\nb\tc\\d"')[0]
        assert token.value == "a\nb\tc\\d"

    def test_hex_escape(self):
        token = tokenize(r'"\x41"')[0]
        assert token.value == "A"

    def test_unterminated_string_raises(self):
        with pytest.raises(LexError):
            tokenize('"oops')

    def test_newline_in_string_raises(self):
        with pytest.raises(LexError):
            tokenize('"a\nb"')

    def test_char_constant(self):
        token = tokenize("'x'")[0]
        assert token.kind is K.CHAR_CONST
        assert token.value == "x"

    def test_char_escape(self):
        token = tokenize(r"'\n'")[0]
        assert token.value == "\n"

    def test_empty_char_raises(self):
        with pytest.raises(LexError):
            tokenize("''")


class TestOperators:
    def test_multichar_greedy(self):
        assert kinds("<<= >>= ... -> ++ -- << >>") == [
            K.LSHIFT_ASSIGN, K.RSHIFT_ASSIGN, K.ELLIPSIS, K.ARROW,
            K.PLUSPLUS, K.MINUSMINUS, K.LSHIFT, K.RSHIFT,
        ]

    def test_compound_assignment(self):
        assert kinds("+= -= *= /= %= &= |= ^=") == [
            K.PLUS_ASSIGN, K.MINUS_ASSIGN, K.STAR_ASSIGN,
            K.SLASH_ASSIGN, K.PERCENT_ASSIGN, K.AMP_ASSIGN,
            K.PIPE_ASSIGN, K.CARET_ASSIGN,
        ]

    def test_comparison(self):
        assert kinds("< > <= >= == !=") == [
            K.LT, K.GT, K.LE, K.GE, K.EQ, K.NE,
        ]

    def test_plusplus_vs_plus(self):
        assert kinds("a+++b") == [K.IDENT, K.PLUSPLUS, K.PLUS, K.IDENT]


class TestComments:
    def test_line_comment(self):
        assert kinds("a // comment\n b") == [K.IDENT, K.IDENT]

    def test_block_comment(self):
        assert kinds("a /* x\ny */ b") == [K.IDENT, K.IDENT]

    def test_unterminated_block_comment_raises(self):
        with pytest.raises(LexError):
            tokenize("/* oops")

    def test_comment_inside_string_preserved(self):
        token = tokenize('"/* not a comment */"')[0]
        assert token.value == "/* not a comment */"


class TestCoordinates:
    def test_line_and_column_tracking(self):
        tokens = tokenize("a\n  bb\nccc")
        assert (tokens[0].line, tokens[0].column) == (1, 1)
        assert (tokens[1].line, tokens[1].column) == (2, 3)
        assert (tokens[2].line, tokens[2].column) == (3, 1)

    def test_error_carries_position(self):
        with pytest.raises(LexError) as info:
            tokenize("abc\n  @")
        assert info.value.line == 2
        assert info.value.column == 3

    def test_preprocessor_directive_rejected(self):
        with pytest.raises(LexError):
            tokenize("#include <x.h>")

    def test_line_continuation_in_code(self):
        assert kinds("a\\\nb") == [K.IDENT, K.IDENT]


class TestFullProgram:
    def test_example_4_1_token_stream(self):
        source = """
        int sum[3] = {0};
        void *tf(void *tid) { return NULL; }
        """
        token_kinds = kinds(source)
        assert K.KW_INT in token_kinds
        assert K.LBRACKET in token_kinds
        assert K.STAR in token_kinds
        assert token_kinds[-1] is K.RBRACE

    def test_lexer_object_reusable_state(self):
        lexer = Lexer("int x;")
        tokens = lexer.tokenize()
        assert [t.kind for t in tokens] == [
            K.KW_INT, K.IDENT, K.SEMI, K.EOF]
