"""Frontend facade and error-type tests."""

import pytest

from repro.cfront.errors import CFrontError, LexError, ParseError
from repro.cfront.frontend import ENVIRONMENT_HEADERS, parse_program


class TestParseProgram:
    def test_includes_recorded(self):
        unit = parse_program("#include <stdio.h>\nint x;")
        assert unit.includes == ["stdio.h"]

    def test_predefined_macros(self):
        unit = parse_program("int a[N];", predefined={"N": 5})
        assert unit.global_decls()[0].ctype.length == 5

    def test_header_map(self):
        unit = parse_program(
            '#include "sizes.h"\nint a[BIG];',
            header_map={"sizes.h": "#define BIG 64\n"})
        assert unit.global_decls()[0].ctype.length == 64

    def test_environment_headers_known(self):
        assert "pthread.h" in ENVIRONMENT_HEADERS
        assert "RCCE.h" in ENVIRONMENT_HEADERS

    def test_filename_in_errors(self):
        with pytest.raises(ParseError) as info:
            parse_program("int = 1;", filename="broken.c")
        assert info.value.filename == "broken.c"


class TestErrorFormatting:
    def test_message_with_coordinates(self):
        error = CFrontError("bad thing", line=3, column=7,
                            filename="f.c")
        assert "bad thing" in str(error)
        assert "f.c" in str(error)
        assert "line 3" in str(error)
        assert "col 7" in str(error)

    def test_message_without_coordinates(self):
        assert str(CFrontError("oops")) == "oops"

    def test_hierarchy(self):
        assert issubclass(LexError, CFrontError)
        assert issubclass(ParseError, CFrontError)

    def test_lex_error_is_catchable_as_cfront(self):
        with pytest.raises(CFrontError):
            parse_program("int x = @;")
