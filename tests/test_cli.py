"""CLI tests (python -m repro)."""

import io

import pytest

from repro.bench.programs import EXAMPLE_4_1
from repro.cli import build_parser, main


@pytest.fixture
def example_file(tmp_path):
    path = tmp_path / "example.c"
    path.write_text(EXAMPLE_4_1)
    return str(path)


def run_cli(argv):
    out = io.StringIO()
    code = main(argv, out)
    return code, out.getvalue()


def run_cli_err(argv):
    out, err = io.StringIO(), io.StringIO()
    code = main(argv, out, err)
    return code, out.getvalue(), err.getvalue()


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_policy_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["translate", "x.c", "--policy", "magic"])


class TestTranslate:
    def test_to_stdout(self, example_file):
        code, output = run_cli(["translate", example_file])
        assert code == 0
        assert "RCCE_APP" in output
        assert "RCCE_shmalloc" in output or "RCCE_malloc" in output

    def test_to_file(self, example_file, tmp_path):
        out_path = str(tmp_path / "out.c")
        code, output = run_cli(
            ["translate", example_file, "-o", out_path])
        assert code == 0
        with open(out_path) as handle:
            assert "RCCE_init" in handle.read()

    def test_off_chip_policy(self, example_file):
        _, output = run_cli(["translate", example_file,
                             "--policy", "off-chip-only"])
        assert "RCCE_shmalloc" in output
        assert "RCCE_malloc(" not in output

    def test_capacity_override(self, example_file):
        # 8 bytes: sum (12 B) must spill off-chip
        _, output = run_cli(["translate", example_file,
                             "--capacity", "8"])
        assert "sum = (int *)RCCE_shmalloc" in output


class TestAnalyze:
    def test_tables_printed(self, example_file):
        code, output = run_cli(["analyze", example_file])
        assert code == 0
        assert "Sharing status per stage" in output
        assert "tmp" in output
        assert "Partition plan" in output

    def test_plan_lists_banks(self, example_file):
        _, output = run_cli(["analyze", example_file,
                             "--policy", "off-chip-only"])
        assert "off-chip" in output


class TestRun:
    def test_compare_mode(self, example_file):
        code, output = run_cli(["run", example_file, "--ues", "3"])
        assert code == 0
        assert "pthread x1 core" in output
        assert "rcce    x3 cores" in output
        assert "speedup:" in output

    def test_pthread_only(self, example_file):
        code, output = run_cli(["run", example_file,
                                "--mode", "pthread"])
        assert code == 0
        assert "rcce" not in output

    def test_native_rcce_program(self, tmp_path):
        path = tmp_path / "native.c"
        path.write_text("""
        #include <stdio.h>
        #include <RCCE.h>
        int RCCE_APP(int argc, char **argv) {
            RCCE_init(&argc, &argv);
            printf("ue %d\\n", RCCE_ue());
            return 0;
        }
        """)
        code, output = run_cli(["run", str(path), "--mode", "rcce",
                                "--ues", "2"])
        assert code == 0
        assert "x2 cores" in output

    def test_fold_flag(self, tmp_path):
        from repro.bench.programs import benchmark_source
        path = tmp_path / "pi.c"
        path.write_text(benchmark_source("pi", nthreads=8, steps=128))
        code, output = run_cli(["run", str(path), "--ues", "2",
                                "--fold", "--mode", "rcce"])
        assert code == 0


DEADLOCK_KERNEL = """
int RCCE_APP(int argc, char **argv) {
    int myID;
    RCCE_init(&argc, &argv);
    myID = RCCE_ue();
    if (myID == 0) {
        RCCE_acquire_lock(0);
        RCCE_barrier(&RCCE_COMM_WORLD);
        RCCE_acquire_lock(1);
    } else {
        RCCE_acquire_lock(1);
        RCCE_barrier(&RCCE_COMM_WORLD);
        RCCE_acquire_lock(0);
    }
    RCCE_finalize();
    return 0;
}
"""


class TestErrorHandling:
    def test_missing_input_exits_66(self):
        code, _, err = run_cli_err(["translate", "/no/such/file.c"])
        assert code == 66
        assert "cannot read input" in err
        assert len(err.strip().splitlines()) == 1

    def test_parse_error_exits_65(self, tmp_path):
        path = tmp_path / "bad.c"
        path.write_text("int main( { return 0; }")
        code, _, err = run_cli_err(["translate", str(path)])
        assert code == 65
        assert "parse error" in err

    def test_bad_fault_spec_exits_2(self, example_file):
        code, _, err = run_cli_err(
            ["run", example_file, "--mode", "pthread",
             "--faults", "gamma_ray:p=1"])
        assert code == 2
        assert "bad --faults spec" in err

    def test_deadlock_exits_75(self, tmp_path):
        path = tmp_path / "deadlock.c"
        path.write_text(DEADLOCK_KERNEL)
        code, _, err = run_cli_err(
            ["run", str(path), "--mode", "rcce", "--ues", "2",
             "--watchdog-timeout", "5"])
        assert code == 75
        assert "simulation timed out" in err
        assert "deadlock" in err

    def test_step_budget_exits_75(self, tmp_path):
        path = tmp_path / "spin.c"
        path.write_text("""
        int RCCE_APP(int argc, char **argv) {
            int i;
            RCCE_init(&argc, &argv);
            for (i = 0; i >= 0; i++) { }
            RCCE_finalize();
            return 0;
        }
        """)
        code, _, err = run_cli_err(
            ["run", str(path), "--mode", "rcce", "--ues", "2",
             "--max-steps", "5000"])
        assert code == 75
        assert "simulation timed out" in err

    def test_injected_crash_exits_70(self, tmp_path):
        path = tmp_path / "victim.c"
        path.write_text("""
        int RCCE_APP(int argc, char **argv) {
            int i; double s;
            RCCE_init(&argc, &argv);
            s = 0.0;
            for (i = 0; i < 5000; i++) { s = s + i; }
            RCCE_barrier(&RCCE_COMM_WORLD);
            RCCE_finalize();
            return 0;
        }
        """)
        code, _, err = run_cli_err(
            ["run", str(path), "--mode", "rcce", "--ues", "2",
             "--faults", "core_crash:core=1,at=100"])
        assert code == 70
        assert "simulated program failed" in err
        assert "injected crash" in err


class TestFaultFlags:
    def test_faulted_run_smoke_with_metrics(self, example_file,
                                            tmp_path):
        metrics_path = str(tmp_path / "metrics.json")
        code, output, _ = run_cli_err(
            ["run", example_file, "--ues", "2", "--mode", "rcce",
             "--faults", "mesh_delay:p=0.2,seed=5",
             "--metrics", metrics_path])
        assert code == 0
        with open(metrics_path) as handle:
            assert "fault_injections" in handle.read()

    def test_no_watchdog_flag_accepted(self, example_file):
        code, output = run_cli(["run", example_file, "--ues", "2",
                                "--mode", "rcce", "--no-watchdog"])
        assert code == 0



RECOVERY_KERNEL = """
int RCCE_APP(int argc, char **argv) {
    int me;
    int i;
    int k;
    double sum;
    double *buf;
    RCCE_init(&argc, &argv);
    me = RCCE_ue();
    buf = (double *) RCCE_malloc(256);
    sum = 0.0;
    for (k = 0; k < 12; k++) {
        for (i = 0; i < 8; i++) {
            buf[me * 8 + i] = me * 100.0 + k + i;
        }
        for (i = 0; i < 8; i++) {
            sum = sum + buf[me * 8 + i];
        }
        RCCE_barrier(&RCCE_COMM_WORLD);
    }
    printf("ue %d sum %f\\n", me, sum);
    RCCE_finalize();
    return 0;
}
"""


@pytest.fixture
def recovery_file(tmp_path):
    path = tmp_path / "recovery.c"
    path.write_text(RECOVERY_KERNEL)
    return str(path)


class TestRecoveryFlags:
    def test_downgrade_warns_on_stderr(self, recovery_file):
        code, _, err = run_cli_err(
            ["run", recovery_file, "--mode", "rcce", "--ues", "2",
             "--faults", "mpb_flip:p=0.0001,seed=1"])
        assert code == 0
        assert "warning" in err
        assert "tree" in err

    def test_downgrade_is_an_error_under_strict(self, recovery_file):
        code, _, err = run_cli_err(
            ["run", recovery_file, "--mode", "rcce", "--ues", "2",
             "--faults", "mpb_flip:p=0.0001,seed=1", "--strict"])
        assert code == 2
        assert "--engine tree" in err

    def test_tree_engine_with_faults_stays_quiet(self, recovery_file):
        code, _, err = run_cli_err(
            ["run", recovery_file, "--mode", "rcce", "--ues", "2",
             "--engine", "tree",
             "--faults", "mpb_flip:p=0.0001,seed=1"])
        assert code == 0
        assert "warning" not in err

    def test_supervised_recovery_exits_0(self, recovery_file,
                                         tmp_path):
        ckpt = str(tmp_path / "run.ckpt")
        metrics_path = str(tmp_path / "metrics.json")
        code, output, err = run_cli_err(
            ["run", recovery_file, "--mode", "rcce", "--ues", "2",
             "--engine", "tree",
             "--faults",
             "mpb_flip:p=0.02,seed=3;core_crash:core=1,at=6000",
             "--recover", "--max-restarts", "2",
             "--checkpoint", ckpt, "--metrics", metrics_path])
        assert code == 0
        assert "restart" in err
        with open(metrics_path) as handle:
            payload = handle.read()
        assert "ecc_corrected" in payload
        assert "checkpoints_captured" in payload

    def test_checkpoint_then_restore(self, recovery_file, tmp_path):
        ckpt = str(tmp_path / "run.ckpt")
        code, first, _ = run_cli_err(
            ["run", recovery_file, "--mode", "rcce", "--ues", "2",
             "--engine", "tree", "--checkpoint-every", "2",
             "--checkpoint", ckpt])
        assert code == 0
        code, second, _ = run_cli_err(
            ["run", recovery_file, "--mode", "rcce", "--ues", "2",
             "--engine", "tree", "--restore", ckpt])
        assert code == 0
        assert first == second

    def test_bad_snapshot_exits_65(self, recovery_file, tmp_path):
        bad = tmp_path / "bad.ckpt"
        bad.write_text("{ definitely not a snapshot")
        code, _, err = run_cli_err(
            ["run", recovery_file, "--mode", "rcce", "--ues", "2",
             "--engine", "tree", "--restore", str(bad)])
        assert code == 65
        assert "bad snapshot" in err
        assert len(err.strip().splitlines()) == 1

    def test_missing_snapshot_exits_66(self, recovery_file, tmp_path):
        code, _, err = run_cli_err(
            ["run", recovery_file, "--mode", "rcce", "--ues", "2",
             "--engine", "tree",
             "--restore", str(tmp_path / "absent.ckpt")])
        assert code == 66

class TestParallelFlags:
    def test_jobs_zero_exits_2(self, example_file):
        code, _, err = run_cli_err(["run", example_file,
                                    "--jobs", "0"])
        assert code == 2
        assert "--jobs" in err

    def test_jobs_negative_exits_2(self, example_file):
        code, _, err = run_cli_err(["run", example_file,
                                    "--jobs", "-2"])
        assert code == 2

    def test_quantum_zero_exits_2(self, example_file):
        code, _, err = run_cli_err(["run", example_file,
                                    "--jobs", "2", "--quantum", "0"])
        assert code == 2
        assert "--quantum" in err

    def test_jobs_output_is_byte_identical(self, example_file):
        sequential = run_cli(["run", example_file, "--ues", "3"])
        parallel = run_cli(["run", example_file, "--ues", "3",
                            "--jobs", "2"])
        assert parallel == sequential

    def test_incompatible_feature_warns_without_strict(
            self, example_file):
        code, _, err = run_cli_err(
            ["run", example_file, "--mode", "rcce", "--ues", "2",
             "--jobs", "2", "--race"])
        assert code == 0
        assert "warning" in err
        assert "thread backend" in err

    def test_incompatible_feature_exits_2_under_strict(
            self, example_file):
        code, _, err = run_cli_err(
            ["run", example_file, "--mode", "rcce", "--ues", "2",
             "--jobs", "2", "--race", "--strict"])
        assert code == 2
        assert "--race" in err

    def test_native_program_runs_sharded(self, tmp_path):
        path = tmp_path / "native.c"
        path.write_text("""
        #include <stdio.h>
        #include <RCCE.h>
        int RCCE_APP(int argc, char **argv) {
            RCCE_init(&argc, &argv);
            printf("ue %d\\n", RCCE_ue());
            return 0;
        }
        """)
        sequential = run_cli(["run", str(path), "--mode", "rcce",
                              "--ues", "4"])
        parallel = run_cli(["run", str(path), "--mode", "rcce",
                            "--ues", "4", "--jobs", "2"])
        assert parallel == sequential
        assert parallel[0] == 0


CHAOS_KERNEL = """
#include <stdio.h>
#include <RCCE.h>
int RCCE_APP(int argc, char **argv) {
    int i; int acc;
    RCCE_init(&argc, &argv);
    acc = 0;
    for (i = 0; i < 20000; i++) { acc += i; }
    RCCE_barrier(&RCCE_COMM_WORLD);
    printf("ue %d acc %d\\n", RCCE_ue(), acc);
    RCCE_finalize();
    return 0;
}
"""

RECV_DEADLOCK_KERNEL = """
#include <RCCE.h>
int RCCE_APP(int argc, char **argv) {
    int buf[1];
    RCCE_init(&argc, &argv);
    if (RCCE_ue() == 0) {
        RCCE_recv(buf, sizeof(int), 1);  /* nobody ever sends */
    }
    RCCE_barrier(&RCCE_COMM_WORLD);
    RCCE_finalize();
    return 0;
}
"""


class TestChaosFlags:
    @pytest.fixture
    def chaos_file(self, tmp_path):
        path = tmp_path / "chaos.c"
        path.write_text(CHAOS_KERNEL)
        return str(path)

    def test_bad_chaos_spec_exits_2(self, chaos_file):
        code, _, err = run_cli_err(
            ["run", chaos_file, "--mode", "rcce", "--ues", "4",
             "--jobs", "2", "--chaos", "gamma_ray:p=1"])
        assert code == 2
        assert "bad --chaos spec" in err

    def test_chip_kind_in_chaos_exits_2(self, chaos_file):
        code, _, err = run_cli_err(
            ["run", chaos_file, "--mode", "rcce", "--ues", "4",
             "--jobs", "2", "--chaos", "dram_flip:p=0.1"])
        assert code == 2
        assert "bad --chaos spec" in err
        assert "FaultInjector" in err

    def test_negative_shard_restarts_exits_2(self, chaos_file):
        code, _, err = run_cli_err(
            ["run", chaos_file, "--mode", "rcce", "--ues", "4",
             "--jobs", "2", "--shard-restarts", "-1"])
        assert code == 2
        assert "--shard-restarts" in err

    def test_non_positive_heartbeat_exits_2(self, chaos_file):
        code, _, err = run_cli_err(
            ["run", chaos_file, "--mode", "rcce", "--ues", "4",
             "--jobs", "2", "--heartbeat-timeout", "0"])
        assert code == 2
        assert "--heartbeat-timeout" in err

    def test_chaos_kill_recovers_byte_identical(self, chaos_file):
        baseline = run_cli(["run", chaos_file, "--mode", "rcce",
                            "--ues", "4"])
        code, out, err = run_cli_err(
            ["run", chaos_file, "--mode", "rcce", "--ues", "4",
             "--jobs", "2", "--quantum", "1000",
             "--chaos", "worker_kill:at_tick=1"])
        assert code == 0
        assert (code, out) == baseline
        assert "respawned and replayed" in err

    def test_exhausted_budget_downgrades_exit_0(self, chaos_file):
        baseline = run_cli(["run", chaos_file, "--mode", "rcce",
                            "--ues", "4"])
        code, out, err = run_cli_err(
            ["run", chaos_file, "--mode", "rcce", "--ues", "4",
             "--jobs", "2", "--quantum", "1000",
             "--chaos", "worker_kill:at_tick=1",
             "--shard-restarts", "0"])
        assert code == 0
        assert (code, out) == baseline
        assert "degraded to the thread backend" in err
        assert "restart budget" in err

    def test_exhausted_budget_exits_2_under_strict(self, chaos_file):
        code, _, err = run_cli_err(
            ["run", chaos_file, "--mode", "rcce", "--ues", "4",
             "--jobs", "2", "--quantum", "1000",
             "--chaos", "worker_kill:at_tick=1",
             "--shard-restarts", "0", "--strict"])
        assert code == 2
        assert "--strict" in err
        assert "--shard-restarts" in err

    def test_watchdog_with_jobs_no_longer_downgrades(
            self, chaos_file):
        code, _, err = run_cli_err(
            ["run", chaos_file, "--mode", "rcce", "--ues", "4",
             "--jobs", "2", "--watchdog-timeout", "30", "--strict"])
        assert code == 0
        assert "thread backend" not in err

    def test_parallel_deadlock_names_rank_and_site(self, tmp_path):
        path = tmp_path / "recv_deadlock.c"
        path.write_text(RECV_DEADLOCK_KERNEL)
        code, _, err = run_cli_err(
            ["run", str(path), "--mode", "rcce", "--ues", "2",
             "--jobs", "2", "--watchdog-timeout", "2"])
        assert code == 75
        assert "rank 0 parked at recv sync site" in err
        assert "rank 1 parked at barrier sync site" in err


FIXTURES = __import__("os").path.join(
    __import__("os").path.dirname(__file__), "fixtures")


class TestRaceFlags:
    def test_clean_compare_run(self, example_file):
        code, output, err = run_cli_err(
            ["run", example_file, "--ues", "2", "--race"])
        assert code == 0
        # one audit line per mode (pthread baseline + rcce run)
        assert output.count("race audit: clean") == 2
        assert "data race" not in err

    def test_racy_fixture_warns_but_exits_0_without_strict(self):
        fixture = FIXTURES + "/race_unprotected_counter.c"
        code, output, err = run_cli_err(
            ["run", fixture, "--mode", "rcce", "--ues", "2",
             "--race"])
        assert code == 0
        assert "race audit: 2 race(s)" in output
        assert "data race" in err
        assert "core 0" in err and "core 1" in err

    def test_racy_fixture_exits_70_under_strict(self):
        fixture = FIXTURES + "/race_unprotected_counter.c"
        code, _, err = run_cli_err(
            ["run", fixture, "--mode", "rcce", "--ues", "2",
             "--race", "--strict"])
        assert code == 70
        assert "data race" in err

    def test_coherence_fixture_exits_70_under_strict(self):
        fixture = FIXTURES + "/race_cacheable_alias.c"
        code, _, err = run_cli_err(
            ["run", fixture, "--mode", "rcce", "--ues", "2",
             "--race", "--strict"])
        assert code == 70
        assert "stale cacheable" in err
        assert "stash" in err

    def test_locked_fixture_clean_under_strict(self):
        fixture = FIXTURES + "/race_locked_counter.c"
        code, output, _ = run_cli_err(
            ["run", fixture, "--mode", "rcce", "--ues", "2",
             "--race", "--strict"])
        assert code == 0
        assert "race audit: clean" in output

    def test_race_report_file(self, tmp_path):
        import json
        fixture = FIXTURES + "/race_unprotected_counter.c"
        report_path = str(tmp_path / "race.json")
        code, output, _ = run_cli_err(
            ["run", fixture, "--mode", "rcce", "--ues", "2",
             "--race-report", report_path])
        assert code == 0
        assert "race report written to" in output
        with open(report_path) as handle:
            payload = json.load(handle)
        findings = payload["rcce"]["findings"]
        assert findings
        assert findings[0]["category"] == "race"
        assert findings[0]["current"]["epoch"]
