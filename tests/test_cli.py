"""CLI tests (python -m repro)."""

import io

import pytest

from repro.bench.programs import EXAMPLE_4_1
from repro.cli import build_parser, main


@pytest.fixture
def example_file(tmp_path):
    path = tmp_path / "example.c"
    path.write_text(EXAMPLE_4_1)
    return str(path)


def run_cli(argv):
    out = io.StringIO()
    code = main(argv, out)
    return code, out.getvalue()


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_policy_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["translate", "x.c", "--policy", "magic"])


class TestTranslate:
    def test_to_stdout(self, example_file):
        code, output = run_cli(["translate", example_file])
        assert code == 0
        assert "RCCE_APP" in output
        assert "RCCE_shmalloc" in output or "RCCE_malloc" in output

    def test_to_file(self, example_file, tmp_path):
        out_path = str(tmp_path / "out.c")
        code, output = run_cli(
            ["translate", example_file, "-o", out_path])
        assert code == 0
        with open(out_path) as handle:
            assert "RCCE_init" in handle.read()

    def test_off_chip_policy(self, example_file):
        _, output = run_cli(["translate", example_file,
                             "--policy", "off-chip-only"])
        assert "RCCE_shmalloc" in output
        assert "RCCE_malloc(" not in output

    def test_capacity_override(self, example_file):
        # 8 bytes: sum (12 B) must spill off-chip
        _, output = run_cli(["translate", example_file,
                             "--capacity", "8"])
        assert "sum = (int *)RCCE_shmalloc" in output


class TestAnalyze:
    def test_tables_printed(self, example_file):
        code, output = run_cli(["analyze", example_file])
        assert code == 0
        assert "Sharing status per stage" in output
        assert "tmp" in output
        assert "Partition plan" in output

    def test_plan_lists_banks(self, example_file):
        _, output = run_cli(["analyze", example_file,
                             "--policy", "off-chip-only"])
        assert "off-chip" in output


class TestRun:
    def test_compare_mode(self, example_file):
        code, output = run_cli(["run", example_file, "--ues", "3"])
        assert code == 0
        assert "pthread x1 core" in output
        assert "rcce    x3 cores" in output
        assert "speedup:" in output

    def test_pthread_only(self, example_file):
        code, output = run_cli(["run", example_file,
                                "--mode", "pthread"])
        assert code == 0
        assert "rcce" not in output

    def test_native_rcce_program(self, tmp_path):
        path = tmp_path / "native.c"
        path.write_text("""
        #include <stdio.h>
        #include <RCCE.h>
        int RCCE_APP(int argc, char **argv) {
            RCCE_init(&argc, &argv);
            printf("ue %d\\n", RCCE_ue());
            return 0;
        }
        """)
        code, output = run_cli(["run", str(path), "--mode", "rcce",
                                "--ues", "2"])
        assert code == 0
        assert "x2 cores" in output

    def test_fold_flag(self, tmp_path):
        from repro.bench.programs import benchmark_source
        path = tmp_path / "pi.c"
        path.write_text(benchmark_source("pi", nthreads=8, steps=128))
        code, output = run_cli(["run", str(path), "--ues", "2",
                                "--fold", "--mode", "rcce"])
        assert code == 0
