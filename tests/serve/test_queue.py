"""Admission control and ordering for the bounded job queue."""

import pytest

from repro.serve.job import BackpressureError, Job, JobSpec
from repro.serve.queue import JobQueue


def _job(job_id, priority=0, num_ues=2, source="int main(){}"):
    return Job(job_id, source, JobSpec(num_ues=num_ues),
               priority=priority)


class TestOrdering:
    def test_priority_first_fifo_within(self):
        queue = JobQueue()
        queue.admit(_job("a", priority=0))
        queue.admit(_job("b", priority=5))
        queue.admit(_job("c", priority=5))
        queue.admit(_job("d", priority=1))
        order = [queue.pop_ready(0.0).job_id for _ in range(4)]
        assert order == ["b", "c", "d", "a"]

    def test_backoff_does_not_block_ready_work(self):
        queue = JobQueue()
        parked = _job("parked", priority=9)
        queue.requeue(parked, not_before=100.0)
        queue.admit(_job("ready", priority=0))
        assert queue.pop_ready(0.0).job_id == "ready"
        assert queue.pop_ready(0.0) is None       # parked still parked
        assert queue.pop_ready(200.0).job_id == "parked"

    def test_max_ready_priority_ignores_parked(self):
        queue = JobQueue()
        queue.requeue(_job("parked", priority=9), not_before=100.0)
        queue.admit(_job("ready", priority=2))
        assert queue.max_ready_priority(0.0) == 2
        assert queue.max_ready_priority(150.0) == 9


class TestAdmissionControl:
    def test_depth_backpressure(self):
        queue = JobQueue(max_depth=2)
        queue.admit(_job("a"))
        queue.admit(_job("b"))
        with pytest.raises(BackpressureError) as info:
            queue.admit(_job("c"))
        assert info.value.reason == "depth"

    def test_memory_backpressure_counts_running(self):
        probe = _job("probe")
        queue = JobQueue(max_depth=100,
                         memory_budget=3 * probe.estimate_bytes())
        queue.admit(_job("a"))
        queue.admit(_job("b"))
        queue.running_bytes = probe.estimate_bytes()
        with pytest.raises(BackpressureError) as info:
            queue.admit(_job("c"))
        assert info.value.reason == "memory"

    def test_requeue_bypasses_admission(self):
        queue = JobQueue(max_depth=1)
        queue.admit(_job("a"))
        # a retried job never bounces off its own queue slot
        queue.requeue(_job("b"))
        assert len(queue) == 2

    def test_jobs_listing_matches_pop_order(self):
        queue = JobQueue()
        queue.admit(_job("low", priority=0))
        queue.admit(_job("high", priority=3))
        assert [job.job_id for job in queue.jobs()] == ["high", "low"]
