"""Job model: spec fingerprints, serialization, execute_job."""

import pytest

from repro.serve.job import (
    Job,
    JobSpec,
    JobTranslationError,
    execute_job,
)
from repro.sim.runner import run_rcce


class TestJobSpec:
    def test_fingerprint_stable(self):
        assert JobSpec(num_ues=4).fingerprint() == \
            JobSpec(num_ues=4).fingerprint()

    def test_fingerprint_covers_every_semantic_knob(self):
        base = JobSpec()
        variants = [
            JobSpec(mode="pthread"),
            JobSpec(num_ues=16),
            JobSpec(engine="tree"),
            JobSpec(policy="frequency"),
            JobSpec(capacity=4096),
            JobSpec(fold=True),
            JobSpec(split=True),
            JobSpec(max_steps=1000),
            JobSpec(faults="mpb_flip:p=0.5"),
        ]
        prints = {spec.fingerprint() for spec in variants}
        assert base.fingerprint() not in prints
        assert len(prints) == len(variants)

    def test_dict_round_trip(self):
        spec = JobSpec(mode="pthread", num_ues=16, engine="tree",
                       capacity=8192, fold=True, faults="mpb_flip")
        again = JobSpec.from_dict(spec.as_dict())
        assert again.as_dict() == spec.as_dict()
        assert again.fingerprint() == spec.fingerprint()

    def test_rejects_unknown_mode(self):
        with pytest.raises(ValueError):
            JobSpec(mode="gpu")


class TestJobSerialization:
    def test_round_trip_preserves_lifecycle(self):
        job = Job("j0001", "int main() { return 0; }",
                  JobSpec(num_ues=2), priority=3,
                  deadline_seconds=1.5, max_retries=2,
                  preemptible=True, checkpoint_every=4)
        job.state = "preempted"
        job.attempts = 2
        job.preemptions = 1
        job.submit_index = 7
        job.restore_from = "/tmp/ckpt"
        again = Job.from_dict(job.as_dict())
        assert again.as_dict() == job.as_dict()

    def test_estimate_scales_with_cores_and_source(self):
        small = Job("a", "x", JobSpec(num_ues=2))
        big = Job("b", "x" * 10_000, JobSpec(num_ues=32))
        assert big.estimate_bytes() > small.estimate_bytes()


class TestExecuteJob:
    def test_byte_identical_to_direct_run(self, pi_source):
        spec = JobSpec(num_ues=4, max_steps=2_000_000)
        payload = execute_job(Job("j", pi_source, spec))
        translated = spec.framework().translate(pi_source)
        direct = run_rcce(translated.unit, 4, max_steps=2_000_000)
        assert payload["cycles"] == direct.cycles
        assert payload["stdout"] == direct.stdout()
        assert payload["per_core_cycles"] == {
            str(rank): cycles for rank, cycles
            in direct.per_core_cycles.items()}
        assert payload["cached"] is False

    def test_pthread_mode(self, pi_source):
        payload = execute_job(Job(
            "j", pi_source,
            JobSpec(mode="pthread", max_steps=20_000_000)))
        assert payload["cycles"] > 0
        assert "pi = " in payload["stdout"]

    def test_translation_error_is_typed(self):
        with pytest.raises(JobTranslationError):
            execute_job(Job("j", "int main( { broken",
                            JobSpec(num_ues=2)))

    def test_payload_is_json_safe(self, pi_source):
        import json
        payload = execute_job(Job(
            "j", pi_source, JobSpec(num_ues=4,
                                    max_steps=2_000_000)))
        assert json.loads(json.dumps(payload)) == payload
