"""The daemon: request handling, queue persistence, and the full
SIGTERM drain → restart → resume round trip over a real socket."""

import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.serve.daemon import ServeDaemon
from repro.serve.job import Job, JobSpec
from repro.serve.queue import JobQueue
from repro.serve.scheduler import Scheduler

TINY = "int main() { return 7; }"
REPO_SRC = os.path.join(os.path.dirname(os.path.dirname(
    os.path.dirname(os.path.abspath(__file__)))), "src")


class TestHandle:
    """handle() is a pure request -> response dispatcher."""

    @pytest.fixture
    def daemon(self, tmp_path):
        return ServeDaemon(str(tmp_path / "state"), pool_size=1)

    def test_ping(self, daemon):
        response = daemon.handle({"op": "ping"})
        assert response["ok"] is True
        assert response["pid"] == os.getpid()

    def test_unknown_op(self, daemon):
        response = daemon.handle({"op": "frobnicate"})
        assert response["ok"] is False
        assert response["error"] == "BadRequest"

    def test_submit_runs_and_reports(self, daemon):
        response = daemon.handle({
            "op": "submit", "source": TINY,
            "spec": {"mode": "pthread", "max_steps": 100_000}})
        assert response["ok"] is True
        job_id = response["job_id"]
        daemon.scheduler.run_until_idle(timeout=60)
        job = daemon.handle({"op": "job", "id": job_id})["job"]
        assert job["state"] == "done"
        assert job["result"]["exit_value"] == 7
        listing = daemon.handle({"op": "jobs"})
        assert [j["job_id"] for j in listing["jobs"]] == [job_id]
        status = daemon.handle({"op": "status"})
        assert status["ok"] and status["pool_size"] == 1

    def test_submit_backpressure_is_typed(self, tmp_path):
        daemon = ServeDaemon(str(tmp_path / "state"), pool_size=1,
                             max_depth=1)
        daemon.scheduler.queue.admit(
            Job("blocker", TINY, JobSpec(mode="pthread")))
        response = daemon.handle({"op": "submit", "source": TINY})
        assert response["ok"] is False
        assert response["error"] == "BackpressureError"
        assert response["reason"] == "depth"

    def test_unknown_job_is_typed(self, daemon):
        response = daemon.handle({"op": "job", "id": "j9999"})
        assert response["ok"] is False
        assert response["error"] == "UnknownJobError"

    def test_shutdown_rejects_new_submissions(self, daemon):
        assert daemon.handle({"op": "shutdown"})["ok"] is True
        response = daemon.handle({"op": "submit", "source": TINY})
        assert response["ok"] is False
        assert response["error"] == "Draining"


class TestPersistence:
    def test_queue_round_trip(self, tmp_path):
        path = str(tmp_path / "queue.json")
        sched = Scheduler(pool_size=1, queue=JobQueue(),
                          state_dir=str(tmp_path / "a"))
        sched.submit(TINY, spec=JobSpec(mode="pthread"), priority=3,
                     deadline_seconds=9.0, max_retries=2,
                     preemptible=True)
        sched.submit(TINY + " ", spec=JobSpec(mode="pthread"))
        sched.persist(path)

        again = Scheduler(pool_size=1, queue=JobQueue(),
                          state_dir=str(tmp_path / "b"))
        again.load(path)
        assert len(again.queue) == 2
        restored = again.get("j0001")
        assert restored.priority == 3
        assert restored.deadline_seconds == 9.0
        assert restored.max_retries == 2
        assert restored.preemptible is True
        # submit numbering continues after the restored jobs
        third = again.submit(TINY + "  ",
                             spec=JobSpec(mode="pthread"))
        assert third.job_id == "j0003"

    def test_persisted_file_is_valid_json(self, tmp_path):
        path = str(tmp_path / "queue.json")
        sched = Scheduler(pool_size=1,
                          state_dir=str(tmp_path / "state"))
        sched.submit(TINY, spec=JobSpec(mode="pthread"))
        sched.persist(path)
        with open(path) as handle:
            data = json.load(handle)
        assert [job["job_id"] for job in data["jobs"]] == ["j0001"]


def _start_daemon(state_dir, workers=1, extra=()):
    env = dict(os.environ, PYTHONPATH=REPO_SRC)
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve",
         "--state-dir", state_dir, "--workers", str(workers)]
        + list(extra),
        env=env, stdout=subprocess.PIPE, stderr=subprocess.PIPE)
    sock = os.path.join(state_dir, "daemon.sock")
    deadline = time.monotonic() + 30
    while time.monotonic() < deadline:
        if os.path.exists(sock):
            return proc
        if proc.poll() is not None:
            raise AssertionError(
                "daemon died at startup: %s"
                % proc.stderr.read().decode())
        time.sleep(0.05)
    proc.kill()
    raise AssertionError("daemon socket never appeared")


def _finish(proc, timeout=60):
    out, err = proc.communicate(timeout=timeout)
    return proc.returncode, err.decode()


class TestDaemonLifecycle:
    def test_sigterm_drains_persists_and_restart_resumes(
            self, tmp_path, pi_source, barrier_loop_source):
        """The acceptance scenario: SIGTERM mid-work exits 0, leaves
        zero orphans and a persisted queue; a restarted daemon picks
        the work back up and finishes it byte-identically."""
        from repro.serve import execute_job
        from repro.serve.client import ServeClient

        state_dir = str(tmp_path / "state")
        proc = _start_daemon(state_dir)
        client = ServeClient(state_dir)
        assert client.ping()["ok"]

        spec = JobSpec(num_ues=4, max_steps=20_000_000)
        first = client.submit(barrier_loop_source, spec=spec,
                              preemptible=True)
        assert first["ok"]
        second = client.submit(pi_source,
                               spec=JobSpec(num_ues=4,
                                            max_steps=2_000_000))
        assert second["ok"]

        # let the pool-1 daemon actually start the first job, so the
        # drain path has an in-flight worker to preempt or finish
        deadline = time.monotonic() + 30
        while time.monotonic() < deadline:
            if client.status()["running"] >= 1:
                break
            time.sleep(0.02)

        proc.send_signal(signal.SIGTERM)
        code, err = _finish(proc)
        assert code == 0, err

        queue_path = os.path.join(state_dir, "queue.json")
        assert os.path.exists(queue_path)
        with open(queue_path) as handle:
            persisted = json.load(handle)
        leftover = {job["job_id"]: job["state"]
                    for job in persisted["jobs"]
                    if job["state"] != "done"}
        assert leftover, "nothing left to resume"

        # zero orphans: any leaked fork would keep the state-dir
        # marker in its command line after re-parenting to init
        probe = subprocess.run(["pgrep", "-f", state_dir],
                               stdout=subprocess.PIPE)
        assert probe.stdout.decode().strip() == ""

        proc = _start_daemon(state_dir)
        done_first = client.wait(first["job_id"], timeout=180)
        done_second = client.wait(second["job_id"], timeout=180)
        assert done_first["state"] == "done"
        assert done_second["state"] == "done"

        direct = execute_job(Job("direct", barrier_loop_source, spec))
        assert done_first["result"]["cycles"] == direct["cycles"]
        assert done_first["result"]["stdout"] == direct["stdout"]
        assert done_first["result"]["per_core_cycles"] == \
            direct["per_core_cycles"]

        assert client.shutdown()["ok"]
        code, err = _finish(proc)
        assert code == 0, err

    def test_shutdown_op_exits_zero(self, tmp_path):
        from repro.serve.client import ServeClient
        state_dir = str(tmp_path / "state")
        proc = _start_daemon(state_dir)
        client = ServeClient(state_dir)
        assert client.shutdown()["ok"]
        code, err = _finish(proc)
        assert code == 0, err
