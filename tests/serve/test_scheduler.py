"""The supervision ladder, rung by rung: deadlines, bounded retry,
backpressure, chaos, preemption/resume byte-identity, the memo."""

import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.metrics import MetricsRegistry, series_value
from repro.serve import (
    BackpressureError,
    JobSpec,
    ResultMemo,
    Scheduler,
    execute_job,
)
from repro.serve.job import Job, JobPreempted
from repro.serve.queue import JobQueue

SMALL = {"num_ues": 4, "max_steps": 2_000_000}


def _scheduler(tmp_path, **kwargs):
    kwargs.setdefault("pool_size", 2)
    return Scheduler(state_dir=str(tmp_path / "state"), **kwargs)


class TestLifecycle:
    def test_healthy_job_byte_identical_to_direct(self, tmp_path,
                                                  pi_source):
        sched = _scheduler(tmp_path)
        job = sched.submit(pi_source, spec=JobSpec(**SMALL))
        sched.run_until_idle(timeout=120)
        direct = execute_job(Job("direct", pi_source,
                                 JobSpec(**SMALL)))
        assert job.state == "done"
        assert job.result["cycles"] == direct["cycles"]
        assert job.result["stdout"] == direct["stdout"]
        assert job.result["per_core_cycles"] == \
            direct["per_core_cycles"]

    def test_deadline_kill_mid_quantum(self, tmp_path,
                                       infinite_loop_source):
        sched = _scheduler(tmp_path)
        job = sched.submit(
            infinite_loop_source,
            spec=JobSpec(mode="pthread", max_steps=2_000_000_000),
            deadline_seconds=0.8)
        sched.run_until_idle(timeout=60)
        assert job.state == "failed"
        assert job.outcome["error"] == "JobDeadlineError"
        # the pool is not poisoned: a healthy job still runs
        healthy = sched.submit(
            "int main() { return 42; }",
            spec=JobSpec(mode="pthread", max_steps=100_000))
        sched.run_until_idle(timeout=60)
        assert healthy.state == "done"

    def test_retry_budget_exhaustion(self, tmp_path, pi_source):
        # a seeded core_crash re-fires deterministically on every
        # fresh worker, so the retry budget must run dry, typed
        sched = _scheduler(tmp_path)
        job = sched.submit(
            pi_source,
            spec=JobSpec(faults="core_crash:core=1,at=100", **SMALL),
            max_retries=2)
        sched.run_until_idle(timeout=120)
        assert job.state == "failed"
        assert job.attempts == 3
        assert job.outcome["error"] == "JobRetriesExhaustedError"
        assert "injected crash" in job.outcome["message"]

    def test_nonrestartable_error_fails_fast(self, tmp_path):
        sched = _scheduler(tmp_path)
        job = sched.submit("int main( { nope",
                           spec=JobSpec(num_ues=2), max_retries=3)
        sched.run_until_idle(timeout=60)
        assert job.state == "failed"
        assert job.attempts == 1
        assert job.outcome["error"] == "JobTranslationError"

    def test_backpressure_rejection(self, tmp_path, pi_source):
        sched = Scheduler(pool_size=1,
                          queue=JobQueue(max_depth=1),
                          state_dir=str(tmp_path / "state"))
        sched.queue.admit(Job("blocker", pi_source, JobSpec(**SMALL)))
        with pytest.raises(BackpressureError):
            sched.submit(pi_source, spec=JobSpec(**SMALL))


class TestChaos:
    def test_job_kill_is_retried_clean(self, tmp_path, pi_source):
        sched = _scheduler(tmp_path, pool_size=1,
                           chaos="job_kill:job=0,attempt=1")
        job = sched.submit(pi_source, spec=JobSpec(**SMALL),
                           max_retries=2)
        sched.run_until_idle(timeout=120)
        assert job.state == "done"
        assert job.attempts == 2  # killed once, clean on retry
        direct = execute_job(Job("direct", pi_source,
                                 JobSpec(**SMALL)))
        assert job.result["cycles"] == direct["cycles"]

    def test_job_stall_blows_the_deadline(self, tmp_path, pi_source):
        sched = _scheduler(tmp_path, pool_size=1,
                           chaos="job_stall:job=0,seconds=30")
        job = sched.submit(pi_source, spec=JobSpec(**SMALL),
                           deadline_seconds=0.8, max_retries=0)
        sched.run_until_idle(timeout=60)
        assert job.state == "failed"
        assert job.outcome["error"] == "JobDeadlineError"


class TestPreemption:
    def test_scheduler_preempts_for_higher_priority(
            self, tmp_path, pi_source, barrier_loop_source):
        sched = _scheduler(tmp_path, pool_size=1)
        low = sched.submit(barrier_loop_source,
                           spec=JobSpec(num_ues=4,
                                        max_steps=20_000_000),
                           priority=0, preemptible=True)
        deadline = time.monotonic() + 20
        while not sched.running and time.monotonic() < deadline:
            sched.step()
            time.sleep(0.005)
        assert sched.running, "low-priority job never started"
        high = sched.submit(pi_source, spec=JobSpec(**SMALL),
                            priority=5)
        sched.run_until_idle(timeout=180)
        assert high.state == "done"
        assert low.state == "done"
        assert low.preemptions >= 1
        direct = execute_job(Job("direct", barrier_loop_source,
                                 JobSpec(num_ues=4,
                                         max_steps=20_000_000)))
        assert low.result["cycles"] == direct["cycles"]
        assert low.result["stdout"] == direct["stdout"]
        assert low.result["per_core_cycles"] == \
            direct["per_core_cycles"]

    @given(preempt_round=st.integers(min_value=1, max_value=13))
    @settings(max_examples=6, deadline=None)
    def test_preempt_resume_byte_identity_property(
            self, tmp_path_factory, preempt_round):
        """Preempting at ANY barrier round and resuming by verified
        replay reproduces the uninterrupted run byte for byte."""
        from tests.serve.conftest import BARRIER_LOOP
        spec = JobSpec(num_ues=4, max_steps=20_000_000)
        base = execute_job(Job("base", BARRIER_LOOP, spec))
        state = tmp_path_factory.mktemp("preempt")
        ckpt = str(state / "job.ckpt")
        job = Job("p", BARRIER_LOOP, spec, preemptible=True,
                  checkpoint_every=1)
        try:
            execute_job(job, checkpoint_path=ckpt,
                        preempt_check=lambda r: r >= preempt_round)
            preempted = False
        except JobPreempted as exc:
            assert exc.round_id == preempt_round
            preempted = True
        assert preempted, "hook never fired"
        resumed = execute_job(job, checkpoint_path=ckpt,
                              restore=ckpt)
        assert resumed["cycles"] == base["cycles"]
        assert resumed["stdout"] == base["stdout"]
        assert resumed["per_core_cycles"] == base["per_core_cycles"]


class TestMemoAndMetrics:
    def test_memo_hit_marks_cached(self, tmp_path, pi_source):
        sched = _scheduler(tmp_path)
        first = sched.submit(pi_source, spec=JobSpec(**SMALL))
        sched.run_until_idle(timeout=120)
        second = sched.submit(pi_source, spec=JobSpec(**SMALL))
        assert second.state == "done"
        assert second.result["cached"] is True
        assert second.result["cycles"] == first.result["cycles"]
        assert second.attempts == 0  # never hit a worker

    def test_memo_skips_faulted_runs(self, tmp_path):
        memo = ResultMemo(str(tmp_path / "memo"))
        faulted = Job("f", "src", JobSpec(faults="mpb_flip:p=0.5"))
        memo.store(faulted, {"cycles": 1})
        assert memo.lookup(faulted) is None

    def test_memo_persists_across_instances(self, tmp_path):
        path = str(tmp_path / "memo")
        job = Job("a", "source text", JobSpec(num_ues=2))
        ResultMemo(path).store(job, {"cycles": 42, "stdout": ""})
        again = ResultMemo(path)
        hit = again.lookup(Job("b", "source text", JobSpec(num_ues=2)))
        assert hit is not None
        assert hit["cycles"] == 42
        assert hit["cached"] is True

    def test_metrics_tell_the_story(self, tmp_path, pi_source):
        registry = MetricsRegistry()
        sched = _scheduler(tmp_path, registry=registry)
        sched.submit(pi_source, spec=JobSpec(**SMALL))
        sched.run_until_idle(timeout=120)
        sched.submit(pi_source, spec=JobSpec(**SMALL))  # memo hit
        snapshot = registry.snapshot()
        counters = snapshot["counters"]
        assert series_value(counters, "serve_jobs_submitted") == 2
        assert series_value(counters, "serve_jobs_completed",
                            outcome="done") == 2
        assert series_value(counters, "serve_results_cached") == 1
        gauges = snapshot["gauges"]
        assert series_value(gauges, "serve_pool_size") == 2
