"""Shared fixtures for the job-service tests."""

import pytest

from repro.bench.programs import benchmark_source

# A kernel with a barrier inside a loop: ~14 ClockBarrier rounds at 4
# UEs, so preemption points are plentiful (the Fig 6.1 kernels reach
# their one reduction barrier almost immediately).
BARRIER_LOOP = r"""
#include <pthread.h>
#include <stdio.h>
#define N 4
int total[N];
pthread_barrier_t bar;
void *worker(void *arg) {
    int id = (int)arg;
    int i;
    for (i = 0; i < 12; i++) {
        total[id] = total[id] + (id + 1) * (i + 1);
        pthread_barrier_wait(&bar);
    }
    return 0;
}
int main() {
    pthread_t tid[N];
    int i;
    pthread_barrier_init(&bar, 0, N);
    for (i = 0; i < N; i++) pthread_create(&tid[i], 0, worker, (void *)i);
    for (i = 0; i < N; i++) pthread_join(tid[i], 0);
    for (i = 0; i < N; i++) printf("total[%d] = %d\n", i, total[i]);
    return 0;
}
"""

# A pthread program that never terminates: only --max-steps or a
# wall-clock deadline stops it.
INFINITE_LOOP = r"""
#include <pthread.h>
int main() {
    volatile int x = 0;
    while (1) { x = x + 1; }
    return 0;
}
"""


@pytest.fixture(scope="session")
def pi_source():
    return benchmark_source("pi", 4, steps=64)


@pytest.fixture
def barrier_loop_source():
    return BARRIER_LOOP


@pytest.fixture
def infinite_loop_source():
    return INFINITE_LOOP
