"""Pthread runtime (single-core baseline) tests."""

import pytest

from repro.scc.config import SCCConfig
from repro.sim.runner import run_pthread_single_core

PROGRAM = """
#include <stdio.h>
#include <pthread.h>

int results[4];

void *worker(void *tid) {
    int id = (int)tid;
    results[id] = id * 10;
    pthread_exit(NULL);
}

int main(void) {
    pthread_t th[4];
    int total = 0;
    for (int i = 0; i < 4; i++)
        pthread_create(&th[i], NULL, worker, (void *)i);
    for (int i = 0; i < 4; i++)
        pthread_join(th[i], NULL);
    for (int i = 0; i < 4; i++)
        total += results[i];
    printf("total=%d\\n", total);
    return 0;
}
"""


class TestExecution:
    def test_threads_produce_results(self):
        result = run_pthread_single_core(PROGRAM)
        assert result.stdout() == "total=60\n"

    def test_thread_count_in_stats(self):
        result = run_pthread_single_core(PROGRAM)
        assert result.stats["threads"] == 4

    def test_unjoined_threads_still_run(self):
        source = PROGRAM.replace(
            "    for (int i = 0; i < 4; i++)\n"
            "        pthread_join(th[i], NULL);\n", "")
        result = run_pthread_single_core(source)
        # detached threads execute before the process ends, but the
        # total was computed before they ran (main saw zeroes or some)
        assert result.stats["threads"] == 4

    def test_pthread_self_distinct_ids(self):
        source = """
        #include <pthread.h>
        int ids[2];
        void *tf(void *slot) {
            ids[(int)slot] = (int)pthread_self();
            return 0;
        }
        int main(void) {
            pthread_t a, b;
            pthread_create(&a, 0, tf, (void *)0);
            pthread_create(&b, 0, tf, (void *)1);
            pthread_join(a, 0);
            pthread_join(b, 0);
            return ids[0] != ids[1];
        }
        """
        result = run_pthread_single_core(source)
        assert result.exit_value == 1

    def test_mutex_program_correct(self):
        source = """
        #include <pthread.h>
        #include <stdio.h>
        int counter;
        pthread_mutex_t m;
        void *inc(void *a) {
            for (int i = 0; i < 100; i++) {
                pthread_mutex_lock(&m);
                counter = counter + 1;
                pthread_mutex_unlock(&m);
            }
            return 0;
        }
        int main(void) {
            pthread_t th[4];
            pthread_mutex_init(&m, 0);
            for (int i = 0; i < 4; i++)
                pthread_create(&th[i], 0, inc, (void *)i);
            for (int i = 0; i < 4; i++)
                pthread_join(th[i], 0);
            printf("%d", counter);
            return 0;
        }
        """
        result = run_pthread_single_core(source)
        assert result.stdout() == "400"

    def test_launch_by_address(self):
        source = PROGRAM.replace("worker, (void *)i", "&worker, (void *)i")
        result = run_pthread_single_core(source)
        assert result.stdout() == "total=60\n"


class TestTiming:
    def test_overhead_grows_with_thread_count(self):
        def total_for(n):
            source = PROGRAM.replace("4", str(n))
            return run_pthread_single_core(source).stats[
                "scheduling_overhead_cycles"]

        assert total_for(8) > total_for(2)

    def test_all_cycles_on_one_core(self):
        result = run_pthread_single_core(PROGRAM)
        assert list(result.per_core_cycles) == [0]

    def test_seconds_conversion(self):
        config = SCCConfig(core_freq_mhz=800)
        result = run_pthread_single_core(PROGRAM, config)
        assert result.seconds == pytest.approx(
            result.cycles / 800e6)

    def test_total_includes_overhead(self):
        result = run_pthread_single_core(PROGRAM)
        assert result.cycles == result.stats["compute_cycles"] + \
            result.stats["scheduling_overhead_cycles"]
