"""Memory and stack allocator tests."""

import pytest

from repro.sim.machine import Memory, StackAllocator


class TestMemory:
    def test_load_default_zero(self):
        assert Memory().load(0x1234) == 0

    def test_store_load(self):
        memory = Memory()
        memory.store(0x100, 3.5)
        assert memory.load(0x100) == 3.5

    def test_memset(self):
        memory = Memory()
        memory.memset(0x100, 7, count=4, stride=4)
        assert [memory.load(0x100 + i * 4) for i in range(4)] == [7] * 4

    def test_memcpy(self):
        memory = Memory()
        for i in range(3):
            memory.store(0x200 + i * 8, i + 10)
        memory.memcpy(0x400, 0x200, count=3, stride=8)
        assert memory.load(0x410) == 12

    def test_snapshot_range(self):
        memory = Memory()
        memory.store(0x100, 1)
        memory.store(0x104, 2)
        assert memory.snapshot_range(0x100, 3, 4) == [1, 2, 0]

    def test_len(self):
        memory = Memory()
        memory.store(1, 1)
        memory.store(2, 2)
        assert len(memory) == 2


class TestStackAllocator:
    def test_bump(self):
        stack = StackAllocator(0x1000, 256)
        first = stack.alloc(8)
        second = stack.alloc(8)
        assert second == first + 8

    def test_alignment(self):
        stack = StackAllocator(0x1000, 256)
        stack.alloc(3)
        addr = stack.alloc(8)
        assert addr % 8 == 0

    def test_frame_restores(self):
        stack = StackAllocator(0x1000, 256)
        stack.alloc(16)
        before = stack.sp
        with stack.frame():
            stack.alloc(64)
            assert stack.sp > before
        assert stack.sp == before

    def test_nested_frames(self):
        stack = StackAllocator(0x1000, 1024)
        with stack.frame():
            stack.alloc(100)
            mid = stack.sp
            with stack.frame():
                stack.alloc(100)
            assert stack.sp == mid
        assert stack.used == 0

    def test_frame_restores_on_exception(self):
        stack = StackAllocator(0x1000, 256)
        with pytest.raises(RuntimeError):
            with stack.frame():
                stack.alloc(32)
                raise RuntimeError("boom")
        assert stack.used == 0

    def test_overflow(self):
        stack = StackAllocator(0x1000, 64)
        with pytest.raises(MemoryError):
            stack.alloc(128)
