"""Fault-injection engine tests (repro.faults).

Covers the spec grammar, the determinism contract (same seed => same
cycles and same injection counts), the byte-identical-when-disabled
contract, and each fault kind's observable effect.
"""

import pytest

from repro.faults import (
    CoreCrashFault,
    FaultInjector,
    FaultRule,
    FaultSpecError,
    parse_fault_spec,
    _flip_bits,
)
from repro.sim.runner import run_pthread_single_core, run_rcce

RCCE_COMPUTE = """
int RCCE_APP(int argc, char **argv) {
    int myID;
    int i;
    double sum;
    RCCE_init(&argc, &argv);
    myID = RCCE_ue();
    sum = 0.0;
    for (i = 0; i < 200; i++) {
        sum = sum + i * 0.5;
    }
    RCCE_barrier(&RCCE_COMM_WORLD);
    RCCE_finalize();
    return 0;
}
"""

PTHREAD_COUNT = """
#include <pthread.h>
int counter;
int main() {
    int i;
    counter = 0;
    for (i = 0; i < 500; i++) { counter = counter + 1; }
    return counter;
}
"""


class TestSpecParsing:
    def test_single_clause(self):
        rules = parse_fault_spec("mpb_flip:p=1e-6,seed=7")
        assert len(rules) == 1
        assert rules[0].kind == "mpb_flip"
        assert rules[0].p == 1e-6
        assert rules[0].seed == 7

    def test_multiple_clauses(self):
        rules = parse_fault_spec(
            "mesh_drop:p=0.01;core_stall:core=2,at=50000,cycles=8000")
        assert [r.kind for r in rules] == ["mesh_drop", "core_stall"]
        assert rules[1].params == {"core": 2, "at": 50000,
                                   "cycles": 8000}

    def test_defaults(self):
        rule = parse_fault_spec("mesh_delay")[0]
        assert rule.p == 1.0
        assert rule.seed == 0

    def test_unknown_kind_rejected(self):
        with pytest.raises(FaultSpecError):
            parse_fault_spec("gamma_ray:p=1")

    def test_unknown_param_rejected(self):
        with pytest.raises(FaultSpecError):
            parse_fault_spec("mesh_drop:bit=3")

    def test_bad_probability_rejected(self):
        with pytest.raises(FaultSpecError):
            parse_fault_spec("mpb_flip:p=2.0")

    def test_non_numeric_rejected(self):
        with pytest.raises(FaultSpecError):
            parse_fault_spec("mpb_flip:p=often")

    def test_missing_equals_rejected(self):
        with pytest.raises(FaultSpecError):
            parse_fault_spec("mpb_flip:p")

    def test_empty_spec_rejected(self):
        with pytest.raises(FaultSpecError):
            parse_fault_spec("  ;  ")

    def test_rule_list_passthrough(self):
        rules = parse_fault_spec([FaultRule("mesh_drop", p=0.5)])
        assert rules[0].kind == "mesh_drop"


class TestBitFlips:
    def test_int_flip_changes_one_bit(self):
        import random
        flipped = _flip_bits(0, random.Random(0), bit=5)
        assert flipped == 32

    def test_float_flip_changes_value(self):
        import random
        flipped = _flip_bits(1.5, random.Random(3), bit=0)
        assert flipped != 1.5

    def test_non_numeric_untouched(self):
        import random
        marker = object()
        assert _flip_bits(marker, random.Random(0)) is marker


class TestDeterminism:
    def test_same_seed_same_cycles_and_counts(self):
        spec = "mesh_delay:p=0.5,seed=3,cycles=40"
        results = []
        for _ in range(2):
            injector = FaultInjector(spec)
            result = run_rcce(RCCE_COMPUTE, 4, faults=injector)
            results.append((result.cycles, dict(injector.counts)))
        assert results[0] == results[1]
        assert results[0][1]  # something was injected

    def test_different_seed_different_outcome(self):
        a = run_rcce(RCCE_COMPUTE, 4,
                     faults="mesh_delay:p=0.5,seed=3,cycles=40")
        b = run_rcce(RCCE_COMPUTE, 4,
                     faults="mesh_delay:p=0.5,seed=4,cycles=40")
        assert a.cycles != b.cycles

    def test_disabled_faults_byte_identical(self):
        baseline = run_rcce(RCCE_COMPUTE, 4)
        injector = FaultInjector([])  # inactive: no rules
        again = run_rcce(RCCE_COMPUTE, 4, faults=injector)
        assert again.cycles == baseline.cycles
        assert again.per_core_cycles == baseline.per_core_cycles


class TestEffects:
    def test_mesh_delay_increases_cycles(self):
        baseline = run_rcce(RCCE_COMPUTE, 4)
        faulted = run_rcce(RCCE_COMPUTE, 4,
                           faults="mesh_delay:p=0.5,seed=3,cycles=40")
        assert faulted.cycles > baseline.cycles

    def test_mesh_drop_retransmits_and_counts(self):
        from repro.scc.chip import SCCChip
        from repro.scc.config import Table61Config
        chip = SCCChip(Table61Config())
        baseline = run_rcce(RCCE_COMPUTE, 2)
        faulted = run_rcce(RCCE_COMPUTE, 2, chip=chip,
                           faults="mesh_drop:p=0.3,seed=9")
        assert faulted.cycles > baseline.cycles
        assert chip.mesh.drops > 0

    def test_dram_flip_corrupts_result(self):
        # p=1: every private/shared read is corrupted, so the final
        # counter cannot survive intact
        clean = run_pthread_single_core(PTHREAD_COUNT)
        faulted = run_pthread_single_core(
            PTHREAD_COUNT, faults="dram_flip:p=1.0,seed=1")
        assert clean.exit_value == 500
        assert faulted.exit_value != 500

    def test_core_crash_raises(self):
        with pytest.raises(CoreCrashFault) as info:
            run_rcce(RCCE_COMPUTE, 2, faults="core_crash:core=1,at=100")
        assert info.value.core == 1
        assert info.value.cycle >= 100

    def test_core_stall_charges_cycles(self):
        baseline = run_rcce(RCCE_COMPUTE, 2)
        stalled = run_rcce(
            RCCE_COMPUTE, 2,
            faults="core_stall:core=0,at=100,cycles=9000")
        assert stalled.per_core_cycles[0] >= \
            baseline.per_core_cycles[0] + 9000

    def test_mpb_flip_counts_corrupted_reads(self):
        from repro.scc.chip import SCCChip
        from repro.scc.config import Table61Config
        # reads through a pointer into RCCE_malloc'd (MPB) storage are
        # the hooked load path
        source = """
        int RCCE_APP(int argc, char **argv) {
            int myID;
            double *mpb;
            double sum;
            int i;
            RCCE_init(&argc, &argv);
            myID = RCCE_ue();
            mpb = (double *)RCCE_malloc(64);
            for (i = 0; i < 8; i++) { mpb[i] = i + 0.25; }
            sum = 0.0;
            for (i = 0; i < 8; i++) { sum = sum + mpb[i]; }
            RCCE_barrier(&RCCE_COMM_WORLD);
            RCCE_finalize();
            return 0;
        }
        """
        chip = SCCChip(Table61Config())
        injector = FaultInjector("mpb_flip:p=1.0,seed=2")
        run_rcce(source, 2, chip=chip, faults=injector)
        assert injector.total_injections("mpb_flip") > 0
        assert chip.mpb.stats.corrupted_reads > 0


class TestObservability:
    def test_metrics_export_has_injections(self):
        result = run_rcce(RCCE_COMPUTE, 2,
                          faults="mesh_delay:p=0.5,seed=3")
        counters = result.metrics["counters"]
        assert "fault_injections" in counters
        rows = counters["fault_injections"]
        assert all(row["labels"]["kind"] == "mesh_delay"
                   for row in rows)
        assert sum(row["value"] for row in rows) > 0

    def test_trace_has_fault_events(self):
        from repro.obs.tracer import EventTracer
        from repro.scc.chip import SCCChip
        from repro.scc.config import Table61Config
        chip = SCCChip(Table61Config())
        tracer = EventTracer()
        chip.attach_events(tracer, pid=0, name="faulted")
        run_rcce(RCCE_COMPUTE, 2, chip=chip,
                 faults="mesh_delay:p=0.5,seed=3")
        assert tracer.events_named("fault_inject")

    def test_collector_unregistered_after_run(self):
        from repro.scc.chip import SCCChip
        from repro.scc.config import Table61Config
        chip = SCCChip(Table61Config())
        run_rcce(RCCE_COMPUTE, 2, chip=chip,
                 faults="mesh_delay:p=0.5,seed=3")
        assert chip.faults is None
        # a clean follow-up run on the same chip reports no faults
        clean = run_rcce(RCCE_COMPUTE, 2, chip=chip)
        assert "fault_injections" not in clean.metrics["counters"]
