"""Condition variables in the single-core pthread baseline.

The serial model (see the pthread_rt module docstring): signals are
counted deposits, a wait that finds none runs other not-yet-started
threads in creation order until one deposits, and a wait that can never
be satisfied raises DeadlockError instead of hanging the host.
"""

import os

import pytest

from repro.sim.pthread_rt import COND_WAIT_COST
from repro.sim.runner import run_pthread_single_core
from repro.sim.watchdog import DeadlockError

FIXTURES = os.path.join(os.path.dirname(__file__), "..", "fixtures")

PRODUCER_CONSUMER = """
#include <stdio.h>
#include <pthread.h>

pthread_mutex_t lock;
pthread_cond_t cond;
int ready = 0;
int value = 0;

void *producer(void *arg)
{
    pthread_mutex_lock(&lock);
    value = 42;
    ready = 1;
    pthread_cond_signal(&cond);
    pthread_mutex_unlock(&lock);
    return (void *)0;
}

int main(int argc, char **argv)
{
    pthread_t tid;
    pthread_mutex_init(&lock, 0);
    pthread_cond_init(&cond, 0);
    pthread_create(&tid, 0, producer, (void *)0);
    pthread_mutex_lock(&lock);
    while (!ready)
    {
        pthread_cond_wait(&cond, &lock);
    }
    pthread_mutex_unlock(&lock);
    pthread_join(tid, 0);
    printf("got %d\\n", value);
    return 0;
}
"""

BROADCAST = """
#include <stdio.h>
#include <pthread.h>

pthread_mutex_t lock;
pthread_cond_t cond;
int go = 0;
int woken = 0;

void *waiter(void *arg)
{
    pthread_mutex_lock(&lock);
    while (!go)
    {
        pthread_cond_wait(&cond, &lock);
    }
    woken = woken + 1;
    pthread_mutex_unlock(&lock);
    return (void *)0;
}

void *opener(void *arg)
{
    pthread_mutex_lock(&lock);
    go = 1;
    pthread_cond_broadcast(&cond);
    pthread_mutex_unlock(&lock);
    return (void *)0;
}

int main(int argc, char **argv)
{
    pthread_t w1;
    pthread_t w2;
    pthread_t w3;
    pthread_t op;
    pthread_mutex_init(&lock, 0);
    pthread_cond_init(&cond, 0);
    pthread_create(&w1, 0, waiter, (void *)0);
    pthread_create(&w2, 0, waiter, (void *)0);
    pthread_create(&w3, 0, waiter, (void *)0);
    pthread_create(&op, 0, opener, (void *)0);
    pthread_join(w1, 0);
    pthread_join(w2, 0);
    pthread_join(w3, 0);
    pthread_join(op, 0);
    printf("woken %d\\n", woken);
    return 0;
}
"""


class TestCondvars:
    @pytest.mark.parametrize("engine", ["tree", "compiled"])
    def test_producer_consumer(self, engine):
        result = run_pthread_single_core(PRODUCER_CONSUMER,
                                         engine=engine)
        assert result.stdout() == "got 42\n"

    def test_engines_agree_on_cycles(self):
        runs = {engine: run_pthread_single_core(PRODUCER_CONSUMER,
                                                engine=engine)
                for engine in ("tree", "compiled")}
        assert runs["compiled"].cycles == runs["tree"].cycles

    def test_broadcast_wakes_every_waiter(self):
        result = run_pthread_single_core(BROADCAST)
        assert result.stdout() == "woken 3\n"

    def test_wait_charges_cycles(self):
        without = run_pthread_single_core(
            PRODUCER_CONSUMER.replace(
                "    while (!ready)\n"
                "    {\n"
                "        pthread_cond_wait(&cond, &lock);\n"
                "    }\n", ""))
        with_wait = run_pthread_single_core(PRODUCER_CONSUMER)
        assert with_wait.cycles >= without.cycles + COND_WAIT_COST

    def test_signal_before_wait_is_not_lost(self):
        """Deliberate divergence from the POSIX lost-wakeup race: a
        deposit made before the wait still satisfies it (serial
        execution cannot reproduce the racing interleaving)."""
        source = PRODUCER_CONSUMER.replace(
            "pthread_create(&tid, 0, producer, (void *)0);\n"
            "    pthread_mutex_lock(&lock);",
            "pthread_create(&tid, 0, producer, (void *)0);\n"
            "    pthread_join(tid, 0);\n"
            "    pthread_mutex_lock(&lock);")
        result = run_pthread_single_core(source)
        assert result.stdout() == "got 42\n"


class TestMissedSignal:
    def _fixture(self):
        with open(os.path.join(FIXTURES,
                               "cond_missed_signal.c")) as handle:
            return handle.read()

    def test_missed_signal_raises_deadlock(self):
        with pytest.raises(DeadlockError) as excinfo:
            run_pthread_single_core(self._fixture())
        message = str(excinfo.value)
        assert "condvar wait-for graph" in message
        assert "no runnable thread left to signal it" in message
        assert excinfo.value.cycle

    def test_missed_signal_raises_under_compiled_engine(self):
        with pytest.raises(DeadlockError):
            run_pthread_single_core(self._fixture(), engine="compiled")


class TestRaceEdges:
    def test_signal_wait_is_a_sync_edge(self):
        """The signal->wakeup edge orders the producer's writes before
        the consumer's reads: the audit must come back clean."""
        result = run_pthread_single_core(PRODUCER_CONSUMER, race=True)
        assert result.race is not None
        assert result.race.ok, result.race.render()
        assert result.race.sync_edges > 0

    def test_broadcast_audit_clean(self):
        result = run_pthread_single_core(BROADCAST, race=True)
        assert result.race.ok, result.race.render()

    def test_race_detector_is_cycle_invisible(self):
        off = run_pthread_single_core(PRODUCER_CONSUMER)
        on = run_pthread_single_core(PRODUCER_CONSUMER, race=True)
        assert on.cycles == off.cycles
        assert on.stdout() == off.stdout()


class TestStateDump:
    def test_blocked_waiter_reported_in_dump(self):
        from repro.cfront.frontend import parse_program
        from repro.scc.chip import SCCChip
        from repro.scc.config import SCCConfig
        from repro.sim.interpreter import Interpreter
        from repro.sim.machine import Memory
        from repro.sim.pthread_rt import PthreadRuntime

        runtime = PthreadRuntime()
        chip = SCCChip(SCCConfig(num_cores=4, mesh_columns=2,
                                 mesh_rows=1, cores_per_tile=2,
                                 num_memory_controllers=1))
        interp = Interpreter(parse_program(self_dumping_source()),
                             chip, 0, Memory(), runtime)
        with pytest.raises(DeadlockError):
            interp.run_main()
        rows = {row["tid"]: row for row in runtime.state_dump()}
        assert any(row["blocked_on"] for row in rows.values())


def self_dumping_source():
    with open(os.path.join(FIXTURES,
                           "cond_missed_signal.c")) as handle:
        return handle.read()
