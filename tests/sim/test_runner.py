"""Runner-level tests (RunResult, core maps, chip reuse)."""

import pytest

from repro.cfront.frontend import parse_program
from repro.scc.chip import SCCChip
from repro.scc.config import SCCConfig, Table61Config
from repro.sim.runner import RunResult, run_pthread_single_core, run_rcce

RCCE_PROGRAM = """
#include <stdio.h>
#include <RCCE.h>
int RCCE_APP(int argc, char **argv) {
    RCCE_init(&argc, &argv);
    int s = 0;
    for (int i = 0; i < 100 * (RCCE_ue() + 1); i++) s += i;
    printf("%d\\n", RCCE_ue());
    RCCE_finalize();
    return 0;
}
"""


class TestRunResult:
    def test_seconds_property(self):
        result = RunResult(800_000_000, Table61Config(), ["x"])
        assert result.seconds == pytest.approx(1.0)

    def test_stdout_joins_output(self):
        result = RunResult(1, Table61Config(), ["a", "b\n", "c"])
        assert result.stdout() == "ab\nc"

    def test_repr(self):
        result = RunResult(1600, Table61Config(), [])
        assert "1600 cycles" in repr(result)


class TestRunRcce:
    def test_accepts_source_string(self):
        result = run_rcce(RCCE_PROGRAM, 2)
        assert sorted(result.stdout().split()) == ["0", "1"]

    def test_accepts_parsed_unit(self):
        unit = parse_program(RCCE_PROGRAM)
        result = run_rcce(unit, 2)
        assert result.stats["num_ues"] == 2

    def test_custom_core_map_changes_physical_cores(self):
        result = run_rcce(RCCE_PROGRAM, 2, core_map=[10, 40])
        assert set(result.per_core_cycles) == {10, 40}

    def test_output_ordered_by_core(self):
        result = run_rcce(RCCE_PROGRAM, 3)
        assert result.stdout() == "0\n1\n2\n"

    def test_stats_have_barrier_rounds(self):
        result = run_rcce(RCCE_PROGRAM, 2)
        assert result.stats["barrier_rounds"] >= 1

    def test_explicit_chip_accumulates_state(self):
        chip = SCCChip(Table61Config())
        run_rcce(RCCE_PROGRAM, 2, chip.config, chip)
        assert any(chip.cores[c].l1.stats.accesses > 0
                   for c in range(2))

    def test_single_ue(self):
        result = run_rcce(RCCE_PROGRAM, 1)
        assert result.stdout() == "0\n"


class TestRunPthread:
    SRC = """
    #include <stdio.h>
    int main(void) { printf("hello\\n"); return 42; }
    """

    def test_exit_value(self):
        result = run_pthread_single_core(self.SRC)
        assert result.exit_value == 42

    def test_custom_core(self):
        result = run_pthread_single_core(self.SRC, core=7)
        assert list(result.per_core_cycles) == [7]

    def test_custom_config(self):
        config = SCCConfig(core_freq_mhz=400)
        result = run_pthread_single_core(self.SRC, config)
        assert result.config.core_freq_mhz == 400

    def test_cache_stats_present(self):
        result = run_pthread_single_core(self.SRC)
        assert "l1" in result.stats["cache"]
