"""Fault tolerance of the parallel process backend.

Covers the supervision/recovery machinery end to end: host-fault spec
parsing and routing, the deterministic :class:`HostFaultPlan`
schedule, :class:`ShardCheckpoint` verified-replay bookkeeping, and —
the headline contract — byte-identity to the sequential engine after
workers are killed or stalled at arbitrary quantum ticks, including
hypothesis-driven random kill schedules.  The exhausted-restart-budget
degradation ladder (process -> thread, loudly) is pinned here too.
"""

import pickle

import pytest

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults import (
    FaultInjector,
    FaultSpecError,
    HostFaultPlan,
    parse_fault_spec,
    split_host_rules,
)
from repro.recovery.checkpoint import ShardCheckpoint, SnapshotDivergenceError
from repro.scc.chip import SCCChip
from repro.scc.config import SCCConfig
from repro.sim.parallel import run_rcce_parallel
from repro.sim.runner import run_rcce
from repro.sim.watchdog import (
    HostFaultError,
    ShardRestartsExhaustedError,
    Watchdog,
)

try:
    from repro.rcce.comm import CommDeadlockError
except ImportError:  # pragma: no cover
    CommDeadlockError = None

_TINY_CONFIG = dict(num_cores=4, mesh_columns=2, mesh_rows=1,
                    cores_per_tile=2, num_memory_controllers=1)

# A compute loop long enough to cross several 10k-cycle quanta per
# rank, so at_tick=1..3 all land mid-run, plus every sync-site family
# (barrier, lock, send/recv rendezvous) to exercise replay through
# the full coordinator protocol.
CHAOS_SOURCE = """
#include <stdio.h>
#include <RCCE.h>
int RCCE_APP(int argc, char **argv) {
    RCCE_init(&argc, &argv);
    int me = RCCE_ue();
    int n = RCCE_num_ues();
    int token[1]; int incoming[1]; int i; int acc = 0;
    token[0] = me * 100;
    for (i = 0; i < 200000; i++) { acc += i; }
    RCCE_barrier(&RCCE_COMM_WORLD);
    RCCE_acquire_lock(me);
    RCCE_release_lock(me);
    if (me % 2 == 0) {
        RCCE_send(token, sizeof(int), (me + 1) % n);
        RCCE_recv(incoming, sizeof(int), (me + n - 1) % n);
    } else {
        RCCE_recv(incoming, sizeof(int), (me + n - 1) % n);
        RCCE_send(token, sizeof(int), (me + 1) % n);
    }
    RCCE_barrier(&RCCE_COMM_WORLD);
    printf("%d got %d acc %d\\n", me, incoming[0], acc);
    RCCE_finalize();
    return 0;
}
"""

DEADLOCK_SOURCE = """
#include <RCCE.h>
int RCCE_APP(int argc, char **argv) {
    int buf[1];
    RCCE_init(&argc, &argv);
    if (RCCE_ue() == 0) {
        RCCE_recv(buf, sizeof(int), 1);  /* nobody ever sends */
    }
    RCCE_barrier(&RCCE_COMM_WORLD);
    RCCE_finalize();
    return 0;
}
"""

QUANTUM = 10_000


def _tiny_chip():
    return SCCChip(SCCConfig(**_TINY_CONFIG))


def _signature(result):
    return (result.cycles, dict(result.per_core_cycles),
            result.stdout())


_BASELINE = {}


def _baseline():
    if "sig" not in _BASELINE:
        _BASELINE["sig"] = _signature(run_rcce(CHAOS_SOURCE, 4))
    return _BASELINE["sig"]


def _chaos_run(chaos, shard_restarts=None, heartbeat_timeout=None,
               jobs=2):
    chip = _tiny_chip()
    return run_rcce_parallel(
        CHAOS_SOURCE, 4, chip.config, chip, None, 50_000_000,
        "compiled", jobs, quantum=QUANTUM, chaos=chaos,
        shard_restarts=shard_restarts,
        heartbeat_timeout=heartbeat_timeout)


# -- spec parsing and routing -------------------------------------------------


class TestHostFaultSpecs:
    def test_host_kinds_parse(self):
        rules = parse_fault_spec(
            "worker_kill:at_tick=2,shard=1;"
            "worker_stall:seconds=0.5;ipc_delay:seconds=0.002,p=0.5")
        kinds = [rule.kind for rule in rules]
        assert kinds == ["worker_kill", "worker_stall", "ipc_delay"]
        assert rules[0].params == {"at_tick": 2, "shard": 1}
        assert rules[1].params == {"seconds": 0.5}
        assert rules[2].p == 0.5

    def test_split_host_rules_partitions_mixed_spec(self):
        rules = parse_fault_spec(
            "dram_flip:p=0.1;worker_kill;mesh_drop:p=0.01;ipc_delay")
        chip_rules, host_rules = split_host_rules(rules)
        assert [r.kind for r in chip_rules] == ["dram_flip",
                                                "mesh_drop"]
        assert [r.kind for r in host_rules] == ["worker_kill",
                                               "ipc_delay"]

    def test_injector_rejects_host_kinds(self):
        with pytest.raises(FaultSpecError) as excinfo:
            FaultInjector(parse_fault_spec("worker_kill"))
        assert "HostFaultPlan" in str(excinfo.value)

    def test_plan_rejects_chip_kinds(self):
        with pytest.raises(FaultSpecError) as excinfo:
            HostFaultPlan("dram_flip:p=0.1")
        assert "FaultInjector" in str(excinfo.value)

    def test_unknown_parameter_rejected(self):
        with pytest.raises(FaultSpecError):
            parse_fault_spec("worker_kill:core=3")


# -- the deterministic chaos schedule -----------------------------------------


class TestHostFaultPlan:
    def test_unconditional_kill_fires_once_per_shard(self):
        plan = HostFaultPlan("worker_kill:at_tick=3")
        assert plan.on_tick(0, 1) == []
        assert plan.on_tick(0, 2) == []
        assert plan.on_tick(0, 3) == [("kill", 0, 3)]
        # one-shot: never again on that shard, still pending on others
        assert plan.on_tick(0, 4) == []
        assert plan.on_tick(1, 3) == [("kill", 0, 3)]

    def test_shard_targeting(self):
        plan = HostFaultPlan("worker_stall:shard=1,seconds=2")
        assert plan.on_tick(0, 5) == []
        assert plan.on_tick(1, 1) == [("stall", 0, 1, 2.0)]

    def test_probabilistic_draws_reproduce(self):
        spec = "worker_kill:p=0.3,seed=7"

        def fire_schedule():
            plan = HostFaultPlan(spec)
            return [(shard, tick)
                    for shard in range(4)
                    for tick in range(1, 30)
                    if plan.on_tick(shard, tick)]
        assert fire_schedule() == fire_schedule()

    def test_fired_set_survives_pickle(self):
        plan = HostFaultPlan("worker_kill")
        assert plan.on_tick(0, 1)
        clone = pickle.loads(pickle.dumps(plan))
        assert clone.fired == {(0, 0)}
        assert clone.on_tick(0, 2) == []   # delivered: never re-fires
        assert clone.on_tick(1, 1)         # other shards still pending

    def test_ipc_delay_accumulates(self):
        plan = HostFaultPlan("ipc_delay:seconds=0.25")
        assert plan.ipc_delay_seconds(0) == 0.25
        assert HostFaultPlan([]).active is False


# -- verified-replay bookkeeping ----------------------------------------------


class TestShardCheckpoint:
    def test_reply_record_and_replay_cursors(self):
        checkpoint = ShardCheckpoint(0, [0, 2])
        checkpoint.record_reply(0, "barrier", "ok", 1234, [])
        checkpoint.record_reply(0, "send", "ok", None, [(0, 1, [])])
        assert not checkpoint.replaying(0)
        checkpoint.begin_replay()
        assert checkpoint.restores == 1
        assert checkpoint.replaying(0)
        assert checkpoint.next_reply(0, "barrier")[2] == 1234
        assert checkpoint.next_reply(0, "send")[3] == [(0, 1, [])]
        assert not checkpoint.replaying(0)
        assert not checkpoint.replaying(2)

    def test_op_mismatch_is_divergence(self):
        checkpoint = ShardCheckpoint(1, [1])
        checkpoint.record_reply(1, "barrier", "ok", 10, [])
        checkpoint.begin_replay()
        with pytest.raises(SnapshotDivergenceError) as excinfo:
            checkpoint.next_reply(1, "recv")
        assert "asked for 'recv'" in str(excinfo.value)

    def test_delta_suppression_and_hash_verification(self):
        checkpoint = ShardCheckpoint(0, [0])
        assert checkpoint.record_delta(0, 0x8000, 1) is True
        assert checkpoint.record_delta(0, 0x8004, 2) is True
        checkpoint.begin_replay()
        # identical re-production is suppressed and verifies
        assert checkpoint.record_delta(0, 0x8000, 1) is False
        assert checkpoint.record_delta(0, 0x8004, 2) is False
        # work beyond the recorded frontier re-enters the log live
        assert checkpoint.record_delta(0, 0x8008, 3) is True

    def test_divergent_replayed_content_raises(self):
        checkpoint = ShardCheckpoint(0, [0])
        checkpoint.record_delta(0, 0x8000, 1)
        checkpoint.begin_replay()
        with pytest.raises(SnapshotDivergenceError):
            checkpoint.record_delta(0, 0x8000, 999)

    def test_none_rank_stream_tracked_lazily(self):
        checkpoint = ShardCheckpoint(0, [0])
        assert checkpoint.record_delta(None, 0x9000, 5) is True
        summary = checkpoint.as_dict()
        assert summary["delta_counts"] == {None: 1, 0: 0}
        assert list(summary["delta_counts"]) == [None, 0]

    def test_acked_tick_is_monotonic(self):
        checkpoint = ShardCheckpoint(0, [0])
        checkpoint.note_tick(3)
        checkpoint.note_tick(2)
        assert checkpoint.acked_tick == 3


# -- recovery end to end: byte-identity under injected crashes ----------------


class TestKillRecovery:
    @pytest.mark.parametrize("tick", [1, 2, 3])
    def test_kill_any_quantum_byte_identical(self, tick):
        result = _chaos_run("worker_kill:at_tick=%d" % tick)
        assert _signature(result) == _baseline()
        report = result.recovery
        assert report is not None and report.recovered
        assert report.restarts >= 1
        assert all(f["error"] == "WorkerDeathError"
                   for f in report.failures)
        assert {f["shard"] for f in report.failures} <= {0, 1}

    def test_targeted_shard_kill(self):
        result = _chaos_run("worker_kill:at_tick=2,shard=1")
        assert _signature(result) == _baseline()
        report = result.recovery
        assert [f["shard"] for f in report.failures] == [1]
        assert report.failures[0]["restored_from_round"] >= 1
        events = result.stats["parallel"]["chaos_events"]
        assert events == [{"shard": 1, "kind": "worker_kill",
                           "rule": 0, "tick": 2}]
        respawns = result.stats["parallel"]["shard_respawns"]
        assert respawns == {1: 1}

    def test_stall_recovery_byte_identical(self):
        result = _chaos_run("worker_stall:at_tick=1,seconds=30",
                            heartbeat_timeout=1.0)
        assert _signature(result) == _baseline()
        report = result.recovery
        assert report.recovered
        assert all(f["error"] == "WorkerStallError"
                   for f in report.failures)

    def test_short_stall_survives_in_place(self):
        result = _chaos_run("worker_stall:at_tick=1,seconds=0.2",
                            heartbeat_timeout=10.0)
        assert _signature(result) == _baseline()
        assert result.recovery is None
        events = result.stats["parallel"]["chaos_events"]
        assert {e["kind"] for e in events} == {"worker_stall"}

    def test_ipc_delay_does_not_change_results(self):
        result = _chaos_run("ipc_delay:seconds=0.001,p=0.2")
        assert _signature(result) == _baseline()
        assert result.recovery is None

    @given(seed=st.integers(min_value=0, max_value=2**16))
    @settings(max_examples=5, deadline=None)
    def test_random_kill_schedules_byte_identical(self, seed):
        result = _chaos_run("worker_kill:p=0.5,seed=%d" % seed,
                            shard_restarts=4)
        assert _signature(result) == _baseline()
        if result.recovery is not None:
            assert result.recovery.recovered


# -- restart budget and the degradation ladder --------------------------------


class TestRestartBudget:
    def test_exhausted_budget_raises_typed_error(self):
        with pytest.raises(ShardRestartsExhaustedError) as excinfo:
            _chaos_run("worker_kill:at_tick=1", shard_restarts=0)
        error = excinfo.value
        assert isinstance(error, HostFaultError)
        assert error.shard in (0, 1)
        assert error.report is not None
        assert error.report.failures
        assert "restart budget" in str(error)
        failure = error.report.failures[-1]
        assert failure["restored_from_round"] is None

    def test_run_rcce_degrades_to_thread_backend(self):
        result = run_rcce(CHAOS_SOURCE, 4, jobs=2, quantum=QUANTUM,
                          chaos="worker_kill:at_tick=1",
                          shard_restarts=0)
        assert _signature(result) == _baseline()
        assert result.stats["parallel"]["backend"] == "thread"
        messages = [d.format() for d in result.diagnostics
                    if d.severity == "warning"]
        assert any("degraded to the thread backend" in m
                   for m in messages)
        assert any("restart budget exhausted" in m for m in messages)
        assert result.recovery is not None
        assert not result.recovery.recovered

    def test_budget_spent_then_success_reports_recovered(self):
        result = _chaos_run("worker_kill:at_tick=1", shard_restarts=1)
        assert _signature(result) == _baseline()
        assert result.recovery.recovered
        assert result.recovery.max_restarts == 1

    def test_chaos_ignored_on_thread_backend_warns(self):
        result = run_rcce(CHAOS_SOURCE, 4, jobs=2,
                          parallel_backend="thread",
                          chaos="worker_kill")
        assert _signature(result) == _baseline()
        assert any("chaos" in d.format()
                   for d in result.diagnostics
                   if d.severity == "warning")


# -- watchdog composition (the lifted downgrade) ------------------------------


class TestWatchdogComposition:
    def test_watchdog_no_longer_forces_thread_backend(self):
        result = run_rcce(CHAOS_SOURCE, 4, jobs=2,
                          watchdog=Watchdog())
        assert _signature(result) == _baseline()
        assert result.stats["parallel"]["backend"] == "process"
        assert not any("thread backend" in d.format()
                       for d in result.diagnostics)

    def test_watchdog_timeouts_bound_parked_waits(self):
        chip = _tiny_chip()
        with pytest.raises(CommDeadlockError):
            run_rcce_parallel(
                DEADLOCK_SOURCE, 2, chip.config, chip, None,
                50_000_000, "compiled", 2,
                watchdog=Watchdog(lock_timeout=1.0,
                                  barrier_timeout=1.0))

    def test_deadlock_names_rank_and_sync_site(self):
        chip = _tiny_chip()
        with pytest.raises(CommDeadlockError) as excinfo:
            run_rcce_parallel(DEADLOCK_SOURCE, 2, chip.config, chip,
                              None, 50_000_000, "compiled", 2,
                              parked_timeout=1.0)
        message = str(excinfo.value)
        assert "rank 0 parked at recv sync site" in message
        assert "rank 1 parked at barrier sync site" in message
