"""libc-subset builtin tests."""

import pytest

from repro.cfront.frontend import parse_program
from repro.scc.chip import SCCChip
from repro.scc.config import SCCConfig
from repro.sim.interpreter import Interpreter, ThreadExit
from repro.sim.machine import Memory


def run(source):
    unit = parse_program(source)
    chip = SCCChip(SCCConfig())
    interp = Interpreter(unit, chip, 0, Memory())
    value = interp.call_function("main", [])
    return value, interp


class TestPrintf:
    def test_integer_format(self):
        _, interp = run('int main(void) { printf("v=%d!\\n", 42); '
                        'return 0; }')
        assert interp.output == ["v=42!\n"]

    def test_float_formats(self):
        _, interp = run('int main(void) { printf("%.2f %g", 3.14159, '
                        '0.5); return 0; }')
        assert interp.output == ["3.14 0.5"]

    def test_multiple_args_and_percent(self):
        _, interp = run('int main(void) { printf("%d%%%s", 9, "ok"); '
                        'return 0; }')
        assert interp.output == ["9%ok"]

    def test_long_format(self):
        _, interp = run('int main(void) { long v = 7; '
                        'printf("%ld", v); return 0; }')
        assert interp.output == ["7"]

    def test_char_and_hex(self):
        _, interp = run("int main(void) { printf(\"%c %x\", 65, 255); "
                        "return 0; }")
        assert interp.output == ["A ff"]

    def test_puts(self):
        _, interp = run('int main(void) { puts("hello"); return 0; }')
        assert interp.output == ["hello\n"]


class TestMath:
    def test_sqrt(self):
        value, _ = run("int main(void) { return (int)sqrt(144.0); }")
        assert value == 12

    def test_pow(self):
        value, _ = run("int main(void) { return (int)pow(2.0, 10.0); }")
        assert value == 1024

    def test_fabs(self):
        value, _ = run("int main(void) { return (int)fabs(-2.5) * 2; }")
        assert value == 4

    def test_trig_identity(self):
        value, _ = run(
            "int main(void) { double x = 0.7; "
            "double r = sin(x) * sin(x) + cos(x) * cos(x); "
            "return (int)(r * 1000.0 + 0.5); }")
        assert value == 1000

    def test_math_charges_cycles(self):
        _, with_math = run(
            "int main(void) { double s = 0.0; "
            "for (int i = 0; i < 10; i++) s += sqrt(2.0); return 0; }")
        _, without = run(
            "int main(void) { double s = 0.0; "
            "for (int i = 0; i < 10; i++) s += 1.41; return 0; }")
        assert with_math.cycles > without.cycles


class TestMemoryBuiltins:
    def test_malloc_gives_usable_memory(self):
        value, _ = run("""
        int main(void) {
            int *p = (int *)malloc(4 * sizeof(int));
            p[2] = 5;
            return p[2];
        }""")
        assert value == 5

    def test_calloc_zeroes(self):
        value, _ = run("""
        int main(void) {
            int *p = (int *)calloc(8, sizeof(int));
            return p[7];
        }""")
        assert value == 0

    def test_memset(self):
        value, _ = run("""
        int main(void) {
            int a[4];
            a[0] = 9;
            memset(a, 0, 4 * sizeof(int));
            return a[0];
        }""")
        assert value == 0

    def test_memcpy(self):
        value, _ = run("""
        int main(void) {
            int src[3];
            int dst[3];
            src[1] = 42;
            memcpy(dst, src, 3 * sizeof(int));
            return dst[1];
        }""")
        assert value == 42

    def test_malloc_allocations_disjoint(self):
        value, _ = run("""
        int main(void) {
            int *a = (int *)malloc(16);
            int *b = (int *)malloc(16);
            a[0] = 1;
            b[0] = 2;
            return a[0] + b[0] * 10;
        }""")
        assert value == 21


class TestMisc:
    def test_rand_deterministic_per_core(self):
        _, first = run("int main(void) { return rand(); }")
        _, second = run("int main(void) { return rand(); }")
        assert first.call_function("main", []) == \
            second.call_function("main", [])

    def test_srand_reseeds(self):
        value, _ = run("""
        int main(void) {
            srand(7);
            int a = rand();
            srand(7);
            int b = rand();
            return a == b;
        }""")
        assert value == 1

    def test_exit_raises_thread_exit(self):
        unit = parse_program("int main(void) { exit(3); return 0; }")
        chip = SCCChip(SCCConfig())
        interp = Interpreter(unit, chip, 0, Memory())
        with pytest.raises(ThreadExit):
            interp.call_function("main", [])

    def test_abs(self):
        value, _ = run("int main(void) { return abs(-17); }")
        assert value == 17
