"""Watchdog tests: every kernel here used to hang the host process —
now each terminates quickly with a structured error.  All timeouts are
small so the whole module stays wall-clock bounded.
"""

import time

import pytest

from repro.sim.runner import run_rcce
from repro.sim.watchdog import (
    BarrierTimeoutError,
    DeadlockError,
    LockTimeoutError,
    SimulationTimeout,
    Watchdog,
    WatchdogError,
)

CROSSED_LOCKS = """
int RCCE_APP(int argc, char **argv) {
    int myID;
    RCCE_init(&argc, &argv);
    myID = RCCE_ue();
    if (myID == 0) {
        RCCE_acquire_lock(0);
        RCCE_barrier(&RCCE_COMM_WORLD);
        RCCE_acquire_lock(1);
        RCCE_release_lock(1);
        RCCE_release_lock(0);
    } else {
        RCCE_acquire_lock(1);
        RCCE_barrier(&RCCE_COMM_WORLD);
        RCCE_acquire_lock(0);
        RCCE_release_lock(0);
        RCCE_release_lock(1);
    }
    RCCE_finalize();
    return 0;
}
"""

NEVER_RELEASED = """
int RCCE_APP(int argc, char **argv) {
    int myID;
    RCCE_init(&argc, &argv);
    myID = RCCE_ue();
    if (myID == 0) {
        RCCE_acquire_lock(3);
    }
    RCCE_barrier(&RCCE_COMM_WORLD);
    RCCE_acquire_lock(3);
    RCCE_release_lock(3);
    RCCE_finalize();
    return 0;
}
"""

# rank 1 dies on an undefined function while the others reach the
# barrier: without abort propagation they would wait forever
DEAD_PEER = """
int RCCE_APP(int argc, char **argv) {
    int myID;
    RCCE_init(&argc, &argv);
    myID = RCCE_ue();
    if (myID == 1) {
        no_such_function(myID);
    }
    RCCE_barrier(&RCCE_COMM_WORLD);
    RCCE_finalize();
    return 0;
}
"""

SPIN_FOREVER = """
int RCCE_APP(int argc, char **argv) {
    int i;
    RCCE_init(&argc, &argv);
    for (i = 0; i >= 0; i++) { }
    RCCE_finalize();
    return 0;
}
"""

HEALTHY = """
int RCCE_APP(int argc, char **argv) {
    int myID;
    int i;
    double sum;
    RCCE_init(&argc, &argv);
    myID = RCCE_ue();
    RCCE_acquire_lock(0);
    sum = 0.0;
    for (i = 0; i < 50; i++) { sum = sum + i; }
    RCCE_release_lock(0);
    RCCE_barrier(&RCCE_COMM_WORLD);
    RCCE_finalize();
    return 0;
}
"""


def fast_watchdog(**overrides):
    kwargs = {"lock_timeout": 5.0, "barrier_timeout": 10.0,
              "spin_slice": 0.02}
    kwargs.update(overrides)
    return Watchdog(**kwargs)


class TestDeadlockDetection:
    def test_crossed_locks_raise_deadlock(self):
        start = time.monotonic()
        with pytest.raises(DeadlockError) as info:
            run_rcce(CROSSED_LOCKS, 2, watchdog=fast_watchdog())
        # the wait-for cycle names both edges
        assert len(info.value.cycle) == 2
        assert {edge[1] for edge in info.value.cycle} == {0, 1}
        # detection must come from the cycle check, not the timeout
        assert time.monotonic() - start < 4.0

    def test_never_released_lock_times_out(self):
        with pytest.raises(LockTimeoutError) as info:
            run_rcce(NEVER_RELEASED, 2,
                     watchdog=fast_watchdog(lock_timeout=1.0))
        assert "register 3" in str(info.value)

    def test_deadlock_counts(self):
        watchdog = fast_watchdog()
        with pytest.raises(DeadlockError):
            run_rcce(CROSSED_LOCKS, 2, watchdog=watchdog)
        assert watchdog.deadlocks_detected == 1


class TestDeadPeer:
    def test_peer_failure_propagates_original_error(self):
        from repro.sim.interpreter import InterpreterError
        start = time.monotonic()
        with pytest.raises(InterpreterError) as info:
            run_rcce(DEAD_PEER, 3, watchdog=fast_watchdog())
        # the *originating* error surfaces, not a barrier timeout
        assert "no_such_function" in str(info.value)
        assert time.monotonic() - start < 5.0

    def test_peer_failure_without_watchdog_still_bounded(self):
        # the barrier's built-in default timeout plus abort propagation
        # must bound this even with no watchdog installed
        from repro.sim.interpreter import InterpreterError
        start = time.monotonic()
        with pytest.raises(InterpreterError):
            run_rcce(DEAD_PEER, 3)
        assert time.monotonic() - start < 30.0


class TestStepBudget:
    def test_budget_raises_simulation_timeout_with_dumps(self):
        with pytest.raises(SimulationTimeout) as info:
            run_rcce(SPIN_FOREVER, 2, max_steps=20_000)
        dumps = info.value.dumps
        assert len(dumps) == 2
        for dump in dumps:
            assert dump["steps"] > 0
            assert "rank" in dump
        # the rendered message carries the per-core state
        assert "steps" in str(info.value)

    def test_pthread_budget_carries_thread_table(self):
        from repro.sim.runner import run_pthread_single_core
        source = """
        #include <pthread.h>
        void *spin(void *arg) {
            int i;
            for (i = 0; i >= 0; i++) { }
            return 0;
        }
        int main() {
            pthread_t t;
            pthread_create(&t, 0, spin, 0);
            pthread_join(t, 0);
            return 0;
        }
        """
        with pytest.raises(SimulationTimeout) as info:
            run_pthread_single_core(source, max_steps=20_000)
        assert info.value.dumps
        threads = info.value.threads
        assert any(t["function"] == "spin" and not t["finished"]
                   for t in threads)

    def test_budget_error_is_interpreter_error(self):
        # backward compatibility: existing callers catch
        # InterpreterError / StepLimitExceeded
        from repro.sim.interpreter import (InterpreterError,
                                           StepLimitExceeded)
        with pytest.raises(StepLimitExceeded):
            run_rcce(SPIN_FOREVER, 2, max_steps=20_000)
        assert issubclass(SimulationTimeout, InterpreterError)


class TestNoPerturbation:
    def test_watchdog_does_not_change_cycles(self):
        baseline = run_rcce(HEALTHY, 4)
        watched = run_rcce(HEALTHY, 4, watchdog=fast_watchdog())
        assert watched.cycles == baseline.cycles
        assert watched.per_core_cycles == baseline.per_core_cycles

    def test_healthy_run_has_no_false_positives(self):
        watchdog = fast_watchdog(lock_timeout=2.0)
        result = run_rcce(HEALTHY, 8, watchdog=watchdog)
        assert result.cycles > 0
        assert watchdog.deadlocks_detected == 0


class TestBarrierTimeout:
    def test_barrier_timeout_error_is_watchdog_error(self):
        assert issubclass(BarrierTimeoutError, WatchdogError)

    def test_clock_barrier_times_out_on_missing_peer(self):
        from repro.rcce.sync import ClockBarrier
        barrier = ClockBarrier(2, timeout=0.3)
        with pytest.raises(BarrierTimeoutError):
            barrier.wait(0, 100)  # the second party never arrives

    def test_clock_barrier_abort_carries_cause(self):
        import threading
        from repro.rcce.sync import ClockBarrier
        from repro.sim.watchdog import BarrierAbortedError
        barrier = ClockBarrier(2, timeout=5.0)
        failure = RuntimeError("peer died")
        caught = {}

        def waiter():
            try:
                barrier.wait(0, 100)
            except Exception as exc:  # noqa: BLE001
                caught["exc"] = exc

        thread = threading.Thread(target=waiter)
        thread.start()
        time.sleep(0.1)
        barrier.abort(failure)
        thread.join(timeout=5)
        assert not thread.is_alive()
        assert isinstance(caught["exc"], BarrierAbortedError)
        assert caught["exc"].__cause__ is failure
