"""Tests for the parallel host backend (``repro.sim.parallel``).

The differential suite (test_engine_differential.py) proves the
byte-identity contract over the benchmark corpus; this file covers the
machinery — shard planning, dirty-write logging, counter merging,
backend selection and downgrades, error propagation across the process
boundary, and deadlock detection of parked shards.
"""

import os

import pytest

from repro.scc.chip import SCCChip
from repro.scc.config import SCCConfig
from repro.sim.parallel import (
    ShardMemory,
    ShardPlan,
    parallel_stats,
    run_rcce_parallel,
)
from repro.sim.runner import run_pthread_single_core, run_rcce
from repro.sim.watchdog import SimulationTimeout

try:
    from repro.rcce.comm import CommDeadlockError
except ImportError:  # pragma: no cover
    CommDeadlockError = None

_TINY_CONFIG = dict(num_cores=4, mesh_columns=2, mesh_rows=1,
                    cores_per_tile=2, num_memory_controllers=1)

SHARED_BASE = 0x8000_0000


def _tiny_chip():
    return SCCChip(SCCConfig(**_TINY_CONFIG))


RING_SOURCE = """
#include <stdio.h>
#include <RCCE.h>
int RCCE_APP(int argc, char **argv) {
    RCCE_init(&argc, &argv);
    int me = RCCE_ue();
    int n = RCCE_num_ues();
    int token[1];
    int incoming[1];
    token[0] = me * 100;
    RCCE_barrier(&RCCE_COMM_WORLD);
    RCCE_acquire_lock(me);
    RCCE_release_lock(me);
    if (me % 2 == 0) {
        RCCE_send(token, sizeof(int), (me + 1) % n);
        RCCE_recv(incoming, sizeof(int), (me + n - 1) % n);
    } else {
        RCCE_recv(incoming, sizeof(int), (me + n - 1) % n);
        RCCE_send(token, sizeof(int), (me + 1) % n);
    }
    RCCE_barrier(&RCCE_COMM_WORLD);
    printf("%d got %d\\n", me, incoming[0]);
    RCCE_finalize();
    return 0;
}
"""

DEADLOCK_SOURCE = """
#include <RCCE.h>
int RCCE_APP(int argc, char **argv) {
    int buf[1];
    RCCE_init(&argc, &argv);
    if (RCCE_ue() == 0) {
        RCCE_recv(buf, sizeof(int), 1);  /* nobody ever sends */
    }
    RCCE_barrier(&RCCE_COMM_WORLD);
    RCCE_finalize();
    return 0;
}
"""


def _signature(result):
    return (result.cycles, dict(result.per_core_cycles),
            result.stdout())


# -- shard planning -----------------------------------------------------------


class TestShardPlan:
    def test_round_robin(self):
        plan = ShardPlan(8, 3)
        assert plan.shard_of == [0, 1, 2, 0, 1, 2, 0, 1]
        assert plan.ranks_of(0) == [0, 3, 6]
        assert plan.ranks_of(2) == [2, 5]

    def test_jobs_clamped_to_ues(self):
        plan = ShardPlan(4, 16)
        assert plan.jobs == 4
        assert all(plan.ranks_of(shard) for shard in range(4))

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            ShardPlan(4, 0)
        with pytest.raises(ValueError):
            ShardPlan(0, 2)


# -- dirty-write logging ------------------------------------------------------


class TestShardMemory:
    def test_shared_stores_logged_private_skipped(self):
        memory = ShardMemory()
        memory.store(0x100, 7)                 # private window
        memory.store(SHARED_BASE + 8, 9)       # shared DRAM
        assert memory.drain_dirty() == [(None, SHARED_BASE + 8, 9)]

    def test_entries_tagged_with_bound_rank(self):
        memory = ShardMemory()
        memory.set_thread_rank(3)
        memory.store(SHARED_BASE + 8, 9)
        assert memory.drain_dirty() == [(3, SHARED_BASE + 8, 9)]

    def test_log_everything_flips_the_filter(self):
        memory = ShardMemory()
        memory.log_everything()
        memory.store(0x100, 7)
        assert memory.drain_dirty() == [(None, 0x100, 7)]

    def test_drain_is_fifo_and_empties(self):
        memory = ShardMemory()
        for index in range(4):
            memory.store(SHARED_BASE + index, index)
        entries = memory.drain_dirty()
        assert entries == [(None, SHARED_BASE + i, i)
                           for i in range(4)]
        assert memory.drain_dirty() == []

    def test_memset_and_memcpy_log_shared(self):
        memory = ShardMemory()
        memory.memset(SHARED_BASE, 5, 3, 4)
        assert len(memory.drain_dirty()) == 3
        memory.store(SHARED_BASE + 100, 42)
        memory.drain_dirty()
        memory.memcpy(SHARED_BASE + 200, SHARED_BASE + 100, 1, 4)
        assert memory.drain_dirty() == [(None, SHARED_BASE + 200, 42)]

    def test_apply_remote_does_not_relog(self):
        memory = ShardMemory()
        memory.apply_remote([(SHARED_BASE + 4, 11)])
        assert memory.load(SHARED_BASE + 4) == 11
        assert memory.drain_dirty() == []


# -- counter merging ----------------------------------------------------------


def test_counter_state_round_trips_through_merge():
    """A replica's counters folded into a fresh chip must reproduce the
    original accumulators (the parent chip never simulates anything
    itself under the process backend)."""
    source_chip = _tiny_chip()
    run_rcce(RING_SOURCE, 4, source_chip.config, source_chip)
    shipped = source_chip.counter_state()

    target = _tiny_chip()
    target.merge_counter_state(shipped)
    assert target.counter_state() == shipped


# -- backend selection and downgrades ----------------------------------------


class TestBackendSelection:
    def test_process_backend_matches_sequential(self):
        baseline = _signature(run_rcce(RING_SOURCE, 4))
        chip = _tiny_chip()
        result = run_rcce(RING_SOURCE, 4, chip.config, chip, jobs=2)
        assert _signature(result) == baseline
        parallel = result.stats["parallel"]
        assert parallel["backend"] == "process"
        assert parallel["jobs"] == 2
        assert parallel["reconciliations"] > 0
        gauges = result.metrics["gauges"]
        assert gauges["parallel_jobs"][0]["value"] == 2
        counters = result.metrics["counters"]
        shards = {sample["labels"]["shard"]
                  for sample in counters["parallel_reconciliations"]}
        assert shards == {0, 1}

    def test_jobs_clamp_reported_in_stats(self):
        result = run_rcce(RING_SOURCE, 4, jobs=16)
        assert result.stats["parallel"]["jobs"] == 4

    def test_jobs_below_one_rejected(self):
        with pytest.raises(ValueError):
            run_rcce(RING_SOURCE, 4, jobs=0)
        with pytest.raises(ValueError):
            run_pthread_single_core("int main(void) { return 0; }",
                                    jobs=-1)

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            run_rcce(RING_SOURCE, 4, jobs=2, parallel_backend="gpu")

    def test_preparsed_unit_downgrades_to_thread(self):
        from repro.cfront.frontend import parse_program
        unit = parse_program(RING_SOURCE)
        result = run_rcce(unit, 4, jobs=2)
        assert result.stats["parallel"]["backend"] == "thread"
        assert any("thread backend" in diagnostic.format()
                   for diagnostic in result.diagnostics)

    def test_race_downgrades_to_thread(self):
        result = run_rcce(RING_SOURCE, 4, jobs=2, race=True)
        assert result.stats["parallel"]["backend"] == "thread"
        assert result.race is not None
        messages = [d.format() for d in result.diagnostics]
        assert any("race detection" in m for m in messages)

    def test_thread_backend_matches_sequential(self):
        baseline = _signature(run_rcce(RING_SOURCE, 4))
        result = run_rcce(RING_SOURCE, 4, jobs=2,
                          parallel_backend="thread")
        assert _signature(result) == baseline
        assert result.stats["parallel"]["backend"] == "thread"

    def test_pthread_jobs_warns_and_runs_sequentially(self):
        source = "int main(void) { return 0; }"
        baseline = run_pthread_single_core(source)
        result = run_pthread_single_core(source, jobs=4)
        assert result.cycles == baseline.cycles
        assert any("single core" in diagnostic.format()
                   for diagnostic in result.diagnostics)


# -- stats shape --------------------------------------------------------------


def test_parallel_stats_shape():
    from repro.rcce.sync import SkewBarrier
    skew = SkewBarrier(2, 1234)
    skew.note_quantum(0, 500)
    skew.note_sync(1, 700)
    stats = parallel_stats("process", skew, 2, start_method="fork")
    assert stats["backend"] == "process"
    assert stats["jobs"] == 2
    assert stats["quantum"] == 1234
    assert stats["reconciliations"] == 2
    assert stats["start_method"] == "fork"


# -- error propagation across the process boundary ---------------------------


class TestErrorPropagation:
    def test_step_limit_becomes_simulation_timeout(self):
        source = """
        int RCCE_APP(int argc, char **argv) {
            int i;
            RCCE_init(&argc, &argv);
            for (i = 0; i >= 0; i++) { }
            return 0;
        }
        """
        with pytest.raises(SimulationTimeout) as excinfo:
            run_rcce(source, 4, jobs=2, max_steps=5_000)
        # the worker ships its per-core dumps home with the error
        assert excinfo.value.dumps

    def test_interpreter_error_crosses_the_boundary(self):
        from repro.sim.interpreter import InterpreterError
        source = """
        int RCCE_APP(int argc, char **argv) {
            int *p;
            RCCE_init(&argc, &argv);
            p = (int *)0;
            return undefined_function(p[0]);
        }
        """
        with pytest.raises(InterpreterError):
            run_rcce(source, 4, jobs=2)

    def test_parked_shards_raise_comm_deadlock(self):
        chip = _tiny_chip()
        with pytest.raises(CommDeadlockError) as excinfo:
            run_rcce_parallel(DEADLOCK_SOURCE, 2, chip.config, chip,
                              None, 50_000_000, "compiled", jobs=2,
                              parked_timeout=1.0)
        message = str(excinfo.value)
        assert "parked" in message
        assert "rank 0" in message


# -- spawn start method -------------------------------------------------------


@pytest.mark.skipif(os.name == "nt", reason="posix-only repo")
def test_spawn_start_method_identical():
    """Workers carry no inherited state: the spawn method (a cold
    interpreter per worker) produces the same bytes as fork."""
    baseline = _signature(run_rcce(RING_SOURCE, 4))
    chip = _tiny_chip()
    result = run_rcce_parallel(RING_SOURCE, 4, chip.config, chip,
                               None, 50_000_000, "compiled", jobs=2,
                               start_method="spawn")
    assert _signature(result) == baseline
    assert result.stats["parallel"]["start_method"] == "spawn"
