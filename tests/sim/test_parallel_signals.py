"""SIGTERM/SIGINT during a process-sharded parallel run must unwind
cleanly: workers terminated and joined, pipes closed, a one-line
diagnostic raised, no orphan processes, handlers restored."""

import multiprocessing
import os
import signal
import threading
import time

import pytest

from repro.sim.parallel import ParallelInterrupted
from repro.sim.runner import run_rcce

# RCCE-native (the process backend re-parses source in each worker)
# and long enough that the coordinator is still mid-run when the
# timer fires: many compute+barrier rounds over 8 UEs.
LONG_SOURCE = """
#include <stdio.h>
#include <RCCE.h>
int RCCE_APP(int argc, char **argv) {
    RCCE_init(&argc, &argv);
    int me = RCCE_ue();
    int acc = 0;
    int round;
    int i;
    for (round = 0; round < 400; round++) {
        for (i = 0; i < 200; i++) {
            acc = acc + (me + 1) * (i + 1);
        }
        RCCE_barrier(&RCCE_COMM_WORLD);
    }
    printf("%d acc %d\\n", me, acc);
    RCCE_finalize();
    return 0;
}
"""


def _fire(signum, delay=0.5):
    pid = os.getpid()
    timer = threading.Timer(delay,
                            lambda: os.kill(pid, signum))
    timer.daemon = True
    timer.start()
    return timer


@pytest.mark.parametrize("signum", [signal.SIGTERM, signal.SIGINT])
def test_signal_unwinds_parallel_run(signum):
    before_int = signal.getsignal(signal.SIGINT)
    before_term = signal.getsignal(signal.SIGTERM)
    timer = _fire(signum)
    started = time.monotonic()
    try:
        with pytest.raises(ParallelInterrupted) as info:
            run_rcce(LONG_SOURCE, 8, jobs=2,
                     max_steps=2_000_000_000)
    finally:
        timer.cancel()
    elapsed = time.monotonic() - started
    assert elapsed < 30, "teardown dragged: %.1fs" % elapsed
    # one-line diagnostic names the signal and the worker count
    assert info.value.signum == signum
    assert "terminated" in str(info.value)
    assert "unwound cleanly" in str(info.value)
    assert "\n" not in str(info.value)
    # no orphans...
    for child in multiprocessing.active_children():
        assert not child.name.startswith("repro-shard"), \
            "orphaned worker %s" % child.name
    # ...and the previous handlers are back in place
    assert signal.getsignal(signal.SIGINT) == before_int
    assert signal.getsignal(signal.SIGTERM) == before_term


def test_interrupt_is_a_keyboard_interrupt():
    # callers with a bare `except KeyboardInterrupt` (the CLI) catch
    # a coordinator SIGINT without new plumbing
    assert issubclass(ParallelInterrupted, KeyboardInterrupt)
    exc = ParallelInterrupted(signal.SIGTERM, 2)
    assert exc.signum == signal.SIGTERM
    assert exc.workers == 2


SHORT_SOURCE = """
#include <stdio.h>
#include <RCCE.h>
int RCCE_APP(int argc, char **argv) {
    RCCE_init(&argc, &argv);
    int me = RCCE_ue();
    RCCE_barrier(&RCCE_COMM_WORLD);
    printf("ue %d done\\n", me);
    RCCE_finalize();
    return 0;
}
"""


def test_clean_run_unaffected_by_handler_plumbing():
    # the install/restore cycle around a run that finishes normally
    # must be invisible
    before = signal.getsignal(signal.SIGTERM)
    sequential = run_rcce(SHORT_SOURCE, 4, max_steps=2_000_000)
    sharded = run_rcce(SHORT_SOURCE, 4, jobs=2, max_steps=2_000_000)
    assert sharded.cycles == sequential.cycles
    assert sharded.stdout() == sequential.stdout()
    assert signal.getsignal(signal.SIGTERM) == before
