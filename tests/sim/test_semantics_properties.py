"""Property-based check: the interpreter implements C expression
semantics.  Random integer expressions are rendered to C, run through
the interpreter, and compared against a Python oracle implementing the
C rules (truncating division, sign-following modulo)."""

import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.cfront.frontend import parse_program
from repro.scc.chip import SCCChip
from repro.scc.config import SCCConfig
from repro.sim.interpreter import Interpreter
from repro.sim.machine import Memory


_TINY_CONFIG = SCCConfig(num_cores=2, mesh_columns=1, mesh_rows=1,
                         cores_per_tile=2, num_memory_controllers=1)


def interpret(expr_text, bindings):
    decls = "".join("int %s = %d;\n" % (name, value)
                    for name, value in bindings.items())
    source = "%sint main(void) { return %s; }" % (decls, expr_text)
    unit = parse_program(source)
    interp = Interpreter(unit, SCCChip(_TINY_CONFIG), 0, Memory())
    return interp.call_function("main", [])


def c_div(a, b):
    q = abs(a) // abs(b)
    return q if (a < 0) == (b < 0) else -q


def c_mod(a, b):
    r = abs(a) % abs(b)
    return r if a >= 0 else -r


class _Node:
    """Oracle expression tree."""

    def __init__(self, op, left=None, right=None, leaf=None):
        self.op = op
        self.left = left
        self.right = right
        self.leaf = leaf

    def render(self):
        if self.op == "leaf":
            if isinstance(self.leaf, int) and self.leaf < 0:
                return "(%d)" % self.leaf  # keep -(-1) from lexing as --
            return str(self.leaf)
        if self.right is None:
            return "(%s%s)" % (self.op, self.left.render())
        return "(%s %s %s)" % (self.left.render(), self.op,
                               self.right.render())

    def evaluate(self, env):
        if self.op == "leaf":
            if isinstance(self.leaf, str):
                return env[self.leaf]
            return self.leaf
        if self.right is None:
            value = self.left.evaluate(env)
            if self.op == "-":
                return -value
            if self.op == "!":
                return 0 if value else 1
            if self.op == "~":
                return ~value
        left = self.left.evaluate(env)
        right = self.right.evaluate(env)
        if self.op in ("/", "%") and right == 0:
            raise ZeroDivisionError
        table = {
            "+": lambda: left + right,
            "-": lambda: left - right,
            "*": lambda: left * right,
            "/": lambda: c_div(left, right),
            "%": lambda: c_mod(left, right),
            "<": lambda: int(left < right),
            ">": lambda: int(left > right),
            "==": lambda: int(left == right),
            "!=": lambda: int(left != right),
            "&": lambda: left & right,
            "|": lambda: left | right,
            "^": lambda: left ^ right,
        }
        return table[self.op]()


_leaves = st.one_of(
    st.integers(min_value=-50, max_value=50).map(
        lambda v: _Node("leaf", leaf=v)),
    st.sampled_from(["a", "b", "c"]).map(
        lambda n: _Node("leaf", leaf=n)),
)

_binops = st.sampled_from(["+", "-", "*", "/", "%", "<", ">", "==",
                           "!=", "&", "|", "^"])
_unops = st.sampled_from(["-", "!", "~"])

_exprs = st.recursive(
    _leaves,
    lambda children: st.one_of(
        st.tuples(_binops, children, children).map(
            lambda t: _Node(t[0], t[1], t[2])),
        st.tuples(_unops, children).map(
            lambda t: _Node(t[0], t[1])),
    ),
    max_leaves=10,
)

_env = st.fixed_dictionaries({
    "a": st.integers(min_value=-100, max_value=100),
    "b": st.integers(min_value=-100, max_value=100),
    "c": st.integers(min_value=-100, max_value=100),
})


class TestExpressionSemantics:
    @settings(max_examples=200, deadline=None)
    @given(_exprs, _env)
    def test_interpreter_matches_c_oracle(self, tree, env):
        try:
            expected = tree.evaluate(env)
        except ZeroDivisionError:
            assume(False)  # skip expressions that divide by zero
            return
        assume(-2 ** 31 <= expected < 2 ** 31)  # stay in int range
        # leaf constants render negatives with parens via unary minus
        text = tree.render()
        result = interpret(text, env)
        assert result == expected, text

    @settings(max_examples=60, deadline=None)
    @given(st.integers(min_value=-99, max_value=99),
           st.integers(min_value=-99, max_value=99))
    def test_division_identity(self, a, b):
        """C guarantees (a/b)*b + a%b == a."""
        assume(b != 0)
        quotient = interpret("a / b", {"a": a, "b": b})
        remainder = interpret("a % b", {"a": a, "b": b})
        assert quotient * b + remainder == a

    @settings(max_examples=60, deadline=None)
    @given(st.integers(min_value=0, max_value=30))
    def test_shift_powers(self, n):
        assert interpret("1 << a", {"a": n}) == 2 ** n
