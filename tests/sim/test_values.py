"""Runtime value tests."""

import pytest

from repro.cfront import ctypes
from repro.sim.values import (
    NULL,
    FunctionRef,
    Pointer,
    coerce,
    default_value,
    pointer_for,
)


class TestPointer:
    def test_offset_uses_stride(self):
        pointer = Pointer(1000, 8)
        assert pointer.offset(3).addr == 1024

    def test_negative_offset(self):
        pointer = Pointer(1000, 4)
        assert pointer.offset(-2).addr == 992

    def test_equality_by_address(self):
        assert Pointer(100, 4) == Pointer(100, 8)
        assert Pointer(100, 4) != Pointer(104, 4)

    def test_null_is_falsy(self):
        assert not NULL
        assert Pointer(4)

    def test_null_compares_to_zero(self):
        assert NULL == 0


class TestCoerce:
    def test_float_to_int_truncates(self):
        assert coerce(ctypes.INT, 3.9) == 3

    def test_int_to_float(self):
        value = coerce(ctypes.DOUBLE, 7)
        assert isinstance(value, float)
        assert value == 7.0

    def test_int_wraps_32_bits(self):
        assert coerce(ctypes.INT, 2 ** 31) == -(2 ** 31)
        assert coerce(ctypes.UINT, -1) == 2 ** 32 - 1

    def test_char_wraps_8_bits(self):
        assert coerce(ctypes.CHAR, 300) == 44

    def test_none_gives_default(self):
        assert coerce(ctypes.INT, None) == 0
        assert coerce(ctypes.DOUBLE, None) == 0.0

    def test_pointer_cast_retypes_stride(self):
        void_ptr = Pointer(64, 1, None)
        typed = coerce(ctypes.PointerType(ctypes.DOUBLE), void_ptr)
        assert typed.stride == 8
        assert typed.addr == 64

    def test_int_to_pointer(self):
        value = coerce(ctypes.PointerType(ctypes.INT), 0)
        assert isinstance(value, Pointer)
        assert value.addr == 0

    def test_pointer_to_int_gives_address(self):
        assert coerce(ctypes.INT, Pointer(0x40, 4)) == 0x40

    def test_function_ref_through_int_cast_preserved(self):
        ref = FunctionRef("tf")
        assert coerce(ctypes.INT, ref) is ref

    def test_void_cast_passthrough(self):
        assert coerce(ctypes.VOID, 5) == 5


class TestHelpers:
    def test_pointer_for_array(self):
        pointer = pointer_for(ctypes.ArrayType(ctypes.DOUBLE, 4), 256)
        assert pointer.stride == 8
        assert pointer.pointee == ctypes.DOUBLE

    def test_pointer_for_void_pointer(self):
        pointer = pointer_for(ctypes.VOID_PTR, 256)
        assert pointer.addr == 256

    def test_default_values(self):
        assert default_value(ctypes.INT) == 0
        assert default_value(ctypes.DOUBLE) == 0.0
        assert default_value(ctypes.INT_PTR) == NULL
