"""Recovery-layer tests (repro.recovery).

Covers the four pieces end to end: ECC scrubbing of injected flips,
sequence-numbered send retry over message drops, barrier-aligned
checkpoint/restore (round-trip byte-identity, snapshot rejection,
divergence detection), and the supervised restart loop — plus the
contract that everything stays byte-identical when recovery is off.
"""

import json
import os
import tempfile
import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults import CoreCrashFault
from repro.rcce.comm import Channel
from repro.recovery import (
    ECC_SCRUB_CYCLES,
    MeshRetryExhaustedError,
    RecoveryOptions,
    RetryPolicy,
    SnapshotDivergenceError,
    SnapshotError,
    SnapshotMismatchError,
    UncorrectableECCError,
    load_snapshot,
)
from repro.recovery.ecc import syndrome_weight
from repro.scc.config import Table61Config
from repro.sim.runner import run_rcce, run_rcce_supervised

# Race-free by construction: every UE reads/writes only its own slice
# of the symmetric MPB allocation, so the memory image at any barrier
# is deterministic and checkpoints can be verified bit-for-bit.
MPB_KERNEL = """
int RCCE_APP(int argc, char **argv) {
    int me;
    int i;
    int k;
    double sum;
    double *buf;
    RCCE_init(&argc, &argv);
    me = RCCE_ue();
    buf = (double *) RCCE_malloc(256);
    sum = 0.0;
    for (k = 0; k < 12; k++) {
        for (i = 0; i < 8; i++) {
            buf[me * 8 + i] = me * 100.0 + k + i;
        }
        for (i = 0; i < 8; i++) {
            sum = sum + buf[me * 8 + i];
        }
        RCCE_barrier(&RCCE_COMM_WORLD);
    }
    printf("ue %d sum %f\\n", me, sum);
    RCCE_finalize();
    return 0;
}
"""

SEND_KERNEL = """
int RCCE_APP(int argc, char **argv) {
    int me;
    int i;
    double *buf;
    RCCE_init(&argc, &argv);
    me = RCCE_ue();
    buf = (double *) RCCE_shmalloc(64);
    if (me == 0) {
        for (i = 0; i < 8; i++) { buf[i] = 3.5 + i; }
        for (i = 0; i < 10; i++) {
            RCCE_send((char *) buf, 64, 1);
        }
    } else {
        for (i = 0; i < 10; i++) {
            RCCE_recv((char *) buf, 64, 0);
        }
        printf("ue 1 got %f\\n", buf[7]);
    }
    RCCE_barrier(&RCCE_COMM_WORLD);
    RCCE_finalize();
    return 0;
}
"""

# Communication completes before the crash window, so no peer is
# parked in a rendezvous when the injected crash fires.
CAMPAIGN_KERNEL = """
int RCCE_APP(int argc, char **argv) {
    int me;
    int i;
    int k;
    double sum;
    double *buf;
    double *msg;
    RCCE_init(&argc, &argv);
    me = RCCE_ue();
    buf = (double *) RCCE_malloc(256);
    msg = (double *) RCCE_shmalloc(64);
    if (me == 0) {
        for (i = 0; i < 8; i++) { msg[i] = 1.25 * i; }
        RCCE_send((char *) msg, 64, 1);
    }
    if (me == 1) {
        RCCE_recv((char *) msg, 64, 0);
    }
    RCCE_barrier(&RCCE_COMM_WORLD);
    sum = 0.0;
    for (k = 0; k < 12; k++) {
        for (i = 0; i < 8; i++) {
            buf[me * 8 + i] = me * 100.0 + k + i;
        }
        for (i = 0; i < 8; i++) {
            sum = sum + buf[me * 8 + i];
        }
        RCCE_barrier(&RCCE_COMM_WORLD);
    }
    printf("ue %d sum %f msg %f\\n", me, sum, msg[7]);
    RCCE_finalize();
    return 0;
}
"""


def counter_total(result, name):
    return sum(row["value"]
               for row in result.metrics.get("counters", {})
               .get(name, []))


# ---------------------------------------------------------------------------
# ECC scrubbing


class TestSyndromeWeight:
    def test_single_bit_int(self):
        assert syndrome_weight(5, 4) == 1

    def test_multi_bit_int(self):
        assert syndrome_weight(0b111, 0) == 3

    def test_float_images(self):
        assert syndrome_weight(1.5, 1.5) == 0
        assert syndrome_weight(1.5, -1.5) == 1  # sign bit

    def test_non_numeric_is_untagged(self):
        assert syndrome_weight("x", 4) is None
        assert syndrome_weight(True, 4) is None


class TestECC:
    def test_single_bit_flips_corrected(self):
        clean = run_rcce(MPB_KERNEL, 2, engine="tree")
        prot = run_rcce(MPB_KERNEL, 2, engine="tree",
                        faults="mpb_flip:p=0.05,seed=11",
                        recovery=RecoveryOptions(ecc=True))
        assert prot.stdout() == clean.stdout()
        assert counter_total(prot, "ecc_corrected") > 0
        assert counter_total(prot, "scc_mpb_ecc_corrected") > 0
        # each correction pays the scrub penalty
        assert prot.cycles >= clean.cycles + ECC_SCRUB_CYCLES

    def test_unprotected_same_seed_corrupts(self):
        clean = run_rcce(MPB_KERNEL, 2, engine="tree")
        unprot = run_rcce(MPB_KERNEL, 2, engine="tree",
                          faults="mpb_flip:p=0.05,seed=11")
        assert unprot.stdout() != clean.stdout()

    def test_unprotected_run_stays_deterministic(self):
        # the recovery layer must not perturb unprotected fault runs
        first = run_rcce(MPB_KERNEL, 2, engine="tree",
                         faults="mpb_flip:p=0.05,seed=11")
        second = run_rcce(MPB_KERNEL, 2, engine="tree",
                          faults="mpb_flip:p=0.05,seed=11")
        assert first.cycles == second.cycles
        assert first.stdout() == second.stdout()

    def test_protected_run_is_deterministic(self):
        runs = [run_rcce(MPB_KERNEL, 2, engine="tree",
                         faults="mpb_flip:p=0.05,seed=11",
                         recovery=RecoveryOptions(ecc=True))
                for _ in range(2)]
        assert runs[0].cycles == runs[1].cycles
        assert runs[0].stdout() == runs[1].stdout()
        assert counter_total(runs[0], "ecc_corrected") == \
            counter_total(runs[1], "ecc_corrected")

    def test_multi_bit_flip_uncorrectable(self):
        with pytest.raises(UncorrectableECCError):
            run_rcce(MPB_KERNEL, 2, engine="tree",
                     faults="mpb_flip:p=0.05,seed=11,bits=2",
                     recovery=RecoveryOptions(ecc=True))

    def test_multi_bit_flip_without_ecc_is_silent(self):
        # no scrubber: a double flip corrupts data, exactly like PR 3
        result = run_rcce(MPB_KERNEL, 2, engine="tree",
                          faults="mpb_flip:p=0.05,seed=11,bits=2")
        assert counter_total(result, "fault_injections") > 0


# ---------------------------------------------------------------------------
# Send retry


class TestRetryPolicy:
    def test_exponential_backoff_capped(self):
        policy = RetryPolicy(max_attempts=6, base_cycles=64, factor=2,
                             max_cycles=300)
        assert [policy.backoff_cycles(k) for k in range(1, 5)] == \
            [64, 128, 256, 300]

    def test_rejects_zero_attempts(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)


class TestSendRetry:
    def test_drops_absorbed(self):
        clean = run_rcce(SEND_KERNEL, 2, engine="tree")
        ret = run_rcce(SEND_KERNEL, 2, engine="tree",
                       faults="mesh_drop:p=0.4,seed=5",
                       recovery=RecoveryOptions(retry=True))
        assert ret.stdout() == clean.stdout()
        assert counter_total(ret, "rcce_send_retries") > 0
        assert counter_total(ret, "scc_mesh_retried_messages") > 0
        # retransmissions are not free
        assert ret.cycles > clean.cycles

    def test_retry_is_deterministic(self):
        runs = [run_rcce(SEND_KERNEL, 2, engine="tree",
                         faults="mesh_drop:p=0.4,seed=5",
                         recovery=RecoveryOptions(retry=True))
                for _ in range(2)]
        assert runs[0].cycles == runs[1].cycles
        assert counter_total(runs[0], "rcce_send_retries") == \
            counter_total(runs[1], "rcce_send_retries")

    def test_exhaustion_raises(self):
        with pytest.raises(MeshRetryExhaustedError) as info:
            run_rcce(SEND_KERNEL, 2, engine="tree",
                     faults="mesh_drop:p=1.0,seed=5",
                     recovery=RecoveryOptions(retry=True))
        assert info.value.attempts == RetryPolicy().max_attempts

    def test_channel_deduplicates_sequence_numbers(self):
        channel = Channel()
        done = []

        def sender():
            channel.send([1.0], 100, seq=0)
            channel.send([2.0], 200, seq=0)   # duplicate delivery
            done.append(channel.send([3.0], 300, seq=1))

        thread = threading.Thread(target=sender)
        thread.start()
        values, _ = channel.recv(0, 10)
        assert values == [1.0]
        values, _ = channel.recv(0, 10)
        # the seq-0 retransmission was acked but not re-delivered
        assert values == [3.0]
        thread.join()
        assert done


# ---------------------------------------------------------------------------
# Checkpoint / restore


def _checkpointed(path, every=2, **kwargs):
    return run_rcce(MPB_KERNEL, 2, engine="tree",
                    recovery=RecoveryOptions(checkpoint_path=path,
                                             checkpoint_every=every),
                    **kwargs)


class TestCheckpointRestore:
    def test_checkpointing_run_is_byte_identical(self, tmp_path):
        path = str(tmp_path / "run.ckpt")
        plain = run_rcce(MPB_KERNEL, 2, engine="tree")
        ck = _checkpointed(path)
        assert ck.cycles == plain.cycles
        assert ck.per_core_cycles == plain.per_core_cycles
        assert ck.stdout() == plain.stdout()
        assert counter_total(ck, "checkpoints_captured") > 0

    def test_restore_round_trip(self, tmp_path):
        path = str(tmp_path / "run.ckpt")
        plain = run_rcce(MPB_KERNEL, 2, engine="tree")
        _checkpointed(path)
        restored = run_rcce(MPB_KERNEL, 2, engine="tree",
                            recovery=RecoveryOptions(restore=path))
        assert restored.cycles == plain.cycles
        assert restored.per_core_cycles == plain.per_core_cycles
        assert restored.stdout() == plain.stdout()

    def test_snapshot_is_versioned_and_loadable(self, tmp_path):
        path = str(tmp_path / "run.ckpt")
        _checkpointed(path)
        snapshot = load_snapshot(path, config=Table61Config())
        assert snapshot.round > 0
        assert snapshot.num_ues == 2

    def test_garbage_file_rejected(self, tmp_path):
        path = tmp_path / "bad.ckpt"
        path.write_text("not json at all")
        with pytest.raises(SnapshotError):
            load_snapshot(str(path))

    def test_wrong_version_rejected(self, tmp_path):
        src = str(tmp_path / "run.ckpt")
        _checkpointed(src)
        with open(src) as handle:
            doc = json.load(handle)
        doc["version"] = 99
        bad = tmp_path / "v99.ckpt"
        bad.write_text(json.dumps(doc))
        with pytest.raises(SnapshotError, match="version"):
            load_snapshot(str(bad))

    def test_truncated_memory_rejected(self, tmp_path):
        src = str(tmp_path / "run.ckpt")
        _checkpointed(src)
        with open(src) as handle:
            doc = json.load(handle)
        doc["memory"] = doc["memory"][:-1]
        bad = tmp_path / "trunc.ckpt"
        bad.write_text(json.dumps(doc))
        with pytest.raises(SnapshotError, match="digest"):
            load_snapshot(str(bad))

    def test_config_mismatch_rejected(self, tmp_path):
        src = str(tmp_path / "run.ckpt")
        _checkpointed(src)
        with open(src) as handle:
            doc = json.load(handle)
        key = sorted(doc["config"])[0]
        doc["config"][key] = -12345
        bad = tmp_path / "cfg.ckpt"
        bad.write_text(json.dumps(doc))
        with pytest.raises(SnapshotMismatchError):
            load_snapshot(str(bad), config=Table61Config())

    def test_wrong_source_rejected(self, tmp_path):
        path = str(tmp_path / "run.ckpt")
        _checkpointed(path)
        with pytest.raises(SnapshotMismatchError):
            run_rcce(SEND_KERNEL, 2, engine="tree",
                     recovery=RecoveryOptions(restore=path))

    def test_wrong_topology_rejected(self, tmp_path):
        path = str(tmp_path / "run.ckpt")
        _checkpointed(path)
        with pytest.raises(SnapshotMismatchError):
            run_rcce(MPB_KERNEL, 4, engine="tree",
                     recovery=RecoveryOptions(restore=path))

    def test_divergent_replay_detected(self, tmp_path):
        # snapshot a faulted+scrubbed run, then replay without faults:
        # the replayed clocks miss the scrub penalties and the
        # verifier must refuse to certify the restore
        path = str(tmp_path / "run.ckpt")
        run_rcce(MPB_KERNEL, 2, engine="tree",
                 faults="mpb_flip:p=0.05,seed=11",
                 recovery=RecoveryOptions(ecc=True,
                                          checkpoint_path=path,
                                          checkpoint_every=2))
        with pytest.raises(SnapshotDivergenceError):
            run_rcce(MPB_KERNEL, 2, engine="tree",
                     recovery=RecoveryOptions(restore=path))


# ---------------------------------------------------------------------------
# Supervised re-runs


class TestSupervisor:
    SPEC = ("mpb_flip:p=0.02,seed=3;mesh_drop:p=0.3,seed=4;"
            "core_crash:core=1,at=11000")

    def test_requires_checkpoint_path(self):
        with pytest.raises(ValueError):
            run_rcce_supervised(CAMPAIGN_KERNEL, 2, engine="tree",
                                recovery=RecoveryOptions(),
                                max_restarts=1)

    def test_campaign_recovers(self, tmp_path):
        clean = run_rcce(CAMPAIGN_KERNEL, 2, engine="tree")
        path = str(tmp_path / "campaign.ckpt")
        result = run_rcce_supervised(
            CAMPAIGN_KERNEL, 2, engine="tree", faults=self.SPEC,
            recovery=RecoveryOptions(ecc=True, retry=True,
                                     checkpoint_path=path,
                                     checkpoint_every=1),
            max_restarts=2)
        # correct output after ECC correction, send retry, and exactly
        # one checkpoint restart
        assert result.stdout() == clean.stdout()
        assert result.recovery.restarts == 1
        assert result.recovery.recovered
        assert result.recovery.failures[0]["error"] == "CoreCrashFault"
        assert result.recovery.failures[0]["restored_from_round"] \
            is not None
        assert counter_total(result, "recovery_restarts") == 1
        stages = [d.stage for d in result.diagnostics]
        assert "recovery" in stages

    def test_same_spec_unsupervised_fails_deterministically(self):
        outcomes = []
        for _ in range(2):
            with pytest.raises(CoreCrashFault) as info:
                run_rcce(CAMPAIGN_KERNEL, 2, engine="tree",
                         faults=self.SPEC)
            outcomes.append(str(info.value))
        assert outcomes[0] == outcomes[1]

    def test_restarts_exhausted_reraises_with_report(self, tmp_path):
        path = str(tmp_path / "exhaust.ckpt")
        spec = ("core_crash:core=1,at=11000;"
                "core_crash:core=0,at=13000")
        with pytest.raises(CoreCrashFault) as info:
            run_rcce_supervised(
                CAMPAIGN_KERNEL, 2, engine="tree", faults=spec,
                recovery=RecoveryOptions(checkpoint_path=path,
                                         checkpoint_every=1),
                max_restarts=1)
        report = info.value.recovery_report
        assert report.max_restarts == 1
        assert len(report.failures) == 1
        assert not report.recovered

    def test_clean_supervised_run_matches_plain(self, tmp_path):
        path = str(tmp_path / "clean.ckpt")
        plain = run_rcce(CAMPAIGN_KERNEL, 2, engine="tree")
        result = run_rcce_supervised(
            CAMPAIGN_KERNEL, 2, engine="tree",
            recovery=RecoveryOptions(checkpoint_path=path,
                                     checkpoint_every=1),
            max_restarts=2)
        assert result.cycles == plain.cycles
        assert result.stdout() == plain.stdout()
        assert result.recovery.restarts == 0
        assert not result.recovery.recovered


# ---------------------------------------------------------------------------
# Engine downgrade diagnostics


class TestEngineDowngrade:
    def test_fault_run_warns(self):
        result = run_rcce(MPB_KERNEL, 2, engine="compiled",
                          faults="mpb_flip:p=0.0001,seed=1")
        assert any(d.severity == "warning" and "tree" in d.message
                   for d in result.diagnostics)

    def test_checkpoint_run_warns(self, tmp_path):
        path = str(tmp_path / "warn.ckpt")
        result = run_rcce(
            MPB_KERNEL, 2, engine="compiled",
            recovery=RecoveryOptions(checkpoint_path=path))
        assert any("checkpoint" in d.message
                   for d in result.diagnostics)

    def test_tree_request_stays_quiet(self):
        result = run_rcce(MPB_KERNEL, 2, engine="tree",
                          faults="mpb_flip:p=0.0001,seed=1")
        assert result.diagnostics == []

    def test_clean_compiled_run_stays_quiet(self):
        result = run_rcce(MPB_KERNEL, 2, engine="compiled")
        assert result.diagnostics == []


# ---------------------------------------------------------------------------
# Property: checkpoint -> restore round-trips on generated kernels


_KERNEL_TEMPLATE = """
int RCCE_APP(int argc, char **argv) {
    int me;
    int i;
    int k;
    double acc;
    double *buf;
    RCCE_init(&argc, &argv);
    me = RCCE_ue();
    buf = (double *) RCCE_malloc(128);
    acc = %d;
    for (k = 0; k < %d; k++) {
        for (i = 0; i < 4; i++) {
            buf[me * 4 + i] = acc + %s;
            acc = acc + buf[me * 4 + i] * 0.125 + me;
        }
        RCCE_barrier(&RCCE_COMM_WORLD);
    }
    printf("ue %%d acc %%f\\n", me, acc);
    RCCE_finalize();
    return 0;
}
"""


@given(seed_value=st.integers(0, 1000),
       rounds=st.integers(3, 8),
       terms=st.lists(st.sampled_from(
           ["i", "k", "me", "i * k", "k * 3", "i + me"]),
           min_size=1, max_size=3))
@settings(max_examples=8, deadline=None)
def test_generated_kernel_round_trip(seed_value, rounds, terms):
    source = _KERNEL_TEMPLATE % (seed_value, rounds,
                                 " + ".join(terms))
    plain = run_rcce(source, 2, engine="tree")
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "gen.ckpt")
        ck = run_rcce(source, 2, engine="tree",
                      recovery=RecoveryOptions(checkpoint_path=path,
                                               checkpoint_every=2))
        assert ck.cycles == plain.cycles
        assert ck.stdout() == plain.stdout()
        restored = run_rcce(source, 2, engine="tree",
                            recovery=RecoveryOptions(restore=path))
        assert restored.cycles == plain.cycles
        assert restored.per_core_cycles == plain.per_core_cycles
        assert restored.stdout() == plain.stdout()
