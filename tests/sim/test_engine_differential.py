"""Differential suite: the closure-compiled engine must be trace-exact
against the reference tree-walker.

Every comparison checks simulated cycles, steps, program stdout, and
the chip's full metrics snapshot — not just the final answer — so a
compiled-engine shortcut that drifts the timing model by a single cycle
fails here.  The corpus is the benchmark suite (scaled down for test
speed; `benchmarks/bench_interp_speed.py` covers the full-size set)
plus hand-written kernels for each language feature, plus
hypothesis-generated arithmetic/pointer kernels.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench.harness import ExperimentHarness
from repro.bench.programs import benchmark_source
from repro.bench.workloads import Workload, scaled_config
from repro.cfront.frontend import parse_program
from repro.core.framework import TranslationFramework
from repro.scc.chip import SCCChip
from repro.scc.config import SCCConfig
from repro.sim.compile import compile_unit
from repro.sim.interpreter import Interpreter
from repro.sim.machine import Memory
from repro.sim.runner import run_pthread_single_core, run_rcce

_TINY_CONFIG = dict(num_cores=4, mesh_columns=2, mesh_rows=1,
                    cores_per_tile=2, num_memory_controllers=1)


def _tiny_chip():
    return SCCChip(SCCConfig(**_TINY_CONFIG))


def _snapshot(result):
    return {
        "cycles": result.cycles,
        "per_core": dict(result.per_core_cycles),
        "stdout": result.stdout(),
        "metrics": result.metrics,
    }


def assert_engines_agree_pthread(source, max_steps=50_000_000):
    runs = {}
    for engine in ("tree", "compiled"):
        runs[engine] = _snapshot(run_pthread_single_core(
            source, chip=_tiny_chip(), max_steps=max_steps,
            engine=engine))
    assert runs["compiled"] == runs["tree"]
    return runs["compiled"]


# -- feature kernels -------------------------------------------------------------

FEATURE_KERNELS = {
    "arith_and_casts": """
        int main(void) {
            int a = 7, b = -3;
            long big = 100000;
            double x = 2.5;
            int c = (int)(x * a) + b / 2 - b % 2;
            float f = (float)c / 4;
            return c + (int)f + (int)(big % 97);
        }
    """,
    "control_flow": """
        int classify(int n) {
            switch (n % 4) {
            case 0: return 10;
            case 1:
            case 2: return 20;
            default: break;
            }
            return 30;
        }
        int main(void) {
            int total = 0, i = 0;
            for (i = 0; i < 20; i++) {
                if (i == 3) continue;
                if (i == 17) break;
                total += classify(i);
            }
            do { total++; } while (total < 0);
            while (total > 500) total -= 7;
            return total;
        }
    """,
    "pointers_and_arrays": """
        int sum(int *p, int n) {
            int total = 0;
            int *end = p + n;
            while (p < end) total += *p++;
            return total;
        }
        int main(void) {
            int data[16];
            int i;
            for (i = 0; i < 16; i++) data[i] = i * i;
            data[3] = -data[3];
            return sum(data, 16) + *(data + 5);
        }
    """,
    "globals_and_recursion": """
        int calls = 0;
        int fib(int n) {
            calls++;
            if (n < 2) return n;
            return fib(n - 1) + fib(n - 2);
        }
        int main(void) {
            int f = fib(10);
            return f + calls;
        }
    """,
    "float_kernels": """
        double dot(double *a, double *b, int n) {
            double acc = 0.0;
            int i;
            for (i = 0; i < n; i++) acc += a[i] * b[i];
            return acc;
        }
        int main(void) {
            double xs[8], ys[8];
            int i;
            for (i = 0; i < 8; i++) { xs[i] = i * 0.5; ys[i] = 8 - i; }
            return (int)dot(xs, ys, 8);
        }
    """,
}


@pytest.mark.parametrize("name", sorted(FEATURE_KERNELS))
def test_feature_kernel_differential(name):
    assert_engines_agree_pthread(FEATURE_KERNELS[name])


# -- benchmark corpus (scaled for test speed) ---------------------------------

_SMALL_WORKLOADS = {
    "pi": Workload("pi", {"steps": 512}, 32 * 8),
    "sum35": Workload("sum35", {"limit": 512}, 32 * 8),
    "primes": Workload("primes", {"limit": 256}, 32 * 4),
    "stream": Workload("stream", {"n": 128}, 3 * 128 * 8 + 32 * 8),
    "dot": Workload("dot", {"n": 192}, 2 * 192 * 8 + 32 * 8),
    "lu": Workload("lu", {"batch": 4, "dim": 8},
                   4 * 8 * 8 * 8 + 32 * 8),
}


def _small_harness(engine):
    return ExperimentHarness(num_ues=4, workloads=dict(_SMALL_WORKLOADS),
                             config_factory=scaled_config, engine=engine)


@pytest.mark.parametrize("name", sorted(_SMALL_WORKLOADS))
@pytest.mark.parametrize("configuration",
                         ["pthread", "rcce-off", "rcce-on"])
def test_bench_corpus_differential(name, configuration):
    runs = {}
    for engine in ("tree", "compiled"):
        run = _small_harness(engine).run(name, configuration)
        runs[engine] = {
            "cycles": run.cycles,
            "per_core": dict(run.result.per_core_cycles),
            "stdout": run.result.stdout(),
            "metrics": run.instrumentation["metrics"],
        }
    assert runs["compiled"] == runs["tree"]


# -- hypothesis: generated arithmetic/pointer kernels --------------------------

_ops = st.sampled_from(["+", "-", "*", "/", "%", "&", "|", "^",
                        "<<", ">>", "<", "<=", "==", "!=", ">", ">="])


@st.composite
def _expr(draw, depth=0):
    if depth >= 3 or draw(st.booleans()):
        choice = draw(st.integers(0, 2))
        if choice == 0:
            return str(draw(st.integers(1, 50)))
        if choice == 1:
            return "v%d" % draw(st.integers(0, 3))
        return "data[%d]" % draw(st.integers(0, 7))
    op = draw(_ops)
    left = draw(_expr(depth=depth + 1))
    right = draw(_expr(depth=depth + 1))
    if op in ("/", "%"):
        right = "(%s | 1)" % right  # keep divisors nonzero
    if op in ("<<", ">>"):
        right = "(%s & 7)" % right  # keep shifts in range
    return "(%s %s %s)" % (left, op, right)


@given(exprs=st.lists(_expr(), min_size=1, max_size=4),
       seed=st.integers(0, 1000))
@settings(max_examples=20, deadline=None)
def test_generated_kernel_differential(exprs, seed):
    body = "".join("acc += %s;\n        p[%d] = acc;\n"
                   % (expr, index % 8)
                   for index, expr in enumerate(exprs))
    source = """
        int data[8];
        int main(void) {
            int v0 = %d, v1 = 3, v2 = -7, v3 = 11;
            int acc = 0;
            int *p = data;
            int i;
            for (i = 0; i < 8; i++) data[i] = i + v0;
            %s
            return acc;
        }
    """ % (seed % 13, body)
    assert_engines_agree_pthread(source)


# -- unit tests: the machinery behind the speedup ------------------------------


def test_compiled_is_default_engine():
    unit = parse_program("int main(void) { return 0; }")
    interp = Interpreter(unit, _tiny_chip(), 0, Memory())
    assert interp.engine == "compiled"
    assert interp._compiled is not None


def test_unknown_engine_rejected():
    unit = parse_program("int main(void) { return 0; }")
    with pytest.raises(ValueError):
        Interpreter(unit, _tiny_chip(), 0, Memory(), engine="jit")


def test_compile_unit_cached_per_unit():
    unit = parse_program("int main(void) { return 4; }")
    assert compile_unit(unit) is compile_unit(unit)


def test_goto_raises_identically_in_both_engines():
    """goto is unsupported at *runtime*: it compiles to a closure that
    raises the tree-walker's exact error when (and only when) executed."""
    source = """
        int main(void) {
            int n = 0;
            goto out;
        out:
            return n;
        }
    """
    from repro.sim.interpreter import InterpreterError
    messages = {}
    for engine in ("tree", "compiled"):
        unit = parse_program(source)
        interp = Interpreter(unit, _tiny_chip(), 0, Memory(),
                             engine=engine)
        with pytest.raises(InterpreterError) as excinfo:
            interp.run_main()
        messages[engine] = str(excinfo.value)
    assert messages["compiled"] == messages["tree"]


def test_uncompilable_function_falls_back_to_tree():
    """A construct the compiler cannot lower exactly (a non-case item
    in a switch body) marks the whole function for the tree-walker,
    which must still produce identical results."""
    from repro.cfront import c_ast

    source = """
        int main(void) {
            int x = 2, r = 0;
            switch (x) {
            case 1: r = 10; break;
            case 2: r = 20; break;
            default: r = 30;
            }
            return r;
        }
    """
    unit = parse_program(source)
    switch = unit.find_function("main").body.items[1]
    assert isinstance(switch, c_ast.Switch)
    # an unlabeled statement before any case is dead code in C; the
    # tree-walker skips it, the compiler refuses the whole function
    switch.body.items.insert(0, c_ast.EmptyStmt())
    compiled = compile_unit(unit)
    assert "main" in compiled.fallbacks()

    results = {}
    for engine in ("tree", "compiled"):
        interp = Interpreter(unit, _tiny_chip(), 0, Memory(),
                             engine=engine)
        value = interp.run_main()
        results[engine] = (value, interp.cycles, interp.steps)
    assert results["compiled"] == results["tree"]


def test_site_cache_filled_and_invalidated():
    source = """
        int counter = 0;
        int main(void) {
            int i;
            for (i = 0; i < 50; i++) counter += i;
            return counter;
        }
    """
    unit = parse_program(source)
    chip = _tiny_chip()
    interp = Interpreter(unit, chip, 0, Memory())
    interp.run_main()
    assert interp.site_fills > 0
    assert interp._site_cache
    fills_before = interp.site_fills
    # a layout/LUT change must drop every cached site entry
    chip._bump_mem_epoch()
    assert not interp._site_cache
    assert interp.site_fills == fills_before


def test_configure_window_invalidates_site_caches():
    chip = _tiny_chip()
    epoch = chip.mem_epoch
    chip.configure_window(1, 0x8000_0000, shared=True)
    assert chip.mem_epoch == epoch + 1


def test_split_alloc_invalidates_site_caches():
    chip = _tiny_chip()
    epoch = chip.mem_epoch
    chip.address_space.alloc_split(4096, 1024, label="t")
    assert chip.mem_epoch == epoch + 1


def _chip_with_layout():
    chip = _tiny_chip()
    layout = {
        "split": chip.address_space.alloc_split(4096, 1024, label="t"),
        "private": chip.address_space.alloc_private(0, 256, label="p"),
        "shared": chip.address_space.alloc_shared(256, label="s"),
        "mpb": chip.address_space.alloc_mpb(256, label="m"),
    }
    return chip, layout


def test_access_fastpath_matches_access_cost():
    """The inline-cache entry must charge exactly what the slow path
    charges — cost AND side effects — for every segment kind, within
    its declared window."""
    _, layout = _chip_with_layout()
    probes = [layout["private"].base, layout["private"].base + 128,
              layout["shared"].base, layout["mpb"].base,
              layout["split"].base,              # MPB head
              layout["split"].base + 2048]       # shared-DRAM tail
    for addr in probes:
        fast_chip, _ = _chip_with_layout()
        slow_chip, _ = _chip_with_layout()
        lo, hi, fn = fast_chip.access_fastpath(0, addr)
        assert lo <= addr < hi
        for offset in (0, 4, 8):
            for kind in ("read", "write"):
                assert (fn(addr + offset, kind, 0)
                        == slow_chip.access_cost(
                            0, addr + offset, kind))
        for attribute in ("hits", "misses", "evictions"):
            assert (getattr(fast_chip.cores[0].l1.stats, attribute)
                    == getattr(slow_chip.cores[0].l1.stats, attribute))
        assert fast_chip.cores[0].accesses == slow_chip.cores[0].accesses


# -- race detector: byte-identical timing, enabled or not ----------------------


def _pthread_signature(source, engine, race):
    result = run_pthread_single_core(source, chip=_tiny_chip(),
                                     max_steps=50_000_000,
                                     engine=engine, race=race)
    if race:
        assert result.race.ok, result.race.render()
    return (result.cycles, dict(result.per_core_cycles),
            result.stdout())


def _rcce_signature(unit, engine, race):
    chip = _tiny_chip()
    result = run_rcce(unit, 4, chip.config, chip,
                      max_steps=50_000_000, engine=engine, race=race)
    if race:
        assert result.race.ok, result.race.render()
    return (result.cycles, dict(result.per_core_cycles),
            result.stdout())


@pytest.mark.parametrize("engine", ["tree", "compiled"])
def test_race_detector_is_cycle_invisible_pthread(engine):
    """Auditing a race-free pthread program must not move a single
    cycle or output byte — the detector observes, never charges."""
    from repro.bench.programs import benchmark_source
    source = benchmark_source("pi", 4, steps=256)
    off = _pthread_signature(source, engine, race=False)
    on = _pthread_signature(source, engine, race=True)
    assert on == off


@pytest.mark.parametrize("engine", ["tree", "compiled"])
def test_race_detector_is_cycle_invisible_rcce(engine):
    from repro.bench.harness import SCALED_ON_CHIP_CAPACITY
    from repro.bench.programs import benchmark_source
    framework = TranslationFramework(
        on_chip_capacity=SCALED_ON_CHIP_CAPACITY,
        partition_policy="size")
    unit = framework.translate(
        benchmark_source("dot", 4, n=64)).unit
    off = _rcce_signature(unit, engine, race=False)
    on = _rcce_signature(unit, engine, race=True)
    assert on == off


# -- cycle attribution: byte-identical timing, enabled or not ------------------


def _pthread_attr_signature(source, engine, attribution):
    result = run_pthread_single_core(source, chip=_tiny_chip(),
                                     max_steps=50_000_000,
                                     engine=engine,
                                     attribution=attribution)
    return (result.cycles, dict(result.per_core_cycles),
            result.stdout(), result.metrics)


def _rcce_attr_signature(unit, engine, attribution):
    chip = _tiny_chip()
    result = run_rcce(unit, 4, chip.config, chip,
                      max_steps=50_000_000, engine=engine,
                      attribution=attribution)
    return result, (result.cycles, dict(result.per_core_cycles),
                    result.stdout())


def _translated_dot():
    from repro.bench.harness import SCALED_ON_CHIP_CAPACITY
    framework = TranslationFramework(
        on_chip_capacity=SCALED_ON_CHIP_CAPACITY,
        partition_policy="size")
    return framework.translate(benchmark_source("dot", 4, n=64)).unit


@pytest.mark.parametrize("engine", ["tree", "compiled"])
def test_attribution_is_cycle_invisible_pthread(engine):
    """Attributing every cycle must not move one — the engine watches
    the charges, it never makes them.  The metrics snapshot is part of
    the signature: only the attribution collector's own series may
    differ, so it is compared with those popped."""
    source = benchmark_source("pi", 4, steps=256)
    off = _pthread_attr_signature(source, engine, attribution=False)
    on = _pthread_attr_signature(source, engine, attribution=True)
    for snapshot in (on[3], off[3]):
        snapshot["counters"].pop("attr_cycles", None)
        snapshot["counters"].pop("attr_mem_ops", None)
        # attaching rebuilds the memory fast paths (an epoch bump),
        # which is bookkeeping, not timing
        snapshot["gauges"].pop("scc_mem_epoch", None)
    assert on == off


@pytest.mark.parametrize("engine", ["tree", "compiled"])
def test_attribution_is_cycle_invisible_rcce(engine):
    unit = _translated_dot()
    _, off = _rcce_attr_signature(unit, engine, attribution=False)
    _, on = _rcce_attr_signature(unit, engine, attribution=True)
    assert on == off


# -- parallel backend: sharding must never move a cycle -----------------------
#
# The contract (docs/performance.md): cycles, per-core cycles, and
# program stdout are byte-identical for every worker count and every
# quantum length.  Metrics are NOT part of the contract — histogram
# bucketing of host-side wait times is nondeterministic even
# sequentially — so these signatures deliberately exclude them.

_PARALLEL_SOURCES = {}
_PARALLEL_BASELINES = {}


def _parallel_source(name):
    """Translated RCCE source for a scaled workload (the process
    backend replicates the program from source in each worker)."""
    if name not in _PARALLEL_SOURCES:
        from repro.bench.harness import SCALED_ON_CHIP_CAPACITY
        framework = TranslationFramework(
            on_chip_capacity=SCALED_ON_CHIP_CAPACITY,
            partition_policy="size")
        workload = _SMALL_WORKLOADS[name]
        _PARALLEL_SOURCES[name] = framework.translate(
            benchmark_source(name, 4, **workload.sizes)).rcce_source
    return _PARALLEL_SOURCES[name]


def _parallel_signature(result):
    return (result.cycles, dict(result.per_core_cycles),
            result.stdout())


def _parallel_baseline(name):
    """jobs=1 run of the same source string, cached per workload."""
    if name not in _PARALLEL_BASELINES:
        chip = _tiny_chip()
        result = run_rcce(_parallel_source(name), 4, chip.config, chip,
                          max_steps=50_000_000)
        _PARALLEL_BASELINES[name] = _parallel_signature(result)
    return _PARALLEL_BASELINES[name]


@pytest.mark.parametrize("jobs", [2, 4, 8])
@pytest.mark.parametrize("name", sorted(_SMALL_WORKLOADS))
def test_process_backend_matches_sequential(name, jobs):
    """The process backend is byte-identical to the sequential engine
    for every shard count (jobs > num_ues clamps to num_ues)."""
    chip = _tiny_chip()
    result = run_rcce(_parallel_source(name), 4, chip.config, chip,
                      max_steps=50_000_000, jobs=jobs)
    assert _parallel_signature(result) == _parallel_baseline(name)
    assert result.stats["parallel"]["backend"] == "process"


@pytest.mark.parametrize("quantum", [1_000, 50_000, 10_000_000])
def test_process_backend_quantum_invariant(quantum):
    """The quantum is a non-blocking publication deadline, never a
    barrier — its length cannot change a single cycle."""
    chip = _tiny_chip()
    result = run_rcce(_parallel_source("dot"), 4, chip.config, chip,
                      max_steps=50_000_000, jobs=2, quantum=quantum)
    assert _parallel_signature(result) == _parallel_baseline("dot")
    assert result.stats["parallel"]["quantum"] == quantum


@given(name=st.sampled_from(sorted(_SMALL_WORKLOADS)),
       jobs=st.integers(1, 8),
       quantum=st.sampled_from([1_000, 7_919, 50_000, 1_000_000]))
@settings(max_examples=12, deadline=None)
def test_parallel_invariance_property(name, jobs, quantum):
    """Property (ISSUE 7 satellite): no (jobs, quantum) point changes
    cycles, outputs, or attribution conservation.  Attribution forces
    the thread backend, so this also pins the downgrade path and the
    SkewBarrier bookkeeping it shares with the process backend."""
    chip = _tiny_chip()
    result = run_rcce(_parallel_source(name), 4, chip.config, chip,
                      max_steps=50_000_000, jobs=jobs, quantum=quantum,
                      attribution=True)
    assert _parallel_signature(result) == _parallel_baseline(name)
    for core, classes in result.attribution.per_core.items():
        assert sum(classes.values()) == result.per_core_cycles[core]
    if jobs > 1:
        assert result.stats["parallel"]["backend"] == "thread"
        assert any("thread backend" in diagnostic.format()
                   for diagnostic in result.diagnostics)


def test_attribution_identical_across_engines():
    """Enabled-mode parity: both engines must produce the same
    attribution breakdown, the same per-core memory-op counts, and the
    same critical path — the compiled fast paths bake the same cells
    the tree-walker bumps."""
    unit = _translated_dot()
    reports = {}
    for engine in ("tree", "compiled"):
        result, _ = _rcce_attr_signature(unit, engine, attribution=True)
        reports[engine] = result.attribution
    tree, compiled = reports["tree"], reports["compiled"]
    assert compiled.per_core == tree.per_core
    assert compiled.mem_ops == tree.mem_ops
    assert compiled.critical_path.as_dict() == \
        tree.critical_path.as_dict()


@pytest.mark.parametrize("method", ["fork", "spawn"])
def test_process_backend_start_method_invariant(method):
    """ISSUE 8 satellite: the process backend is byte-identical under
    both start methods — spawn workers inherit nothing from the
    parent, so this pins the 'everything the worker needs travels in
    the pickled job' property that verified-replay recovery also
    relies on."""
    import multiprocessing

    from repro.sim.parallel import run_rcce_parallel

    if method not in multiprocessing.get_all_start_methods():
        pytest.skip("start method %r unavailable" % method)
    chip = _tiny_chip()
    result = run_rcce_parallel(
        _parallel_source("dot"), 4, chip.config, chip, None,
        50_000_000, "compiled", 2, start_method=method)
    assert _parallel_signature(result) == _parallel_baseline("dot")
    assert result.stats["parallel"]["start_method"] == method
