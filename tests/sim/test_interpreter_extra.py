"""Additional interpreter coverage: 2-D arrays, struct arrays, string
handling, corner semantics."""

import pytest

from repro.cfront.frontend import parse_program
from repro.scc.chip import SCCChip
from repro.scc.config import SCCConfig
from repro.sim.interpreter import Interpreter, InterpreterError
from repro.sim.machine import Memory


def run(source):
    unit = parse_program(source)
    chip = SCCChip(SCCConfig())
    interp = Interpreter(unit, chip, 0, Memory())
    return interp.call_function("main", []), interp


def result_of(body, decls=""):
    return run("%s\nint main(void) { %s }" % (decls, body))[0]


class TestMultiDimensionalArrays:
    def test_2d_local_array(self):
        assert result_of("""
            int m[3][4];
            for (int i = 0; i < 3; i++)
                for (int j = 0; j < 4; j++)
                    m[i][j] = i * 10 + j;
            return m[2][3];""") == 23

    def test_2d_global_array(self):
        assert result_of("g[1][2] = 7; return g[1][2];",
                         decls="int g[2][5];") == 7

    def test_row_decay_to_pointer(self):
        assert result_of("""
            int m[2][3];
            int *row = m[1];
            row[2] = 42;
            return m[1][2];""") == 42

    def test_rows_are_disjoint(self):
        assert result_of("""
            int m[2][3];
            m[0][2] = 5;
            m[1][0] = 9;
            return m[0][2] * 10 + m[1][0];""") == 59

    def test_3d_array(self):
        assert result_of("""
            int cube[2][2][2];
            cube[1][0][1] = 8;
            return cube[1][0][1];""") == 8


class TestStructs:
    def test_array_of_structs(self):
        assert result_of("""
            struct point { int x; int y; };
            struct point pts[3];
            pts[1].x = 4;
            pts[1].y = 5;
            pts[2].x = 6;
            return pts[1].x + pts[1].y + pts[2].x;""") == 15

    def test_struct_with_array_member(self):
        assert result_of("""
            struct buf { int len; int data[4]; };
            struct buf b;
            b.len = 2;
            b.data[1] = 30;
            return b.len + b.data[1];""") == 32

    def test_mixed_field_types(self):
        assert result_of("""
            struct rec { char tag; double value; };
            struct rec r;
            r.tag = 65;
            r.value = 2.5;
            return r.tag + (int)(r.value * 2.0);""") == 70


class TestStringsAndChars:
    def test_char_constant_arithmetic(self):
        assert result_of("return 'A' + 1;") == 66

    def test_char_variable(self):
        assert result_of("char c = 'z'; return c;") == ord("z")

    def test_string_through_printf(self):
        _, interp = run("""
        int main(void) {
            char *msg = "hi there";
            printf("%s!", msg);
            return 0;
        }""")
        assert interp.output == ["hi there!"]


class TestCornerSemantics:
    def test_assignment_value(self):
        assert result_of("int a; int b; b = (a = 6) + 1; "
                         "return a + b;") == 13

    def test_compound_assign_on_array_element(self):
        assert result_of("""
            int a[2];
            a[0] = 10;
            a[0] *= 3;
            a[0] -= 5;
            return a[0];""") == 25

    def test_nested_ternary(self):
        assert result_of("int x = 5; return x > 9 ? 1 : x > 4 ? 2 : 3;"
                         ) == 2

    def test_comma_in_for(self):
        assert result_of("""
            int i; int j; int s = 0;
            for (i = 0, j = 10; i < j; i++, j--) s++;
            return s;""") == 5

    def test_sizeof_variable(self):
        assert result_of("double d[4]; return sizeof d;") == 32

    def test_negative_array_math(self):
        assert result_of("""
            int a[5];
            int *p = &a[4];
            p[-2] = 77;
            return a[2];""") == 77

    def test_while_with_side_effect_condition(self):
        assert result_of("""
            int n = 5; int c = 0;
            while (n--) c++;
            return c;""") == 5

    def test_chained_relational_is_c_not_math(self):
        # (1 < 2) < 0 == 1 < 0 == 0, like C, unlike math
        assert result_of("return 1 < 2 < 0;") == 0

    def test_void_function_returns_none(self):
        value, _ = run("""
        int g;
        void setter(void) { g = 3; }
        int main(void) { setter(); return g; }
        """)
        assert value == 3

    def test_early_return_skips_rest(self):
        assert result_of("return 1; return 2;") == 1
