"""AccessTracer unit tests."""

from repro.sim.trace import AccessTracer


class _FakeInterp:
    def __init__(self, core_id):
        self.core_id = core_id


class TestRegistration:
    def test_resolve_within_extent(self):
        tracer = AccessTracer()
        tracer.register("arr", 0x100, 32, "global")
        assert tracer.resolve(0x100).name == "arr"
        assert tracer.resolve(0x11F).name == "arr"
        assert tracer.resolve(0x120) is None

    def test_resolve_between_extents(self):
        tracer = AccessTracer()
        tracer.register("a", 0x100, 8, "global")
        tracer.register("b", 0x200, 8, "global")
        assert tracer.resolve(0x150) is None
        assert tracer.resolve(0x204).name == "b"

    def test_reused_stack_slot_retires_old_instance(self):
        tracer = AccessTracer()
        first = tracer.register("x", 0x100, 4, "local", "f")
        second = tracer.register("x", 0x100, 4, "local", "f")
        assert tracer.resolve(0x100) is second
        assert first in tracer.retired

    def test_out_of_order_registration(self):
        tracer = AccessTracer()
        tracer.register("late", 0x300, 4, "global")
        tracer.register("early", 0x100, 4, "global")
        assert tracer.resolve(0x100).name == "early"
        assert tracer.resolve(0x300).name == "late"


class TestSharingDetection:
    def test_two_threads_one_instance_is_shared(self):
        tracer = AccessTracer()
        tracer.register("g", 0x100, 4, "global")
        tracer.record(_FakeInterp(1), 0x100, "read")
        tracer.record(_FakeInterp(2), 0x100, "write")
        assert tracer.shared_keys() == {(None, "g")}

    def test_one_thread_not_shared(self):
        tracer = AccessTracer()
        tracer.register("g", 0x100, 4, "global")
        tracer.record(_FakeInterp(1), 0x100, "read")
        assert tracer.shared_keys() == set()
        assert tracer.observed_keys() == {(None, "g")}

    def test_per_instance_semantics(self):
        """Two threads touching their OWN instances of a reused stack
        slot is not sharing."""
        tracer = AccessTracer()
        tracer.register("x", 0x100, 4, "local", "tf")
        tracer.record(_FakeInterp(1), 0x100, "write")
        tracer.register("x", 0x100, 4, "local", "tf")  # next frame
        tracer.record(_FakeInterp(2), 0x100, "write")
        assert tracer.shared_keys() == set()
        assert tracer.observed_keys() == {("tf", "x")}

    def test_shared_retired_instance_still_counts(self):
        tracer = AccessTracer()
        tracer.register("x", 0x100, 4, "local", "f")
        tracer.record(_FakeInterp(1), 0x100, "write")
        tracer.record(_FakeInterp(2), 0x100, "read")
        tracer.register("x", 0x100, 4, "local", "f")
        assert tracer.shared_keys() == {("f", "x")}

    def test_unresolved_counted(self):
        tracer = AccessTracer()
        tracer.record(_FakeInterp(0), 0xDEAD, "read")
        assert tracer.unresolved == 1

    def test_access_totals_aggregate_instances(self):
        tracer = AccessTracer()
        tracer.register("x", 0x100, 4, "local", "f")
        tracer.record(_FakeInterp(0), 0x100, "read")
        tracer.register("x", 0x100, 4, "local", "f")
        tracer.record(_FakeInterp(0), 0x100, "write")
        assert tracer.access_totals()[("f", "x")] == (1, 1)

    def test_custom_thread_of(self):
        tracer = AccessTracer(thread_of=lambda interp: 42)
        tracer.register("g", 0x100, 4, "global")
        tracer.record(_FakeInterp(0), 0x100, "read")
        tracer.record(_FakeInterp(1), 0x100, "read")
        assert tracer.shared_keys() == set()  # same logical thread
