"""Interpreter tests: C semantics and cycle accounting."""

import pytest

from repro.cfront.frontend import parse_program
from repro.scc.chip import SCCChip
from repro.scc.config import SCCConfig
from repro.sim.interpreter import (
    Interpreter,
    InterpreterError,
    StepLimitExceeded,
)
from repro.sim.machine import Memory


def run(source, entry="main", args=(), max_steps=2_000_000):
    unit = parse_program(source)
    chip = SCCChip(SCCConfig())
    interp = Interpreter(unit, chip, 0, Memory(), max_steps=max_steps)
    value = interp.call_function(entry, args)
    return value, interp


def result_of(body, decls=""):
    source = "%s\nint main(void) { %s }" % (decls, body)
    return run(source)[0]


class TestArithmetic:
    def test_integer_ops(self):
        assert result_of("return 2 + 3 * 4;") == 14

    def test_division_truncates_toward_zero(self):
        assert result_of("return -7 / 2;") == -3
        assert result_of("return 7 / -2;") == -3

    def test_modulo_sign_follows_dividend(self):
        assert result_of("return -7 % 3;") == -1
        assert result_of("return 7 % -3;") == 1

    def test_division_by_zero_raises(self):
        with pytest.raises(InterpreterError):
            result_of("int z = 0; return 1 / z;")

    def test_float_arithmetic(self):
        value = result_of("double x = 1.5; double y = 2.0; "
                          "return (int)(x * y * 10.0);")
        assert value == 30

    def test_comparisons_give_zero_one(self):
        assert result_of("return 3 < 4;") == 1
        assert result_of("return 3 > 4;") == 0

    def test_bitwise(self):
        assert result_of("return (12 & 10) | (1 << 4) | (5 ^ 1);") == \
            ((12 & 10) | (1 << 4) | (5 ^ 1))

    def test_shifts(self):
        assert result_of("return 1 << 10;") == 1024
        assert result_of("return 1024 >> 3;") == 128

    def test_unary(self):
        assert result_of("return -(5) + !0 + ~0;") == -5

    def test_logical_short_circuit(self):
        # the right side would divide by zero if evaluated
        assert result_of("int z = 0; return 0 && (1 / z);") == 0
        assert result_of("int z = 0; return 1 || (1 / z);") == 1

    def test_ternary(self):
        assert result_of("int x = 5; return x > 3 ? 10 : 20;") == 10

    def test_int_overflow_wraps_on_store(self):
        assert result_of(
            "int x = 2147483647; x = x + 1; return x < 0;") == 1


class TestControlFlow:
    def test_while_loop(self):
        assert result_of(
            "int i = 0; int s = 0; while (i < 5) { s += i; i++; } "
            "return s;") == 10

    def test_for_loop(self):
        assert result_of(
            "int s = 0; for (int i = 1; i <= 4; i++) s *= 2, s += i; "
            "return s;") == 26

    def test_do_while_runs_once(self):
        assert result_of(
            "int i = 10; int n = 0; do { n++; } while (i < 5); "
            "return n;") == 1

    def test_break_and_continue(self):
        assert result_of("""
            int s = 0;
            for (int i = 0; i < 10; i++) {
                if (i == 3) continue;
                if (i == 6) break;
                s += i;
            }
            return s;""") == 0 + 1 + 2 + 4 + 5

    def test_nested_loop_break_inner_only(self):
        assert result_of("""
            int n = 0;
            for (int i = 0; i < 3; i++) {
                for (int j = 0; j < 10; j++) {
                    if (j == 2) break;
                    n++;
                }
            }
            return n;""") == 6

    def test_switch_with_fallthrough(self):
        assert result_of("""
            int x = 2; int r = 0;
            switch (x) {
                case 1: r += 1;
                case 2: r += 10;
                case 3: r += 100; break;
                default: r += 1000;
            }
            return r;""") == 110

    def test_switch_default(self):
        assert result_of("""
            int x = 9; int r = 0;
            switch (x) { case 1: r = 1; break; default: r = 42; }
            return r;""") == 42

    def test_step_limit(self):
        with pytest.raises(StepLimitExceeded):
            run("int main(void) { while (1) { } return 0; }",
                max_steps=1000)


class TestPointersAndArrays:
    def test_address_of_and_deref(self):
        assert result_of(
            "int x = 5; int *p = &x; *p = 9; return x;") == 9

    def test_array_indexing(self):
        assert result_of("""
            int a[4];
            for (int i = 0; i < 4; i++) a[i] = i * i;
            return a[3];""") == 9

    def test_array_decay_to_pointer(self):
        assert result_of("""
            int a[3];
            int *p = a;
            p[1] = 7;
            return a[1];""") == 7

    def test_pointer_arithmetic_strides(self):
        assert result_of("""
            double d[3];
            double *p = d;
            *(p + 2) = 2.5;
            return (int)(d[2] * 2.0);""") == 5

    def test_pointer_difference(self):
        assert result_of("""
            int a[8];
            int *p = &a[1];
            int *q = &a[6];
            return q - p;""") == 5

    def test_null_deref_raises(self):
        with pytest.raises(InterpreterError):
            result_of("int *p = 0; return *p;")

    def test_2d_array_via_flat_indexing(self):
        assert result_of("""
            int m[12];
            m[2 * 4 + 3] = 99;
            return m[11];""") == 99

    def test_global_array_initializer(self):
        assert result_of("return g[0] + g[1] + g[2];",
                         decls="int g[3] = {5, 6, 7};") == 18

    def test_global_zero_initialized(self):
        assert result_of("return g[7];", decls="int g[16];") == 0

    def test_struct_member_access(self):
        assert result_of("""
            struct point { int x; int y; };
            struct point p;
            p.x = 3;
            p.y = 4;
            return p.x * p.x + p.y * p.y;""") == 25

    def test_struct_pointer_arrow(self):
        assert result_of("""
            struct pair { int a; int b; };
            struct pair v;
            struct pair *p = &v;
            p->b = 12;
            return v.b;""") == 12


class TestFunctions:
    def test_call_and_return(self):
        source = """
        int square(int x) { return x * x; }
        int main(void) { return square(6); }
        """
        assert run(source)[0] == 36

    def test_recursion(self):
        source = """
        int fib(int n) { if (n < 2) return n;
                         return fib(n - 1) + fib(n - 2); }
        int main(void) { return fib(10); }
        """
        assert run(source)[0] == 55

    def test_pointer_argument_mutation(self):
        source = """
        void setit(int *p) { *p = 77; }
        int main(void) { int x = 0; setit(&x); return x; }
        """
        assert run(source)[0] == 77

    def test_function_pointer_call(self):
        source = """
        int twice(int x) { return 2 * x; }
        int main(void) { int (*f)(int) = twice; return f(21); }
        """
        assert run(source)[0] == 42

    def test_stack_frames_restore(self):
        source = """
        int helper(void) { int big[100]; big[0] = 1; return big[0]; }
        int main(void) {
            int total = 0;
            for (int i = 0; i < 50; i++) total += helper();
            return total;
        }
        """
        value, interp = run(source)
        assert value == 50
        # the stack pointer must have been restored every call
        assert interp.stack.used < 100 * 4 * 50

    def test_undefined_function_raises(self):
        with pytest.raises(InterpreterError):
            result_of("return mystery();")

    def test_undefined_identifier_raises(self):
        with pytest.raises(InterpreterError):
            result_of("return nonexistent;")


class TestCycleAccounting:
    def test_cycles_strictly_increase(self):
        _, interp = run("int main(void) { int x = 1 + 2; return x; }")
        assert interp.cycles > 0

    def test_div_costs_more_than_add(self):
        _, add_interp = run(
            "int main(void) { int s = 0; "
            "for (int i = 0; i < 100; i++) s = s + 3; return s; }")
        _, div_interp = run(
            "int main(void) { int s = 1000000; "
            "for (int i = 0; i < 100; i++) s = s / 3; return s; }")
        assert div_interp.cycles > add_interp.cycles

    def test_work_scales_cycles(self):
        def cycles_for(n):
            _, interp = run(
                "int main(void) { int s = 0; "
                "for (int i = 0; i < %d; i++) s += i; return s; }" % n)
            return interp.cycles

        assert cycles_for(1000) > 5 * cycles_for(100)

    def test_deterministic(self):
        source = """
        int main(void) {
            double s = 0.0;
            for (int i = 0; i < 50; i++) s = s + 1.0 / (i + 1);
            return (int)s;
        }
        """
        assert run(source)[1].cycles == run(source)[1].cycles
