"""Pass infrastructure tests."""

import pytest

from repro.cfront import c_ast
from repro.cfront.parser import parse
from repro.ir.passes import (
    AnalysisPass,
    Driver,
    PassError,
    ProgramContext,
    TransformPass,
)


class _Recorder(AnalysisPass):
    name = "recorder"
    provides = ("record",)

    def run(self, context):
        context.provide("record", 42)


class _Consumer(AnalysisPass):
    name = "consumer"
    requires = ("record",)

    def run(self, context):
        context.provide("consumed", context.require("record") + 1)


class TestProgramContext:
    def test_provide_and_require(self):
        context = ProgramContext(parse("int x;"))
        context.provide("k", "v")
        assert context.require("k") == "v"

    def test_require_missing_raises(self):
        context = ProgramContext(parse("int x;"))
        with pytest.raises(PassError):
            context.require("nope")


class TestDriver:
    def test_passes_run_in_order(self):
        context = Driver([_Recorder(), _Consumer()]).run(parse("int x;"))
        assert context.facts["consumed"] == 43
        assert context.pass_log == ["recorder", "consumer"]

    def test_missing_requirement_fails(self):
        with pytest.raises(PassError):
            Driver([_Consumer()]).run(parse("int x;"))

    def test_promised_fact_enforced(self):
        class Liar(AnalysisPass):
            name = "liar"
            provides = ("something",)

            def run(self, context):
                pass

        with pytest.raises(PassError):
            Driver([Liar()]).run(parse("int x;"))

    def test_driver_accepts_existing_context(self):
        context = ProgramContext(parse("int x;"))
        Driver([_Recorder()]).run(context)
        assert context.facts["record"] == 42

    def test_add_chained(self):
        driver = Driver().add(_Recorder()).add(_Consumer())
        assert len(driver.passes) == 2


class TestTransformConsistency:
    def test_transform_relinks_parents(self):
        class AddDecl(TransformPass):
            name = "add-decl"

            def run(self, context):
                decl = c_ast.Decl("added", __import__(
                    "repro.cfront.ctypes", fromlist=["INT"]).INT)
                context.unit.decls.append(decl)

        context = Driver([AddDecl()]).run(parse("int x;"))
        added = context.unit.decls[-1]
        assert added.parent is context.unit

    def test_transform_detects_none_in_list(self):
        class Corrupt(TransformPass):
            name = "corrupt"

            def run(self, context):
                context.unit.decls.append(None)

        with pytest.raises(PassError):
            Driver([Corrupt()]).run(parse("int x;"))

    def test_transform_detects_lost_body(self):
        class LoseBody(TransformPass):
            name = "lose-body"

            def run(self, context):
                context.unit.functions()[0].body = None

        with pytest.raises(PassError):
            Driver([LoseBody()]).run(parse("void f(void) { }"))
