"""Generic dataflow solver tests (reaching-constants toy analysis)."""

import pytest

from repro.cfront import c_ast
from repro.cfront.parser import parse
from repro.ir.cfg import build_cfg
from repro.ir.dataflow import ForwardDataflow


class ConstProp(ForwardDataflow):
    """Toy constant propagation: maps names to (const value | '?')."""

    def initial(self):
        return {}

    def boundary(self):
        return {}

    def merge(self, a, b):
        merged = dict(a)
        for name, value in b.items():
            if name in merged and merged[name] != value:
                merged[name] = "?"
            else:
                merged.setdefault(name, value)
        return merged

    def transfer(self, block, value):
        state = dict(value)
        for stmt in block.statements:
            if isinstance(stmt, tuple):
                continue
            if isinstance(stmt, c_ast.ExprStmt) and \
                    isinstance(stmt.expr, c_ast.Assignment):
                assign = stmt.expr
                if isinstance(assign.lvalue, c_ast.Id):
                    if isinstance(assign.rvalue, c_ast.Constant):
                        state[assign.lvalue.name] = assign.rvalue.value
                    else:
                        state[assign.lvalue.name] = "?"
        return state


def solve(body):
    unit = parse("void f(int p) { %s }" % body)
    cfg = build_cfg(unit.functions()[0])
    solution = ConstProp().solve(cfg)
    return solution[cfg.exit.index][0]  # in-state at exit


class TestFixpoint:
    def test_straight_line(self):
        assert solve("x = 1; y = 2;") == {"x": 1, "y": 2}

    def test_reassignment(self):
        assert solve("x = 1; x = 5;")["x"] == 5

    def test_branch_merge_conflicting(self):
        state = solve("if (p) { x = 1; } else { x = 2; }")
        assert state["x"] == "?"

    def test_branch_merge_agreeing(self):
        state = solve("if (p) { x = 7; } else { x = 7; }")
        assert state["x"] == 7

    def test_one_sided_branch(self):
        # x defined on only one path: still visible, merged as-is
        state = solve("if (p) { x = 3; }")
        assert state["x"] == 3

    def test_loop_invariant(self):
        state = solve("x = 4; while (p) { y = x; }")
        assert state["x"] == 4

    def test_loop_varying(self):
        state = solve("x = 0; while (p) { x = 1; }")
        assert state["x"] == "?"

    def test_nonconvergence_guard(self):
        class Diverging(ForwardDataflow):
            MAX_ITERATIONS = 5

            def initial(self):
                return 0

            def boundary(self):
                return 0

            def merge(self, a, b):
                return max(a, b)

            def transfer(self, block, value):
                return value + 1  # grows forever around the loop

        unit = parse("void f(int p) { while (p) { p = p; } }")
        cfg = build_cfg(unit.functions()[0])
        with pytest.raises(RuntimeError):
            Diverging().solve(cfg)
