"""Loop analysis tests: nesting depth and trip-count estimation."""

from repro.cfront import c_ast
from repro.cfront.parser import parse
from repro.ir.loops import (
    DEFAULT_TRIP_COUNT,
    estimate_trip_count,
    find_loops,
    loop_depth_map,
)


def first_loop(body):
    unit = parse("void f(int n) { %s }" % body)
    for node in c_ast.walk(unit):
        if isinstance(node, (c_ast.For, c_ast.While, c_ast.DoWhile)):
            return node
    raise AssertionError("no loop found")


class TestTripCount:
    def test_canonical_ascending(self):
        loop = first_loop("for (int i = 0; i < 10; i++) ;")
        assert estimate_trip_count(loop) == (10, True)

    def test_inclusive_bound(self):
        loop = first_loop("for (int i = 0; i <= 10; i++) ;")
        assert estimate_trip_count(loop) == (11, True)

    def test_nonzero_start(self):
        loop = first_loop("for (int i = 2; i < 10; i++) ;")
        assert estimate_trip_count(loop) == (8, True)

    def test_step(self):
        loop = first_loop("for (int i = 0; i < 10; i += 3) ;")
        assert estimate_trip_count(loop) == (4, True)

    def test_descending(self):
        loop = first_loop("for (int i = 9; i >= 0; i--) ;")
        assert estimate_trip_count(loop) == (10, True)

    def test_assignment_style_init(self):
        loop = first_loop("int i; for (i = 0; i < 5; i++) ;")
        assert estimate_trip_count(loop) == (5, True)

    def test_zero_trips(self):
        loop = first_loop("for (int i = 5; i < 5; i++) ;")
        assert estimate_trip_count(loop) == (0, True)

    def test_variable_bound_defaults(self):
        loop = first_loop("for (int i = 0; i < n; i++) ;")
        assert estimate_trip_count(loop) == (DEFAULT_TRIP_COUNT, False)

    def test_while_defaults(self):
        loop = first_loop("while (n) n--;")
        assert estimate_trip_count(loop) == (DEFAULT_TRIP_COUNT, False)

    def test_nonconstant_step_defaults(self):
        loop = first_loop("for (int i = 0; i < 10; i += n) ;")
        assert estimate_trip_count(loop) == (DEFAULT_TRIP_COUNT, False)


class TestLoopStructure:
    def test_find_loops_counts(self):
        unit = parse("""
        void f(void) {
            for (int i = 0; i < 2; i++) {
                for (int j = 0; j < 3; j++) { }
            }
            while (1) { break; }
        }
        """)
        loops = find_loops(unit.functions()[0])
        assert len(loops) == 3
        depths = sorted(l.depth for l in loops)
        assert depths == [0, 0, 1]

    def test_depth_map(self):
        unit = parse("""
        void f(int s) {
            s = 0;
            for (int i = 0; i < 2; i++) { s = 1; }
        }
        """)
        func = unit.functions()[0]
        depths = loop_depth_map(func)
        assigns = [n for n in c_ast.walk(func.body)
                   if isinstance(n, c_ast.Assignment)]
        outer = [a for a in assigns if a.rvalue.value == 0][0]
        inner = [a for a in assigns if a.rvalue.value == 1][0]
        assert depths[id(outer)] == 0
        assert depths[id(inner)] == 1

    def test_trip_count_is_constant_flag(self):
        unit = parse("void f(int n) { for (int i = 0; i < 4; i++) ; "
                     "for (int j = 0; j < n; j++) ; }")
        loops = find_loops(unit.functions()[0])
        assert loops[0].is_constant
        assert not loops[1].is_constant
