"""Control-flow graph construction tests."""

from repro.cfront import c_ast
from repro.cfront.parser import parse
from repro.ir.cfg import build_cfg


def cfg_for(body):
    unit = parse("void f(int x) { %s }" % body)
    return build_cfg(unit.functions()[0])


def edge_labels(cfg):
    labels = set()
    for block in cfg.blocks:
        for _, label in block.successors:
            if label:
                labels.add(label)
    return labels


class TestStraightLine:
    def test_single_block(self):
        cfg = cfg_for("x = 1; x = 2;")
        reachable = cfg.reachable_blocks()
        statements = [s for b in reachable for s in b.statements]
        assert len(statements) == 2

    def test_entry_reaches_exit(self):
        cfg = cfg_for("x = 1;")
        assert cfg.exit in cfg.reachable_blocks()

    def test_empty_function(self):
        cfg = cfg_for("")
        assert cfg.exit in cfg.reachable_blocks()


class TestBranches:
    def test_if_creates_diamond(self):
        cfg = cfg_for("if (x) { x = 1; } else { x = 2; } x = 3;")
        assert "true" in edge_labels(cfg)
        assert "false" in edge_labels(cfg)

    def test_if_without_else(self):
        cfg = cfg_for("if (x) x = 1; x = 2;")
        assert "false" in edge_labels(cfg)

    def test_return_edges_to_exit(self):
        cfg = cfg_for("if (x) return; x = 1;")
        assert "return" in edge_labels(cfg)

    def test_code_after_return_unreachable(self):
        cfg = cfg_for("return; x = 1;")
        reachable = cfg.reachable_blocks()
        reachable_stmts = [s for b in reachable for s in b.statements
                           if isinstance(s, c_ast.ExprStmt)]
        assert reachable_stmts == []


class TestLoops:
    def test_while_back_edge(self):
        cfg = cfg_for("while (x) { x = x - 1; }")
        assert "back" in edge_labels(cfg)

    def test_for_back_edge(self):
        cfg = cfg_for("for (x = 0; x < 3; x++) { }")
        assert "back" in edge_labels(cfg)

    def test_do_while(self):
        cfg = cfg_for("do { x--; } while (x);")
        assert "back" in edge_labels(cfg)

    def test_break_leaves_loop(self):
        cfg = cfg_for("while (1) { break; } x = 1;")
        assert "break" in edge_labels(cfg)
        # the statement after the loop must be reachable
        stmts = [s for b in cfg.reachable_blocks() for s in b.statements
                 if isinstance(s, c_ast.ExprStmt)]
        assert len(stmts) == 1

    def test_continue_edge(self):
        cfg = cfg_for("while (x) { continue; }")
        assert "continue" in edge_labels(cfg)

    def test_infinite_for_no_false_edge(self):
        cfg = cfg_for("for (;;) { x = 1; }")
        # no cond -> only the true edge into the body
        head_edges = [lab for b in cfg.blocks
                      for _, lab in b.successors if lab == "false"]
        assert head_edges == []


class TestSwitchAndGoto:
    def test_switch_case_edges(self):
        cfg = cfg_for("switch (x) { case 1: x = 1; break; "
                      "default: x = 0; }")
        assert "case" in edge_labels(cfg)

    def test_switch_without_default_has_nomatch(self):
        cfg = cfg_for("switch (x) { case 1: break; } x = 9;")
        assert "nomatch" in edge_labels(cfg)

    def test_goto_forward(self):
        cfg = cfg_for("goto out; x = 1; out: x = 2;")
        assert "goto" in edge_labels(cfg)


class TestRPO:
    def test_rpo_starts_at_entry(self):
        cfg = cfg_for("if (x) { x = 1; } x = 2;")
        order = cfg.rpo()
        assert order[0] is cfg.entry

    def test_rpo_covers_reachable(self):
        cfg = cfg_for("while (x) { if (x) { x = 1; } }")
        assert set(b.index for b in cfg.rpo()) == \
            set(b.index for b in cfg.reachable_blocks())
