"""Observability through the CLI: --profile, --trace, --metrics."""

import io
import json

import pytest

from repro.bench.programs import benchmark_source
from repro.cli import main


@pytest.fixture
def pi_file(tmp_path):
    path = tmp_path / "pi.c"
    path.write_text(benchmark_source("pi", 4, steps=64))
    return str(path)


def run_cli(argv):
    out = io.StringIO()
    code = main(argv, out)
    return code, out.getvalue()


class TestTranslateProfile:
    def test_profile_comments_keep_stdout_valid_c(self, pi_file):
        code, output = run_cli(["translate", pi_file, "--profile"])
        assert code == 0
        profile_lines = [line for line in output.splitlines()
                         if "pipeline profile" in line
                         or line.startswith("//   stage")]
        assert profile_lines, "no profile lines in output"
        for line in profile_lines:
            assert line.startswith("// ")

    def test_all_five_stages_timed(self, pi_file):
        _, output = run_cli(["translate", pi_file, "--profile"])
        for stage in ("stage1", "stage2", "stage3", "stage4", "stage5"):
            assert any(line.startswith("//   %s" % stage)
                       for line in output.splitlines()), stage

    def test_stage_offsets_monotone(self, pi_file):
        _, output = run_cli(["translate", pi_file, "--profile"])
        offsets = []
        for line in output.splitlines():
            if not line.startswith("//   stage"):
                continue
            offsets.append(float(
                line.split("+", 1)[1].split("s", 1)[0]))
        assert len(offsets) == 5
        assert offsets == sorted(offsets)

    def test_stage_stats_annotated(self, pi_file):
        _, output = run_cli(["translate", pi_file, "--profile"])
        assert "variables_classified=" in output
        assert "pointsto_rounds=" in output
        assert "on_chip_bytes=" in output


class TestRunTrace:
    def test_trace_and_metrics_files(self, pi_file, tmp_path):
        trace_path = tmp_path / "trace.json"
        metrics_path = tmp_path / "metrics.json"
        code, output = run_cli(
            ["run", pi_file, "--ues", "2",
             "--trace", str(trace_path),
             "--metrics", str(metrics_path)])
        assert code == 0
        assert "trace written to" in output
        assert "metrics written to" in output

        doc = json.loads(trace_path.read_text())
        tracks = {(event["pid"], event["tid"])
                  for event in doc["traceEvents"]
                  if event["ph"] != "M"}
        # pid 0 = pthread baseline chip, pid 1 = the 2-core RCCE chip
        assert len(tracks) >= 3
        assert {pid for pid, _tid in tracks} == {0, 1}

        metrics = json.loads(metrics_path.read_text())
        assert set(metrics) == {"pthread", "rcce"}
        assert "scc_cache_hits" in metrics["rcce"]["counters"]
        assert "rcce_barrier_rounds" in metrics["rcce"]["counters"]

    def test_trace_only_rcce_mode(self, pi_file, tmp_path):
        trace_path = tmp_path / "trace.json"
        code, _ = run_cli(["run", pi_file, "--mode", "rcce",
                           "--ues", "2", "--trace", str(trace_path)])
        assert code == 0
        doc = json.loads(trace_path.read_text())
        assert doc["traceEvents"]

    def test_run_without_flags_writes_no_files(self, pi_file, tmp_path):
        code, output = run_cli(["run", pi_file, "--mode", "rcce",
                                "--ues", "2"])
        assert code == 0
        assert "trace written" not in output
        assert list(tmp_path.glob("*.json")) == []


class TestRunMetricsSnapshot:
    def test_run_results_carry_metrics(self, pi_file):
        from repro.sim.runner import run_pthread_single_core
        source = open(pi_file).read()
        result = run_pthread_single_core(source)
        counters = result.metrics["counters"]
        assert "scc_cache_hits" in counters
        assert "sim_steps" in counters

    def test_rcce_run_metrics_include_barrier_histogram(self, pi_file):
        from repro.core.framework import TranslationFramework
        from repro.sim.runner import run_rcce
        source = open(pi_file).read()
        translated = TranslationFramework().translate(source)
        result = run_rcce(translated.unit, 2)
        rows = result.metrics["histograms"]["rcce_barrier_wait_cycles"]
        summary = rows[0]["summary"]
        # every UE waits at the finalize barrier at least once
        assert summary["count"] >= 2
        assert summary["max"] >= summary["min"] >= 0
