"""Event tracer: ring buffer, Chrome trace-event export, and the
end-to-end trace schema of a tiny RCCE run."""

import json

import pytest

from repro.core.framework import TranslationFramework
from repro.obs.export import write_chrome_trace
from repro.obs.tracer import NULL_EVENTS, EventTracer
from repro.scc.chip import SCCChip
from repro.scc.config import Table61Config
from repro.sim.runner import run_rcce

# Four threads contending on one mutex: after translation this
# exercises every traced subsystem — caches, mesh, MPB allocation,
# RCCE locks, and barriers.
MUTEX_SRC = r"""
#include <pthread.h>
#include <stdio.h>

#define NTHREADS 4

pthread_mutex_t lock = PTHREAD_MUTEX_INITIALIZER;
int counter = 0;

void *worker(void *arg) {
    int i;
    for (i = 0; i < 8; i = i + 1) {
        pthread_mutex_lock(&lock);
        counter = counter + 1;
        pthread_mutex_unlock(&lock);
    }
    return 0;
}

int main() {
    pthread_t threads[NTHREADS];
    int i;
    for (i = 0; i < NTHREADS; i = i + 1) {
        pthread_create(&threads[i], 0, worker, 0);
    }
    for (i = 0; i < NTHREADS; i = i + 1) {
        pthread_join(threads[i], 0);
    }
    printf("counter = %d\n", counter);
    return 0;
}
"""


class TestRingBuffer:
    def test_capacity_drops_oldest(self):
        tracer = EventTracer(capacity=4)
        for index in range(6):
            tracer.instant(0, index, "e%d" % index)
        assert len(tracer) == 4
        assert tracer.dropped == 2
        names = [event[5] for event in tracer.events]
        assert names == ["e2", "e3", "e4", "e5"]

    def test_clear(self):
        tracer = EventTracer(capacity=4)
        tracer.instant(0, 0, "e")
        tracer.clear()
        assert len(tracer) == 0 and tracer.dropped == 0

    def test_core_tracks(self):
        tracer = EventTracer()
        tracer.instant(0, 0, "a", pid=0)
        tracer.instant(3, 10, "b", pid=1)
        assert tracer.core_tracks() == {(0, 0), (1, 3)}


class TestChromeExport:
    def test_phases_and_time_conversion(self):
        tracer = EventTracer()
        tracer.set_process(0, "chip")
        tracer.set_thread(0, 2, "core 2")
        tracer.instant(2, 1600, "cache_miss", category="cache",
                       args={"level": "L2"})
        tracer.complete(2, 800, 800, "barrier", category="sync")
        doc = tracer.to_chrome(cycles_per_us=800.0)
        by_name = {event["name"]: event for event in doc["traceEvents"]}
        assert by_name["process_name"]["args"]["name"] == "chip"
        assert by_name["thread_name"]["args"]["name"] == "core 2"
        instant = by_name["cache_miss"]
        assert instant["ph"] == "i" and instant["s"] == "t"
        assert instant["ts"] == pytest.approx(2.0)  # 1600 cyc @ 800 MHz
        span = by_name["barrier"]
        assert span["ph"] == "X"
        assert span["dur"] == pytest.approx(1.0)

    def test_disabled_tracer_is_noop(self):
        assert NULL_EVENTS.enabled is False
        NULL_EVENTS.instant(0, 0, "e")
        NULL_EVENTS.complete(0, 0, 1, "e")
        NULL_EVENTS.counter(0, 0, "c", {"v": 1})
        assert len(NULL_EVENTS) == 0


class TestRCCERunTrace:
    """Golden schema test: trace a tiny translated RCCE run and check
    the Chrome JSON that falls out."""

    @pytest.fixture(scope="class")
    def trace_doc(self, tmp_path_factory):
        translated = TranslationFramework().translate(MUTEX_SRC)
        tracer = EventTracer()
        chip = SCCChip(Table61Config())
        chip.attach_events(tracer, pid=0, name="rcce x4 cores")
        run_rcce(translated.unit, 4, chip.config, chip)
        path = tmp_path_factory.mktemp("trace") / "trace.json"
        write_chrome_trace(tracer, str(path), chip.config)
        with open(path) as handle:
            return json.load(handle)

    def test_document_shape(self, trace_doc):
        assert set(trace_doc) == {"traceEvents", "displayTimeUnit",
                                  "otherData"}
        assert trace_doc["otherData"]["dropped_events"] == 0

    def test_at_least_two_core_tracks(self, trace_doc):
        tracks = {(event["pid"], event["tid"])
                  for event in trace_doc["traceEvents"]
                  if event["ph"] != "M"}
        assert len(tracks) >= 2

    def test_expected_event_categories(self, trace_doc):
        categories = {event.get("cat")
                      for event in trace_doc["traceEvents"]}
        assert {"cache", "mesh", "sync", "mem"} <= categories

    def test_cache_mesh_lock_events_present(self, trace_doc):
        names = {event["name"] for event in trace_doc["traceEvents"]}
        assert {"cache_miss", "mesh_route", "lock_acquire",
                "barrier", "mpb_alloc"} <= names

    def test_every_core_named(self, trace_doc):
        thread_names = {event["tid"]: event["args"]["name"]
                        for event in trace_doc["traceEvents"]
                        if event["ph"] == "M"
                        and event["name"] == "thread_name"}
        assert thread_names == {0: "core 0", 1: "core 1",
                                2: "core 2", 3: "core 3"}

    def test_timestamps_non_negative_and_finite(self, trace_doc):
        for event in trace_doc["traceEvents"]:
            if event["ph"] == "M":
                continue
            assert event["ts"] >= 0
            if event["ph"] == "X":
                assert event["dur"] >= 0

    def test_lock_events_carry_register_args(self, trace_doc):
        locks = [event for event in trace_doc["traceEvents"]
                 if event["name"] == "lock_acquire"]
        assert locks
        for event in locks:
            assert "register" in event["args"]
            assert "contended" in event["args"]
