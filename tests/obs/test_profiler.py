"""Pipeline profiler: spans, annotations, stage summary, disabled."""

from repro.obs.profile import PipelineProfiler, _NULL_SPAN_CONTEXT


class FakeClock:
    """Deterministic clock: each read advances by ``step`` seconds."""

    def __init__(self, step=1.0):
        self.now = 0.0
        self.step = step

    def __call__(self):
        value = self.now
        self.now += self.step
        return value


class TestSpans:
    def test_span_records_wall_time(self):
        profiler = PipelineProfiler(clock=FakeClock())
        with profiler.span("stage1-scope"):
            pass
        (span,) = profiler.spans
        assert span.name == "stage1-scope"
        assert span.wall_seconds == 1.0

    def test_nested_spans_become_children(self):
        profiler = PipelineProfiler(clock=FakeClock())
        with profiler.span("outer"):
            with profiler.span("inner"):
                pass
        (outer,) = profiler.spans
        assert [child.name for child in outer.children] == ["inner"]

    def test_annotate_hits_innermost_open_span(self):
        profiler = PipelineProfiler(clock=FakeClock())
        with profiler.span("outer"):
            with profiler.span("inner"):
                profiler.annotate(rounds=3)
        (outer,) = profiler.spans
        assert outer.stats == {}
        assert outer.children[0].stats == {"rounds": 3}

    def test_span_kwargs_become_stats(self):
        profiler = PipelineProfiler(clock=FakeClock())
        with profiler.span("simulate", cores=4):
            pass
        assert profiler.spans[0].stats == {"cores": 4}

    def test_reset_clears_spans(self):
        profiler = PipelineProfiler(clock=FakeClock())
        with profiler.span("a"):
            pass
        profiler.reset()
        assert profiler.spans == []


class TestReports:
    def test_report_offsets_relative_to_epoch(self):
        profiler = PipelineProfiler(clock=FakeClock())
        with profiler.span("a"):
            pass
        with profiler.span("b"):
            pass
        report = profiler.report()
        offsets = [entry["start_offset_seconds"] for entry in report]
        assert offsets == sorted(offsets)
        assert report[0]["name"] == "a"

    def test_stage_summary_groups_passes_by_stage(self):
        profiler = PipelineProfiler(clock=FakeClock())
        for name in ("stage5-threads-to-processes",
                     "stage5-mutex-conversion", "rewrite-includes"):
            with profiler.span(name):
                pass
        summary = profiler.stage_summary()
        stages = [row["stage"] for row in summary]
        assert stages == ["stage5", "rewrite-includes"]
        # two passes folded into one stage5 row
        assert summary[0]["wall_seconds"] == 2.0

    def test_stage_summary_merges_stats(self):
        profiler = PipelineProfiler(clock=FakeClock())
        with profiler.span("stage1-a", variables=7):
            pass
        with profiler.span("stage1-b", globals=2):
            pass
        (row,) = profiler.stage_summary()
        assert row["stats"] == {"variables": 7, "globals": 2}

    def test_render_mentions_every_stage(self):
        profiler = PipelineProfiler(clock=FakeClock())
        with profiler.span("stage1-scope"):
            pass
        text = profiler.render("// ")
        assert "pipeline profile" in text
        assert "stage1" in text
        assert all(line.startswith("// ")
                   for line in text.splitlines())


class TestDisabled:
    def test_disabled_profiler_records_nothing(self):
        profiler = PipelineProfiler(enabled=False)
        with profiler.span("a"):
            profiler.annotate(x=1)
        assert profiler.spans == []

    def test_disabled_span_is_shared_singleton(self):
        profiler = PipelineProfiler(enabled=False)
        assert profiler.span("a") is _NULL_SPAN_CONTEXT
        assert profiler.span("b") is _NULL_SPAN_CONTEXT
