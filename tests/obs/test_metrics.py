"""Metrics registry semantics: labels, histograms, reset, disabled."""

import json

import pytest

from repro.obs.metrics import (
    MetricsError,
    MetricsRegistry,
    NULL_INSTRUMENT,
    series_value,
)


@pytest.fixture
def registry():
    return MetricsRegistry()


class TestCounters:
    def test_starts_at_zero(self, registry):
        counter = registry.counter("requests", "total requests")
        assert counter.value == 0

    def test_increments(self, registry):
        counter = registry.counter("requests", "total requests")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_same_name_returns_same_family(self, registry):
        first = registry.counter("requests", "total requests")
        second = registry.counter("requests", "total requests")
        first.inc()
        assert second.value == 1

    def test_kind_mismatch_rejected(self, registry):
        registry.counter("requests", "total requests")
        with pytest.raises(MetricsError):
            registry.gauge("requests", "not a counter")

    def test_label_mismatch_rejected(self, registry):
        registry.counter("hits", "hits", labels=("core",))
        with pytest.raises(MetricsError):
            registry.counter("hits", "hits", labels=("level",))


class TestLabels:
    def test_labeled_series_are_independent(self, registry):
        family = registry.counter("hits", "cache hits",
                                  labels=("core", "level"))
        family.labels(core=0, level="L1").inc(3)
        family.labels(core=1, level="L1").inc(5)
        values = {(labels["core"], labels["level"]): child.value
                  for labels, child in family.series()}
        assert values[(0, "L1")] == 3
        assert values[(1, "L1")] == 5

    def test_label_child_cached(self, registry):
        family = registry.counter("hits", "cache hits", labels=("core",))
        assert family.labels(core=7) is family.labels(core=7)

    def test_unknown_label_name_rejected(self, registry):
        family = registry.counter("hits", "cache hits", labels=("core",))
        with pytest.raises(MetricsError):
            family.labels(socket=0)


class TestGauges:
    def test_set_inc_dec(self, registry):
        gauge = registry.gauge("power_watts", "chip power")
        gauge.set(104.0)
        assert gauge.value == 104.0
        gauge.dec(4.0)
        assert gauge.value == 100.0
        gauge.inc(1.0)
        assert gauge.value == 101.0


class TestHistograms:
    def test_summary_statistics(self, registry):
        histogram = registry.histogram("latency", "cycles")
        for value in range(1, 101):
            histogram.observe(value)
        summary = histogram.summary()
        assert summary["count"] == 100
        assert summary["min"] == 1
        assert summary["max"] == 100
        assert summary["mean"] == pytest.approx(50.5)

    def test_percentiles_nearest_rank(self, registry):
        histogram = registry.histogram("latency", "cycles")
        for value in range(1, 101):
            histogram.observe(value)
        assert histogram.percentile(0.5) == 50
        assert histogram.percentile(0.9) == 90
        assert histogram.percentile(0.99) == 99
        assert histogram.percentile(1.0) == 100

    def test_empty_percentile_is_none(self, registry):
        histogram = registry.histogram("latency", "cycles")
        assert histogram.percentile(0.5) is None


class TestReset:
    def test_reset_zeroes_families(self, registry):
        counter = registry.counter("requests", "total")
        gauge = registry.gauge("depth", "queue depth")
        histogram = registry.histogram("latency", "cycles")
        counter.inc(9)
        gauge.set(3)
        histogram.observe(5.0)
        registry.reset()
        assert counter.value == 0
        assert gauge.value == 0
        assert histogram.summary()["count"] == 0

    def test_reset_calls_collector_reset(self, registry):
        hits = []
        registry.register_collector("c", lambda: [],
                                    reset=lambda: hits.append(1))
        registry.reset()
        assert hits == [1]

    def test_collector_replaced_by_name(self, registry):
        registry.register_collector(
            "c", lambda: [("counter", "a", {}, 1)])
        registry.register_collector(
            "c", lambda: [("counter", "b", {}, 2)])
        snapshot = registry.snapshot()
        assert "a" not in snapshot["counters"]
        assert series_value(snapshot["counters"], "b") == 2


class TestDisabled:
    def test_disabled_registry_hands_out_null_instrument(self):
        registry = MetricsRegistry(enabled=False)
        counter = registry.counter("requests", "total")
        assert counter is NULL_INSTRUMENT
        counter.inc()          # all no-ops
        counter.set(5)
        counter.observe(1.0)
        assert registry.snapshot() == {"counters": {}, "gauges": {},
                                       "histograms": {}}

    def test_null_instrument_labels_returns_itself(self):
        assert NULL_INSTRUMENT.labels(core=0) is NULL_INSTRUMENT


class TestSnapshot:
    def test_snapshot_shape_and_json(self, registry):
        registry.counter("hits", "hits", labels=("core",)) \
            .labels(core=0).inc(3)
        registry.gauge("power", "watts").set(104.0)
        registry.histogram("latency", "cycles").observe(7)
        snapshot = registry.snapshot()
        assert snapshot["counters"]["hits"] == [
            {"labels": {"core": 0}, "value": 3}]
        assert snapshot["gauges"]["power"] == [
            {"labels": {}, "value": 104.0}]
        summary = snapshot["histograms"]["latency"][0]["summary"]
        assert summary["count"] == 1
        # machine-readable: the whole snapshot must round-trip JSON
        assert json.loads(registry.to_json())["counters"]["hits"]

    def test_series_value_filters_by_labels(self, registry):
        family = registry.counter("hits", "hits", labels=("core",))
        family.labels(core=0).inc(3)
        family.labels(core=1).inc(5)
        counters = registry.snapshot()["counters"]
        assert series_value(counters, "hits", core=1) == 5
        assert series_value(counters, "hits", core=9, default=-1) == -1

    def test_render_text_lists_series(self, registry):
        registry.counter("hits", "hits", labels=("core",)) \
            .labels(core=0).inc(3)
        text = registry.render_text()
        assert "hits" in text and "3" in text
