"""Cycle attribution and critical-path analysis.

The hard invariant is *conservation*: every simulated cycle lands in
exactly one attribution class, so per-core attributed cycles sum
exactly to the core's total — checked here on every Appendix-C
benchmark under both partition policies, against golden-pinned
breakdowns (``tests/golden/attribution.json``).  The critical path
must likewise account for the whole makespan: its segments tile
``[0, makespan]`` with no gaps.
"""

import io
import json
import os

import pytest

from repro.bench.harness import SCALED_ON_CHIP_CAPACITY
from repro.bench.programs import EXAMPLE_4_1, benchmark_source
from repro.bench.workloads import scaled_config
from repro.core.framework import TranslationFramework
from repro.obs.attribution import (
    CLASSES,
    AttributionEngine,
    ConservationError,
    annotate_chrome_trace,
)
from repro.obs.critpath import analyze_critical_path
from repro.obs.tracer import EventTracer
from repro.scc.chip import SCCChip
from repro.sim.runner import (
    run_pthread_single_core,
    run_rcce,
    run_rcce_supervised,
)

NUM_UES = 4

SIZES = {
    "pi": {"steps": 512},
    "sum35": {"limit": 512},
    "primes": {"limit": 256},
    "stream": {"n": 128},
    "dot": {"n": 192},
    "lu": {"batch": 4, "dim": 8},
}

GOLDEN_PATH = os.path.join(os.path.dirname(__file__), os.pardir,
                           "golden", "attribution.json")
with open(GOLDEN_PATH) as _handle:
    GOLDEN = json.load(_handle)


def translate(source, policy="size"):
    framework = TranslationFramework(
        on_chip_capacity=SCALED_ON_CHIP_CAPACITY,
        partition_policy=policy)
    return framework.translate(source).unit


def benchmark_unit(name, policy):
    source = EXAMPLE_4_1 if name == "example_4_1" else \
        benchmark_source(name, NUM_UES, **SIZES[name])
    return translate(source, policy)


def profiled_run(name, policy, attribution=True):
    chip = SCCChip(scaled_config())
    return run_rcce(benchmark_unit(name, policy), NUM_UES,
                    chip.config, chip, max_steps=100_000_000,
                    attribution=attribution)


# -- the conservation invariant, golden-pinned --------------------------------


@pytest.mark.parametrize("policy", ["size", "off-chip-only"])
@pytest.mark.parametrize("name", sorted(SIZES) + ["example_4_1"])
def test_benchmark_attribution_conserves_and_matches_golden(name,
                                                            policy):
    result = profiled_run(name, policy)
    report = result.attribution
    # conservation: attributed cycles sum EXACTLY to each core's total
    for core, classes in report.per_core.items():
        assert sum(classes.values()) == result.per_core_cycles[core]
        assert all(cycles >= 0 for cycles in classes.values())
        assert set(classes) <= set(CLASSES)
    # the critical path accounts for the whole makespan
    path = report.critical_path
    assert path.complete
    assert path.path_length == report.makespan == result.cycles
    # pinned breakdown: any cost-model or hook change shows up here
    expected = GOLDEN["%s/%s" % (name, policy)]
    assert report.makespan == expected["makespan"]
    got = {str(core): dict(sorted(classes.items()))
           for core, classes in sorted(report.per_core.items())}
    assert got == expected["per_core"]


def test_pthread_attribution_conserves():
    source = benchmark_source("pi", NUM_UES, **SIZES["pi"])
    chip = SCCChip(scaled_config())
    result = run_pthread_single_core(source, chip.config, chip,
                                     max_steps=100_000_000,
                                     attribution=True)
    report = result.attribution
    [(core, classes)] = report.per_core.items()
    assert sum(classes.values()) == result.per_core_cycles[core]
    # thread create/join plus quantum context switches all landed
    assert classes["sched_overhead"] >= \
        result.stats["scheduling_overhead_cycles"]
    assert report.critical_path.path_length == result.cycles


def test_mutex_costs_attributed_to_lock_spin():
    source = """
    int counter = 0;
    pthread_mutex_t m;
    void *work(void *arg) {
        pthread_mutex_lock(&m);
        counter = counter + 1;
        pthread_mutex_unlock(&m);
        return 0;
    }
    int main(void) {
        pthread_t a;
        pthread_t b;
        pthread_mutex_init(&m, 0);
        pthread_create(&a, 0, work, 0);
        pthread_create(&b, 0, work, 0);
        pthread_join(a, 0);
        pthread_join(b, 0);
        return counter;
    }
    """
    chip = SCCChip(scaled_config())
    result = run_pthread_single_core(source, chip.config, chip,
                                     attribution=True)
    assert result.exit_value == 2
    [(core, classes)] = result.attribution.per_core.items()
    from repro.sim.pthread_rt import MUTEX_OP_COST
    assert classes["lock_spin"] == 4 * MUTEX_OP_COST  # 2x lock+unlock
    assert sum(classes.values()) == result.per_core_cycles[core]


# -- engine unit behaviour ----------------------------------------------------


def test_breakdown_compute_is_the_residual():
    engine = AttributionEngine()
    engine.add(0, "l1_hit", 10)
    engine.add(0, "mpb", 5)
    breakdown = engine.breakdown({0: 40})
    assert breakdown == {0: {"l1_hit": 10, "mpb": 5, "compute": 25}}


def test_over_attribution_raises_conservation_error():
    engine = AttributionEngine()
    engine.add(0, "dram_shared", 100)
    with pytest.raises(ConservationError):
        engine.breakdown({0: 60})


def test_cells_survive_detach_and_reset_zeroes_them():
    chip = SCCChip(scaled_config())
    engine = AttributionEngine().attach(chip)
    engine.add(2, "barrier_wait", 7)
    assert chip.attribution is engine
    chip.metrics.reset()
    assert engine.cell(2, "barrier_wait")[0] == 0
    engine.add(2, "barrier_wait", 7)
    engine.detach()
    assert chip.attribution is None
    assert engine.breakdown({2: 10})[2]["barrier_wait"] == 7


def test_metrics_registry_exposes_attr_counters():
    result = profiled_run("dot", "size")
    counters = result.metrics["counters"]
    assert "attr_cycles" in counters
    assert "attr_mem_ops" in counters
    by_core = {}
    for row in counters["attr_cycles"]:
        by_core.setdefault(row["labels"]["core"], 0)
        by_core[row["labels"]["core"]] += row["value"]
    # the metric omits the compute residual, so it must undershoot
    for core, attributed in by_core.items():
        assert 0 < attributed <= result.per_core_cycles[core]


def test_report_render_and_dict():
    report = profiled_run("dot", "size").attribution
    text = report.render()
    assert "cycle attribution:" in text
    assert "makespan: %d cycles" % report.makespan in text
    payload = report.as_dict()
    json.dumps(payload)  # must be JSON-serializable as-is
    assert payload["makespan"] == report.makespan
    assert payload["critical_path"]["makespan"] == report.makespan
    assert report.dominant_class() in CLASSES


# -- critical path ------------------------------------------------------------


def test_trivial_path_without_sync_events():
    path = analyze_critical_path({}, {0: 123}, None)
    assert path.complete
    assert path.path_length == path.makespan == 123
    assert [seg["kind"] for seg in path.segments] == ["run"]


def test_critical_path_segments_tile_the_makespan():
    report = profiled_run("stream", "size").attribution
    path = report.critical_path
    assert path.segments[0]["start"] == 0
    assert path.segments[-1]["end"] == path.makespan
    for before, after in zip(path.segments, path.segments[1:]):
        assert before["end"] == after["start"]
    rank, core = path.bottleneck()
    assert 0 <= rank < NUM_UES
    assert any(seg["rank"] == rank for seg in path.segments)
    assert path.phases  # every benchmark has at least one barrier


def test_critical_path_respects_vector_clocks():
    """Replaying the recorded sync edges through the race detector's
    vector-clock semantics must show every rank synchronized: the
    path's hops only ever follow real happens-before edges."""
    engine = AttributionEngine()
    profiled_run_result = None
    chip = SCCChip(scaled_config())
    profiled_run_result = run_rcce(
        benchmark_unit("dot", "size"), NUM_UES, chip.config, chip,
        max_steps=100_000_000, attribution=engine)
    clocks = engine.replay_vector_clocks()
    assert sorted(clocks) == list(range(NUM_UES))
    for rank, clock in clocks.items():
        for other in clocks:
            assert clock.time_of(other) > 0
    assert profiled_run_result.attribution.critical_path.complete


def test_annotated_chrome_trace():
    engine = AttributionEngine()
    chip = SCCChip(scaled_config())
    tracer = EventTracer()
    chip.attach_events(tracer, pid=0, name="attr test")
    result = run_rcce(benchmark_unit("dot", "size"), NUM_UES,
                      chip.config, chip, max_steps=100_000_000,
                      attribution=engine)
    emitted = annotate_chrome_trace(tracer, engine, result.attribution)
    assert emitted > 0
    names = [event[5] for event in tracer.events]
    assert "critical_path" in names
    assert any(name.startswith("attribution core")
               for name in names)


# -- supervised runs surface per-attempt audits (satellite) -------------------


CAMPAIGN_KERNEL = """
int RCCE_APP(int argc, char **argv) {
    int me;
    int i;
    int k;
    double sum;
    double *buf;
    RCCE_init(&argc, &argv);
    me = RCCE_ue();
    buf = (double *) RCCE_malloc(256);
    RCCE_barrier(&RCCE_COMM_WORLD);
    sum = 0.0;
    for (k = 0; k < 12; k++) {
        for (i = 0; i < 8; i++) {
            buf[me * 8 + i] = me * 100.0 + k + i;
        }
        for (i = 0; i < 8; i++) {
            sum = sum + buf[me * 8 + i];
        }
        RCCE_barrier(&RCCE_COMM_WORLD);
    }
    printf("ue %d sum %f\\n", me, sum);
    RCCE_finalize();
    return 0;
}
"""


def test_supervisor_reports_per_attempt_audits(tmp_path):
    path = str(tmp_path / "audit.ckpt")
    from repro.recovery import RecoveryOptions
    result = run_rcce_supervised(
        CAMPAIGN_KERNEL, 2, engine="tree",
        faults="core_crash:core=1,at=11000",
        recovery=RecoveryOptions(checkpoint_path=path,
                                 checkpoint_every=1),
        max_restarts=2, race=True, attribution=True)
    assert result.recovery.restarts == 1
    [failure] = result.recovery.failures
    # the dead attempt's race audit rode along instead of being lost
    assert failure["audit"] is not None
    assert failure["audit"].checks > 0
    assert failure["audit"].ok
    serialized = result.recovery.as_dict()
    assert serialized["failures"][0]["audit"]["checks"] > 0
    # the surviving attempt still gets the normal surfaces
    assert result.race is not None and result.race.ok
    report = result.attribution
    for core, classes in report.per_core.items():
        assert sum(classes.values()) == result.per_core_cycles[core]


# -- block builtins (satellite) -----------------------------------------------


BLOCK_KERNEL = """
int main(void) {
    int src[32];
    int dst[32];
    char buf[32];
    int i;
    int total = 0;
    for (i = 0; i < 32; i++) { src[i] = i * 3; }
    memset(dst, 0, 128);
    memcpy(dst, src, 128);
    strcpy(buf, "block builtins");
    for (i = 0; i < 32; i++) { total += dst[i]; }
    printf("%d\\n", total);
    return 0;
}
"""


def test_block_builtins_attribute_block_copy():
    chip = SCCChip(scaled_config())
    result = run_pthread_single_core(BLOCK_KERNEL, chip.config, chip,
                                     attribution=True)
    assert result.stdout() == "%d\n" % sum(i * 3 for i in range(32))
    [classes] = result.attribution.per_core.values()
    # memset(128B) + memcpy(128B) = 32 words each; strcpy copies one
    # stored value priced at 4 words ("block builtins" + NUL)
    assert classes["block_copy"] == 32 + 32 + 4
    [(core, classes)] = result.attribution.per_core.items()
    assert sum(classes.values()) == result.per_core_cycles[core]


def test_block_builtins_are_visible_to_the_race_detector():
    """memcpy/memset/strcpy bypass interp.store, so they must shadow
    their ranges through record_range — a concurrent unsynchronized
    memcpy is a finding, not a blind spot."""
    racy = """
    int shared_buf[32];
    int source[32];
    void *writer(void *arg) {
        memcpy(shared_buf, source, 128);
        return 0;
    }
    int main(void) {
        pthread_t a;
        pthread_t b;
        pthread_create(&a, 0, writer, 0);
        pthread_create(&b, 0, writer, 0);
        pthread_join(a, 0);
        pthread_join(b, 0);
        return 0;
    }
    """
    chip = SCCChip(scaled_config())
    result = run_pthread_single_core(racy, chip.config, chip,
                                     race=True)
    assert result.race.has_findings
    assert any(f.variable == "shared_buf"
               for f in result.race.findings)


# -- heatmap tables (gated on opt-in recording) -------------------------------


def test_chip_report_heatmaps_appear_only_when_recorded():
    from repro.scc.report import chip_report, render_report
    plain_chip = SCCChip(scaled_config())
    run_rcce(benchmark_unit("dot", "size"), NUM_UES,
             plain_chip.config, plain_chip, max_steps=100_000_000)
    plain = chip_report(plain_chip)
    assert plain["mesh_segments"] == {}
    assert plain["mpb_owners"] == {}
    assert "mesh link traffic" not in render_report(plain)

    hot_chip = SCCChip(scaled_config())
    hot_chip.mesh.enable_traffic_recording()
    hot_chip.mpb.enable_owner_tracking()
    run_rcce(benchmark_unit("dot", "size"), NUM_UES,
             hot_chip.config, hot_chip, max_steps=100_000_000)
    hot = chip_report(hot_chip)
    assert hot["mesh_segments"]
    rendered = render_report(hot)
    assert "mesh link traffic by segment" in rendered


def test_mpb_owner_heatmap_counts_message_traffic():
    from repro.scc.report import chip_report, render_report
    chip = SCCChip(scaled_config())
    chip.mpb.enable_owner_tracking()
    run_rcce(CAMPAIGN_KERNEL, 2, chip.config, chip)
    report = chip_report(chip)
    assert report["mpb_owners"]
    assert any(stats["bytes"] > 0
               for stats in report["mpb_owners"].values())
    assert "mpb traffic by owning core" in render_report(report)


# -- surfacing ----------------------------------------------------------------


def test_framework_result_attribution_property():
    framework = TranslationFramework(
        on_chip_capacity=SCALED_ON_CHIP_CAPACITY)
    result = framework.translate(
        benchmark_source("dot", NUM_UES, **SIZES["dot"]))
    assert result.attribution is None
    sentinel = object()
    result.context.facts["attribution"] = sentinel
    assert result.attribution is sentinel


def test_cli_analyze_bottlenecks(tmp_path):
    from repro.cli import main
    source = tmp_path / "dot.c"
    source.write_text(
        benchmark_source("dot", NUM_UES, **SIZES["dot"]))
    json_path = tmp_path / "attr.json"
    trace_path = tmp_path / "trace.json"
    out, err = io.StringIO(), io.StringIO()
    code = main(["analyze", str(source), "--bottlenecks",
                 "--ues", str(NUM_UES),
                 "--json", str(json_path), "--trace", str(trace_path)],
                out, err)
    assert code == 0
    text = out.getvalue()
    assert "cycle attribution:" in text
    assert "critical path:" in text
    assert "mesh link traffic by segment" in text
    payload = json.loads(json_path.read_text())
    assert payload["critical_path"]["makespan"] == payload["makespan"]
    trace = json.loads(trace_path.read_text())
    events = trace["traceEvents"] if isinstance(trace, dict) else trace
    assert any(event.get("name") == "critical_path"
               for event in events)
