"""The paper's central soundness claim, checked empirically:

    Stage 1-3 identifies "a conservative superset of all the shared
    data" — everything threads actually share at runtime must be in
    the static set.

A dynamic detector (the related-work approach) observes real sharing
under the interpreter; the static set must cover it on every benchmark
and on targeted corner cases.
"""

import pytest

from repro.bench.programs import BENCHMARKS, EXAMPLE_4_1, \
    benchmark_source
from repro.core.dynamic import compare_static_dynamic

TINY = {
    "pi": {"steps": 64},
    "sum35": {"limit": 64},
    "primes": {"limit": 48},
    "stream": {"n": 32},
    "dot": {"n": 32},
    "lu": {"batch": 4, "dim": 4},
}


class TestConservativeSuperset:
    @pytest.mark.parametrize("name", sorted(BENCHMARKS))
    def test_benchmarks(self, name):
        source = benchmark_source(name, nthreads=4, **TINY[name])
        comparison = compare_static_dynamic(source)
        assert comparison.is_conservative_superset, \
            "missed: %r" % comparison.missed
        assert comparison.dynamic_shared  # the workers do share data

    def test_running_example(self):
        comparison = compare_static_dynamic(EXAMPLE_4_1)
        assert comparison.is_conservative_superset
        # sum is written by threads and read by main: observably shared
        assert (None, "sum") in comparison.dynamic_shared
        # tmp is reached by threads only through *ptr: the dynamic
        # detector sees it, Stage 3 covered it
        assert ("main", "tmp") in comparison.dynamic_shared
        assert ("main", "tmp") in comparison.static_shared

    def test_pointer_laundered_sharing_detected_both_ways(self):
        source = """
        #include <pthread.h>
        int *p;
        void *tf(void *t) { *p = (int)t; return 0; }
        int main(void) {
            int hidden = 0;
            p = &hidden;
            pthread_t a;
            pthread_create(&a, 0, tf, (void *)7);
            pthread_join(a, 0);
            return hidden;
        }
        """
        comparison = compare_static_dynamic(source)
        assert ("main", "hidden") in comparison.dynamic_shared
        assert comparison.is_conservative_superset

    def test_overapproximation_is_the_expected_direction(self):
        """A global only main touches: statically shared (conservative),
        dynamically private — static may overapproximate, never miss."""
        source = """
        #include <pthread.h>
        int main_only;
        int worked[2];
        void *tf(void *t) { worked[(int)t] = 1; return 0; }
        int main(void) {
            pthread_t a, b;
            main_only = 5;
            pthread_create(&a, 0, tf, (void *)0);
            pthread_create(&b, 0, tf, (void *)1);
            pthread_join(a, 0);
            pthread_join(b, 0);
            return main_only;
        }
        """
        comparison = compare_static_dynamic(source)
        assert comparison.is_conservative_superset
        assert (None, "main_only") in comparison.overapproximation

    def test_tightness_bounded(self):
        source = benchmark_source("dot", nthreads=4, n=32)
        comparison = compare_static_dynamic(source)
        assert 0.0 <= comparison.tightness <= 1.0


class TestDynamicDetector:
    def test_private_locals_not_flagged(self):
        source = benchmark_source("pi", nthreads=4, steps=64)
        comparison = compare_static_dynamic(source)
        worker_locals = {key for key in comparison.dynamic_shared
                         if key[0] == "pi_worker"}
        assert worker_locals == set()

    def test_thread_ids_count_as_distinct_accessors(self):
        source = """
        #include <pthread.h>
        int touched;
        void *tf(void *t) { touched = touched + 1; return 0; }
        int main(void) {
            pthread_t a, b;
            pthread_create(&a, 0, tf, 0);
            pthread_create(&b, 0, tf, 0);
            pthread_join(a, 0);
            pthread_join(b, 0);
            return 0;
        }
        """
        comparison = compare_static_dynamic(source)
        assert (None, "touched") in comparison.dynamic_shared

    def test_single_thread_global_not_dynamically_shared(self):
        source = """
        #include <pthread.h>
        int only_one;
        void *tf(void *t) { only_one = 1; return 0; }
        int main(void) {
            pthread_t a;
            pthread_create(&a, 0, tf, 0);
            pthread_join(a, 0);
            return 0;
        }
        """
        comparison = compare_static_dynamic(source)
        assert (None, "only_one") not in comparison.dynamic_shared
        # ...but the static analysis keeps it shared: conservative
        assert (None, "only_one") in comparison.static_shared
