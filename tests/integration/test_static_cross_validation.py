"""Static vs dynamic race detection, cross-validated.

The static lockset audit is a may-analysis: anything the dynamic
detector ever observes racing must already be in the static candidate
set (the converse — static candidates the dynamic runs never trip,
e.g. index-disjoint arrays — is the documented precision gap).  Every
golden benchmark is also required to carry **zero** static
run-time-error findings: the interval engine must prove the paper's
programs free of out-of-bounds, overflow, division-by-zero, and
uninitialized reads at the sizes the suite simulates."""

import pytest

from repro.bench.harness import SCALED_ON_CHIP_CAPACITY
from repro.bench.programs import EXAMPLE_4_1, benchmark_source
from repro.bench.workloads import scaled_config
from repro.core.framework import TranslationFramework
from repro.scc.chip import SCCChip
from repro.sim.runner import run_pthread_single_core, run_rcce
from repro.static import analyze_source

NUM_UES = 4

SIZES = {
    "pi": {"steps": 512},
    "sum35": {"limit": 512},
    "primes": {"limit": 256},
    "stream": {"n": 128},
    "dot": {"n": 192},
    "lu": {"batch": 4, "dim": 8},
}

RACY_COUNTER = """
#include <pthread.h>
#include <stdio.h>
int counter;
void *inc(void *a) {
    int i;
    for (i = 0; i < 50; i++) { counter = counter + 1; }
    return 0;
}
int main() {
    pthread_t th[2];
    int i;
    for (i = 0; i < 2; i++)
        pthread_create(&th[i], 0, inc, (void *)i);
    for (i = 0; i < 2; i++)
        pthread_join(th[i], 0);
    printf("%d", counter);
    return 0;
}
"""


def _base_name(variable):
    # the dynamic detector resolves addresses to names like "sum[1]"
    return variable.split("[")[0]


def dynamic_rcce_variables(source):
    framework = TranslationFramework(
        on_chip_capacity=SCALED_ON_CHIP_CAPACITY)
    unit = framework.translate(source).unit
    chip = SCCChip(scaled_config())
    result = run_rcce(unit, NUM_UES, chip.config, chip,
                      max_steps=100_000_000, race=True)
    return {_base_name(f.variable) for f in result.race.findings
            if f.variable}


def dynamic_pthread_variables(source):
    chip = SCCChip(scaled_config())
    result = run_pthread_single_core(source, chip.config, chip,
                                     max_steps=50_000_000, race=True)
    return {_base_name(f.variable) for f in result.race.findings
            if f.variable}


@pytest.mark.parametrize("name", sorted(SIZES))
def test_golden_superset_and_zero_rte(name):
    source = benchmark_source(name, NUM_UES, **SIZES[name])
    report = analyze_source(source)
    assert report.rte_findings() == [], report.render()
    assert dynamic_rcce_variables(source) \
        <= report.candidate_variables()
    assert 0.0 <= report.as_dict()["suppression_ratio"] <= 1.0


def test_example_4_1_superset_and_zero_rte():
    report = analyze_source(EXAMPLE_4_1)
    assert report.rte_findings() == [], report.render()
    assert dynamic_rcce_variables(EXAMPLE_4_1) \
        <= report.candidate_variables()


def test_racy_counter_caught_by_both():
    """Non-trivial containment: the dynamic detector flags the
    unprotected counter on the pthread original, and the static set
    covers it."""
    dynamic = dynamic_pthread_variables(RACY_COUNTER)
    assert "counter" in dynamic
    static = analyze_source(RACY_COUNTER)
    assert dynamic <= static.candidate_variables()


def test_locked_counter_suppressed_and_clean_dynamically():
    locked = RACY_COUNTER.replace(
        "int counter;", "int counter;\npthread_mutex_t m;").replace(
        "{ counter = counter + 1; }",
        "{ pthread_mutex_lock(&m); counter = counter + 1; "
        "pthread_mutex_unlock(&m); }")
    assert dynamic_pthread_variables(locked) == set()
    report = analyze_source(locked)
    assert report.candidate_variables() == set()
    assert report.lockset_suppressed >= 1
