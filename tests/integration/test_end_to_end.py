"""End-to-end integration: parse -> analyze -> partition -> translate
-> simulate, for the whole corpus and for tricky program shapes."""

import pytest

from repro.bench.programs import BENCHMARKS, benchmark_source
from repro.core.framework import TranslationFramework
from repro.sim.interpreter import InterpreterError
from repro.sim.runner import run_pthread_single_core, run_rcce

TINY = {
    "pi": {"steps": 128},
    "sum35": {"limit": 128},
    "primes": {"limit": 96},
    "stream": {"n": 64},
    "dot": {"n": 64},
    "lu": {"batch": 4, "dim": 5},
}


class TestFullMatrix:
    @pytest.mark.parametrize("name", sorted(BENCHMARKS))
    @pytest.mark.parametrize("policy", ["off-chip-only", "size"])
    def test_benchmark_correct_under_both_policies(self, name, policy):
        source = benchmark_source(name, nthreads=8, **TINY[name])
        baseline = run_pthread_single_core(source)
        translated = TranslationFramework(
            partition_policy=policy).translate(source)
        result = run_rcce(translated.unit, 8)
        lines = result.stdout().strip().splitlines()
        assert len(lines) == 8
        assert all(line + "\n" == baseline.stdout() for line in lines)

    @pytest.mark.parametrize("name", sorted(BENCHMARKS))
    def test_deterministic_cycles(self, name):
        source = benchmark_source(name, nthreads=4, **TINY[name])
        translated = TranslationFramework().translate(source)
        first = run_rcce(translated.unit, 4)
        second = run_rcce(translated.unit, 4)
        assert first.cycles == second.cycles
        assert first.per_core_cycles == second.per_core_cycles


class TestTrickyShapes:
    def test_create_loop_inside_if(self):
        source = """
        #include <stdio.h>
        #include <pthread.h>
        int out[4];
        void *tf(void *t) { out[(int)t] = (int)t + 1; return 0; }
        int main(void) {
            pthread_t th[4];
            int enable = 1;
            if (enable) {
                for (int i = 0; i < 4; i++)
                    pthread_create(&th[i], 0, tf, (void *)i);
            }
            for (int i = 0; i < 4; i++)
                pthread_join(th[i], 0);
            int s = 0;
            for (int i = 0; i < 4; i++) s += out[i];
            printf("%d\\n", s);
            return 0;
        }
        """
        baseline = run_pthread_single_core(source)
        translated = TranslationFramework().translate(source)
        result = run_rcce(translated.unit, 4)
        assert all(line + "\n" == baseline.stdout()
                   for line in result.stdout().strip().splitlines())

    def test_thread_function_calls_helper_on_shared_data(self):
        source = """
        #include <stdio.h>
        #include <pthread.h>
        int acc[4];
        void bump(int slot, int amount) { acc[slot] += amount; }
        void *tf(void *t) {
            int id = (int)t;
            for (int i = 0; i < 5; i++) bump(id, i);
            return 0;
        }
        int main(void) {
            pthread_t th[4];
            for (int i = 0; i < 4; i++)
                pthread_create(&th[i], 0, tf, (void *)i);
            for (int i = 0; i < 4; i++)
                pthread_join(th[i], 0);
            int s = 0;
            for (int i = 0; i < 4; i++) s += acc[i];
            printf("%d\\n", s);
            return 0;
        }
        """
        baseline = run_pthread_single_core(source)
        assert baseline.stdout() == "40\n"
        translated = TranslationFramework().translate(source)
        result = run_rcce(translated.unit, 4)
        assert all(line == "40" for line
                   in result.stdout().strip().splitlines())

    def test_two_distinct_task_threads(self):
        """The paper's first parallelism scenario: standalone tasks."""
        source = """
        #include <stdio.h>
        #include <pthread.h>
        int a;
        int b;
        void *taskA(void *x) { a = 11; return 0; }
        void *taskB(void *x) { b = 22; return 0; }
        int main(void) {
            pthread_t t1, t2;
            pthread_create(&t1, 0, taskA, 0);
            pthread_create(&t2, 0, taskB, 0);
            pthread_join(t1, 0);
            pthread_join(t2, 0);
            printf("%d\\n", a + b);
            return 0;
        }
        """
        baseline = run_pthread_single_core(source)
        assert baseline.stdout() == "33\n"
        translated = TranslationFramework(
            partition_policy="off-chip-only").translate(source)
        result = run_rcce(translated.unit, 2)
        assert all(line == "33" for line
                   in result.stdout().strip().splitlines())

    def test_mutex_protected_shared_counter_parallel(self):
        source = """
        #include <stdio.h>
        #include <pthread.h>
        int counter;
        pthread_mutex_t m;
        void *inc(void *t) {
            for (int i = 0; i < 25; i++) {
                pthread_mutex_lock(&m);
                counter = counter + 1;
                pthread_mutex_unlock(&m);
            }
            return 0;
        }
        int main(void) {
            pthread_t th[4];
            pthread_mutex_init(&m, 0);
            for (int i = 0; i < 4; i++)
                pthread_create(&th[i], 0, inc, (void *)i);
            for (int i = 0; i < 4; i++)
                pthread_join(th[i], 0);
            printf("%d\\n", counter);
            return 0;
        }
        """
        baseline = run_pthread_single_core(source)
        assert baseline.stdout() == "100\n"
        translated = TranslationFramework(
            partition_policy="off-chip-only").translate(source)
        result = run_rcce(translated.unit, 4)
        assert all(line == "100" for line
                   in result.stdout().strip().splitlines())

    def test_program_without_threads_runs_everywhere(self):
        source = """
        #include <stdio.h>
        int main(void) { printf("solo\\n"); return 0; }
        """
        translated = TranslationFramework().translate(source)
        result = run_rcce(translated.unit, 3)
        assert result.stdout() == "solo\n" * 3


class TestFailureInjection:
    def test_runtime_error_in_worker_propagates(self):
        source = """
        #include <RCCE.h>
        int RCCE_APP(int argc, char **argv) {
            RCCE_init(&argc, &argv);
            int *p = 0;
            return *p;
        }
        """
        with pytest.raises(InterpreterError):
            run_rcce(source, 2)

    def test_error_does_not_deadlock_other_cores(self):
        """One core crashing before the barrier must abort the run,
        not hang the cores already waiting."""
        source = """
        #include <RCCE.h>
        int RCCE_APP(int argc, char **argv) {
            RCCE_init(&argc, &argv);
            if (RCCE_ue() == 0) {
                int z = 0;
                int bad = 1 / z;
            }
            RCCE_barrier(&RCCE_COMM_WORLD);
            return 0;
        }
        """
        with pytest.raises(InterpreterError):
            run_rcce(source, 4)

    def test_step_limit_enforced_per_core(self):
        source = """
        #include <RCCE.h>
        int RCCE_APP(int argc, char **argv) {
            RCCE_init(&argc, &argv);
            while (1) { }
            return 0;
        }
        """
        with pytest.raises(InterpreterError):
            run_rcce(source, 2, max_steps=5000)
