#include <stdio.h>
#include <RCCE.h>

double *a;
double *b;
double *c;
double *checksum;
void *stream_worker(void *tid)
{
    int id = (int)tid;
    int chunk = 64 / 8;
    int lo = id * chunk;
    int hi = lo + chunk;
    int j;
    double local = 0.0;
    if (id == 8 - 1)
    {
        hi = 64;
    }
    for (j = lo; j < hi; j++)
    {
        a[j] = 1.0 + j;
        b[j] = 2.0;
    }
    for (j = lo; j < hi; j++)
    {
        c[j] = a[j];
    }
    for (j = lo; j < hi; j++)
    {
        b[j] = 3.0 * c[j];
    }
    for (j = lo; j < hi; j++)
    {
        c[j] = a[j] + b[j];
    }
    for (j = lo; j < hi; j++)
    {
        a[j] = b[j] + 3.0 * c[j];
    }
    for (j = lo; j < hi; j++)
    {
        local += a[j];
    }
    checksum[id] = local;
}

int RCCE_APP(int argc, char **argv)
{
    RCCE_init(&argc, &argv);
    a = (double *)RCCE_shmalloc(sizeof(double) * 64);
    b = (double *)RCCE_shmalloc(sizeof(double) * 64);
    c = (double *)RCCE_shmalloc(sizeof(double) * 64);
    checksum = (double *)RCCE_shmalloc(sizeof(double) * 8);
    int myID;
    myID = RCCE_ue();
    int t;
    double total = 0.0;
    stream_worker((void *)myID);
    RCCE_barrier(&RCCE_COMM_WORLD);
    for (t = 0; t < 8; t++)
    {
        total += checksum[t];
    }
    printf("stream checksum = %.1f\n", total);
    RCCE_finalize();
    return (0);
}
