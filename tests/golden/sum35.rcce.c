#include <stdio.h>
#include <RCCE.h>

long *partial;
void *sum_worker(void *tid)
{
    int id = (int)tid;
    long i;
    long local_sum = 0;
    for (i = id; i < 256; i += 8)
    {
        if (i % 3 == 0 || i % 5 == 0)
        {
            local_sum += i;
        }
    }
    partial[id] = local_sum;
}

int RCCE_APP(int argc, char **argv)
{
    RCCE_init(&argc, &argv);
    partial = (long *)RCCE_shmalloc(sizeof(long) * 8);
    int myID;
    myID = RCCE_ue();
    int t;
    long total = 0;
    sum_worker((void *)myID);
    RCCE_barrier(&RCCE_COMM_WORLD);
    for (t = 0; t < 8; t++)
    {
        total += partial[t];
    }
    printf("sum35 = %ld\n", total);
    RCCE_finalize();
    return (0);
}
