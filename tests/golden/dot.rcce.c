#include <stdio.h>
#include <RCCE.h>

double *x;
double *y;
double *partial;
void *dot_worker(void *tid)
{
    int id = (int)tid;
    int chunk = 64 / 8;
    int lo = id * chunk;
    int hi = lo + chunk;
    int j;
    double local = 0.0;
    if (id == 8 - 1)
    {
        hi = 64;
    }
    for (j = lo; j < hi; j++)
    {
        x[j] = 0.5 + j;
        y[j] = 2.0;
    }
    for (j = lo; j < hi; j++)
    {
        local += x[j] * y[j];
    }
    partial[id] = local;
}

int RCCE_APP(int argc, char **argv)
{
    RCCE_init(&argc, &argv);
    x = (double *)RCCE_shmalloc(sizeof(double) * 64);
    y = (double *)RCCE_shmalloc(sizeof(double) * 64);
    partial = (double *)RCCE_shmalloc(sizeof(double) * 8);
    int myID;
    myID = RCCE_ue();
    int t;
    double result = 0.0;
    dot_worker((void *)myID);
    RCCE_barrier(&RCCE_COMM_WORLD);
    for (t = 0; t < 8; t++)
    {
        result += partial[t];
    }
    printf("dot = %.1f\n", result);
    RCCE_finalize();
    return (0);
}
