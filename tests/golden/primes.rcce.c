#include <stdio.h>
#include <RCCE.h>

int *partial;
void *prime_worker(void *tid)
{
    int id = (int)tid;
    int chunk = 128 / 8;
    int lo = id * chunk;
    int hi = lo + chunk;
    int i;
    int j;
    int prime;
    int count = 0;
    if (id == 8 - 1)
    {
        hi = 128;
    }
    if (lo < 2)
    {
        lo = 2;
    }
    for (i = lo; i < hi; i++)
    {
        prime = 1;
        for (j = 2; j < i; j++)
        {
            if (i % j == 0)
            {
                prime = 0;
                break;
            }
        }
        count += prime;
    }
    partial[id] = count;
}

int RCCE_APP(int argc, char **argv)
{
    RCCE_init(&argc, &argv);
    partial = (int *)RCCE_shmalloc(sizeof(int) * 8);
    int myID;
    myID = RCCE_ue();
    int t;
    int total = 0;
    prime_worker((void *)myID);
    RCCE_barrier(&RCCE_COMM_WORLD);
    for (t = 0; t < 8; t++)
    {
        total += partial[t];
    }
    printf("primes = %d\n", total);
    RCCE_finalize();
    return (0);
}
