#include <stdio.h>
#include <RCCE.h>

double *mats;
double *checksum;
void *lu_worker(void *tid)
{
    int id = (int)tid;
    int m;
    int i;
    int j;
    int k;
    double factor;
    double local = 0.0;
    for (m = id; m < 4; m += 8)
    {
        double *mat = &mats[m * 6 * 6];
        for (i = 0; i < 6; i++)
        {
            for (j = 0; j < 6; j++)
            {
                if (i == j)
                {
                    mat[i * 6 + j] = 6 + 1.0;
                }
                else
                {
                    mat[i * 6 + j] = 1.0;
                }
            }
        }
        for (k = 0; k < 6 - 1; k++)
        {
            for (i = k + 1; i < 6; i++)
            {
                factor = mat[i * 6 + k] / mat[k * 6 + k];
                mat[i * 6 + k] = factor;
                for (j = k + 1; j < 6; j++)
                {
                    mat[i * 6 + j] = mat[i * 6 + j] - factor * mat[k * 6 + j];
                }
            }
        }
        for (i = 0; i < 6; i++)
        {
            local += mat[i * 6 + i];
        }
    }
    checksum[id] = local;
}

int RCCE_APP(int argc, char **argv)
{
    RCCE_init(&argc, &argv);
    mats = (double *)RCCE_shmalloc(sizeof(double) * 144);
    checksum = (double *)RCCE_shmalloc(sizeof(double) * 8);
    int myID;
    myID = RCCE_ue();
    int t;
    double total = 0.0;
    lu_worker((void *)myID);
    RCCE_barrier(&RCCE_COMM_WORLD);
    for (t = 0; t < 8; t++)
    {
        total += checksum[t];
    }
    printf("lu checksum = %.4f\n", total);
    RCCE_finalize();
    return (0);
}
