#include <stdio.h>
#include <RCCE.h>

double *partial;
void *pi_worker(void *tid)
{
    int id = (int)tid;
    int i;
    double x;
    double sum = 0.0;
    double step = 1.0 / 256;
    for (i = id; i < 256; i += 8)
    {
        x = (i + 0.5) * step;
        sum = sum + 4.0 / (1.0 + x * x);
    }
    partial[id] = sum;
}

int RCCE_APP(int argc, char **argv)
{
    RCCE_init(&argc, &argv);
    partial = (double *)RCCE_shmalloc(sizeof(double) * 8);
    int myID;
    myID = RCCE_ue();
    int t;
    double pi = 0.0;
    pi_worker((void *)myID);
    RCCE_barrier(&RCCE_COMM_WORLD);
    for (t = 0; t < 8; t++)
    {
        pi += partial[t];
    }
    pi = pi / 256;
    printf("pi = %.6f\n", pi);
    RCCE_finalize();
    return (0);
}
