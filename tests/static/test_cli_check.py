"""CLI contract: ``repro check`` and ``repro run --static-check``.

Every negative fixture must be detected with file/line/variable
provenance and exit 70 under --strict; the correctly locked twin must
exit 0; and without --static-check the run pipeline's output must not
change at all."""

import io
import json
import os

import pytest

from repro.cli import EXIT_OK, EXIT_SIM, main
from repro.core.framework import TranslationFramework

FIXTURES = os.path.join(os.path.dirname(__file__), "..", "fixtures",
                        "static")


def fixture(name):
    return os.path.join(FIXTURES, name)


def run_cli(argv):
    out, err = io.StringIO(), io.StringIO()
    code = main(argv, out, err)
    return code, out.getvalue(), err.getvalue()


class TestCheckExitCodes:
    @pytest.mark.parametrize("name,needle", [
        ("race_counter.c", "hits"),
        ("oob_write.c", "out-of-bounds"),
        ("uninit_read.c", "'x' is read before it is initialized"),
        ("overflow_loop.c", "overflow"),
    ])
    def test_negative_fixtures_fail_strict(self, name, needle):
        code, out, _ = run_cli(["check", fixture(name), "--strict"])
        assert code == EXIT_SIM
        assert needle in out
        # file and line provenance on every finding line
        assert "%s:" % name in out

    def test_negative_fixture_exits_zero_without_strict(self):
        code, out, _ = run_cli(["check", fixture("race_counter.c")])
        assert code == EXIT_OK
        assert "race candidate" in out

    def test_clean_twin_exits_zero_under_strict(self):
        code, out, _ = run_cli(["check", fixture("locked_clean.c"),
                                "--strict"])
        assert code == EXIT_OK
        assert "static audit: clean" in out
        assert "lockset-suppressed" in out

    def test_race_counter_reports_both_counters_with_sites(self):
        _, out, _ = run_cli(["check", fixture("race_counter.c")])
        assert "'hits'" in out and "'misses'" in out
        assert "write in worker at line" in out


class TestCheckOutputs:
    def test_json_on_stdout(self):
        code, out, _ = run_cli(["check", fixture("oob_write.c"),
                                "--json"])
        assert code == EXIT_OK
        payload = json.loads(out)
        assert payload["counts"] == {"out-of-bounds": 1}
        finding = payload["findings"][0]
        assert finding["file"].endswith("oob_write.c")
        assert finding["line"] is not None

    def test_report_file(self, tmp_path):
        path = str(tmp_path / "static.json")
        code, out, _ = run_cli(["check", fixture("race_counter.c"),
                                "--report", path])
        assert code == EXIT_OK
        assert "static report written to" in out
        with open(path) as handle:
            payload = json.load(handle)
        assert {f["variable"] for f in payload["findings"]} \
            == {"hits", "misses"}

    def test_metrics_file(self, tmp_path):
        path = str(tmp_path / "metrics.json")
        code, out, _ = run_cli(["check", fixture("uninit_read.c"),
                                "--metrics", path])
        assert code == EXIT_OK
        with open(path) as handle:
            counters = json.load(handle)["static"]["counters"]
        assert "static_checks_total" in counters
        assert "static_findings_total" in counters

    def test_parse_error_exits_65(self, tmp_path):
        bad = tmp_path / "bad.c"
        bad.write_text("int main( {")
        code, _, err = run_cli(["check", str(bad)])
        assert code == 65
        assert err


class TestRunIntegration:
    def test_static_check_gates_strict_exit(self):
        code, out, _ = run_cli(["run", fixture("race_counter.c"),
                                "--ues", "2", "--mode", "rcce",
                                "--static-check", "--strict"])
        assert code == EXIT_SIM
        assert "static audit: 2 race candidate(s)" in out

    def test_static_report_flag_writes_json(self, tmp_path):
        path = str(tmp_path / "static.json")
        code, out, _ = run_cli(["run", fixture("locked_clean.c"),
                                "--ues", "2", "--mode", "rcce",
                                "--static-report", path])
        assert code == EXIT_OK
        assert "static audit: clean" in out
        with open(path) as handle:
            assert json.load(handle)["lockset_suppressed"] == 2

    def test_off_by_default_output_is_unchanged(self):
        code, out, err = run_cli(["run", fixture("locked_clean.c"),
                                  "--ues", "2", "--mode", "rcce"])
        assert code == EXIT_OK
        assert "static" not in out and "static" not in err

    def test_pipeline_result_identical_when_disabled(self):
        with open(fixture("locked_clean.c")) as handle:
            source = handle.read()
        plain = TranslationFramework().translate(source)
        gated = TranslationFramework(static_check=False) \
            .translate(source)
        assert plain.static_report is None
        assert gated.static_report is None
        assert plain.rcce_source == gated.rcce_source
        checked = TranslationFramework(static_check=True) \
            .translate(source)
        # the stage adds facts and (here, none) diagnostics but must
        # never change the translated program itself
        assert checked.static_report is not None
        assert checked.rcce_source == plain.rcce_source
