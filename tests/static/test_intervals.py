"""The interval abstract interpreter's checks, one behaviour each."""

from repro.static import analyze_source
from repro.static.domain import Interval
from repro.static.report import (
    DEFINITE,
    DIV_BY_ZERO,
    OUT_OF_BOUNDS,
    OVERFLOW,
    POSSIBLE,
    UNINIT_READ,
)


def rte(source):
    """Analyze and return the run-time-error findings only."""
    return analyze_source(source).rte_findings()


def exit_intervals(source, function="main"):
    report = analyze_source(source)
    return report.interval_engine.exit_intervals(function)


class TestOutOfBounds:
    def test_definite_constant_index(self):
        findings = rte("""
        int main() {
            int a[4];
            a[7] = 1;
            return 0;
        }
        """)
        assert [f.check for f in findings] == [OUT_OF_BOUNDS]
        assert findings[0].severity == DEFINITE
        assert findings[0].line == 4

    def test_off_by_one_loop(self):
        findings = rte("""
        int main() {
            int a[4];
            int i;
            for (i = 0; i <= 4; i++) { a[i] = i; }
            return 0;
        }
        """)
        assert [f.check for f in findings] == [OUT_OF_BOUNDS]
        assert findings[0].severity == POSSIBLE

    def test_exact_loop_is_clean(self):
        assert rte("""
        int main() {
            int a[4];
            int i;
            for (i = 0; i < 4; i++) { a[i] = i; }
            return 0;
        }
        """) == []

    def test_pointer_into_array_slice(self):
        # the lu benchmark's idiom: a pointer offset into a big array
        assert rte("""
        int mats[24];
        int main() {
            int *mat = &mats[12];
            int i;
            for (i = 0; i < 12; i++) { mat[i] = i; }
            return 0;
        }
        """) == []


class TestDivByZero:
    def test_definite(self):
        findings = rte("""
        int main() {
            int d = 0;
            int x = 5 / d;
            return x;
        }
        """)
        assert [f.check for f in findings] == [DIV_BY_ZERO]
        assert findings[0].severity == DEFINITE

    def test_possible_range_straddles_zero(self):
        findings = rte("""
        int main() {
            int x = 0;
            int d;
            for (d = -1; d <= 1; d++) { x = 10 / d; }
            return x;
        }
        """)
        assert [f.check for f in findings] == [DIV_BY_ZERO]
        assert findings[0].severity == POSSIBLE

    def test_refined_divisor_is_clean(self):
        # primes' trial division: j starts at 2, so i % j is safe
        assert rte("""
        int main() {
            int hits = 0;
            int i;
            int j;
            for (i = 2; i < 50; i++) {
                for (j = 2; j < i; j++) {
                    if (i % j == 0) { hits = hits + 1; }
                }
            }
            return hits;
        }
        """) == []

    def test_float_division_not_flagged(self):
        # IEEE division by zero is defined (inf/nan), not an RTE
        assert rte("""
        int main() {
            double w = 0.0;
            double y = 1.0 / w;
            return 0;
        }
        """) == []


class TestOverflow:
    def test_definite_in_loop(self):
        findings = rte("""
        int main() {
            int i;
            int acc = 0;
            for (i = 100000; i < 100100; i++) { acc = i * i; }
            return 0;
        }
        """)
        assert all(f.check == OVERFLOW for f in findings)
        assert any(f.severity == DEFINITE for f in findings)

    def test_widened_accumulator_not_flagged(self):
        # the accumulator widens to +inf; an infinite bound is the
        # abstraction talking, not the program, so no finding
        assert rte("""
        int main() {
            int acc = 0;
            int i;
            for (i = 0; i < 100000; i++) { acc = acc + 1000; }
            return acc;
        }
        """) == []

    def test_unsigned_wrap_is_defined(self):
        assert rte("""
        int main() {
            unsigned int x = 3000000000;
            x = x * 2;
            return 0;
        }
        """) == []


class TestUninitRead:
    def test_read_before_any_store(self):
        findings = rte("""
        int main() {
            int x;
            int y;
            y = x + 1;
            return y;
        }
        """)
        assert [f.check for f in findings] == [UNINIT_READ]
        assert findings[0].variable == "x"

    def test_initialized_on_both_branches_clean(self):
        assert rte("""
        int main() {
            int flag = 1;
            int x;
            if (flag) { x = 1; } else { x = 2; }
            return x;
        }
        """) == []

    def test_address_taken_escapes(self):
        # &x hands the storage to somebody else; reads stop being
        # provably uninitialized
        assert rte("""
        void fill(int *slot) { *slot = 4; }
        int main() {
            int x;
            fill(&x);
            return x + 1;
        }
        """) == []


class TestPrecision:
    def test_constants_propagate(self):
        boxes = exit_intervals("""
        int main() {
            int a = 3;
            int b = a * 4 + 2;
            return b;
        }
        """)
        assert boxes["b"] == Interval.const(14)

    def test_branch_refinement(self):
        boxes = exit_intervals("""
        int main() {
            int n = 0;
            int i;
            for (i = 0; i < 10; i++) { n = i; }
            return n;
        }
        """)
        # the loop head widens; the exit edge's !(i < 10) refinement
        # recovers the lower bound (no narrowing pass, so hi stays inf
        # — the in-bounds array tests above pin the body-edge
        # refinement that matters for the checks)
        assert boxes["i"].lo == 10
        assert boxes["n"].lo == 0
        assert boxes["n"].contains(9)

    def test_interprocedural_return_summary(self):
        boxes = exit_intervals("""
        int half(int n) { return n / 2; }
        int main() {
            int r = half(10);
            return r;
        }
        """)
        assert boxes["r"] == Interval.const(5)

    def test_thread_argument_seeding(self):
        # pthread_create's arg seeds the thread function's parameter,
        # which is what keeps sum[tLocal] in bounds for EXAMPLE_4_1
        assert rte("""
        #include <pthread.h>
        int sum[3];
        void *tf(void *tid) {
            int tLocal = (int)tid;
            sum[tLocal] = tLocal;
            return 0;
        }
        int main() {
            pthread_t th[3];
            int i;
            for (i = 0; i < 3; i++)
                pthread_create(&th[i], 0, tf, (void *)i);
            for (i = 0; i < 3; i++)
                pthread_join(th[i], 0);
            return 0;
        }
        """) == []
