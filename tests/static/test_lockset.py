"""The static lockset race audit: candidate rule, suppression,
phases, and thread provenance."""

from repro.static import analyze_source

RACY_COUNTERS = """
#include <pthread.h>
int hits = 0;
int misses = 0;
void *worker(void *t) {
    int i;
    for (i = 0; i < 100; i++) {
        hits = hits + 1;
        misses = misses + 2;
    }
    return 0;
}
int main() {
    pthread_t th[2];
    int i;
    for (i = 0; i < 2; i++)
        pthread_create(&th[i], 0, worker, (void *)i);
    for (i = 0; i < 2; i++)
        pthread_join(th[i], 0);
    return hits + misses;
}
"""

LOCKED_COUNTERS = RACY_COUNTERS.replace(
    "#include <pthread.h>\nint hits",
    "#include <pthread.h>\npthread_mutex_t m;\nint hits").replace(
    "        hits = hits + 1;\n        misses = misses + 2;",
    "        pthread_mutex_lock(&m);\n"
    "        hits = hits + 1;\n        misses = misses + 2;\n"
    "        pthread_mutex_unlock(&m);")


class TestCandidateRule:
    def test_unprotected_counters_are_candidates(self):
        report = analyze_source(RACY_COUNTERS)
        assert report.candidate_variables() == {"hits", "misses"}
        for finding in report.race_candidates():
            assert any(s.kind == "write" for s in finding.sites)
            assert all(s.phase == "par" for s in finding.sites)
            assert finding.line is not None

    def test_common_lock_suppresses(self):
        report = analyze_source(LOCKED_COUNTERS)
        assert report.candidate_variables() == set()
        assert report.lockset_suppressed == 2
        assert report.suppression_ratio == 1.0
        assert report.ok

    def test_single_thread_is_not_a_race(self):
        source = RACY_COUNTERS.replace("th[2]", "th[1]") \
            .replace("i < 2", "i < 1")
        report = analyze_source(source)
        assert report.candidate_variables() == set()

    def test_different_locks_do_not_suppress(self):
        source = """
        #include <pthread.h>
        pthread_mutex_t m1;
        pthread_mutex_t m2;
        int shared_x = 0;
        void *w1(void *t) {
            pthread_mutex_lock(&m1);
            shared_x = shared_x + 1;
            pthread_mutex_unlock(&m1);
            return 0;
        }
        void *w2(void *t) {
            pthread_mutex_lock(&m2);
            shared_x = shared_x + 1;
            pthread_mutex_unlock(&m2);
            return 0;
        }
        int main() {
            pthread_t a;
            pthread_t b;
            pthread_create(&a, 0, w1, 0);
            pthread_create(&b, 0, w2, 0);
            pthread_join(a, 0);
            pthread_join(b, 0);
            return shared_x;
        }
        """
        report = analyze_source(source)
        assert report.candidate_variables() == {"shared_x"}
        threads = set()
        for site in report.race_candidates()[0].sites:
            threads |= set(site.threads)
        assert threads == {"w1", "w2"}


class TestPhases:
    def test_pre_phase_main_write_is_not_concurrent(self):
        # main configures the global before any thread exists; the
        # workers only read it — no concurrent write, no candidate
        source = """
        #include <pthread.h>
        int config = 0;
        int sink[2];
        void *worker(void *t) {
            sink[(int)t] = config;
            return 0;
        }
        int main() {
            pthread_t th[2];
            int i;
            config = 42;
            for (i = 0; i < 2; i++)
                pthread_create(&th[i], 0, worker, (void *)i);
            for (i = 0; i < 2; i++)
                pthread_join(th[i], 0);
            return sink[0];
        }
        """
        report = analyze_source(source)
        assert "config" not in report.candidate_variables()

    def test_post_phase_main_read_is_not_concurrent(self):
        # the final aggregation after the joins must not turn a
        # per-thread-disjoint array into extra main sites
        report = analyze_source(RACY_COUNTERS)
        for finding in report.race_candidates():
            assert all(s.function == "worker" for s in finding.sites)


class TestAccounting:
    def test_checks_and_shared_counters(self):
        report = analyze_source(RACY_COUNTERS)
        assert report.shared_variables >= 2
        assert report.total_checks() > 0
        assert report.dropped == 0

    def test_as_dict_carries_site_provenance(self):
        payload = analyze_source(RACY_COUNTERS).as_dict()
        sites = payload["findings"][0]["sites"]
        assert sites and sites[0]["phase"] == "par"
        assert sites[0]["locks"] == []
