"""StaticReport rendering, JSON export, and metrics publication."""

from repro.obs.metrics import MetricsRegistry, series_value, sum_series
from repro.static.report import (
    DEFINITE,
    DIV_BY_ZERO,
    OUT_OF_BOUNDS,
    POSSIBLE,
    RACE_CANDIDATE,
    StaticAccessSite,
    StaticFinding,
    StaticReport,
)


def _race_finding():
    site = StaticAccessSite("worker", "write", 12, 9, [], ["worker"],
                            "par")
    return StaticFinding(
        RACE_CANDIDATE, POSSIBLE, "hits", None,
        "shared variable 'hits' has no common lock",
        filename="prog.c", line=12, column=9, sites=[site])


def _oob_finding():
    return StaticFinding(
        OUT_OF_BOUNDS, DEFINITE, "a", "main",
        "write of 'a[[7, 7]]' exceeds bound 3",
        filename="prog.c", line=4, column=5)


class TestRender:
    def test_clean(self):
        report = StaticReport()
        report.count_check(OUT_OF_BOUNDS, 3)
        report.shared_variables = 2
        text = report.render()
        assert text.startswith("static audit: clean")
        assert "3 checks" in text
        assert report.ok and not report.has_findings

    def test_findings_with_provenance(self):
        report = StaticReport()
        report.add(_race_finding())
        report.add(_oob_finding())
        text = report.render()
        assert "1 race candidate(s), 1 run-time-error finding(s)" \
            in text
        assert "prog.c:12:9" in text
        assert "write in worker at line 12" in text
        assert not report.ok

    def test_suppression_ratio(self):
        report = StaticReport()
        assert report.suppression_ratio == 0.0
        report.add(_race_finding())
        report.lockset_suppressed = 3
        assert report.suppression_ratio == 0.75


class TestExport:
    def test_as_dict_mirrors_race_report_shape(self):
        report = StaticReport()
        report.count_check(RACE_CANDIDATE, 2)
        report.add(_race_finding())
        report.lockset_suppressed = 1
        payload = report.as_dict()
        # the dynamic race report's consumer contract
        for key in ("checks", "lockset_suppressed", "dropped",
                    "counts", "findings"):
            assert key in payload
        assert payload["counts"] == {RACE_CANDIDATE: 1}
        finding = payload["findings"][0]
        assert finding["file"] == "prog.c"
        assert finding["line"] == 12
        assert finding["variable"] == "hits"
        assert finding["sites"][0]["function"] == "worker"

    def test_diagnostics_are_warnings(self):
        report = StaticReport()
        report.add(_oob_finding())
        diagnostic = report.diagnostics()[0]
        assert diagnostic.severity == "warning"
        assert diagnostic.stage == "static"
        assert diagnostic.line == 4


class TestMetrics:
    def test_register_metrics(self):
        report = StaticReport()
        report.count_check(OUT_OF_BOUNDS, 5)
        report.count_check(DIV_BY_ZERO, 2)
        report.add(_oob_finding())
        report.add(_race_finding())
        report.lockset_suppressed = 4
        registry = MetricsRegistry()
        report.register_metrics(registry)
        counters = registry.snapshot()["counters"]
        assert series_value(counters, "static_checks_total",
                            check=OUT_OF_BOUNDS) == 5
        assert sum_series(counters, "static_checks_total") == 7
        assert series_value(counters, "static_findings_total",
                            check=OUT_OF_BOUNDS,
                            severity=DEFINITE) == 1
        assert sum_series(counters, "static_findings_total") == 2
        assert sum_series(counters,
                          "static_lockset_suppressed_total") == 4
        assert sum_series(counters, "missing_family",
                          default=-1) == -1
