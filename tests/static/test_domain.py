"""Unit tests for the interval abstract domain (repro.static.domain)."""

import pytest

from repro.cfront import ctypes
from repro.static.domain import (
    INF,
    INIT,
    MAYBE_UNINIT,
    UNINIT,
    AbstractEnv,
    Interval,
    PtrVal,
    VarState,
    int_type_range,
    join_init,
)


class TestInterval:
    def test_constructors(self):
        assert Interval.const(3) == Interval(3, 3)
        assert Interval.top().is_top
        assert Interval.const(3).is_const
        with pytest.raises(ValueError):
            Interval(2, 1)

    def test_contains(self):
        box = Interval(-2, 7)
        assert box.contains(0) and box.contains(-2) and box.contains(7)
        assert not box.contains(8)
        assert box.contains_zero()
        assert not Interval(1, 5).contains_zero()
        assert Interval(1, 5).within(0, 5)
        assert not Interval(1, 6).within(0, 5)

    def test_join_meet(self):
        assert Interval(0, 3).join(Interval(5, 9)) == Interval(0, 9)
        assert Interval(0, 5).meet(Interval(3, 9)) == Interval(3, 5)
        assert Interval(0, 2).meet(Interval(3, 9)) is None

    def test_widen(self):
        grown = Interval(0, 5).widen(Interval(0, 7))
        assert grown == Interval(0, INF)
        shrunk = Interval(0, 5).widen(Interval(1, 4))
        assert shrunk == Interval(0, 5)  # stable bounds stay finite
        assert Interval(0, 5).widen(Interval(-1, 5)).lo == -INF

    def test_arithmetic(self):
        assert Interval(1, 2).add(Interval(10, 20)) == Interval(11, 22)
        assert Interval(1, 2).sub(Interval(10, 20)) == Interval(-19, -8)
        assert Interval(-3, 2).neg() == Interval(-2, 3)
        assert Interval(-2, 3).mul(Interval(-1, 4)) == Interval(-8, 12)
        assert Interval(0, INF).add(Interval.const(1)) == Interval(1, INF)
        # 0 * inf must not poison the corners
        assert Interval(0, 0).mul(Interval.top()) == Interval(0, 0)

    def test_divide(self):
        assert Interval(4, 8).divide(Interval(2, 2)) == Interval(2, 4)
        # divisor straddling zero: top (the DbZ check fires separately)
        assert Interval(4, 8).divide(Interval(-1, 1)).is_top

    def test_mod(self):
        assert Interval(0, 100).mod(Interval(3, 3)) == Interval(0, 2)
        # C remainder keeps the dividend's sign
        assert Interval(-7, 7).mod(Interval(4, 4)) == Interval(-3, 3)
        assert Interval(0, 5).mod(Interval(0, 0)).is_top

    def test_clamps(self):
        box = Interval(0, 100)
        assert box.clamp_below(10, strict=True) == Interval(0, 9)
        assert box.clamp_below(10, strict=False) == Interval(0, 10)
        assert box.clamp_above(90, strict=True) == Interval(91, 100)
        # infeasible comparison: the edge is dead
        assert Interval(50, 60).clamp_below(10, strict=True) is None


class TestPtrVal:
    def test_shift_and_join(self):
        ptr = PtrVal((None, "a"), Interval.const(2))
        assert ptr.shifted(Interval.const(3)).offset == Interval.const(5)
        other = PtrVal((None, "a"), Interval.const(7))
        assert ptr.join(other).offset == Interval(2, 7)

    def test_mixed_bases_lose_tracking(self):
        ptr = PtrVal((None, "a"))
        assert ptr.join(PtrVal((None, "b"))) is None
        assert ptr.join(Interval.const(0)) is None


class TestVarState:
    def test_join_inits(self):
        assert join_init(INIT, INIT) == INIT
        assert join_init(INIT, UNINIT) == MAYBE_UNINIT
        assert join_init(UNINIT, UNINIT) == UNINIT
        merged = VarState(Interval.const(1), INIT).join(
            VarState(Interval.const(4), UNINIT))
        assert merged.value == Interval(1, 4)
        assert merged.init == MAYBE_UNINIT

    def test_join_widen(self):
        merged = VarState(Interval(0, 5)).join(
            VarState(Interval(0, 9)), widen=True)
        assert merged.value == Interval(0, INF)


class TestAbstractEnv:
    def test_one_sided_declaration(self):
        left = AbstractEnv({("f", "x"): VarState(Interval.const(1),
                                                 UNINIT)})
        merged = left.join(AbstractEnv())
        # declared on one path only: value forgotten, init survives
        assert merged.get(("f", "x")).value is None
        assert merged.get(("f", "x")).init == UNINIT

    def test_copy_is_deep_enough(self):
        env = AbstractEnv({("f", "x"): VarState(Interval.const(1))})
        env.copy().get(("f", "x")).init = UNINIT
        assert env.get(("f", "x")).init == INIT


class TestIntTypeRange:
    def test_signed_widths(self):
        lo, hi = int_type_range(ctypes.PrimitiveType("int"))
        assert (lo, hi) == (-(1 << 31), (1 << 31) - 1)
        lo, hi = int_type_range(ctypes.PrimitiveType("char"))
        assert (lo, hi) == (-128, 127)

    def test_unsigned_and_float_excluded(self):
        assert int_type_range(
            ctypes.PrimitiveType("unsigned int")) is None
        assert int_type_range(ctypes.PrimitiveType("double")) is None
        assert int_type_range(ctypes.PrimitiveType("void")) is None
