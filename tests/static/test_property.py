"""Soundness property: concrete execution lands inside the intervals.

The domain's contract (repro.static.domain) is that the concrete
result of any C expression lies inside the abstract interval.  These
tests generate small integer kernels — straight-line assignment
sequences and bounded accumulation loops — run them concretely in
Python (the engine models mathematical integers, so Python arithmetic
*is* the reference semantics), and require every final variable value
to be contained in the engine's exit interval."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.static import analyze_source

VARS = ("a", "b", "c")

const = st.integers(min_value=-50, max_value=50)
var = st.sampled_from(VARS)
op = st.sampled_from(("+", "-", "*"))

# x = y op (z | constant)
assignment = st.tuples(var, var, op,
                       st.one_of(var, const))


def build_straight_line(inits, statements):
    lines = ["int %s = %d;" % (name, value)
             for name, value in zip(VARS, inits)]
    for target, left, operator, right in statements:
        lines.append("%s = %s %s %s;" % (target, left, operator,
                                         right))
    return "int main() {\n    %s\n    return 0;\n}\n" \
        % "\n    ".join(lines)


def run_concrete(inits, statements):
    env = dict(zip(VARS, inits))
    for target, left, operator, right in statements:
        rhs = env[right] if isinstance(right, str) else right
        lhs = env[left]
        if operator == "+":
            env[target] = lhs + rhs
        elif operator == "-":
            env[target] = lhs - rhs
        else:
            env[target] = lhs * rhs
    return env


def exit_intervals(source):
    report = analyze_source(source)
    assert report.rte_findings() == [], report.render()
    return report.interval_engine.exit_intervals("main")


@settings(max_examples=40, deadline=None)
@given(inits=st.tuples(const, const, const),
       statements=st.lists(assignment, min_size=1, max_size=6))
def test_straight_line_kernels_are_contained(inits, statements):
    source = build_straight_line(inits, statements)
    concrete = run_concrete(inits, statements)
    boxes = exit_intervals(source)
    for name in VARS:
        assert name in boxes, source
        assert boxes[name].contains(concrete[name]), \
            "%s = %d outside %r in\n%s" % (name, concrete[name],
                                           boxes[name], source)


@settings(max_examples=40, deadline=None)
@given(start=const, step=const, trips=st.integers(min_value=0,
                                                  max_value=8),
       operator=op)
def test_loop_kernels_are_contained(start, step, trips, operator):
    source = """
int main() {
    int acc = %d;
    int i;
    for (i = 0; i < %d; i++) { acc = acc %s %d; }
    return acc;
}
""" % (start, trips, operator, step)
    acc = start
    for _ in range(trips):
        if operator == "+":
            acc = acc + step
        elif operator == "-":
            acc = acc - step
        else:
            acc = acc * step
    boxes = exit_intervals(source)
    assert boxes["acc"].contains(acc), \
        "acc = %d outside %r in\n%s" % (acc, boxes["acc"], source)
    assert boxes["i"].contains(trips)
