"""Cross-validation of benchmark numerics against numpy/scipy.

The simulated C programs must compute the *right* numbers, not just
the same numbers in both paradigms — so the linear-algebra benchmarks
are checked against independent reference implementations.
"""

import math

import numpy
import pytest
import scipy.linalg

from repro.bench.programs import benchmark_source
from repro.sim.runner import run_pthread_single_core


def output_value(source):
    result = run_pthread_single_core(source)
    return float(result.stdout().split("=")[1])


class TestPi:
    def test_midpoint_rule_matches_quadrature(self):
        steps = 2048
        source = benchmark_source("pi", nthreads=4, steps=steps)
        step = 1.0 / steps
        expected = sum(4.0 / (1.0 + ((i + 0.5) * step) ** 2)
                       for i in range(steps)) * step
        assert output_value(source) == pytest.approx(expected, rel=1e-6)
        assert output_value(source) == pytest.approx(math.pi, abs=1e-4)


class TestDot:
    def test_matches_numpy_dot(self):
        n = 256
        source = benchmark_source("dot", nthreads=4, n=n)
        x = numpy.arange(n) + 0.5
        y = numpy.full(n, 2.0)
        assert output_value(source) == pytest.approx(float(x @ y))


class TestStream:
    def test_matches_numpy_kernels(self):
        n = 128
        source = benchmark_source("stream", nthreads=4, n=n)
        a = 1.0 + numpy.arange(n, dtype=float)
        c = a.copy()              # copy
        b = 3.0 * c               # scale
        c = a + b                 # add
        a = b + 3.0 * c           # triad
        assert output_value(source) == pytest.approx(float(a.sum()))


class TestLU:
    def test_matches_scipy_lu(self):
        dim, batch = 6, 4
        source = benchmark_source("lu", nthreads=4, batch=batch,
                                  dim=dim)
        matrix = numpy.full((dim, dim), 1.0)
        numpy.fill_diagonal(matrix, dim + 1.0)
        # diagonally dominant: scipy pivots trivially (P = I), so its
        # U diagonal equals the Doolittle U diagonal
        _, _, upper = scipy.linalg.lu(matrix)
        expected = batch * float(numpy.diag(upper).sum())
        # the benchmark prints %.4f: compare at that precision
        assert output_value(source) == pytest.approx(expected, abs=1e-3)


class TestSum35:
    def test_matches_closed_form(self):
        limit = 4096
        source = benchmark_source("sum35", nthreads=4, limit=limit)

        def triangle(k):
            m = (limit - 1) // k
            return k * m * (m + 1) // 2

        expected = triangle(3) + triangle(5) - triangle(15)
        assert output_value(source) == expected


class TestPrimes:
    def test_matches_sympy_free_sieve(self):
        limit = 512
        source = benchmark_source("primes", nthreads=4, limit=limit)
        sieve = numpy.ones(limit, dtype=bool)
        sieve[:2] = False
        for i in range(2, int(limit ** 0.5) + 1):
            if sieve[i]:
                sieve[i * i::i] = False
        assert output_value(source) == int(sieve.sum())
