"""Experiment harness tests at reduced scale (4 UEs, tiny workloads)."""

import pytest

from repro.bench.harness import ExperimentHarness, VerificationError
from repro.bench.workloads import Workload, scaled_config


def tiny_harness(num_ues=4, **kwargs):
    workloads = {
        "pi": Workload("pi", {"steps": 512}, 64),
        "sum35": Workload("sum35", {"limit": 512}, 64),
        "stream": Workload("stream", {"n": 64}, 64 * 24),
    }
    return ExperimentHarness(num_ues=num_ues, workloads=workloads,
                             **kwargs)


class TestRuns:
    def test_run_caches(self):
        harness = tiny_harness()
        first = harness.run("pi", "pthread")
        second = harness.run("pi", "pthread")
        assert first is second

    def test_unknown_configuration(self):
        with pytest.raises(ValueError):
            tiny_harness().run("pi", "gpu")

    def test_verification_passes_for_real_programs(self):
        harness = tiny_harness()
        run = harness.run("pi", "rcce-off")
        assert run.cycles > 0

    def test_result_line(self):
        harness = tiny_harness()
        assert harness.run("pi", "pthread").result_line().startswith(
            "pi = 3.14")


class TestFigures:
    def test_figure_6_1_rows(self):
        harness = tiny_harness()
        rows = harness.figure_6_1(["pi", "sum35"])
        assert [row["benchmark"] for row in rows] == ["pi", "sum35"]
        assert all(row["speedup"] > 1.0 for row in rows)

    def test_figure_6_2_rows(self):
        harness = tiny_harness()
        rows = harness.figure_6_2(["stream"])
        assert rows[0]["improvement"] >= 1.0

    def test_figure_6_3_monotone_scaling(self):
        harness = tiny_harness()
        rows = harness.figure_6_3("pi", core_counts=(1, 2, 4))
        speedups = [row["speedup"] for row in rows]
        assert speedups[0] < speedups[-1]

    def test_average_improvement_geomean(self):
        harness = tiny_harness()
        average = harness.average_onchip_improvement(["pi", "stream"])
        rows = harness.figure_6_2(["pi", "stream"])
        expected = (rows[0]["improvement"] *
                    rows[1]["improvement"]) ** 0.5
        assert average == pytest.approx(expected)


class TestShapes:
    """The qualitative claims of the paper at small scale."""

    def test_parallel_beats_single_core(self):
        harness = tiny_harness()
        row = harness.figure_6_1(["pi"])[0]
        assert row["speedup"] > 2.0

    def test_onchip_at_least_as_fast_as_offchip(self):
        harness = tiny_harness()
        for row in harness.figure_6_2(["pi", "stream"]):
            assert row["improvement"] >= 0.95  # allow tiny noise floor

    def test_memory_benchmark_gains_most_from_mpb(self):
        harness = tiny_harness()
        rows = {row["benchmark"]: row["improvement"]
                for row in harness.figure_6_2(["pi", "stream"])}
        assert rows["stream"] >= rows["pi"]
