"""Benchmark corpus tests: every program parses, translates, and
computes the right answer in both paradigms (at tiny sizes)."""

import pytest

from repro.bench.programs import (
    BENCHMARKS,
    CATEGORIES,
    benchmark_names,
    benchmark_source,
)
from repro.cfront.frontend import parse_program
from repro.core.framework import TranslationFramework
from repro.sim.runner import run_pthread_single_core, run_rcce

TINY = {
    "pi": {"steps": 64},
    "sum35": {"limit": 100},
    "primes": {"limit": 64},
    "stream": {"n": 32},
    "dot": {"n": 32},
    "lu": {"batch": 4, "dim": 4},
}

# ground truth computed independently in Python
EXPECTED = {
    "sum35": "sum35 = %d\n" % sum(i for i in range(100)
                                  if i % 3 == 0 or i % 5 == 0),
    "primes": "primes = %d\n" % sum(
        1 for i in range(2, 64)
        if all(i % j for j in range(2, i))),
    "dot": "dot = %.1f\n" % sum((0.5 + j) * 2.0 for j in range(32)),
    "stream": "stream checksum = %.1f\n" % sum(
        # a = b + 3c where c = a0 + b, b = 3*a0, a0 = 1+j
        (3.0 * (1.0 + j)) + 3.0 * ((1.0 + j) + 3.0 * (1.0 + j))
        for j in range(32)),
}


class TestCorpus:
    def test_six_benchmarks(self):
        assert set(benchmark_names()) == {
            "pi", "sum35", "primes", "stream", "dot", "lu"}

    def test_categories_cover_all(self):
        assert set(CATEGORIES) == set(BENCHMARKS)
        assert "linear algebra" in CATEGORIES.values()
        assert "memory operations" in CATEGORIES.values()

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            benchmark_source("quicksort")

    @pytest.mark.parametrize("name", sorted(BENCHMARKS))
    def test_all_parse(self, name):
        source = benchmark_source(name, nthreads=4, **TINY[name])
        unit = parse_program(source)
        assert unit.find_function("main") is not None

    @pytest.mark.parametrize("name", sorted(BENCHMARKS))
    def test_all_translate(self, name):
        source = benchmark_source(name, nthreads=4, **TINY[name])
        result = TranslationFramework().translate(source)
        assert "RCCE_init" in result.rcce_source
        assert "pthread" not in result.rcce_source


class TestCorrectness:
    @pytest.mark.parametrize("name", sorted(EXPECTED))
    def test_pthread_answer(self, name):
        source = benchmark_source(name, nthreads=4, **TINY[name])
        result = run_pthread_single_core(source)
        assert result.stdout() == EXPECTED[name]

    @pytest.mark.parametrize("name", sorted(EXPECTED))
    def test_rcce_matches_pthread(self, name):
        source = benchmark_source(name, nthreads=4, **TINY[name])
        translated = TranslationFramework(
            partition_policy="off-chip-only").translate(source)
        result = run_rcce(translated.unit, 4)
        lines = result.stdout().strip().splitlines()
        assert len(lines) == 4
        assert all(line + "\n" == EXPECTED[name] for line in lines)

    def test_pi_value_accurate(self):
        source = benchmark_source("pi", nthreads=4, steps=4096)
        result = run_pthread_single_core(source)
        value = float(result.stdout().split("=")[1])
        assert value == pytest.approx(3.14159265, abs=1e-4)

    def test_lu_doolittle_diagonal(self):
        # diagonally dominant DIM+1 matrix: U diagonal is positive and
        # the checksum is finite/deterministic
        source = benchmark_source("lu", nthreads=4, batch=4, dim=4)
        base = run_pthread_single_core(source).stdout()
        translated = TranslationFramework(
            partition_policy="off-chip-only").translate(source)
        rcce = run_rcce(translated.unit, 4).stdout().strip().splitlines()
        assert all(line + "\n" == base for line in rcce)

    def test_onchip_variant_same_answer(self):
        source = benchmark_source("dot", nthreads=4, n=32)
        base = run_pthread_single_core(source).stdout()
        translated = TranslationFramework(
            partition_policy="size").translate(source)
        rcce = run_rcce(translated.unit, 4)
        assert all(line + "\n" == base
                   for line in rcce.stdout().strip().splitlines())
