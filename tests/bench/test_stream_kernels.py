"""Per-kernel STREAM builder tests (Appendix C, Algorithms 13-16)."""

import pytest

from repro.bench.programs import STREAM_KERNELS, stream_kernel
from repro.core.framework import TranslationFramework
from repro.sim.runner import run_pthread_single_core, run_rcce


class TestBuilders:
    def test_four_kernels(self):
        assert set(STREAM_KERNELS) == {"copy", "scale", "add", "triad"}

    def test_unknown_kernel_raises(self):
        with pytest.raises(KeyError):
            stream_kernel("nonsense")

    @pytest.mark.parametrize("kernel", STREAM_KERNELS)
    def test_kernel_body_embedded(self, kernel):
        source = stream_kernel(kernel, nthreads=4, n=32)
        assert kernel in source
        assert "pthread_create" in source


class TestKernelSemantics:
    """Checksums against the STREAM definitions computed in Python."""

    N = 32

    def expected(self, kernel):
        a = [1.0 + j for j in range(self.N)]
        b = [2.0] * self.N
        c = [0.5 * j for j in range(self.N)]
        if kernel == "copy":
            c = list(a)
        elif kernel == "scale":
            b = [3.0 * v for v in c]
        elif kernel == "add":
            c = [x + y for x, y in zip(a, b)]
        else:  # triad
            a = [y + 3.0 * z for y, z in zip(b, c)]
        return sum(a) + sum(b) + sum(c)

    @pytest.mark.parametrize("kernel", STREAM_KERNELS)
    def test_pthread_checksum(self, kernel):
        source = stream_kernel(kernel, nthreads=4, n=self.N)
        result = run_pthread_single_core(source)
        value = float(result.stdout().split("=")[1])
        assert value == pytest.approx(self.expected(kernel))

    @pytest.mark.parametrize("kernel", STREAM_KERNELS)
    def test_translated_matches(self, kernel):
        source = stream_kernel(kernel, nthreads=4, n=self.N)
        baseline = run_pthread_single_core(source).stdout()
        translated = TranslationFramework(
            partition_policy="off-chip-only").translate(source)
        result = run_rcce(translated.unit, 4)
        assert all(line + "\n" == baseline
                   for line in result.stdout().strip().splitlines())
