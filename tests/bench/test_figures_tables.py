"""Figure/table module tests (rendering and paper-reference data)."""

import pytest

from repro.bench.figures import render_bars
from repro.bench.tables import (
    PAPER_TABLE_4_1,
    PAPER_TABLE_4_2,
    table_4_1,
    table_4_2,
    table_6_1,
)
from repro.bench.workloads import (
    SCALED_ON_CHIP_CAPACITY,
    default_workloads,
    scaled_config,
)


class TestRenderBars:
    ROWS = [
        {"name": "a", "value": 10.0},
        {"name": "bb", "value": 5.0},
    ]

    def test_peak_gets_full_width(self):
        chart = render_bars(self.ROWS, "name", "value", width=20)
        lines = chart.splitlines()
        assert lines[0].count("#") == 20
        assert lines[1].count("#") == 10

    def test_values_printed(self):
        chart = render_bars(self.ROWS, "name", "value")
        assert "10.00" in chart
        assert "5.00" in chart

    def test_labels_aligned(self):
        chart = render_bars(self.ROWS, "name", "value")
        lines = chart.splitlines()
        assert lines[0].startswith("a ")
        assert lines[1].startswith("bb")

    def test_title(self):
        chart = render_bars(self.ROWS, "name", "value", title="T")
        assert chart.splitlines()[0] == "T"

    def test_empty(self):
        assert render_bars([], "name", "value") == "(no data)"

    def test_minimum_one_hash(self):
        rows = [{"n": "big", "v": 1000.0}, {"n": "tiny", "v": 0.001}]
        chart = render_bars(rows, "n", "v", width=30)
        assert all("#" in line for line in chart.splitlines())


class TestTables:
    def test_table_4_1_default_uses_running_example(self):
        rows = table_4_1()
        assert {row["name"] for row in rows} == set(PAPER_TABLE_4_1)

    def test_table_4_2_matches_paper_reference(self):
        rows = {row["variable"]: row for row in table_4_2()}
        for name, stages in PAPER_TABLE_4_2.items():
            assert (rows[name]["stage1"], rows[name]["stage2"],
                    rows[name]["stage3"]) == stages

    def test_table_6_1_custom_units(self):
        rows = table_6_1(execution_units=48)
        units = [r for r in rows if r["parameter"] == "Execution Units"]
        assert units[0]["rcce"] == "48 cores"


class TestWorkloads:
    def test_all_six_benchmarks_present(self):
        assert set(default_workloads()) == {
            "pi", "sum35", "primes", "stream", "dot", "lu"}

    def test_lu_exceeds_scaled_capacity(self):
        """The Figure 6.2 no-fit invariant must hold by construction."""
        workloads = default_workloads()
        assert workloads["lu"].shared_bytes_estimate > \
            SCALED_ON_CHIP_CAPACITY

    def test_others_fit_scaled_capacity(self):
        workloads = default_workloads()
        for name in ("pi", "sum35", "primes", "stream"):
            assert workloads[name].shared_bytes_estimate <= \
                SCALED_ON_CHIP_CAPACITY, name

    def test_scaled_config_keeps_table_6_1_frequencies(self):
        config = scaled_config()
        assert config.core_freq_mhz == 800
        assert config.mesh_freq_mhz == 1600
        assert config.dram_freq_mhz == 1066

    def test_scaled_config_shrinks_caches(self):
        config = scaled_config()
        assert config.l1_size < 8 * 1024
        assert config.l2_size < 256 * 1024

    def test_stream_arrays_exceed_scaled_l2(self):
        """Streaming benchmarks must thrash the baseline's L2."""
        config = scaled_config()
        assert default_workloads()["stream"].shared_bytes_estimate > \
            config.l2_size

    def test_overrides(self):
        config = scaled_config(l1_size=2048)
        assert config.l1_size == 2048
