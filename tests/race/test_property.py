"""Property: lock discipline decides the verdict, not problem size.

For any thread count and iteration count, a mutex-protected shared
counter audits clean, and stripping the lock/unlock pair — and nothing
else — flips the verdict to racy.  This pins the detector against both
false positives (properly synchronized programs) and false negatives
(the textbook unprotected counter) across schedules and configs.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench.workloads import scaled_config
from repro.scc.chip import SCCChip
from repro.sim.runner import run_pthread_single_core

COUNTER_TEMPLATE = """
#include <pthread.h>
#include <stdio.h>
int counter;
pthread_mutex_t m;
void *inc(void *a) {
    int i;
    for (i = 0; i < %(iters)d; i++) {
        %(lock)s
        counter = counter + 1;
        %(unlock)s
    }
    return 0;
}
int main(void) {
    pthread_t th[%(nthreads)d];
    int i;
    pthread_mutex_init(&m, 0);
    for (i = 0; i < %(nthreads)d; i++)
        pthread_create(&th[i], 0, inc, (void *)i);
    for (i = 0; i < %(nthreads)d; i++)
        pthread_join(th[i], 0);
    printf("%%d", counter);
    return 0;
}
"""


def counter_source(nthreads, iters, locked):
    return COUNTER_TEMPLATE % {
        "nthreads": nthreads,
        "iters": iters,
        "lock": "pthread_mutex_lock(&m);" if locked else "",
        "unlock": "pthread_mutex_unlock(&m);" if locked else "",
    }


def audit(source):
    chip = SCCChip(scaled_config())
    result = run_pthread_single_core(source, chip.config, chip,
                                     max_steps=50_000_000, race=True)
    return result


@given(nthreads=st.integers(2, 4), iters=st.integers(1, 8))
@settings(max_examples=12, deadline=None)
def test_locked_counter_always_clean(nthreads, iters):
    result = audit(counter_source(nthreads, iters, locked=True))
    assert result.stdout() == str(nthreads * iters)
    assert result.race.ok, result.race.render()


@given(nthreads=st.integers(2, 4), iters=st.integers(1, 8))
@settings(max_examples=12, deadline=None)
def test_unlocked_counter_always_flagged(nthreads, iters):
    result = audit(counter_source(nthreads, iters, locked=False))
    report = result.race
    assert report.has_findings, report.render()
    assert any("counter" in finding.message() for finding in report)
