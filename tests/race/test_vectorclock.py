"""Vector clock / epoch algebra."""

from repro.race.vectorclock import Epoch, VectorClock


class TestVectorClock:
    def test_absent_entries_read_zero(self):
        assert VectorClock().time_of("t1") == 0

    def test_tick_advances_own_component_only(self):
        vc = VectorClock()
        vc.tick("a")
        vc.tick("a")
        assert vc.time_of("a") == 2
        assert vc.time_of("b") == 0

    def test_join_is_pointwise_max(self):
        left = VectorClock({"a": 3, "b": 1})
        right = VectorClock({"b": 5, "c": 2})
        left.join(right)
        assert left.clocks == {"a": 3, "b": 5, "c": 2}

    def test_join_never_decreases(self):
        left = VectorClock({"a": 3})
        left.join(VectorClock({"a": 1}))
        assert left.time_of("a") == 3

    def test_copy_is_independent(self):
        vc = VectorClock({"a": 1})
        clone = vc.copy()
        clone.tick("a")
        assert vc.time_of("a") == 1
        assert clone.time_of("a") == 2

    def test_covers(self):
        vc = VectorClock({"a": 3})
        assert vc.covers(Epoch("a", 3))
        assert vc.covers(Epoch("a", 2))
        assert not vc.covers(Epoch("a", 4))
        assert not vc.covers(Epoch("b", 1))


class TestEpoch:
    def test_happens_before_mirrors_covers(self):
        vc = VectorClock({"a": 2})
        assert Epoch("a", 2).happens_before(vc)
        assert not Epoch("a", 3).happens_before(vc)

    def test_equality_and_hash(self):
        assert Epoch("a", 1) == Epoch("a", 1)
        assert Epoch("a", 1) != Epoch("a", 2)
        assert Epoch("a", 1) != Epoch("b", 1)
        assert len({Epoch("a", 1), Epoch("a", 1)}) == 1

    def test_repr_is_tid_at_clock(self):
        assert repr(Epoch(3, 7)) == "3@7"


def test_fork_join_ordering():
    """The create/join edge pattern the detector uses for pthreads."""
    parent = VectorClock()
    parent.tick("main")
    child = parent.copy()
    child.tick("t1")
    parent.tick("main")
    # child saw everything the parent did before the fork ...
    assert child.covers(Epoch("main", 1))
    # ... but not what the parent does afterwards
    assert not child.covers(Epoch("main", 2))
    parent.join(child)
    assert parent.covers(Epoch("t1", 1))
