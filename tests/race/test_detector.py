"""RaceDetector unit tests (synthetic accesses) and fixture runs.

The synthetic half drives the detector directly with fake interpreter
objects so each rule — happens-before race, lockset suppression,
coherence audit, dedup, the findings cap — is pinned in isolation.
The fixture half runs the committed negative/positive fixture programs
end to end through ``run_rcce``.
"""

import os

import pytest

from repro.bench.workloads import scaled_config
from repro.obs import EventTracer
from repro.race import COHERENCE, RACE, RaceDetector
from repro.race.lockset import LockRegistry
from repro.race.vectorclock import Epoch, VectorClock
from repro.scc.chip import SCCChip
from repro.sim.runner import run_rcce

FIXTURES = os.path.join(os.path.dirname(__file__), os.pardir,
                        "fixtures")


def fixture_source(name):
    with open(os.path.join(FIXTURES, name)) as handle:
        return handle.read()


class FakeInterp:
    """The slice of the Interpreter surface record()/record_range()
    read: core id, current function, cycle counter, and a runtime
    whose ``race_thread`` names the logical thread."""

    class _Runtime:
        def __init__(self, tid):
            self._tid = tid

        def race_thread(self):
            return self._tid

    def __init__(self, core_id, tid, cycles=0):
        self.core_id = core_id
        self.current_function = "main"
        self.cycles = cycles
        self.runtime = self._Runtime(tid)


@pytest.fixture
def chip():
    return SCCChip(scaled_config())


@pytest.fixture
def detector(chip):
    detector = RaceDetector().attach(chip)
    yield detector
    detector.detach()


def shared_addr(chip, nbytes=8, label="shared_var"):
    return chip.address_space.alloc_shared(nbytes, label).base


def private_addr(chip, core, nbytes=8, label="private_var"):
    return chip.address_space.alloc_private(core, nbytes, label).base


class TestHappensBeforeRaces:
    def test_unordered_write_write_is_a_race(self, chip, detector):
        addr = shared_addr(chip)
        detector.register("shared_var", addr, 8, "shared")
        detector.record(FakeInterp(0, 0), addr, "write")
        detector.record(FakeInterp(1, 1), addr, "write")
        report = detector.report()
        assert report.has_findings
        assert report.findings[0].category == RACE
        assert "shared_var" in report.findings[0].message()

    def test_unordered_read_after_write_is_a_race(self, chip,
                                                  detector):
        addr = shared_addr(chip)
        detector.record(FakeInterp(0, 0), addr, "write")
        detector.record(FakeInterp(1, 1), addr, "read")
        report = detector.report()
        assert len(report.findings) == 1
        finding = report.findings[0]
        assert finding.prior.kind == "write"
        assert finding.current.kind == "read"

    def test_unordered_write_after_read_is_a_race(self, chip,
                                                  detector):
        addr = shared_addr(chip)
        detector.record(FakeInterp(0, 0), addr, "read")
        detector.record(FakeInterp(1, 1), addr, "write")
        report = detector.report()
        assert len(report.findings) == 1
        assert report.findings[0].current.kind == "write"

    def test_same_thread_never_races_with_itself(self, chip, detector):
        addr = shared_addr(chip)
        for _ in range(4):
            detector.record(FakeInterp(0, 0), addr, "write")
            detector.record(FakeInterp(0, 0), addr, "read")
        assert detector.report().ok

    def test_fork_edge_orders_child_after_parent(self, chip, detector):
        addr = shared_addr(chip)
        detector.record(FakeInterp(0, "main"), addr, "write")
        detector.thread_create("main", "t1")
        detector.record(FakeInterp(0, "t1"), addr, "read")
        assert detector.report().ok

    def test_join_edge_orders_parent_after_child(self, chip, detector):
        addr = shared_addr(chip)
        detector.thread_create("main", "t1")
        detector.record(FakeInterp(0, "t1"), addr, "write")
        detector.thread_join("main", "t1")
        detector.record(FakeInterp(0, "main"), addr, "write")
        assert detector.report().ok

    def test_lock_edges_order_critical_sections(self, chip, detector):
        addr = shared_addr(chip)
        for tid in (0, 1):
            detector.lock_acquire(tid, ("reg", 0))
            detector.record(FakeInterp(tid, tid), addr, "write")
            detector.lock_release(tid, ("reg", 0))
        assert detector.report().ok

    def test_barrier_orders_rounds(self, chip, detector):
        addr = shared_addr(chip)
        detector.record(FakeInterp(0, 0), addr, "write")
        for tid in (0, 1):
            detector.barrier_enter(tid, 2, key="b")
        for tid in (0, 1):
            detector.barrier_exit(tid, key="b")
        detector.record(FakeInterp(1, 1), addr, "read")
        assert detector.report().ok

    def test_flag_write_then_wait_orders(self, chip, detector):
        addr = shared_addr(chip)
        detector.record(FakeInterp(0, 0), addr, "write")
        detector.flag_write(0, flag_id=7)
        detector.flag_sync(1, flag_id=7)
        detector.record(FakeInterp(1, 1), addr, "read")
        assert detector.report().ok

    def test_channel_rendezvous_orders_both_ways(self, chip, detector):
        addr = shared_addr(chip)
        detector.record(FakeInterp(0, 0), addr, "write")
        shipped = detector.channel_send(0)
        ack = detector.channel_recv(1, shipped)
        detector.channel_ack(0, ack)
        # receiver is ordered after the sender's pre-send write ...
        detector.record(FakeInterp(1, 1), addr, "read")
        # ... and the sender after the receiver's pre-recv history
        assert detector.report().ok


class TestLocksetRefinement:
    def test_consistent_lock_suppresses_ww_conflict(self, chip,
                                                    detector):
        """Both writers hold the same lock but the clock edge is
        missing (no release/acquire recorded): Eraser's lockset says
        'consistently protected', so no finding."""
        addr = shared_addr(chip)
        registry = detector._locks
        registry._held[0] = {("reg", 0)}
        registry._held[1] = {("reg", 0)}
        detector.record(FakeInterp(0, 0), addr, "write")
        detector.record(FakeInterp(1, 1), addr, "write")
        report = detector.report()
        assert not report.findings
        assert report.lockset_suppressed == 1

    def test_disjoint_locks_do_not_suppress(self, chip, detector):
        addr = shared_addr(chip)
        registry = detector._locks
        registry._held[0] = {("reg", 0)}
        registry._held[1] = {("reg", 1)}
        detector.record(FakeInterp(0, 0), addr, "write")
        detector.record(FakeInterp(1, 1), addr, "write")
        report = detector.report()
        assert len(report.findings) == 1
        assert report.lockset_suppressed == 0

    def test_registry_refine_intersects(self):
        registry = LockRegistry()
        vc = VectorClock()
        registry.acquire(0, "a", vc)
        registry.acquire(0, "b", vc)
        assert registry.held(0) == {"a", "b"}
        registry.release(0, "b", vc)
        assert registry.held(0) == {"a"}

    def test_release_acquire_transfers_clock(self):
        registry = LockRegistry()
        writer, reader = VectorClock(), VectorClock()
        writer.tick("w")
        registry.acquire("w", "m", writer)
        registry.release("w", "m", writer)
        registry.acquire("r", "m", reader)
        assert reader.covers(Epoch("w", 1))


class TestCoherenceAudit:
    def test_remote_read_of_cacheable_word_is_flagged(self, chip,
                                                      detector):
        """Even a barrier-ordered remote read can see a stale line:
        ordering does not flush a cacheable private segment."""
        addr = private_addr(chip, core=0)
        detector.register("private_var", addr, 8, "global")
        detector.record(FakeInterp(0, 0), addr, "write")
        for tid in (0, 1):
            detector.barrier_enter(tid, 2, key="b")
        for tid in (0, 1):
            detector.barrier_exit(tid, key="b")
        detector.record(FakeInterp(1, 1), addr, "read")
        report = detector.report()
        assert len(report.findings) == 1
        finding = report.findings[0]
        assert finding.category == COHERENCE
        assert finding.stale_cacheable
        assert "stale cacheable" in finding.message()

    def test_remote_write_over_cacheable_word_is_flagged(self, chip,
                                                         detector):
        addr = private_addr(chip, core=0)
        detector.record(FakeInterp(0, 0), addr, "write")
        for tid in (0, 1):
            detector.barrier_enter(tid, 2, key="b")
        for tid in (0, 1):
            detector.barrier_exit(tid, key="b")
        detector.record(FakeInterp(1, 1), addr, "write")
        report = detector.report()
        assert report.counts()[COHERENCE] == 1

    def test_single_core_private_traffic_is_clean(self, chip,
                                                  detector):
        addr = private_addr(chip, core=0)
        detector.record(FakeInterp(0, 0), addr, "write")
        detector.record(FakeInterp(0, 0), addr, "read")
        assert detector.report().ok

    def test_uncacheable_shared_segment_never_coherence(self, chip,
                                                       detector):
        """Shared off-chip DRAM is mapped uncacheable: ordered remote
        reads there are exactly what the translation relies on."""
        addr = shared_addr(chip)
        detector.record(FakeInterp(0, 0), addr, "write")
        for tid in (0, 1):
            detector.barrier_enter(tid, 2, key="b")
        for tid in (0, 1):
            detector.barrier_exit(tid, key="b")
        detector.record(FakeInterp(1, 1), addr, "read")
        assert detector.report().ok


class TestReporting:
    def test_findings_are_deduplicated(self, chip, detector):
        addr = shared_addr(chip)
        detector.record(FakeInterp(0, 0), addr, "write")
        for _ in range(5):
            detector.record(FakeInterp(1, 1), addr, "write")
            detector.record(FakeInterp(0, 0), addr, "write")
        report = detector.report()
        # one per (direction, kind-pair), not one per access
        assert len(report.findings) <= 2

    def test_findings_cap_counts_overflow(self, chip):
        detector = RaceDetector(max_findings=2).attach(chip)
        try:
            base = shared_addr(chip, nbytes=64)
            for index in range(6):
                addr = base + index * 8
                detector.register("v%d" % index, addr, 8, "shared")
                detector.record(FakeInterp(0, 0), addr, "write")
                detector.record(FakeInterp(1, 1), addr, "write")
            report = detector.report()
            assert len(report.findings) == 2
            assert report.dropped == 4
            assert report.has_findings
        finally:
            detector.detach()

    def test_provenance_fields(self, chip, detector):
        addr = shared_addr(chip)
        detector.register("shared_var", addr, 8, "shared")
        detector.record(FakeInterp(0, 0, cycles=10), addr, "write")
        detector.record(FakeInterp(1, 1, cycles=20), addr, "write")
        finding = detector.report().findings[0]
        payload = finding.as_dict()
        assert payload["variable"] == "shared_var"
        assert payload["prior"]["core"] == 0
        assert payload["current"]["core"] == 1
        assert payload["current"]["cycles"] == 20
        assert payload["current"]["epoch"] == "1@1"
        diagnostic = finding.as_diagnostic()
        assert diagnostic.severity == "warning"
        assert "shared_var" in diagnostic.format()

    def test_metrics_registered_on_attach(self, chip, detector):
        addr = shared_addr(chip)
        detector.record(FakeInterp(0, 0), addr, "write")
        detector.record(FakeInterp(1, 1), addr, "write")
        counters = chip.metrics.snapshot()["counters"]
        assert counters["race_checks"][0]["value"] == 2
        by_category = {row["labels"]["category"]: row["value"]
                       for row in counters["race_findings"]}
        assert by_category == {"race": 1, "coherence": 0}

    def test_detach_restores_chip(self, chip):
        detector = RaceDetector().attach(chip)
        assert chip.race is detector
        detector.detach()
        assert chip.race is None

    def test_clean_report_renders_summary(self, chip, detector):
        addr = shared_addr(chip)
        detector.record(FakeInterp(0, 0), addr, "write")
        report = detector.report()
        assert report.ok
        assert "race audit: clean" in report.render()

    def test_race_detected_trace_event(self, chip, detector):
        tracer = EventTracer()
        chip.attach_events(tracer, pid=1, name="rcce")
        addr = shared_addr(chip)
        detector.register("shared_var", addr, 8, "shared")
        detector.record(FakeInterp(0, 0), addr, "write")
        detector.record(FakeInterp(1, 1), addr, "write")
        events = tracer.events_named("race_detected")
        assert len(events) == 1
        assert events[0][7]["variable"] == "shared_var"


class TestFixtures:
    """End-to-end: the committed fixture programs."""

    def run_fixture(self, name, ues=2):
        chip = SCCChip(scaled_config())
        result = run_rcce(fixture_source(name), ues, chip.config, chip,
                          max_steps=50_000_000, race=True)
        return result

    def test_unprotected_counter_is_flagged(self):
        result = self.run_fixture("race_unprotected_counter.c")
        report = result.race
        assert report.has_findings
        assert report.counts()[RACE] >= 1
        finding = report.findings[0]
        assert finding.variable is not None
        assert {finding.prior.core, finding.current.core} == {0, 1}
        assert finding.prior.function == "RCCE_APP"
        # findings double as diagnostics on the run result
        assert any("data race" in diag.format()
                   for diag in result.diagnostics)

    def test_locked_counter_is_clean(self):
        result = self.run_fixture("race_locked_counter.c")
        assert result.race.ok
        assert result.stdout().strip() == "counter=16"

    def test_cacheable_alias_is_a_coherence_violation(self):
        result = self.run_fixture("race_cacheable_alias.c")
        report = result.race
        counts = report.counts()
        assert counts[COHERENCE] >= 1
        assert counts[RACE] == 0
        finding = report.findings[0]
        assert finding.stale_cacheable
        assert "stash" in finding.message()

    def test_detector_disabled_reports_nothing(self):
        chip = SCCChip(scaled_config())
        result = run_rcce(fixture_source("race_unprotected_counter.c"),
                          2, chip.config, chip, max_steps=50_000_000)
        assert result.race is None
