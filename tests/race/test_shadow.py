"""Variable resolution and shadow-word lifetime."""

from repro.race.shadow import ShadowMemory, VariableMap
from repro.scc.memmap import SegmentKind


class TestVariableMap:
    def test_resolve_inside_extent(self):
        variables = VariableMap()
        variables.register("buf", 0x1000, 32, "global")
        extent = variables.resolve(0x1010)
        assert extent is not None
        assert extent.name == "buf"
        assert variables.resolve(0x1000).name == "buf"
        assert variables.resolve(0x1020) is None
        assert variables.resolve(0xFFF) is None

    def test_local_rebinding_replaces_extent(self):
        """Stack reuse: a re-registered local is a NEW instance."""
        variables = VariableMap()
        first = variables.register("i", 0x2000, 8, "local", "worker")
        second = variables.register("i", 0x2000, 8, "local", "worker")
        assert second is not first
        assert variables.resolve(0x2000) is second

    def test_symmetric_shared_registration_is_idempotent(self):
        """Every UE registers the same shmalloc segment; the first
        instance (and its shadow words) must survive."""
        variables = VariableMap()
        first = variables.register("shmalloc#0", 0x8000, 64, "shared")
        again = variables.register("shmalloc#0", 0x8000, 64, "shared")
        assert again is first

    def test_describe_names_owning_function(self):
        variables = VariableMap()
        extent = variables.register("i", 0x2000, 8, "local", "worker")
        assert extent.describe() == "i (local of worker)"
        top = variables.register("g", 0x3000, 8, "global")
        assert top.describe() == "g"


class TestShadowMemory:
    def test_lookup_is_stable_for_one_extent(self):
        variables = VariableMap()
        extent = variables.register("x", 0x1000, 8, "global")
        shadow = ShadowMemory()
        word = shadow.lookup(0x1000, SegmentKind.PRIVATE, extent)
        word.write = ("t0", 1, 0, "main", 10)
        assert shadow.lookup(0x1000, SegmentKind.PRIVATE,
                             extent) is word

    def test_rebound_extent_resets_word(self):
        """A shadow word owned by a superseded local must be dropped:
        two threads' own copies of one stack slot are not a race."""
        variables = VariableMap()
        shadow = ShadowMemory()
        first = variables.register("i", 0x2000, 8, "local", "worker")
        word = shadow.lookup(0x2000, SegmentKind.PRIVATE, first)
        word.write = ("t1", 1, 0, "worker", 10)
        second = variables.register("i", 0x2000, 8, "local", "worker")
        fresh = shadow.lookup(0x2000, SegmentKind.PRIVATE, second)
        assert fresh is not word
        assert fresh.write is None
