"""Pipeline self-audit: the translator's output must be race-free.

The paper's soundness claim is that stage 1-3 sharing analysis plus
the "shared => uncacheable" placement rule produce RCCE programs with
no data races and no stale-cacheable reads.  Running every golden
benchmark under the detector turns that claim into a regression test:
any future translator change that drops a lock, misplaces a variable,
or leaves a shared line cacheable fails here.
"""

import pytest

from repro.bench.harness import SCALED_ON_CHIP_CAPACITY
from repro.bench.programs import EXAMPLE_4_1, benchmark_source
from repro.bench.workloads import scaled_config
from repro.core.framework import TranslationFramework
from repro.scc.chip import SCCChip
from repro.sim.runner import run_pthread_single_core, run_rcce

NUM_UES = 4

# differential-suite problem sizes: small enough for test time, large
# enough that every benchmark's sharing pattern is exercised
SIZES = {
    "pi": {"steps": 512},
    "sum35": {"limit": 512},
    "primes": {"limit": 256},
    "stream": {"n": 128},
    "dot": {"n": 192},
    "lu": {"batch": 4, "dim": 8},
}


def translate(source, policy="size"):
    framework = TranslationFramework(
        on_chip_capacity=SCALED_ON_CHIP_CAPACITY,
        partition_policy=policy)
    return framework.translate(source).unit


def audit_rcce(unit):
    chip = SCCChip(scaled_config())
    result = run_rcce(unit, NUM_UES, chip.config, chip,
                      max_steps=100_000_000, race=True)
    return result.race


@pytest.mark.parametrize("name", sorted(SIZES))
def test_translated_benchmark_audits_clean(name):
    source = benchmark_source(name, NUM_UES, **SIZES[name])
    report = audit_rcce(translate(source))
    assert report.ok, report.render()
    assert report.checks > 0
    assert report.sync_edges > 0


def test_example_4_1_audits_clean():
    report = audit_rcce(translate(EXAMPLE_4_1))
    assert report.ok, report.render()


def test_off_chip_only_policy_audits_clean():
    """The all-off-chip placement must be just as coherent."""
    source = benchmark_source("dot", NUM_UES, **SIZES["dot"])
    report = audit_rcce(translate(source, policy="off-chip-only"))
    assert report.ok, report.render()


@pytest.mark.parametrize("name", ["pi", "dot"])
def test_pthread_baseline_audits_clean(name):
    """The original pthread program, serialized on one core, carries
    proper create/join and mutex edges."""
    source = benchmark_source(name, NUM_UES, **SIZES[name])
    chip = SCCChip(scaled_config())
    result = run_pthread_single_core(source, chip.config, chip,
                                     max_steps=100_000_000, race=True)
    assert result.race.ok, result.race.render()
    assert result.race.checks > 0


def test_example_4_1_pthread_audits_clean():
    chip = SCCChip(scaled_config())
    result = run_pthread_single_core(EXAMPLE_4_1, chip.config, chip,
                                     max_steps=100_000_000, race=True)
    assert result.race.ok, result.race.render()
