/* Positive twin of race_unprotected_counter.c: the same shared
 * counter, but every increment sits in an RCCE test-and-set critical
 * section.  The audit must come back clean. */
#include <stdio.h>
#include <RCCE.h>

int RCCE_APP(int argc, char **argv)
{
    RCCE_init(&argc, &argv);
    int *counter = (int *)RCCE_shmalloc(sizeof(int) * 1);
    int i;
    for (i = 0; i < 8; i++) {
        RCCE_acquire_lock(0);
        counter[0] = counter[0] + 1;
        RCCE_release_lock(0);
    }
    RCCE_barrier(&RCCE_COMM_WORLD);
    if (RCCE_ue() == 0) {
        printf("counter=%d\n", counter[0]);
    }
    RCCE_finalize();
    return 0;
}
