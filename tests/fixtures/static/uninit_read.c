/* The local x is read before anything ever stores to it: the
 * interval engine's initialization lattice must flag the read. */
#include <stdio.h>

int main() {
    int x;
    int y;
    y = x + 1;
    printf("%d\n", y);
    return 0;
}
