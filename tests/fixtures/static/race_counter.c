/* Two shared counters bumped by two threads with no lock at all:
 * the static lockset audit must report both as race candidates. */
#include <stdio.h>
#include <pthread.h>

int hits = 0;
int misses = 0;

void *worker(void *tid) {
    int i;
    for (i = 0; i < 1000; i++) {
        hits = hits + 1;
        misses = misses + 2;
    }
    pthread_exit(NULL);
}

int main() {
    pthread_t threads[2];
    int t;
    for (t = 0; t < 2; t++) {
        pthread_create(&threads[t], NULL, worker, (void *)t);
    }
    for (t = 0; t < 2; t++) {
        pthread_join(threads[t], NULL);
    }
    printf("hits %d misses %d\n", hits, misses);
    return 0;
}
