/* Every iteration squares an index of at least 100000: i * i is at
 * least 10^10, far beyond INT_MAX, so the multiply overflows its
 * declared 32-bit width on every pass — a definite finding. */
#include <stdio.h>

int main() {
    int i;
    int acc = 0;
    for (i = 100000; i < 100100; i++) {
        acc = i * i;
    }
    printf("%d\n", acc);
    return 0;
}
