/* Classic off-by-one: the loop's last iteration writes a[4] past the
 * end of int a[4].  The interval engine must flag an out-of-bounds
 * store (offset interval [0,4] escapes the valid [0,3]). */
#include <stdio.h>

int main() {
    int a[4];
    int i;
    for (i = 0; i <= 4; i++) {
        a[i] = i;
    }
    printf("%d\n", a[0]);
    return 0;
}
