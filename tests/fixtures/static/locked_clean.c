/* The correctly locked twin of race_counter.c: every access to the
 * shared counters holds the same mutex, so the lockset audit must
 * suppress both variables and the report must be clean. */
#include <stdio.h>
#include <pthread.h>

pthread_mutex_t lock;
int hits = 0;
int misses = 0;

void *worker(void *tid) {
    int i;
    for (i = 0; i < 1000; i++) {
        pthread_mutex_lock(&lock);
        hits = hits + 1;
        misses = misses + 2;
        pthread_mutex_unlock(&lock);
    }
    pthread_exit(NULL);
}

int main() {
    pthread_t threads[2];
    int t;
    for (t = 0; t < 2; t++) {
        pthread_create(&threads[t], NULL, worker, (void *)t);
    }
    for (t = 0; t < 2; t++) {
        pthread_join(threads[t], NULL);
    }
    printf("hits %d misses %d\n", hits, misses);
    return 0;
}
