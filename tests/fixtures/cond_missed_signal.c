#include <stdio.h>
#include <pthread.h>

/* Missed-signal hang: the worker sleeps on `cond` before main ever
 * signals, and main only signals AFTER joining the worker — so the
 * wakeup can never arrive.  The serial runtime must detect that no
 * runnable thread can deposit the signal and raise DeadlockError
 * instead of hanging the host. */

pthread_mutex_t lock;
pthread_cond_t cond;
int ready = 0;

void *waiter(void *arg)
{
    pthread_mutex_lock(&lock);
    while (!ready)
    {
        pthread_cond_wait(&cond, &lock);
    }
    pthread_mutex_unlock(&lock);
    return (void *)0;
}

int main(int argc, char **argv)
{
    pthread_t tid;
    pthread_mutex_init(&lock, 0);
    pthread_cond_init(&cond, 0);
    pthread_create(&tid, 0, waiter, (void *)0);
    pthread_join(tid, 0);
    /* too late: the waiter is already parked forever */
    pthread_mutex_lock(&lock);
    ready = 1;
    pthread_cond_signal(&cond);
    pthread_mutex_unlock(&lock);
    printf("unreachable\n");
    return 0;
}
