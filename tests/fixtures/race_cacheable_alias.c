/* Negative fixture for the HSM coherence auditor: UE 0 publishes a
 * pointer to one of its *private* (cacheable) globals through shared
 * memory, and UE 1 dereferences it after a barrier.  The accesses are
 * happens-before ordered, so this is NOT a data race — but on the real
 * SCC the line is cacheable and there is no hardware coherence, so
 * UE 1 can read a stale copy.  The audit must report a coherence
 * violation on `stash`. */
#include <stdio.h>
#include <RCCE.h>

int stash[4];

int RCCE_APP(int argc, char **argv)
{
    RCCE_init(&argc, &argv);
    int **window = (int **)RCCE_shmalloc(sizeof(int *) * 1);
    int me = RCCE_ue();
    if (me == 0) {
        stash[0] = 41;
        window[0] = stash;
    }
    RCCE_barrier(&RCCE_COMM_WORLD);
    if (me == 1) {
        int *alias = window[0];
        printf("alias=%d\n", alias[0]);
    }
    RCCE_barrier(&RCCE_COMM_WORLD);
    RCCE_finalize();
    return 0;
}
