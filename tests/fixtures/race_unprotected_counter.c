/* Negative fixture: every UE bumps a shared off-chip counter with no
 * lock and no intervening synchronization.  The race detector must
 * flag the write-write (and read-write) conflicts on `counter`.
 * The lock-protected twin is race_locked_counter.c. */
#include <stdio.h>
#include <RCCE.h>

int RCCE_APP(int argc, char **argv)
{
    RCCE_init(&argc, &argv);
    int *counter = (int *)RCCE_shmalloc(sizeof(int) * 1);
    int i;
    for (i = 0; i < 8; i++) {
        counter[0] = counter[0] + 1;
    }
    RCCE_barrier(&RCCE_COMM_WORLD);
    if (RCCE_ue() == 0) {
        /* the printed value is schedule-dependent: do not assert it */
        printf("counter=%d\n", counter[0]);
    }
    RCCE_finalize();
    return 0;
}
