"""NoC link-traffic recording tests."""

import pytest

from repro.scc.chip import SCCChip
from repro.scc.config import SCCConfig
from repro.scc.mesh import Mesh


class TestRecording:
    def test_disabled_by_default(self):
        chip = SCCChip(SCCConfig())
        shared = chip.address_space.alloc_shared(64)
        chip.access_cost(4, shared.base)
        assert chip.mesh.link_traffic == {}

    def test_shared_access_counts_links(self):
        chip = SCCChip(SCCConfig())
        chip.mesh.enable_traffic_recording()
        shared = chip.address_space.alloc_shared(64)
        chip.access_cost(4, shared.base)  # tile (2,0) -> controller 0
        total = sum(chip.mesh.link_traffic.values())
        assert total == chip.mesh.hops_to_controller(4)

    def test_mpb_access_counts_links(self):
        chip = SCCChip(SCCConfig())
        chip.mesh.enable_traffic_recording()
        mpb = chip.address_space.alloc_mpb(64)  # owned by core 0
        chip.access_cost(47, mpb.base, "write")
        assert sum(chip.mesh.link_traffic.values()) == \
            chip.mesh.hops(47, 0)

    def test_local_access_no_links(self):
        chip = SCCChip(SCCConfig())
        chip.mesh.enable_traffic_recording()
        mpb = chip.address_space.alloc_mpb(64)
        chip.access_cost(0, mpb.base, "write")  # same tile
        assert chip.mesh.link_traffic == {}

    def test_hot_links_sorted(self):
        mesh = Mesh(SCCConfig())
        mesh.enable_traffic_recording()
        for _ in range(3):
            mesh.record_route((0, 0), (2, 0))
        mesh.record_route((0, 0), (1, 0))
        hot = mesh.hot_links(top=2)
        assert hot[0][0] == ((0, 0), (1, 0))
        assert hot[0][1] == 4
        assert hot[1][1] == 3

    def test_route_links_are_adjacent(self):
        mesh = Mesh(SCCConfig())
        mesh.enable_traffic_recording()
        mesh.record_route((0, 0), (3, 2))
        for (ax, ay), (bx, by) in mesh.link_traffic:
            assert abs(ax - bx) + abs(ay - by) == 1

    def test_concurrent_recording_is_consistent(self):
        import threading
        mesh = Mesh(SCCConfig())
        mesh.enable_traffic_recording()

        def hammer():
            for _ in range(200):
                mesh.record_route((0, 0), (5, 0))

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert sum(mesh.link_traffic.values()) == 4 * 200 * 5
