"""Mesh geometry and routing tests."""

import pytest

from repro.scc.config import SCCConfig
from repro.scc.mesh import Mesh


@pytest.fixture
def mesh():
    return Mesh(SCCConfig())


class TestCoordinates:
    def test_two_cores_per_tile(self, mesh):
        assert mesh.tile_of(0) == 0
        assert mesh.tile_of(1) == 0
        assert mesh.tile_of(2) == 1

    def test_coords_row_major(self, mesh):
        assert mesh.coords_of(0) == (0, 0)
        assert mesh.coords_of(10) == (5, 0)   # tile 5, end of row 0
        assert mesh.coords_of(12) == (0, 1)   # tile 6, start of row 1
        assert mesh.coords_of(47) == (5, 3)   # last tile

    def test_out_of_range_core(self, mesh):
        with pytest.raises(ValueError):
            mesh.coords_of(48)
        with pytest.raises(ValueError):
            mesh.hops(-1, 0)


class TestRouting:
    def test_same_tile_zero_hops(self, mesh):
        assert mesh.hops(0, 1) == 0

    def test_manhattan_distance(self, mesh):
        assert mesh.hops(0, 10) == 5      # across row 0
        assert mesh.hops(0, 47) == 8      # corner to corner: 5 + 3

    def test_symmetry(self, mesh):
        for a, b in [(0, 47), (3, 30), (11, 22)]:
            assert mesh.hops(a, b) == mesh.hops(b, a)

    def test_triangle_inequality(self, mesh):
        for a, b, c in [(0, 20, 47), (5, 25, 40)]:
            assert mesh.hops(a, c) <= mesh.hops(a, b) + mesh.hops(b, c)

    def test_xy_route_goes_x_first(self, mesh):
        path = mesh.route(0, 47)
        assert path[0] == (0, 0)
        assert path[-1] == (5, 3)
        # x changes to completion before y moves
        xs = [p[0] for p in path]
        assert xs[:6] == [0, 1, 2, 3, 4, 5]

    def test_route_length_matches_hops(self, mesh):
        assert len(mesh.route(0, 47)) == mesh.hops(0, 47) + 1


class TestMemoryControllers:
    def test_controllers_at_corners(self, mesh):
        assert mesh.controller_coords(0) == (0, 0)
        assert mesh.controller_coords(1) == (5, 0)
        assert mesh.controller_coords(2) == (0, 3)
        assert mesh.controller_coords(3) == (5, 3)

    def test_nearest_controller(self, mesh):
        assert mesh.controller_of(0) == 0       # tile (0,0)
        assert mesh.controller_of(10) == 1      # tile (5,0)
        assert mesh.controller_of(47) == 3      # tile (5,3)

    def test_all_cores_covered(self, mesh):
        counts = mesh.cores_per_controller()
        assert sum(counts.values()) == 48
        # the quadrant mapping is balanced
        assert all(count == 12 for count in counts.values())

    def test_active_subset(self, mesh):
        counts = mesh.cores_per_controller(range(32))
        assert sum(counts.values()) == 32
        assert max(counts.values()) >= 8  # >= 8 per controller (paper §6)

    def test_hops_to_controller(self, mesh):
        assert mesh.hops_to_controller(0) == 0
        assert mesh.hops_to_controller(0, 3) == 8

    def test_invalid_controller(self, mesh):
        with pytest.raises(ValueError):
            mesh.controller_coords(4)
