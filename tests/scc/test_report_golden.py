"""Golden test: chip_report now reads the metrics registry, and the
rendered report must stay byte-identical to the pre-registry output
captured in ``tests/golden/chip_report.txt``."""

import os

import pytest

from repro.scc.chip import SCCChip
from repro.scc.config import SCCConfig
from repro.scc.report import chip_report, render_report

GOLDEN = os.path.join(os.path.dirname(__file__), os.pardir, "golden",
                      "chip_report.txt")


@pytest.fixture
def golden_chip():
    """The exact deterministic scenario the golden file was captured
    from (before chip_report was rebuilt on the registry)."""
    chip = SCCChip(SCCConfig())
    private0 = chip.address_space.alloc_private(0, 64)
    private1 = chip.address_space.alloc_private(1, 64)
    shared = chip.address_space.alloc_shared(64)
    mpb = chip.address_space.alloc_mpb(32)
    chip.activate_core(0)
    chip.activate_core(1)
    for _ in range(10):
        chip.access_cost(0, private0.base)
    for _ in range(5):
        chip.access_cost(0, shared.base)
    for _ in range(4):
        chip.access_cost(1, private1.base, "write")
    for _ in range(3):
        chip.access_cost(1, mpb.base, "write", 8)
    chip.access_cost(1, mpb.base, "read", 8)
    return chip


def test_rendered_report_matches_pre_registry_golden(golden_chip):
    with open(GOLDEN) as handle:
        expected = handle.read()
    rendered = render_report(chip_report(golden_chip)) + "\n"
    assert rendered == expected


def test_report_survives_registry_reset(golden_chip):
    """After reset the report must be empty-but-valid, not stale."""
    golden_chip.metrics.reset()
    report = chip_report(golden_chip)
    assert report["cores"] == {}
    assert report["controllers"] == {}
    assert report["mpb"]["reads"] == 0
