"""LUT (per-core page table) tests."""

import pytest

from repro.scc.chip import SCCChip
from repro.scc.config import SCCConfig
from repro.scc.lut import NUM_ENTRIES, WINDOW_BYTES, LookupTable
from repro.scc.memmap import (
    MPB_BASE,
    PRIVATE_BASE,
    PRIVATE_WINDOW,
    SHARED_BASE,
    SegmentKind,
)
from repro.scc.mesh import Mesh


@pytest.fixture
def chip():
    return SCCChip(SCCConfig())


@pytest.fixture
def lut(chip):
    return chip.luts[0]


class TestDefaults:
    def test_private_window_mapped_cacheable(self, lut):
        addr = PRIVATE_BASE + 100
        system, entry = lut.translate(addr)
        assert entry.kind is SegmentKind.PRIVATE
        assert entry.cacheable
        assert system == addr

    def test_shared_windows_uncacheable(self, lut):
        _, entry = lut.translate(SHARED_BASE + 12345)
        assert entry.kind is SegmentKind.SHARED
        assert not entry.cacheable

    def test_mpb_window(self, lut):
        _, entry = lut.translate(MPB_BASE + 16)
        assert entry.kind is SegmentKind.MPB

    def test_each_core_maps_its_own_private_window(self, chip):
        lut5 = chip.luts[5]
        own = PRIVATE_BASE + 5 * PRIVATE_WINDOW
        _, entry = lut5.translate(own)
        assert entry.kind is SegmentKind.PRIVATE

    def test_foreign_private_window_unmapped(self, chip):
        other = PRIVATE_BASE + 7 * PRIVATE_WINDOW
        with pytest.raises(KeyError):
            chip.luts[0].translate(other)

    def test_destination_is_nearest_controller(self, chip):
        mesh = Mesh(chip.config)
        _, entry = chip.luts[47].translate(
            PRIVATE_BASE + 47 * PRIVATE_WINDOW)
        assert entry.destination == mesh.controller_of(47)

    def test_window_granularity(self, lut):
        first = lut.lookup(SHARED_BASE)
        same_window = lut.lookup(SHARED_BASE + WINDOW_BYTES - 1)
        next_window = lut.lookup(SHARED_BASE + WINDOW_BYTES)
        assert first is same_window
        assert next_window is not first

    def test_invalid_index_rejected(self, lut):
        with pytest.raises(ValueError):
            lut.map_window(NUM_ENTRIES, SegmentKind.SHARED, 0, False, 0)


class TestReconfiguration:
    def test_mark_shared_flips_kind(self, lut):
        addr = PRIVATE_BASE + 64
        lut.mark_shared(addr)
        _, entry = lut.translate(addr)
        assert entry.kind is SegmentKind.SHARED
        assert not entry.cacheable

    def test_mark_private_round_trip(self, lut):
        addr = PRIVATE_BASE + 64
        lut.mark_shared(addr)
        lut.mark_private(addr)
        _, entry = lut.translate(addr)
        assert entry.kind is SegmentKind.PRIVATE
        assert entry.cacheable

    def test_chip_honours_reconfigured_window(self, chip):
        """Flipping a private page to shared makes accesses pay the
        uncached DRAM cost — the ablation knob for 'what if this data
        were not cacheable'."""
        segment = chip.address_space.alloc_private(0, 64)
        chip.access_cost(0, segment.base)
        warm = chip.access_cost(0, segment.base)
        assert warm == chip.config.l1_hit_cycles

        chip.configure_window(0, segment.base, shared=True)
        uncached = chip.access_cost(0, segment.base)
        assert uncached > chip.config.l2_hit_cycles
        # and it stays uncached: no refill happened
        assert chip.access_cost(0, segment.base) == uncached

    def test_reconfiguration_invalidates_caches(self, chip):
        segment = chip.address_space.alloc_private(0, 64)
        chip.access_cost(0, segment.base)
        chip.configure_window(0, segment.base, shared=True)
        assert not chip.cores[0].l1.contains(segment.base)

    def test_other_cores_unaffected(self, chip):
        """LUTs are per-core: core 1's view of shared memory does not
        change when core 0 remaps a window."""
        shared = chip.address_space.alloc_shared(64)
        before = chip.access_cost(1, shared.base)
        chip.configure_window(0, PRIVATE_BASE, shared=True)
        assert chip.access_cost(1, shared.base) == before

    def test_flip_back_to_private_recaches(self, chip):
        segment = chip.address_space.alloc_private(0, 64)
        chip.configure_window(0, segment.base, shared=True)
        chip.configure_window(0, segment.base, shared=False)
        chip.access_cost(0, segment.base)
        assert chip.access_cost(0, segment.base) == \
            chip.config.l1_hit_cycles
