"""SCC configuration tests (Table 6.1)."""

import pytest

from repro.scc.config import (
    MAX_OPERATING_POINT,
    MIN_OPERATING_POINT,
    SCCConfig,
    Table61Config,
)


class TestDefaults:
    def test_geometry(self):
        config = SCCConfig()
        assert config.num_cores == 48
        assert config.num_tiles == 24
        assert config.cores_per_tile == 2

    def test_table_6_1_frequencies(self):
        config = Table61Config()
        assert config.core_freq_mhz == 800
        assert config.mesh_freq_mhz == 1600
        assert config.dram_freq_mhz == 1066

    def test_mpb_sizes(self):
        config = SCCConfig()
        assert config.mpb_bytes_per_core == 8 * 1024
        assert config.mpb_total_bytes == 384 * 1024

    def test_operating_envelope(self):
        assert MIN_OPERATING_POINT.voltage == pytest.approx(0.70)
        assert MIN_OPERATING_POINT.power_watts == 25
        assert MAX_OPERATING_POINT.freq_mhz == 1000
        assert MAX_OPERATING_POINT.power_watts == 125

    def test_seconds_from_cycles(self):
        config = Table61Config()
        assert config.seconds_from_cycles(800 * 10 ** 6) == \
            pytest.approx(1.0)

    def test_table_6_1_rows(self):
        rows = Table61Config().table_6_1(execution_units=32)
        by_param = {row["parameter"]: row for row in rows}
        assert by_param["Core Frequency"]["rcce"] == "800 MHz"
        assert by_param["Communication Network"]["pthreads"] == "1600 MHz"
        assert by_param["Off-chip Memory"]["rcce"] == "1066 MHz"
        assert by_param["Execution Units"]["rcce"] == "32 cores"
        assert by_param["Execution Units"]["pthreads"] == "32 threads"

    def test_invalid_core_count_rejected(self):
        with pytest.raises(ValueError):
            SCCConfig(num_cores=100)

    def test_zero_controllers_rejected(self):
        with pytest.raises(ValueError):
            SCCConfig(num_memory_controllers=0)

    def test_overrides(self):
        config = SCCConfig(core_freq_mhz=533, l1_size=4096)
        assert config.core_freq_mhz == 533
        assert config.l1_size == 4096
