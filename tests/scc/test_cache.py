"""Cache model tests, including hypothesis invariants."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.scc.cache import Cache


class TestBasics:
    def test_first_access_misses(self):
        cache = Cache(1024, 32, 2)
        assert cache.access(0) is False

    def test_second_access_hits(self):
        cache = Cache(1024, 32, 2)
        cache.access(0)
        assert cache.access(0) is True

    def test_same_line_hits(self):
        cache = Cache(1024, 32, 2)
        cache.access(0)
        assert cache.access(31) is True    # same 32B line
        assert cache.access(32) is False   # next line

    def test_geometry(self):
        cache = Cache(1024, 32, 2)
        assert cache.num_sets == 16

    def test_invalid_geometry_rejected(self):
        with pytest.raises(ValueError):
            Cache(1000, 32, 3)

    def test_stats(self):
        cache = Cache(1024, 32, 2)
        cache.access(0)
        cache.access(0)
        cache.access(64)
        assert cache.stats.hits == 1
        assert cache.stats.misses == 2
        assert cache.stats.hit_rate == pytest.approx(1 / 3)

    def test_invalidate_all(self):
        cache = Cache(1024, 32, 2)
        cache.access(0)
        cache.invalidate_all()
        assert cache.access(0) is False


class TestLRU:
    def make(self):
        # 2 ways, 1 set: line size 32, size 64
        return Cache(64, 32, 2)

    def test_eviction_of_lru(self):
        cache = self.make()
        cache.access(0)      # A
        cache.access(64)     # B (same set)
        cache.access(128)    # C evicts A
        assert cache.contains(64)
        assert not cache.contains(0)

    def test_touch_refreshes_lru(self):
        cache = self.make()
        cache.access(0)      # A
        cache.access(64)     # B
        cache.access(0)      # touch A
        cache.access(128)    # C evicts B (now LRU)
        assert cache.contains(0)
        assert not cache.contains(64)

    def test_eviction_counted(self):
        cache = self.make()
        for addr in (0, 64, 128):
            cache.access(addr)
        assert cache.stats.evictions == 1


class TestStreaming:
    def test_sequential_stream_hit_rate(self):
        """Sequential access over a large array: 1 miss per line."""
        cache = Cache(1024, 32, 2)
        for addr in range(0, 8192, 4):
            cache.access(addr)
        assert cache.stats.misses == 8192 // 32
        assert cache.stats.hits == 8192 // 4 - 8192 // 32

    def test_working_set_fits(self):
        cache = Cache(1024, 32, 4)
        for _ in range(3):
            for addr in range(0, 512, 4):
                cache.access(addr)
        # after the first pass everything hits
        assert cache.stats.misses == 512 // 32


class TestProperties:
    @settings(max_examples=100, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=100_000),
                    min_size=1, max_size=300))
    def test_occupancy_bounded_and_repeat_hits(self, addresses):
        cache = Cache(512, 32, 2)
        for addr in addresses:
            cache.access(addr)
        for cache_set in cache.sets.values():
            assert len(cache_set) <= cache.assoc
        assert all(0 <= index < cache.num_sets for index in cache.sets)
        # immediate re-access of the last address always hits
        assert cache.access(addresses[-1]) is True

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=10_000),
                    min_size=1, max_size=200))
    def test_stats_account_for_every_access(self, addresses):
        cache = Cache(256, 16, 2)
        for addr in addresses:
            cache.access(addr)
        assert cache.stats.accesses == len(addresses)
