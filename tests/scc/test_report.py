"""Chip report tests."""

import pytest

from repro.scc.chip import SCCChip
from repro.scc.config import SCCConfig
from repro.scc.memmap import SegmentKind
from repro.scc.report import chip_report, render_report, segment_mix


@pytest.fixture
def busy_chip():
    chip = SCCChip(SCCConfig())
    private = chip.address_space.alloc_private(0, 64)
    shared = chip.address_space.alloc_shared(64)
    chip.activate_core(0)
    for _ in range(10):
        chip.access_cost(0, private.base)
    for _ in range(5):
        chip.access_cost(0, shared.base)
    return chip


class TestChipReport:
    def test_only_active_cores_listed(self, busy_chip):
        report = chip_report(busy_chip)
        assert list(report["cores"]) == [0]

    def test_cache_rates_present(self, busy_chip):
        core0 = chip_report(busy_chip)["cores"][0]
        assert 0.0 <= core0["l1_hit_rate"] <= 1.0
        assert core0["l1_accesses"] == 10  # shared bypasses the caches

    def test_access_mix(self, busy_chip):
        core0 = chip_report(busy_chip)["cores"][0]
        assert core0["accesses"]["private"] == 10
        assert core0["accesses"]["shared"] == 5

    def test_controllers_traffic(self, busy_chip):
        report = chip_report(busy_chip)
        mc0 = report["controllers"][0]
        assert mc0["reads"] >= 5
        assert mc0["active_requesters"] == 1

    def test_power_in_envelope(self, busy_chip):
        report = chip_report(busy_chip)
        assert 25.0 <= report["power_watts"] <= 125.0

    def test_active_core_filter(self, busy_chip):
        report = chip_report(busy_chip, active_cores=[1, 2])
        assert report["cores"] == {}

    def test_config_block(self, busy_chip):
        config = chip_report(busy_chip)["config"]
        assert config["cores"] == 48
        assert config["core_freq_mhz"] == 800


class TestRendering:
    def test_render_contains_sections(self, busy_chip):
        text = render_report(chip_report(busy_chip))
        assert "chip: 48 cores @ 800 MHz" in text
        assert "core  0:" in text
        assert "memory controllers:" in text
        assert "power:" in text

    def test_render_quiet_chip(self):
        chip = SCCChip(SCCConfig())
        text = render_report(chip_report(chip))
        assert "cores:" not in text


class TestSegmentMix:
    def test_fractions_sum_to_one(self, busy_chip):
        mix = segment_mix(busy_chip, 0)
        assert sum(mix.values()) == pytest.approx(1.0)
        assert mix[SegmentKind.PRIVATE] == pytest.approx(10 / 15)

    def test_idle_core_all_zero(self, busy_chip):
        mix = segment_mix(busy_chip, 7)
        assert all(value == 0.0 for value in mix.values())
