"""DRAM controller, MPB, and address-space tests."""

import pytest

from repro.scc.config import SCCConfig
from repro.scc.dram import MemoryController
from repro.scc.memmap import (
    MPB_BASE,
    PRIVATE_BASE,
    SHARED_BASE,
    AddressSpace,
    OutOfMemoryError,
    SegmentKind,
)
from repro.scc.mesh import Mesh
from repro.scc.mpb import MessagePassingBuffer


@pytest.fixture
def config():
    return SCCConfig()


class TestMemoryController:
    def test_uncontended_cost(self, config):
        controller = MemoryController(0, config)
        assert controller.access_cycles("read") == \
            config.dram_base_cycles

    def test_hops_add_mesh_cycles(self, config):
        controller = MemoryController(0, config)
        cost = controller.access_cycles("read", hops=3)
        assert cost == config.dram_base_cycles + \
            3 * config.mesh_cycles_per_hop

    def test_queueing_grows_with_requesters(self, config):
        controller = MemoryController(0, config)
        for core in range(8):
            controller.register_requester(core)
        cost = controller.access_cycles("read")
        assert cost == config.dram_base_cycles + \
            7 * config.dram_queue_cycles

    def test_single_requester_no_queue(self, config):
        controller = MemoryController(0, config)
        controller.register_requester(0)
        assert controller.queue_depth == 0

    def test_unregister(self, config):
        controller = MemoryController(0, config)
        controller.register_requester(0)
        controller.register_requester(1)
        controller.unregister_requester(1)
        assert controller.queue_depth == 0

    def test_stats_accumulate(self, config):
        controller = MemoryController(0, config)
        controller.access_cycles("read")
        controller.access_cycles("write")
        assert controller.stats.reads == 1
        assert controller.stats.writes == 1
        assert controller.stats.busy_cycles == \
            2 * config.dram_base_cycles


class TestMPB:
    @pytest.fixture
    def mpb(self, config):
        return MessagePassingBuffer(config, Mesh(config))

    def test_local_access_cheapest(self, mpb, config):
        local = mpb.access_cycles(0, 0, "read")
        remote = mpb.access_cycles(47, 0, "read")
        assert local == config.mpb_base_cycles
        assert remote > local

    def test_owner_of_offset(self, mpb):
        assert mpb.owner_of_offset(0) == 0
        assert mpb.owner_of_offset(8 * 1024) == 1
        assert mpb.owner_of_offset(384 * 1024 - 1) == 47

    def test_offset_out_of_range(self, mpb):
        with pytest.raises(ValueError):
            mpb.owner_of_offset(384 * 1024)

    def test_bulk_cheaper_than_words(self, mpb):
        nbytes = 512
        word_cost = sum(mpb.access_cycles(0, 0, "read")
                        for _ in range(nbytes // 4))
        bulk_cost = mpb.bulk_transfer_cycles(0, 0, nbytes)
        assert bulk_cost < word_cost

    def test_stats(self, mpb):
        mpb.access_cycles(0, 0, "read", size=4)
        mpb.access_cycles(0, 0, "write", size=4)
        assert mpb.stats.reads == 1
        assert mpb.stats.writes == 1
        assert mpb.stats.bytes_moved == 8


class TestAddressSpace:
    @pytest.fixture
    def space(self, config):
        return AddressSpace(config)

    def test_private_allocation_per_core(self, space):
        a = space.alloc_private(0, 64)
        b = space.alloc_private(1, 64)
        assert space.classify(a.base) is SegmentKind.PRIVATE
        assert space.private_owner(a.base) == 0
        assert space.private_owner(b.base) == 1

    def test_private_bump(self, space):
        a = space.alloc_private(0, 64)
        b = space.alloc_private(0, 64)
        assert b.base >= a.end

    def test_shared_allocation(self, space):
        segment = space.alloc_shared(128, "arr")
        assert space.classify(segment.base) is SegmentKind.SHARED
        assert segment.label == "arr"

    def test_mpb_allocation_and_offset(self, space):
        segment = space.alloc_mpb(32)
        assert space.classify(segment.base) is SegmentKind.MPB
        assert space.mpb_offset(segment.base) == 0

    def test_mpb_exhaustion(self, space, config):
        space.alloc_mpb(config.mpb_total_bytes - 64)
        with pytest.raises(OutOfMemoryError):
            space.alloc_mpb(1024)

    def test_private_window_exhaustion(self, space):
        with pytest.raises(OutOfMemoryError):
            space.alloc_private(0, 20 * 1024 * 1024)

    def test_alignment(self, space):
        a = space.alloc_shared(5)
        b = space.alloc_shared(5)
        assert a.base % 8 == 0
        assert b.base % 8 == 0

    def test_classify_unknown_raises(self, space):
        with pytest.raises(ValueError):
            space.classify(0x123)

    def test_segment_contains(self, space):
        segment = space.alloc_shared(64)
        assert segment.base in segment
        assert segment.end not in segment

    def test_free_byte_accounting(self, space, config):
        before = space.mpb_free_bytes()
        space.alloc_mpb(64)
        assert space.mpb_free_bytes() == before - 64

    def test_bases_disjoint(self):
        assert PRIVATE_BASE < SHARED_BASE < MPB_BASE
