"""Assembled chip timing-model tests: the latency ordering that drives
every figure in the paper."""

import pytest

from repro.scc.chip import SCCChip
from repro.scc.config import SCCConfig
from repro.scc.memmap import SegmentKind


@pytest.fixture
def chip():
    return SCCChip(SCCConfig())


class TestPrivatePath:
    def test_cold_then_warm(self, chip):
        segment = chip.address_space.alloc_private(0, 64)
        cold = chip.access_cost(0, segment.base)
        warm = chip.access_cost(0, segment.base)
        assert cold > warm
        assert warm == chip.config.l1_hit_cycles

    def test_l2_hit_between_l1_and_dram(self, chip):
        segment = chip.address_space.alloc_private(0, 64)
        chip.access_cost(0, segment.base)          # fill L1+L2
        # blow L1 (8 KB, 2-way): touch 16 KB of other data
        filler = chip.address_space.alloc_private(0, 16 * 1024)
        for offset in range(0, 16 * 1024, 32):
            chip.access_cost(0, filler.base + offset)
        cost = chip.access_cost(0, segment.base)
        assert cost == chip.config.l2_hit_cycles

    def test_accesses_counted_per_segment(self, chip):
        segment = chip.address_space.alloc_private(0, 64)
        chip.access_cost(0, segment.base)
        assert chip.cores[0].accesses[SegmentKind.PRIVATE] == 1


class TestSharedPath:
    def test_shared_never_cached(self, chip):
        segment = chip.address_space.alloc_shared(64)
        first = chip.access_cost(0, segment.base)
        second = chip.access_cost(0, segment.base)
        assert first == second          # no caching, ever
        assert second > chip.config.l2_hit_cycles

    def test_contention_raises_cost(self, chip):
        segment = chip.address_space.alloc_shared(64)
        base = chip.access_cost(0, segment.base)
        for core in range(8):           # 8 cores on controller 0's quad
            chip.activate_core(core)
        contended = chip.access_cost(0, segment.base)
        assert contended > base

    def test_distance_to_controller_matters(self, chip):
        segment = chip.address_space.alloc_shared(64)
        near = chip.access_cost(0, segment.base)    # tile (0,0), ctrl 0
        far = chip.access_cost(4, segment.base)     # tile (2,0), 2 hops
        assert far > near


class TestMPBPath:
    def test_mpb_cheaper_than_shared_dram(self, chip):
        shared = chip.address_space.alloc_shared(64)
        mpb = chip.address_space.alloc_mpb(64)
        shared_cost = chip.access_cost(5, shared.base)
        mpb_cost = chip.access_cost(5, mpb.base, "write")
        assert mpb_cost < shared_cost

    def test_mpb_reads_cache_in_l1(self, chip):
        mpb = chip.address_space.alloc_mpb(64)
        cold = chip.access_cost(0, mpb.base, "read")
        warm = chip.access_cost(0, mpb.base, "read")
        assert warm == chip.config.l1_hit_cycles
        assert cold > warm

    def test_latency_hierarchy(self, chip):
        """The core ordering of the paper: L1 < MPB < shared DRAM."""
        private = chip.address_space.alloc_private(0, 64)
        mpb = chip.address_space.alloc_mpb(64)
        shared = chip.address_space.alloc_shared(64)
        chip.access_cost(0, private.base)
        l1 = chip.access_cost(0, private.base)
        mpb_cost = chip.access_cost(0, mpb.base, "write")
        shared_cost = chip.access_cost(0, shared.base)
        assert l1 < mpb_cost < shared_cost


class TestSyncCosts:
    def test_barrier_scales_with_cores(self, chip):
        assert chip.barrier_cost(32) > chip.barrier_cost(2)

    def test_lock_cost_scales_with_distance(self, chip):
        near = chip.lock_cost(0, 0)
        far = chip.lock_cost(0, 47)
        assert far > near

    def test_activate_deactivate_roundtrip(self, chip):
        chip.activate_core(0)
        controller = chip.controllers[chip.mesh.controller_of(0)]
        assert 0 in controller.active_requesters
        chip.deactivate_core(0)
        assert 0 not in controller.active_requesters


class TestPowerModel:
    def test_endpoint_calibration(self, chip):
        power = chip.power
        assert power.operating_point_power(0.70, 125) == \
            pytest.approx(25.0)
        assert power.operating_point_power(1.14, 1000) == \
            pytest.approx(125.0)

    def test_chip_power_between_endpoints(self, chip):
        watts = chip.power.chip_power_watts()
        assert 25.0 <= watts <= 125.0

    def test_lowering_one_domain_lowers_power(self, chip):
        before = chip.power.chip_power_watts()
        chip.power.set_domain_frequency(0, 125, voltage=0.70)
        assert chip.power.chip_power_watts() < before

    def test_chipwide_frequency_change(self, chip):
        chip.power.set_chip_frequency(125, voltage=0.70)
        assert chip.power.chip_power_watts() == pytest.approx(25.0)

    def test_domain_of_tile(self, chip):
        domain = chip.power.domain_of_tile(0)
        assert 0 in domain.tiles
