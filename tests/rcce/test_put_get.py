"""RCCE one-sided put/get tests (the primitives RCCE is built on)."""

import pytest

from repro.sim.runner import run_rcce


class TestPutGet:
    def test_put_then_get_round_trip(self):
        """Producer puts into its MPB buffer; consumer gets from it —
        the canonical RCCE data movement (paper §5: 'data moves from
        one core to another without either core accessing the off-chip
        shared memory')."""
        source = """
        #include <stdio.h>
        #include <RCCE.h>
        int RCCE_APP(int argc, char **argv) {
            RCCE_init(&argc, &argv);
            double *mpb = (double *)RCCE_malloc(4 * sizeof(double));
            double mine[4];
            double theirs[4];
            RCCE_FLAG ready;
            RCCE_flag_alloc(&ready);
            if (RCCE_ue() == 0) {
                for (int i = 0; i < 4; i++) mine[i] = 10.0 + i;
                RCCE_put(mpb, mine, 4 * sizeof(double), 0);
                RCCE_flag_write(&ready, RCCE_FLAG_SET, 1);
            } else {
                RCCE_wait_until(ready, RCCE_FLAG_SET);
                RCCE_get(theirs, mpb, 4 * sizeof(double), 0);
                printf("%.1f %.1f\\n", theirs[0], theirs[3]);
            }
            RCCE_finalize();
            return 0;
        }
        """
        result = run_rcce(source, 2)
        assert "10.0 13.0" in result.stdout()

    def test_put_charges_bulk_cost(self):
        """One bulk put must be cheaper than word-by-word stores."""
        bulk_source = """
        #include <RCCE.h>
        int RCCE_APP(int argc, char **argv) {
            RCCE_init(&argc, &argv);
            double *mpb = (double *)RCCE_malloc(64 * sizeof(double));
            double mine[64];
            RCCE_put(mpb, mine, 64 * sizeof(double), 0);
            return 0;
        }
        """
        wordwise_source = """
        #include <RCCE.h>
        int RCCE_APP(int argc, char **argv) {
            RCCE_init(&argc, &argv);
            double *mpb = (double *)RCCE_malloc(64 * sizeof(double));
            double mine[64];
            for (int i = 0; i < 64; i++) mpb[i] = mine[i];
            return 0;
        }
        """
        bulk = run_rcce(bulk_source, 1)
        wordwise = run_rcce(wordwise_source, 1)
        assert bulk.cycles < wordwise.cycles

    def test_get_into_private_buffer(self):
        source = """
        #include <stdio.h>
        #include <RCCE.h>
        int RCCE_APP(int argc, char **argv) {
            RCCE_init(&argc, &argv);
            int *mpb = (int *)RCCE_malloc(2 * sizeof(int));
            int local[2];
            mpb[0] = 3;
            mpb[1] = 4;
            RCCE_get(local, mpb, 2 * sizeof(int), RCCE_ue());
            printf("%d\\n", local[0] * local[1]);
            RCCE_finalize();
            return 0;
        }
        """
        result = run_rcce(source, 1)
        assert result.stdout() == "12\n"

    def test_put_with_bad_pointer_returns_error(self):
        source = """
        #include <stdio.h>
        #include <RCCE.h>
        int RCCE_APP(int argc, char **argv) {
            RCCE_init(&argc, &argv);
            printf("%d\\n", RCCE_put(0, 0, 16, 0));
            return 0;
        }
        """
        result = run_rcce(source, 1)
        assert result.stdout() == "-1\n"
