"""RCCE runtime emulation tests."""

import threading

import pytest

from repro.rcce.api import RCCEAllocationError, RCCEWorld
from repro.rcce.sync import ClockBarrier, TestAndSetRegisters
from repro.scc.chip import SCCChip
from repro.scc.config import SCCConfig
from repro.sim.runner import run_rcce


@pytest.fixture
def chip():
    return SCCChip(SCCConfig())


class TestWorld:
    def test_core_map_default_identity(self, chip):
        world = RCCEWorld(chip, 4)
        assert world.core_map == [0, 1, 2, 3]

    def test_custom_core_map(self, chip):
        world = RCCEWorld(chip, 2, core_map=[0, 47])
        assert world.runtime_for(1).core_id == 47

    def test_too_many_ues_rejected(self, chip):
        with pytest.raises(ValueError):
            RCCEWorld(chip, 49)

    def test_bad_core_map_rejected(self, chip):
        with pytest.raises(ValueError):
            RCCEWorld(chip, 2, core_map=[0])


class TestSymmetricHeap:
    def test_same_sequence_same_address(self, chip):
        world = RCCEWorld(chip, 2)
        a0 = world.shared_heap.allocate(0, 64)
        b0 = world.shared_heap.allocate(1, 64)
        assert a0.base == b0.base

    def test_distinct_allocations_distinct_addresses(self, chip):
        world = RCCEWorld(chip, 2)
        first = world.shared_heap.allocate(0, 64)
        second = world.shared_heap.allocate(0, 64)
        assert first.base != second.base

    def test_size_mismatch_detected(self, chip):
        world = RCCEWorld(chip, 2)
        world.shared_heap.allocate(0, 64)
        with pytest.raises(RCCEAllocationError):
            world.shared_heap.allocate(1, 128)

    def test_mpb_heap_separate(self, chip):
        world = RCCEWorld(chip, 2)
        shared = world.shared_heap.allocate(0, 64)
        mpb = world.mpb_heap.allocate(0, 64)
        assert chip.address_space.classify(shared.base).value == "shared"
        assert chip.address_space.classify(mpb.base).value == "mpb"


class TestClockBarrier:
    def test_aligns_clocks_to_max(self):
        barrier = ClockBarrier(3, cost_cycles=100)
        results = {}

        def participant(rank, clock):
            results[rank] = barrier.wait(rank, clock)

        threads = [threading.Thread(target=participant, args=(r, c))
                   for r, c in ((0, 500), (1, 900), (2, 100))]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert set(results.values()) == {1000}

    def test_multiple_rounds(self):
        barrier = ClockBarrier(2, cost_cycles=0)
        out = {0: [], 1: []}

        def participant(rank):
            clock = rank * 10
            for _ in range(3):
                clock = barrier.wait(rank, clock) + rank
                out[rank].append(clock)

        threads = [threading.Thread(target=participant, args=(r,))
                   for r in (0, 1)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert barrier.rounds == 3
        # both saw the same aligned base each round
        assert out[0][0] == 10 and out[1][0] == 11

    def test_single_party(self):
        barrier = ClockBarrier(1, cost_cycles=5)
        assert barrier.wait(0, 10) == 15


class TestTestAndSet:
    def test_acquire_release(self):
        registers = TestAndSetRegisters(4)
        registers.acquire(2)
        registers.release(2)
        assert registers.acquisitions[2] == 1

    def test_register_wraps_modulo_cores(self):
        registers = TestAndSetRegisters(4)
        registers.acquire(6)  # register 2
        registers.release(6)
        assert registers.acquisitions[2] == 1

    def test_release_unheld_is_noop(self):
        registers = TestAndSetRegisters(2)
        registers.release(0)  # must not raise

    def test_mutual_exclusion(self):
        registers = TestAndSetRegisters(1)
        counter = [0]

        def bump():
            for _ in range(200):
                registers.acquire(0)
                value = counter[0]
                counter[0] = value + 1
                registers.release(0)

        threads = [threading.Thread(target=bump) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert counter[0] == 800


class TestRCCEPrograms:
    def test_ue_and_num_ues(self):
        source = """
        #include <stdio.h>
        #include <RCCE.h>
        int RCCE_APP(int argc, char **argv) {
            RCCE_init(&argc, &argv);
            printf("%d/%d\\n", RCCE_ue(), RCCE_num_ues());
            RCCE_finalize();
            return 0;
        }
        """
        result = run_rcce(source, 3)
        assert result.stdout() == "0/3\n1/3\n2/3\n"

    def test_shmalloc_shared_across_cores(self):
        source = """
        #include <stdio.h>
        #include <RCCE.h>
        int RCCE_APP(int argc, char **argv) {
            RCCE_init(&argc, &argv);
            int *data = (int *)RCCE_shmalloc(sizeof(int) * 4);
            int me = RCCE_ue();
            data[me] = me + 1;
            RCCE_barrier(&RCCE_COMM_WORLD);
            int total = 0;
            for (int i = 0; i < 4; i++) total += data[i];
            printf("%d\\n", total);
            RCCE_finalize();
            return 0;
        }
        """
        result = run_rcce(source, 4)
        assert result.stdout() == "10\n10\n10\n10\n"

    def test_locks_protect_shared_counter(self):
        source = """
        #include <stdio.h>
        #include <RCCE.h>
        int RCCE_APP(int argc, char **argv) {
            RCCE_init(&argc, &argv);
            int *counter = (int *)RCCE_shmalloc(sizeof(int) * 1);
            for (int i = 0; i < 50; i++) {
                RCCE_acquire_lock(0);
                counter[0] = counter[0] + 1;
                RCCE_release_lock(0);
            }
            RCCE_barrier(&RCCE_COMM_WORLD);
            printf("%d\\n", counter[0]);
            RCCE_finalize();
            return 0;
        }
        """
        result = run_rcce(source, 4)
        assert result.stdout() == "200\n" * 4

    def test_barrier_aligns_per_core_cycles(self):
        source = """
        #include <RCCE.h>
        int RCCE_APP(int argc, char **argv) {
            RCCE_init(&argc, &argv);
            int me = RCCE_ue();
            int s = 0;
            for (int i = 0; i < me * 500; i++) s += i;
            RCCE_barrier(&RCCE_COMM_WORLD);
            RCCE_finalize();
            return 0;
        }
        """
        result = run_rcce(source, 4)
        clocks = list(result.per_core_cycles.values())
        # finalize barrier equalizes everything
        assert max(clocks) - min(clocks) == 0

    def test_runtime_is_slowest_core(self):
        source = """
        #include <RCCE.h>
        int RCCE_APP(int argc, char **argv) {
            RCCE_init(&argc, &argv);
            if (RCCE_ue() == 0) {
                int s = 0;
                for (int i = 0; i < 2000; i++) s += i;
            }
            return 0;
        }
        """
        result = run_rcce(source, 2)
        assert result.cycles == max(result.per_core_cycles.values())

    def test_mpb_malloc_fallback_counted(self):
        source = """
        #include <RCCE.h>
        int RCCE_APP(int argc, char **argv) {
            RCCE_init(&argc, &argv);
            double *big = (double *)RCCE_malloc(500000);
            big[0] = 1.0;
            RCCE_finalize();
            return 0;
        }
        """
        result = run_rcce(source, 2)
        assert result.stats["mpb_fallbacks"] >= 1

    def test_error_in_one_core_propagates(self):
        source = """
        #include <RCCE.h>
        int RCCE_APP(int argc, char **argv) {
            RCCE_init(&argc, &argv);
            if (RCCE_ue() == 1) {
                int z = 0;
                return 1 / z;
            }
            RCCE_barrier(&RCCE_COMM_WORLD);
            return 0;
        }
        """
        with pytest.raises(Exception):
            run_rcce(source, 2)

    def test_wtime_monotonic(self):
        source = """
        #include <stdio.h>
        #include <RCCE.h>
        int RCCE_APP(int argc, char **argv) {
            RCCE_init(&argc, &argv);
            double t0 = RCCE_wtime();
            int s = 0;
            for (int i = 0; i < 100; i++) s += i;
            double t1 = RCCE_wtime();
            printf("%d\\n", t1 > t0);
            return 0;
        }
        """
        result = run_rcce(source, 1)
        assert result.stdout() == "1\n"
