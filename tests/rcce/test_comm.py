"""RCCE two-sided communication, flags, collectives, power tests."""

import pytest

from repro.rcce.comm import (
    CollectiveArea,
    CommDeadlockError,
    FlagTable,
    REDUCE_OPS,
)
from repro.sim.runner import run_rcce


class TestFlagTable:
    def test_alloc_write_read(self):
        flags = FlagTable()
        flag = flags.alloc()
        assert flags.read(flag) == 0
        flags.write(flag, 1, clock=500)
        assert flags.read(flag) == 1

    def test_wait_until_immediate(self):
        flags = FlagTable()
        flag = flags.alloc()
        flags.write(flag, 1, clock=900)
        # waiter's clock advances to the writer's
        assert flags.wait_until(flag, 1, clock=100) == 900

    def test_wait_keeps_later_clock(self):
        flags = FlagTable()
        flag = flags.alloc()
        flags.write(flag, 1, clock=100)
        assert flags.wait_until(flag, 1, clock=5000) == 5000

    def test_free_then_use_raises(self):
        flags = FlagTable()
        flag = flags.alloc()
        flags.free(flag)
        with pytest.raises(CommDeadlockError):
            flags.read(flag)

    def test_distinct_ids(self):
        flags = FlagTable()
        assert flags.alloc() != flags.alloc()


class TestReduceOps:
    def test_all_ops_present(self):
        assert set(REDUCE_OPS) == {"sum", "max", "min", "prod"}

    def test_reduce_combines_elementwise(self):
        deposits = {0: [1, 5], 1: [2, 1], 2: [3, 3]}
        assert CollectiveArea.reduce(deposits, "sum") == [6, 9]
        assert CollectiveArea.reduce(deposits, "max") == [3, 5]
        assert CollectiveArea.reduce(deposits, "min") == [1, 1]
        assert CollectiveArea.reduce(deposits, "prod") == [6, 15]

    def test_unknown_op_raises(self):
        with pytest.raises(ValueError):
            CollectiveArea.reduce({0: [1]}, "xor")


class TestSendRecvPrograms:
    def test_ring_pass(self):
        """Each UE sends its rank to the next; values travel the ring."""
        source = """
        #include <stdio.h>
        #include <RCCE.h>
        int RCCE_APP(int argc, char **argv) {
            RCCE_init(&argc, &argv);
            int me = RCCE_ue();
            int n = RCCE_num_ues();
            int token[1];
            int incoming[1];
            token[0] = me * 100;
            if (me % 2 == 0) {
                RCCE_send(token, sizeof(int), (me + 1) % n);
                RCCE_recv(incoming, sizeof(int), (me + n - 1) % n);
            } else {
                RCCE_recv(incoming, sizeof(int), (me + n - 1) % n);
                RCCE_send(token, sizeof(int), (me + 1) % n);
            }
            printf("%d got %d\\n", me, incoming[0]);
            RCCE_finalize();
            return 0;
        }
        """
        result = run_rcce(source, 4)
        lines = sorted(result.stdout().strip().splitlines())
        assert lines == ["0 got 300", "1 got 0", "2 got 100",
                         "3 got 200"]

    def test_send_blocks_until_recv(self):
        """Synchronous semantics: the sender's clock includes the
        receiver's delay."""
        source = """
        #include <RCCE.h>
        int RCCE_APP(int argc, char **argv) {
            RCCE_init(&argc, &argv);
            int buf[1];
            if (RCCE_ue() == 0) {
                buf[0] = 7;
                RCCE_send(buf, sizeof(int), 1);
            } else {
                int s = 0;
                for (int i = 0; i < 3000; i++) s += i;
                RCCE_recv(buf, sizeof(int), 0);
            }
            return 0;
        }
        """
        result = run_rcce(source, 2)
        clocks = result.per_core_cycles
        # sender (core 0) finished no earlier than the busy receiver
        assert clocks[0] >= 0.9 * clocks[1]

    def test_multiword_payload(self):
        source = """
        #include <stdio.h>
        #include <RCCE.h>
        int RCCE_APP(int argc, char **argv) {
            RCCE_init(&argc, &argv);
            double data[4];
            if (RCCE_ue() == 0) {
                for (int i = 0; i < 4; i++) data[i] = i + 0.5;
                RCCE_send(data, 4 * sizeof(double), 1);
            } else {
                RCCE_recv(data, 4 * sizeof(double), 0);
                printf("%.1f %.1f\\n", data[0], data[3]);
            }
            RCCE_finalize();
            return 0;
        }
        """
        result = run_rcce(source, 2)
        assert "0.5 3.5" in result.stdout()


class TestFlagPrograms:
    def test_producer_consumer_flag(self):
        source = """
        #include <stdio.h>
        #include <RCCE.h>
        int RCCE_APP(int argc, char **argv) {
            RCCE_init(&argc, &argv);
            int *data = (int *)RCCE_shmalloc(sizeof(int) * 1);
            RCCE_FLAG ready;
            RCCE_flag_alloc(&ready);
            if (RCCE_ue() == 0) {
                data[0] = 1234;
                RCCE_flag_write(&ready, RCCE_FLAG_SET, 1);
            } else {
                RCCE_wait_until(ready, RCCE_FLAG_SET);
                printf("%d\\n", data[0]);
            }
            RCCE_finalize();
            return 0;
        }
        """
        result = run_rcce(source, 2)
        assert "1234" in result.stdout()

    def test_flag_read_into_pointer(self):
        source = """
        #include <stdio.h>
        #include <RCCE.h>
        int RCCE_APP(int argc, char **argv) {
            RCCE_init(&argc, &argv);
            RCCE_FLAG f;
            int value;
            RCCE_flag_alloc(&f);
            RCCE_flag_write(&f, RCCE_FLAG_SET, RCCE_ue());
            RCCE_flag_read(f, &value, RCCE_ue());
            printf("%d\\n", value);
            RCCE_finalize();
            return 0;
        }
        """
        result = run_rcce(source, 1)
        assert result.stdout() == "1\n"


class TestCollectives:
    def test_bcast(self):
        source = """
        #include <stdio.h>
        #include <RCCE.h>
        int RCCE_APP(int argc, char **argv) {
            RCCE_init(&argc, &argv);
            int data[2];
            if (RCCE_ue() == 0) { data[0] = 5; data[1] = 9; }
            RCCE_bcast(data, 2 * sizeof(int), 0, RCCE_COMM_WORLD);
            printf("%d%d\\n", data[0], data[1]);
            RCCE_finalize();
            return 0;
        }
        """
        result = run_rcce(source, 4)
        assert result.stdout() == "59\n" * 4

    def test_reduce_sum_to_root(self):
        source = """
        #include <stdio.h>
        #include <RCCE.h>
        int RCCE_APP(int argc, char **argv) {
            RCCE_init(&argc, &argv);
            int mine[1];
            int total[1];
            total[0] = -1;
            mine[0] = RCCE_ue() + 1;
            RCCE_reduce(mine, total, 1, RCCE_INT, RCCE_SUM, 0,
                        RCCE_COMM_WORLD);
            printf("%d\\n", total[0]);
            RCCE_finalize();
            return 0;
        }
        """
        result = run_rcce(source, 4)
        lines = result.stdout().strip().splitlines()
        assert lines[0] == "10"            # root has the sum
        assert lines[1:] == ["-1"] * 3     # others untouched

    def test_allreduce_max(self):
        source = """
        #include <stdio.h>
        #include <RCCE.h>
        int RCCE_APP(int argc, char **argv) {
            RCCE_init(&argc, &argv);
            double mine[1];
            double top[1];
            mine[0] = (RCCE_ue() + 1) * 1.5;
            RCCE_allreduce(mine, top, 1, RCCE_DOUBLE, RCCE_MAX,
                           RCCE_COMM_WORLD);
            printf("%.1f\\n", top[0]);
            RCCE_finalize();
            return 0;
        }
        """
        result = run_rcce(source, 3)
        assert result.stdout() == "4.5\n" * 3

    def test_consecutive_collectives_do_not_mix(self):
        source = """
        #include <stdio.h>
        #include <RCCE.h>
        int RCCE_APP(int argc, char **argv) {
            RCCE_init(&argc, &argv);
            int mine[1];
            int out[1];
            mine[0] = 1;
            RCCE_allreduce(mine, out, 1, RCCE_INT, RCCE_SUM,
                           RCCE_COMM_WORLD);
            int first = out[0];
            mine[0] = 2;
            RCCE_allreduce(mine, out, 1, RCCE_INT, RCCE_SUM,
                           RCCE_COMM_WORLD);
            printf("%d %d\\n", first, out[0]);
            RCCE_finalize();
            return 0;
        }
        """
        result = run_rcce(source, 4)
        assert result.stdout() == "4 8\n" * 4

    def test_comm_rank_and_size(self):
        source = """
        #include <stdio.h>
        #include <RCCE.h>
        int RCCE_APP(int argc, char **argv) {
            RCCE_init(&argc, &argv);
            int rank;
            int size;
            RCCE_comm_rank(RCCE_COMM_WORLD, &rank);
            RCCE_comm_size(RCCE_COMM_WORLD, &size);
            printf("%d/%d\\n", rank, size);
            return 0;
        }
        """
        result = run_rcce(source, 2)
        assert result.stdout() == "0/2\n1/2\n"


class TestPowerAPI:
    def test_power_domain_query(self):
        source = """
        #include <stdio.h>
        #include <RCCE.h>
        int RCCE_APP(int argc, char **argv) {
            RCCE_init(&argc, &argv);
            printf("%d\\n", RCCE_power_domain());
            return 0;
        }
        """
        result = run_rcce(source, 1)
        assert result.stdout() == "0\n"

    def test_iset_power_lowers_chip_power(self):
        from repro.scc.chip import SCCChip
        from repro.scc.config import Table61Config
        chip = SCCChip(Table61Config())
        before = chip.power.chip_power_watts()
        source = """
        #include <RCCE.h>
        int RCCE_APP(int argc, char **argv) {
            RCCE_init(&argc, &argv);
            RCCE_iset_power(4);
            RCCE_wait_power();
            return 0;
        }
        """
        run_rcce(source, 1, chip.config, chip)
        assert chip.power.chip_power_watts() < before
