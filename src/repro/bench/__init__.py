"""Benchmark corpus and experiment harness.

``programs`` holds the Pthreads C sources of the paper's six benchmarks
(Appendix C); ``workloads`` the scaled problem sizes; ``harness`` runs
the full experiment matrix (translate + simulate in each configuration);
``figures``/``tables`` regenerate every figure and table of the paper's
evaluation.
"""

from repro.bench.programs import (
    BENCHMARKS,
    EXAMPLE_4_1,
    benchmark_names,
    benchmark_source,
)
from repro.bench.workloads import Workload, default_workloads, scaled_config
from repro.bench.harness import ExperimentHarness, BenchmarkRun

__all__ = [
    "BENCHMARKS",
    "EXAMPLE_4_1",
    "benchmark_names",
    "benchmark_source",
    "Workload",
    "default_workloads",
    "scaled_config",
    "ExperimentHarness",
    "BenchmarkRun",
]
