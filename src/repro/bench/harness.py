"""The experiment harness: translate + simulate every configuration.

Three configurations per benchmark, matching the paper's evaluation:

* ``pthread``  — the original 32-thread program on ONE core (baseline);
* ``rcce-off`` — translated, all shared data in off-chip shared DRAM
  (Figure 6.1's configuration);
* ``rcce-on``  — translated, shared data partitioned onto the on-chip
  MPB by Stage 4's Algorithm 3 (Figure 6.2's configuration).

Every RCCE run's program output is checked against the baseline's, so a
translation bug cannot silently produce a fast-but-wrong result.
"""

from repro.core.framework import TranslationFramework
from repro.obs.profile import PipelineProfiler
from repro.scc.chip import SCCChip
from repro.sim.runner import run_pthread_single_core, run_rcce
from repro.bench.programs import benchmark_source
from repro.bench.workloads import (
    SCALED_ON_CHIP_CAPACITY,
    default_workloads,
    scaled_config,
)


class VerificationError(Exception):
    """A translated program produced different results than the
    original multithreaded program."""


class BenchmarkRun:
    """One (benchmark, configuration) measurement."""

    __slots__ = ("benchmark", "configuration", "result", "num_ues",
                 "instrumentation")

    def __init__(self, benchmark, configuration, result, num_ues,
                 instrumentation=None):
        self.benchmark = benchmark
        self.configuration = configuration
        self.result = result
        self.num_ues = num_ues
        # observability snapshot: {"profile": stage spans,
        # "stages": stage summary, "metrics": registry snapshot}
        self.instrumentation = instrumentation or {}

    @property
    def cycles(self):
        return self.result.cycles

    @property
    def seconds(self):
        return self.result.seconds

    def result_line(self):
        """The program's answer line (first stdout line)."""
        lines = self.result.stdout().strip().splitlines()
        return lines[0] if lines else ""

    def __repr__(self):
        return "BenchmarkRun(%s/%s: %d cycles)" % (
            self.benchmark, self.configuration, self.cycles)


class ExperimentHarness:
    """Runs and caches the full benchmark matrix."""

    def __init__(self, num_ues=32, workloads=None, config_factory=None,
                 on_chip_capacity=SCALED_ON_CHIP_CAPACITY,
                 verify=True, max_steps=500_000_000, engine="compiled"):
        self.num_ues = num_ues
        self.workloads = workloads or default_workloads()
        self.config_factory = config_factory or scaled_config
        self.on_chip_capacity = on_chip_capacity
        self.verify = verify
        self.max_steps = max_steps
        self.engine = engine  # interpreter engine: "compiled" or "tree"
        self._cache = {}

    # -- sources -----------------------------------------------------------

    def source_for(self, name, nthreads=None):
        workload = self.workloads[name]
        return benchmark_source(name, nthreads or self.num_ues,
                                **workload.sizes)

    def framework(self, policy, profiler=None):
        return TranslationFramework(
            on_chip_capacity=self.on_chip_capacity,
            partition_policy=policy, profiler=profiler)

    def _fresh_chip(self):
        return SCCChip(self.config_factory())

    # -- individual runs ---------------------------------------------------------

    def run(self, name, configuration, num_ues=None):
        """Run (and cache) one benchmark in one configuration.

        ``configuration`` is 'pthread', 'rcce-off', or 'rcce-on'.
        """
        num_ues = num_ues or self.num_ues
        key = (name, configuration, num_ues)
        if key in self._cache:
            return self._cache[key]

        source = self.source_for(name, nthreads=num_ues)
        profiler = PipelineProfiler()
        if configuration == "pthread":
            chip = self._fresh_chip()
            with profiler.span("simulate"):
                result = run_pthread_single_core(
                    source, chip.config, chip, max_steps=self.max_steps,
                    engine=self.engine)
        elif configuration in ("rcce-off", "rcce-on"):
            policy = ("off-chip-only" if configuration == "rcce-off"
                      else "size")
            translated = self.framework(policy, profiler).translate(
                source)
            chip = self._fresh_chip()
            with profiler.span("simulate"):
                result = run_rcce(translated.unit, num_ues, chip.config,
                                  chip, max_steps=self.max_steps,
                                  engine=self.engine)
            if self.verify:
                self._verify(name, result, num_ues)
        else:
            raise ValueError("unknown configuration %r" % configuration)

        instrumentation = {
            "profile": profiler.report(),
            "stages": profiler.stage_summary(),
            "metrics": result.metrics,
        }
        run = BenchmarkRun(name, configuration, result, num_ues,
                           instrumentation)
        self._cache[key] = run
        return run

    def _verify(self, name, rcce_result, num_ues):
        baseline = self.run(name, "pthread", num_ues)
        expected = baseline.result_line()
        lines = rcce_result.stdout().strip().splitlines()
        if not lines:
            raise VerificationError(
                "%s: translated program produced no output" % name)
        # every UE prints the (identical) answer; all must match
        mismatched = [line for line in lines if line != expected]
        if mismatched:
            raise VerificationError(
                "%s: translated output %r != baseline %r"
                % (name, mismatched[0], expected))

    # -- experiment matrices ---------------------------------------------------------

    def figure_6_1(self, benchmarks=None):
        """Fig. 6.1 — RCCE (off-chip shared memory, N cores) speedup
        over the N-thread Pthreads program on one core."""
        rows = []
        for name in benchmarks or list(self.workloads):
            baseline = self.run(name, "pthread")
            rcce = self.run(name, "rcce-off")
            rows.append({
                "benchmark": name,
                "pthread_1core_cycles": baseline.cycles,
                "rcce_offchip_cycles": rcce.cycles,
                "speedup": baseline.cycles / rcce.cycles,
            })
        return rows

    def figure_6_2(self, benchmarks=None):
        """Fig. 6.2 — off-chip vs on-chip (MPB) RCCE runtimes."""
        rows = []
        for name in benchmarks or list(self.workloads):
            off = self.run(name, "rcce-off")
            on = self.run(name, "rcce-on")
            rows.append({
                "benchmark": name,
                "rcce_offchip_cycles": off.cycles,
                "rcce_onchip_cycles": on.cycles,
                "improvement": off.cycles / on.cycles,
            })
        return rows

    def figure_6_3(self, benchmark="pi", core_counts=(1, 2, 4, 8, 16, 32)):
        """Fig. 6.3 — speedup over the single-core Pthread application
        with varying RCCE core count."""
        rows = []
        for cores in core_counts:
            baseline = self.run(benchmark, "pthread", num_ues=cores)
            rcce = self.run(benchmark, "rcce-on", num_ues=cores)
            rows.append({
                "cores": cores,
                "pthread_cycles": baseline.cycles,
                "rcce_cycles": rcce.cycles,
                "speedup": baseline.cycles / rcce.cycles,
            })
        return rows

    def average_onchip_improvement(self, benchmarks=None):
        """The paper's headline "8x on average" (geometric mean is the
        right mean for ratios)."""
        rows = self.figure_6_2(benchmarks)
        product = 1.0
        for row in rows:
            product *= row["improvement"]
        return product ** (1.0 / len(rows))
