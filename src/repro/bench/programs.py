"""The benchmark corpus: Pthreads C sources (paper §5.2, Appendix C).

Six multithreaded programs in the paper's three workload categories —
linear algebra (LU Decomposition, Dot Product), approximation / number
theory (Pi Approximation, Count Primes, 3-5-Sum), and memory operations
(Stream with its Copy/Scale/Add/Triad kernels).

Each source is parameterized by thread count and problem size so the
harness can sweep them; every worker initializes and computes on its own
disjoint slice, the way the paper's divide-and-conquer benchmarks split
"the same type of computation" across thread IDs.
"""

EXAMPLE_4_1 = r'''
#include <stdio.h>
#include <pthread.h>

int global;
int *ptr;
int sum[3] = {0};

void *tf(void *tid) {
    int tLocal = (int)tid;
    sum[tLocal] += tLocal;
    sum[tLocal] += *ptr;
    pthread_exit(NULL);
}

int main() {
    int local = 0;
    int tmp = 1;
    ptr = &tmp;
    pthread_t threads[3];
    int rc;
    for(local = 0; local < 3; local++) {
        rc = pthread_create(&threads[local], NULL, tf, (void *)local);
    }
    for(local = 0; local < 3; local++) {
        pthread_join(threads[local], NULL);
        printf("Sum Array: %d\n", sum[local]);
    }
    return 0;
}
'''


def pi_approximation(nthreads=32, steps=16384):
    """Algorithm 12 — midpoint-rule quadrature of 4/(1+x^2).

    Cyclic iteration distribution: perfectly balanced, compute-bound
    (one FDIV per step), so it shows the best scaling (paper: 32x)."""
    return r'''
#include <stdio.h>
#include <pthread.h>

#define NTHREADS %(nthreads)d
#define STEPS %(steps)d

double partial[%(nthreads)d];

void *pi_worker(void *tid) {
    int id = (int)tid;
    int i;
    double x;
    double sum = 0.0;
    double step = 1.0 / STEPS;
    for (i = id; i < STEPS; i += NTHREADS) {
        x = (i + 0.5) * step;
        sum = sum + 4.0 / (1.0 + x * x);
    }
    partial[id] = sum;
    pthread_exit(NULL);
}

int main() {
    pthread_t threads[%(nthreads)d];
    int t;
    double pi = 0.0;
    for (t = 0; t < NTHREADS; t++) {
        pthread_create(&threads[t], NULL, pi_worker, (void *)t);
    }
    for (t = 0; t < NTHREADS; t++) {
        pthread_join(threads[t], NULL);
    }
    for (t = 0; t < NTHREADS; t++) {
        pi += partial[t];
    }
    pi = pi / STEPS;
    printf("pi = %%.6f\n", pi);
    return 0;
}
''' % {"nthreads": nthreads, "steps": steps}


def sum35(nthreads=32, limit=16384):
    """3-5-Sum — sum the multiples of 3 and 5 below ``limit``.

    Cyclic distribution, pure integer arithmetic with two modulos per
    candidate; balanced, so it scales almost as well as Pi (paper: 29x).
    """
    return r'''
#include <stdio.h>
#include <pthread.h>

#define NTHREADS %(nthreads)d
#define LIMIT %(limit)d

long partial[%(nthreads)d];

void *sum_worker(void *tid) {
    int id = (int)tid;
    long i;
    long local_sum = 0;
    for (i = id; i < LIMIT; i += NTHREADS) {
        if (i %% 3 == 0 || i %% 5 == 0) {
            local_sum += i;
        }
    }
    partial[id] = local_sum;
    pthread_exit(NULL);
}

int main() {
    pthread_t threads[%(nthreads)d];
    int t;
    long total = 0;
    for (t = 0; t < NTHREADS; t++) {
        pthread_create(&threads[t], NULL, sum_worker, (void *)t);
    }
    for (t = 0; t < NTHREADS; t++) {
        pthread_join(threads[t], NULL);
    }
    for (t = 0; t < NTHREADS; t++) {
        total += partial[t];
    }
    printf("sum35 = %%ld\n", total);
    return 0;
}
''' % {"nthreads": nthreads, "limit": limit}


def count_primes(nthreads=32, limit=2048):
    """Algorithm 11 — trial-division prime counting.

    *Block* distribution: thread t tests [t*L/N, (t+1)*L/N).  Trial
    division cost grows with the candidate, so high blocks do far more
    work — the load imbalance that caps the paper's speedup at 16x."""
    return r'''
#include <stdio.h>
#include <pthread.h>

#define NTHREADS %(nthreads)d
#define LIMIT %(limit)d

int partial[%(nthreads)d];

void *prime_worker(void *tid) {
    int id = (int)tid;
    int chunk = LIMIT / NTHREADS;
    int lo = id * chunk;
    int hi = lo + chunk;
    int i;
    int j;
    int prime;
    int count = 0;
    if (id == NTHREADS - 1) {
        hi = LIMIT;
    }
    if (lo < 2) {
        lo = 2;
    }
    for (i = lo; i < hi; i++) {
        prime = 1;
        for (j = 2; j < i; j++) {
            if (i %% j == 0) {
                prime = 0;
                break;
            }
        }
        count += prime;
    }
    partial[id] = count;
    pthread_exit(NULL);
}

int main() {
    pthread_t threads[%(nthreads)d];
    int t;
    int total = 0;
    for (t = 0; t < NTHREADS; t++) {
        pthread_create(&threads[t], NULL, prime_worker, (void *)t);
    }
    for (t = 0; t < NTHREADS; t++) {
        pthread_join(threads[t], NULL);
    }
    for (t = 0; t < NTHREADS; t++) {
        total += partial[t];
    }
    printf("primes = %%d\n", total);
    return 0;
}
''' % {"nthreads": nthreads, "limit": limit}


def stream(nthreads=32, n=1024):
    """Algorithms 13-16 — the four STREAM kernels on shared arrays.

    Every element access touches the big shared arrays, so this is the
    memory-operations benchmark: uncached shared DRAM hurts it most and
    the on-die MPB helps it most (paper Figures 6.1 / 6.2)."""
    return r'''
#include <stdio.h>
#include <pthread.h>

#define NTHREADS %(nthreads)d
#define N %(n)d

double a[%(n)d];
double b[%(n)d];
double c[%(n)d];
double checksum[%(nthreads)d];

void *stream_worker(void *tid) {
    int id = (int)tid;
    int chunk = N / NTHREADS;
    int lo = id * chunk;
    int hi = lo + chunk;
    int j;
    double local = 0.0;
    if (id == NTHREADS - 1) {
        hi = N;
    }
    for (j = lo; j < hi; j++) {
        a[j] = 1.0 + j;
        b[j] = 2.0;
    }
    for (j = lo; j < hi; j++) {
        c[j] = a[j];
    }
    for (j = lo; j < hi; j++) {
        b[j] = 3.0 * c[j];
    }
    for (j = lo; j < hi; j++) {
        c[j] = a[j] + b[j];
    }
    for (j = lo; j < hi; j++) {
        a[j] = b[j] + 3.0 * c[j];
    }
    for (j = lo; j < hi; j++) {
        local += a[j];
    }
    checksum[id] = local;
    pthread_exit(NULL);
}

int main() {
    pthread_t threads[%(nthreads)d];
    int t;
    double total = 0.0;
    for (t = 0; t < NTHREADS; t++) {
        pthread_create(&threads[t], NULL, stream_worker, (void *)t);
    }
    for (t = 0; t < NTHREADS; t++) {
        pthread_join(threads[t], NULL);
    }
    for (t = 0; t < NTHREADS; t++) {
        total += checksum[t];
    }
    printf("stream checksum = %%.1f\n", total);
    return 0;
}
''' % {"nthreads": nthreads, "n": n}


def dot_product(nthreads=32, n=2048):
    """Dot Product — two large shared vectors, per-thread partial sums.

    Memory-bound with two streamed arrays; with 32 cores that is "at
    least 8 cores in contention per memory controller" (paper §6), so
    off-chip scaling trails the compute-bound benchmarks."""
    return r'''
#include <stdio.h>
#include <pthread.h>

#define NTHREADS %(nthreads)d
#define N %(n)d

double x[%(n)d];
double y[%(n)d];
double partial[%(nthreads)d];

void *dot_worker(void *tid) {
    int id = (int)tid;
    int chunk = N / NTHREADS;
    int lo = id * chunk;
    int hi = lo + chunk;
    int j;
    double local = 0.0;
    if (id == NTHREADS - 1) {
        hi = N;
    }
    for (j = lo; j < hi; j++) {
        x[j] = 0.5 + j;
        y[j] = 2.0;
    }
    for (j = lo; j < hi; j++) {
        local += x[j] * y[j];
    }
    partial[id] = local;
    pthread_exit(NULL);
}

int main() {
    pthread_t threads[%(nthreads)d];
    int t;
    double result = 0.0;
    for (t = 0; t < NTHREADS; t++) {
        pthread_create(&threads[t], NULL, dot_worker, (void *)t);
    }
    for (t = 0; t < NTHREADS; t++) {
        pthread_join(threads[t], NULL);
    }
    for (t = 0; t < NTHREADS; t++) {
        result += partial[t];
    }
    printf("dot = %%.1f\n", result);
    return 0;
}
''' % {"nthreads": nthreads, "n": n}


def lu_decomposition(nthreads=32, batch=32, dim=20):
    """LU Decomposition — a batch of in-place Doolittle factorizations.

    Threads take matrices cyclically from a shared batch; the batch is
    sized to exceed the on-chip shared capacity, so the MPB cannot hold
    it and the on-chip variant gains little (paper Figure 6.2: "the
    matrix within that program does not fit into the on-chip shared
    memory")."""
    return r'''
#include <stdio.h>
#include <pthread.h>

#define NTHREADS %(nthreads)d
#define BATCH %(batch)d
#define DIM %(dim)d

double mats[%(total)d];
double checksum[%(nthreads)d];

void *lu_worker(void *tid) {
    int id = (int)tid;
    int m;
    int i;
    int j;
    int k;
    double factor;
    double local = 0.0;
    for (m = id; m < BATCH; m += NTHREADS) {
        double *mat = &mats[m * DIM * DIM];
        for (i = 0; i < DIM; i++) {
            for (j = 0; j < DIM; j++) {
                if (i == j) {
                    mat[i * DIM + j] = DIM + 1.0;
                } else {
                    mat[i * DIM + j] = 1.0;
                }
            }
        }
        for (k = 0; k < DIM - 1; k++) {
            for (i = k + 1; i < DIM; i++) {
                factor = mat[i * DIM + k] / mat[k * DIM + k];
                mat[i * DIM + k] = factor;
                for (j = k + 1; j < DIM; j++) {
                    mat[i * DIM + j] = mat[i * DIM + j]
                        - factor * mat[k * DIM + j];
                }
            }
        }
        for (i = 0; i < DIM; i++) {
            local += mat[i * DIM + i];
        }
    }
    checksum[id] = local;
    pthread_exit(NULL);
}

int main() {
    pthread_t threads[%(nthreads)d];
    int t;
    double total = 0.0;
    for (t = 0; t < NTHREADS; t++) {
        pthread_create(&threads[t], NULL, lu_worker, (void *)t);
    }
    for (t = 0; t < NTHREADS; t++) {
        pthread_join(threads[t], NULL);
    }
    for (t = 0; t < NTHREADS; t++) {
        total += checksum[t];
    }
    printf("lu checksum = %%.4f\n", total);
    return 0;
}
''' % {"nthreads": nthreads, "batch": batch, "dim": dim,
       "total": batch * dim * dim}


_STREAM_KERNEL_BODIES = {
    # Algorithms 13-16, each over the thread's slice
    "copy": "c[j] = a[j];",
    "scale": "b[j] = 3.0 * c[j];",
    "add": "c[j] = a[j] + b[j];",
    "triad": "a[j] = b[j] + 3.0 * c[j];",
}


def stream_kernel(kernel, nthreads=32, n=1024):
    """One isolated STREAM kernel (Appendix C, Algorithms 13-16).

    The combined ``stream`` benchmark runs all four back to back; these
    single-kernel variants let the harness time Copy / Scale / Add /
    Triad separately, the way STREAM reports them."""
    if kernel not in _STREAM_KERNEL_BODIES:
        raise KeyError("unknown stream kernel %r (have: %s)"
                       % (kernel, ", ".join(_STREAM_KERNEL_BODIES)))
    return r'''
#include <stdio.h>
#include <pthread.h>

#define NTHREADS %(nthreads)d
#define N %(n)d

double a[%(n)d];
double b[%(n)d];
double c[%(n)d];
double checksum[%(nthreads)d];

void *kernel_worker(void *tid) {
    int id = (int)tid;
    int chunk = N / NTHREADS;
    int lo = id * chunk;
    int hi = lo + chunk;
    int j;
    double local = 0.0;
    if (id == NTHREADS - 1) {
        hi = N;
    }
    for (j = lo; j < hi; j++) {
        a[j] = 1.0 + j;
        b[j] = 2.0;
        c[j] = 0.5 * j;
    }
    for (j = lo; j < hi; j++) {
        %(body)s
    }
    for (j = lo; j < hi; j++) {
        local += a[j] + b[j] + c[j];
    }
    checksum[id] = local;
    pthread_exit(NULL);
}

int main(void) {
    pthread_t threads[%(nthreads)d];
    int t;
    double total = 0.0;
    for (t = 0; t < NTHREADS; t++) {
        pthread_create(&threads[t], NULL, kernel_worker, (void *)t);
    }
    for (t = 0; t < NTHREADS; t++) {
        pthread_join(threads[t], NULL);
    }
    for (t = 0; t < NTHREADS; t++) {
        total += checksum[t];
    }
    printf("%(kernel)s checksum = %%.1f\n", total);
    return 0;
}
''' % {"nthreads": nthreads, "n": n,
       "body": _STREAM_KERNEL_BODIES[kernel], "kernel": kernel}


STREAM_KERNELS = tuple(_STREAM_KERNEL_BODIES)

BENCHMARKS = {
    "pi": pi_approximation,
    "sum35": sum35,
    "primes": count_primes,
    "stream": stream,
    "dot": dot_product,
    "lu": lu_decomposition,
}

# The paper's workload categories (§5.2).
CATEGORIES = {
    "pi": "approximation / number theory",
    "sum35": "approximation / number theory",
    "primes": "approximation / number theory",
    "stream": "memory operations",
    "dot": "linear algebra",
    "lu": "linear algebra",
}


def benchmark_names():
    return list(BENCHMARKS)


def benchmark_source(name, nthreads=32, **sizes):
    """The Pthreads C source of benchmark ``name``."""
    if name not in BENCHMARKS:
        raise KeyError("unknown benchmark %r (have: %s)"
                       % (name, ", ".join(BENCHMARKS)))
    return BENCHMARKS[name](nthreads=nthreads, **sizes)
