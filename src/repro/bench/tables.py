"""Table regenerators for the paper's Tables 4.1, 4.2 and 6.1."""

from repro.core.framework import TranslationFramework
from repro.core import reports
from repro.scc.config import Table61Config
from repro.bench.programs import EXAMPLE_4_1

# The paper's hand-made Table 4.1 (thesis page 19), for comparison.
PAPER_TABLE_4_1 = {
    "global": {"type": "int", "size": 1, "rd": 0, "wr": 0},
    "ptr": {"type": "int*", "size": 1, "rd": 1, "wr": 1},
    "sum": {"type": "int*", "size": 3, "rd": 2, "wr": 2},
    "tLocal": {"type": "int", "size": 1, "rd": 3, "wr": 1},
    "tid": {"type": "n/a", "size": "n/a", "rd": 1, "wr": 0},
    "local": {"type": "int", "size": 1, "rd": 8, "wr": 4},
    "tmp": {"type": "int", "size": 1, "rd": 1, "wr": 1},
    "threads": {"type": "pthread t*", "size": 3, "rd": 2, "wr": 0},
    "rc": {"type": "int", "size": 1, "rd": 0, "wr": 3},
}

# The paper's Table 4.2 (thesis page 21).
PAPER_TABLE_4_2 = {
    "global": ("true", "true", "false"),
    "ptr": ("true", "true", "true"),
    "sum": ("true", "true", "true"),
    "tLocal": ("null", "false", "false"),
    "tid": ("null", "false", "false"),
    "local": ("null", "false", "false"),
    "tmp": ("null", "false", "true"),
    "threads": ("null", "false", "false"),
    "rc": ("null", "false", "false"),
}


def _analyzed_example():
    framework = TranslationFramework()
    return framework.analyze(EXAMPLE_4_1)


def table_4_1(result=None):
    """Table 4.1 rows for the running example (or any analysis)."""
    result = result or _analyzed_example()
    return reports.table_4_1(result)


def table_4_2(result=None):
    """Table 4.2 rows for the running example (or any analysis)."""
    result = result or _analyzed_example()
    return reports.table_4_2(result)


def table_6_1(config=None, execution_units=32):
    """Table 6.1 — the SCC configuration rows."""
    config = config or Table61Config()
    return config.table_6_1(execution_units)


def format_table(rows, columns=None, title=None):
    return reports.format_table(rows, columns, title)
