"""Scaled workloads and the scaled simulation configuration.

The paper's runs use full-size workloads on real silicon; interpreting
them at full size is intractable, so every problem is scaled down and
the capacity-sensitive hardware parameters (cache sizes, the on-chip
shared capacity given to the Stage 4 partitioner) are scaled with them.
The invariants that drive the paper's figures are preserved:

* Stream / Dot arrays exceed the baseline's L2 (streaming misses);
* the Stage 4 on-chip capacity holds every benchmark's shared data
  EXCEPT LU Decomposition's matrix batch (Figure 6.2's no-fit case);
* block-distributed Count Primes keeps its ~2x load imbalance.
"""

from repro.scc.config import SCCConfig

# On-chip shared capacity handed to the partitioner: 1 KB/core scaled
# stand-in for the SCC's 8 KB/core MPB (cache sizes scale the same 8x).
SCALED_ON_CHIP_CAPACITY = 48 * 1024


class Workload:
    """One benchmark's problem-size configuration."""

    __slots__ = ("name", "sizes", "shared_bytes_estimate")

    def __init__(self, name, sizes, shared_bytes_estimate):
        self.name = name
        self.sizes = dict(sizes)
        self.shared_bytes_estimate = shared_bytes_estimate

    def __repr__(self):
        return "Workload(%s, %r)" % (self.name, self.sizes)


def default_workloads():
    """The scaled problem sizes used by the reproduction harness."""
    return {
        "pi": Workload("pi", {"steps": 16384}, 32 * 8),
        "sum35": Workload("sum35", {"limit": 16384}, 32 * 8),
        "primes": Workload("primes", {"limit": 2048}, 32 * 4),
        "stream": Workload("stream", {"n": 1024},
                           3 * 1024 * 8 + 32 * 8),
        "dot": Workload("dot", {"n": 1920},
                        2 * 1920 * 8 + 32 * 8),
        "lu": Workload("lu", {"batch": 32, "dim": 20},
                       32 * 20 * 20 * 8 + 32 * 8),
    }


def scaled_config(**overrides):
    """Table 6.1 frequencies with 8x-scaled cache capacities.

    L1 8 KB -> 1 KB and L2 256 KB -> 16 KB, matching the ~8-64x
    workload scale-down, so cache-fit relationships (Stream/Dot arrays
    exceeding L2; LU's per-matrix working set enjoying L1/L2 locality)
    are the same as at full scale.
    """
    params = {
        "core_freq_mhz": 800,
        "mesh_freq_mhz": 1600,
        "dram_freq_mhz": 1066,
        "l1_size": 1024,
        "l2_size": 16 * 1024,
    }
    params.update(overrides)
    return SCCConfig(**params)
