"""Figure regenerators: one function per figure of the paper's Chapter 6.

Each returns the data series the figure plots, plus an ASCII rendering
helper so the bench harness can print the same bars the paper shows.
"""

from repro.bench.harness import ExperimentHarness


def figure_6_1(harness=None, benchmarks=None):
    """Performance of RCCE applications using off-chip shared memory
    and 32 cores, normalized to 32-thread Pthreads on a single core."""
    harness = harness or ExperimentHarness()
    return harness.figure_6_1(benchmarks)


def figure_6_2(harness=None, benchmarks=None):
    """Runtime comparison: RCCE off-chip shared memory vs the on-chip
    MPB."""
    harness = harness or ExperimentHarness()
    return harness.figure_6_2(benchmarks)


def figure_6_3(harness=None, benchmark="pi",
               core_counts=(1, 2, 4, 8, 16, 32)):
    """Pi Approximation speedup with varying RCCE core count."""
    harness = harness or ExperimentHarness()
    return harness.figure_6_3(benchmark, core_counts)


def render_bars(rows, label_key, value_key, width=50, title=None):
    """ASCII bar chart of one series."""
    if not rows:
        return "(no data)"
    lines = [title] if title else []
    peak = max(row[value_key] for row in rows) or 1.0
    label_width = max(len(str(row[label_key])) for row in rows)
    for row in rows:
        value = row[value_key]
        bar = "#" * max(int(width * value / peak), 1)
        lines.append("%s  %s %.2f" % (
            str(row[label_key]).ljust(label_width), bar, value))
    return "\n".join(lines)
