"""repro — reproduction of "Enabling Multi-threaded Applications on
Hybrid Shared Memory Manycore Architectures" (DATE 2015 / Rawat, ASU).

Public API tour::

    from repro import TranslationFramework, ExperimentHarness

    # the paper's contribution: Pthreads -> RCCE translation
    result = TranslationFramework().translate(pthread_c_source)
    print(result.rcce_source)

    # the paper's evaluation: translated programs on the simulated SCC
    harness = ExperimentHarness(num_ues=32)
    for row in harness.figure_6_1():
        print(row["benchmark"], row["speedup"])
"""

from repro.core.framework import FrameworkResult, TranslationFramework
from repro.core.varinfo import Sharing, VariableInfo, VariableTable
from repro.core.stage4_partition import MemoryBank, PartitionPlan
from repro.obs import EventTracer, MetricsRegistry, PipelineProfiler
from repro.scc.config import SCCConfig, Table61Config
from repro.scc.chip import SCCChip
from repro.sim.runner import (
    RunResult,
    run_pthread_single_core,
    run_rcce,
)
from repro.bench.harness import BenchmarkRun, ExperimentHarness

__version__ = "1.0.0"

__all__ = [
    "TranslationFramework",
    "FrameworkResult",
    "Sharing",
    "VariableInfo",
    "VariableTable",
    "MemoryBank",
    "PartitionPlan",
    "SCCConfig",
    "Table61Config",
    "SCCChip",
    "RunResult",
    "run_pthread_single_core",
    "run_rcce",
    "ExperimentHarness",
    "BenchmarkRun",
    "MetricsRegistry",
    "PipelineProfiler",
    "EventTracer",
    "__version__",
]
