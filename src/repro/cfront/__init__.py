"""C language frontend: lexer, preprocessor, parser, AST, types, codegen.

This package plays the role CETUS plays in the paper: it turns C source
into a traversable intermediate representation (IR) and can emit C source
back out.  It supports the C subset exercised by Pthreads benchmark
programs: declarations (scalars, pointers, arrays, structs, typedefs),
functions, the full statement set, and the usual expression grammar.
"""

from repro.cfront.errors import CFrontError, LexError, ParseError
from repro.cfront.lexer import Lexer, tokenize
from repro.cfront.parser import Parser, parse
from repro.cfront.preprocessor import Preprocessor, preprocess
from repro.cfront.codegen import CodeGenerator, generate
from repro.cfront import c_ast

__all__ = [
    "CFrontError",
    "LexError",
    "ParseError",
    "Lexer",
    "tokenize",
    "Parser",
    "parse",
    "Preprocessor",
    "preprocess",
    "CodeGenerator",
    "generate",
    "c_ast",
]
