"""C source emission from the AST (the back half of the source-to-source
translator)."""

from repro.cfront import c_ast

_PRECEDENCE = {
    ",": 1,
    "=": 2, "+=": 2, "-=": 2, "*=": 2, "/=": 2, "%=": 2,
    "&=": 2, "|=": 2, "^=": 2, "<<=": 2, ">>=": 2,
    "?:": 3,
    "||": 4,
    "&&": 5,
    "|": 6,
    "^": 7,
    "&": 8,
    "==": 9, "!=": 9,
    "<": 10, ">": 10, "<=": 10, ">=": 10,
    "<<": 11, ">>": 11,
    "+": 12, "-": 12,
    "*": 13, "/": 13, "%": 13,
}
_UNARY_PRECEDENCE = 14
_POSTFIX_PRECEDENCE = 15


class CodeGenerator:
    """Renders AST nodes back to C source text."""

    def __init__(self, indent="    "):
        self.indent_text = indent

    # -- public API ---------------------------------------------------------

    def generate(self, node):
        if isinstance(node, c_ast.TranslationUnit):
            return self._translation_unit(node)
        if isinstance(node, c_ast.Expression):
            return self._expr(node)
        return self._stmt(node, 0)

    # -- top level ----------------------------------------------------------

    def _translation_unit(self, unit):
        parts = ["#include <%s>" % header for header in unit.includes]
        if parts:
            parts.append("")
        for decl in unit.decls:
            if isinstance(decl, c_ast.FuncDef):
                parts.append(self._funcdef(decl))
                parts.append("")
            elif isinstance(decl, c_ast.Decl):
                parts.append(self._decl(decl) + ";")
            elif isinstance(decl, c_ast.StructDecl):
                parts.append(self._struct_def(decl.struct_type) + ";")
        return "\n".join(parts).rstrip() + "\n"

    def _funcdef(self, func):
        params = ", ".join(self._decl(p) for p in func.params)
        if not params:
            params = "void" if func.params == [] else params
        signature = func.return_type.to_c(
            "%s(%s)" % (func.name, params))
        if func.storage:
            signature = "%s %s" % (func.storage, signature)
        return "%s\n%s" % (signature, self._stmt(func.body, 0))

    def _decl(self, decl):
        text = decl.ctype.to_c(decl.name or "")
        if decl.quals:
            text = "%s %s" % (" ".join(decl.quals), text)
        if decl.storage:
            text = "%s %s" % (decl.storage, text)
        if decl.init is not None:
            text += " = %s" % self._expr(decl.init)
        return text

    def _struct_def(self, struct):
        keyword = "union" if struct.is_union else "struct"
        head = "%s %s" % (keyword, struct.name) if struct.name else keyword
        if struct.fields is None:
            return head
        lines = [head + " {"]
        for name, ctype in struct.fields:
            lines.append(self.indent_text + ctype.to_c(name) + ";")
        lines.append("}")
        return "\n".join(lines)

    # -- statements -----------------------------------------------------------

    def _stmt(self, stmt, depth):
        pad = self.indent_text * depth
        if isinstance(stmt, c_ast.Compound):
            inner = [self._stmt(item, depth + 1) for item in stmt.items]
            return "%s{\n%s\n%s}" % (pad, "\n".join(inner), pad) if inner \
                else "%s{\n%s}" % (pad, pad)
        if isinstance(stmt, c_ast.DeclStmt):
            return "\n".join("%s%s;" % (pad, self._decl(d))
                             for d in stmt.decls)
        if isinstance(stmt, c_ast.Decl):
            return "%s%s;" % (pad, self._decl(stmt))
        if isinstance(stmt, c_ast.StructDecl):
            body = self._struct_def(stmt.struct_type)
            return "\n".join(pad + line for line in body.split("\n")) + ";"
        if isinstance(stmt, c_ast.ExprStmt):
            return "%s%s;" % (pad, self._expr(stmt.expr))
        if isinstance(stmt, c_ast.If):
            text = "%sif (%s)\n%s" % (pad, self._expr(stmt.cond),
                                      self._block(stmt.then, depth))
            if stmt.els is not None:
                text += "\n%selse\n%s" % (pad, self._block(stmt.els, depth))
            return text
        if isinstance(stmt, c_ast.While):
            return "%swhile (%s)\n%s" % (pad, self._expr(stmt.cond),
                                         self._block(stmt.body, depth))
        if isinstance(stmt, c_ast.DoWhile):
            return "%sdo\n%s\n%swhile (%s);" % (
                pad, self._block(stmt.body, depth), pad,
                self._expr(stmt.cond))
        if isinstance(stmt, c_ast.For):
            init = ""
            if isinstance(stmt.init, c_ast.DeclStmt):
                init = "; ".join(self._decl(d) for d in stmt.init.decls)
            elif isinstance(stmt.init, c_ast.ExprStmt):
                init = self._expr(stmt.init.expr)
            cond = self._expr(stmt.cond) if stmt.cond is not None else ""
            step = self._expr(stmt.step) if stmt.step is not None else ""
            return "%sfor (%s; %s; %s)\n%s" % (
                pad, init, cond, step, self._block(stmt.body, depth))
        if isinstance(stmt, c_ast.Return):
            if stmt.expr is None:
                return "%sreturn;" % pad
            return "%sreturn (%s);" % (pad, self._expr(stmt.expr))
        if isinstance(stmt, c_ast.Break):
            return "%sbreak;" % pad
        if isinstance(stmt, c_ast.Continue):
            return "%scontinue;" % pad
        if isinstance(stmt, c_ast.EmptyStmt):
            return "%s;" % pad
        if isinstance(stmt, c_ast.Switch):
            lines = ["%sswitch (%s) {" % (pad, self._expr(stmt.cond))]
            for item in stmt.body.items:
                lines.append(self._stmt(item, depth + 1))
            lines.append("%s}" % pad)
            return "\n".join(lines)
        if isinstance(stmt, c_ast.Case):
            pad1 = self.indent_text * depth
            lines = ["%scase %s:" % (pad1, self._expr(stmt.expr))]
            lines.extend(self._stmt(s, depth + 1) for s in stmt.stmts)
            return "\n".join(lines)
        if isinstance(stmt, c_ast.Default):
            pad1 = self.indent_text * depth
            lines = ["%sdefault:" % pad1]
            lines.extend(self._stmt(s, depth + 1) for s in stmt.stmts)
            return "\n".join(lines)
        if isinstance(stmt, c_ast.Goto):
            return "%sgoto %s;" % (pad, stmt.label)
        if isinstance(stmt, c_ast.Label):
            return "%s%s:\n%s" % (pad, stmt.name,
                                  self._stmt(stmt.stmt, depth))
        raise TypeError("cannot generate code for %r" % type(stmt).__name__)

    def _block(self, stmt, depth):
        """Render a statement as the body of a control construct."""
        if isinstance(stmt, c_ast.Compound):
            return self._stmt(stmt, depth)
        return self._stmt(stmt, depth + 1)

    # -- expressions -----------------------------------------------------------

    def _expr(self, expr, parent_prec=0):
        if isinstance(expr, c_ast.Id):
            return expr.name
        if isinstance(expr, c_ast.Constant):
            return expr.text
        if isinstance(expr, c_ast.StringLiteral):
            return '"%s"' % _escape_string(expr.value)
        if isinstance(expr, c_ast.BinaryOp):
            prec = _PRECEDENCE[expr.op]
            text = "%s %s %s" % (self._expr(expr.left, prec), expr.op,
                                 self._expr(expr.right, prec + 1))
            return self._wrap(text, prec, parent_prec)
        if isinstance(expr, c_ast.Assignment):
            prec = _PRECEDENCE[expr.op]
            text = "%s %s %s" % (self._expr(expr.lvalue, prec + 1), expr.op,
                                 self._expr(expr.rvalue, prec))
            return self._wrap(text, prec, parent_prec)
        if isinstance(expr, c_ast.TernaryOp):
            prec = _PRECEDENCE["?:"]
            text = "%s ? %s : %s" % (self._expr(expr.cond, prec + 1),
                                     self._expr(expr.then),
                                     self._expr(expr.els, prec))
            return self._wrap(text, prec, parent_prec)
        if isinstance(expr, c_ast.UnaryOp):
            operand = self._expr(expr.operand, _UNARY_PRECEDENCE)
            if expr.op in ("p++", "p--"):
                text = "%s%s" % (operand, expr.op[1:])
                return self._wrap(text, _POSTFIX_PRECEDENCE, parent_prec)
            if expr.op == "sizeof":
                text = "sizeof(%s)" % self._expr(expr.operand)
                return text
            # keep "-(-a)" from lexing as "--a" (same for +, &)
            separator = " " if operand.startswith(expr.op[0]) else ""
            text = "%s%s%s" % (expr.op, separator, operand)
            return self._wrap(text, _UNARY_PRECEDENCE, parent_prec)
        if isinstance(expr, c_ast.FuncCall):
            func = self._expr(expr.func, _POSTFIX_PRECEDENCE)
            args = ", ".join(self._expr(a) for a in expr.args)
            return "%s(%s)" % (func, args)
        if isinstance(expr, c_ast.ArrayRef):
            return "%s[%s]" % (self._expr(expr.base, _POSTFIX_PRECEDENCE),
                               self._expr(expr.index))
        if isinstance(expr, c_ast.MemberRef):
            op = "->" if expr.arrow else "."
            return "%s%s%s" % (self._expr(expr.base, _POSTFIX_PRECEDENCE),
                               op, expr.member)
        if isinstance(expr, c_ast.Cast):
            text = "(%s)%s" % (expr.ctype.to_c(),
                               self._expr(expr.expr, _UNARY_PRECEDENCE))
            return self._wrap(text, _UNARY_PRECEDENCE, parent_prec)
        if isinstance(expr, c_ast.SizeofType):
            return "sizeof(%s)" % expr.ctype.to_c()
        if isinstance(expr, c_ast.Comma):
            text = ", ".join(self._expr(e, _PRECEDENCE[","] + 1)
                             for e in expr.exprs)
            return self._wrap(text, _PRECEDENCE[","], parent_prec)
        if isinstance(expr, c_ast.InitList):
            return "{%s}" % ", ".join(self._expr(e) for e in expr.exprs)
        raise TypeError("cannot generate code for %r" % type(expr).__name__)

    @staticmethod
    def _wrap(text, prec, parent_prec):
        if prec < parent_prec:
            return "(%s)" % text
        return text


def _escape_string(value):
    replacements = [
        ("\\", "\\\\"), ('"', '\\"'), ("\n", "\\n"), ("\t", "\\t"),
        ("\r", "\\r"), ("\0", "\\0"),
    ]
    for old, new in replacements:
        value = value.replace(old, new)
    return value


def generate(node, indent="    "):
    """Render ``node`` (TranslationUnit, statement, or expression) to C."""
    return CodeGenerator(indent).generate(node)
