"""One-call frontend: preprocess + parse raw C source."""

from repro.cfront.parser import parse
from repro.cfront.preprocessor import preprocess

# Headers whose contents we model internally rather than reading from disk.
ENVIRONMENT_HEADERS = {
    "stdio.h", "stdlib.h", "string.h", "math.h", "pthread.h",
    "unistd.h", "sys/time.h", "time.h", "RCCE.h",
}


def parse_program(source, filename="<source>", predefined=None,
                  header_map=None):
    """Preprocess and parse ``source``; returns a TranslationUnit whose
    ``includes`` records the headers the program asked for."""
    result = preprocess(source, predefined=predefined,
                        header_map=header_map, filename=filename)
    return parse(result.text, filename, includes=result.includes)
