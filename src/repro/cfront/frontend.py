"""One-call frontend: preprocess + parse raw C source.

``parse_program`` memoizes on a hash of the source (plus the
preprocessor inputs), so benchmark harnesses and test suites that parse
the same program repeatedly skip re-lexing and re-parsing.  Cache hits
return a deep copy by default — callers (the translation framework's
passes) mutate their units freely — while read-only consumers can pass
``share=True`` to receive the pristine cached master itself.
"""

import copy
import hashlib
from collections import OrderedDict

from repro.cfront.parser import parse
from repro.cfront.preprocessor import preprocess

# Headers whose contents we model internally rather than reading from disk.
ENVIRONMENT_HEADERS = {
    "stdio.h", "stdlib.h", "string.h", "math.h", "pthread.h",
    "unistd.h", "sys/time.h", "time.h", "RCCE.h",
}

_PARSE_CACHE = OrderedDict()   # key -> pristine TranslationUnit
_PARSE_CACHE_MAX = 64
_HITS = 0
_MISSES = 0


def _cache_key(source, filename, predefined, header_map):
    digest = hashlib.sha256(source.encode("utf-8")).hexdigest()
    try:
        predefined_key = (tuple(sorted(predefined.items()))
                          if predefined else ())
        header_key = (tuple(sorted(header_map.items()))
                      if header_map else ())
    except TypeError:
        return None  # unhashable inputs: skip the cache
    return digest, filename, predefined_key, header_key


def parse_program(source, filename="<source>", predefined=None,
                  header_map=None, share=False):
    """Preprocess and parse ``source``; returns a TranslationUnit whose
    ``includes`` records the headers the program asked for.

    Results are memoized on (source hash, filename, preprocessor
    inputs).  By default every call gets its own deep copy of the
    cached unit; ``share=True`` returns the cached master directly —
    only for callers that will never mutate the AST (this also lets
    repeat runs share downstream per-unit caches, e.g. the compiled
    closures in ``repro.sim.compile``).
    """
    global _HITS, _MISSES
    if not isinstance(source, str):
        return parse_program_uncached(source, filename, predefined,
                                      header_map)
    key = _cache_key(source, filename, predefined, header_map)
    if key is None:
        return parse_program_uncached(source, filename, predefined,
                                      header_map)
    unit = _PARSE_CACHE.get(key)
    if unit is not None:
        _PARSE_CACHE.move_to_end(key)
        _HITS += 1
        return unit if share else copy.deepcopy(unit)
    _MISSES += 1
    unit = parse_program_uncached(source, filename, predefined,
                                  header_map)
    _PARSE_CACHE[key] = unit
    while len(_PARSE_CACHE) > _PARSE_CACHE_MAX:
        _PARSE_CACHE.popitem(last=False)
    # the master just cached is what we hand out on this miss too: a
    # non-sharing caller gets a copy so it cannot poison the cache
    return unit if share else copy.deepcopy(unit)


def parse_program_uncached(source, filename="<source>", predefined=None,
                           header_map=None):
    result = preprocess(source, predefined=predefined,
                        header_map=header_map, filename=filename)
    return parse(result.text, filename, includes=result.includes)


def parse_cache_clear():
    """Drop every memoized parse (tests use this for isolation)."""
    global _HITS, _MISSES
    _PARSE_CACHE.clear()
    _HITS = 0
    _MISSES = 0


def parse_cache_info():
    return {"hits": _HITS, "misses": _MISSES,
            "entries": len(_PARSE_CACHE), "max": _PARSE_CACHE_MAX}
