"""Recursive-descent parser for the C subset used by Pthreads programs.

Handles declarations (scalars, pointers, arrays, structs, typedefs,
function prototypes), function definitions, the full statement set, and
the complete expression grammar with standard precedence.  Typedef names
(including the pthread/RCCE opaque types) are tracked so the classic
"lexer hack" ambiguity is resolved in the parser.
"""

from repro.cfront import c_ast, ctypes
from repro.cfront.errors import ParseError
from repro.cfront.lexer import tokenize
from repro.cfront.tokens import TokenKind

K = TokenKind

_TYPE_KEYWORDS = {
    K.KW_VOID, K.KW_CHAR, K.KW_SHORT, K.KW_INT, K.KW_LONG,
    K.KW_FLOAT, K.KW_DOUBLE, K.KW_SIGNED, K.KW_UNSIGNED,
    K.KW_STRUCT, K.KW_UNION, K.KW_ENUM,
}
_STORAGE_KEYWORDS = {
    K.KW_TYPEDEF: "typedef",
    K.KW_STATIC: "static",
    K.KW_EXTERN: "extern",
    K.KW_AUTO: "auto",
    K.KW_REGISTER: "register",
}
_QUALIFIER_KEYWORDS = {
    K.KW_CONST: "const",
    K.KW_VOLATILE: "volatile",
    K.KW_RESTRICT: "restrict",
    K.KW_INLINE: "inline",
}

# typedef names assumed declared by environment headers (pthread.h, RCCE.h,
# stdio.h, stdlib.h); Stage 5 later strips the pthread ones.
DEFAULT_TYPEDEFS = sorted(ctypes.OPAQUE_TYPE_SIZES)

_ASSIGN_OPS = {
    K.ASSIGN: "=",
    K.PLUS_ASSIGN: "+=",
    K.MINUS_ASSIGN: "-=",
    K.STAR_ASSIGN: "*=",
    K.SLASH_ASSIGN: "/=",
    K.PERCENT_ASSIGN: "%=",
    K.AMP_ASSIGN: "&=",
    K.PIPE_ASSIGN: "|=",
    K.CARET_ASSIGN: "^=",
    K.LSHIFT_ASSIGN: "<<=",
    K.RSHIFT_ASSIGN: ">>=",
}

# binary operator precedence levels, low to high
_BINARY_LEVELS = [
    [(K.OROR, "||")],
    [(K.ANDAND, "&&")],
    [(K.PIPE, "|")],
    [(K.CARET, "^")],
    [(K.AMP, "&")],
    [(K.EQ, "=="), (K.NE, "!=")],
    [(K.LT, "<"), (K.GT, ">"), (K.LE, "<="), (K.GE, ">=")],
    [(K.LSHIFT, "<<"), (K.RSHIFT, ">>")],
    [(K.PLUS, "+"), (K.MINUS, "-")],
    [(K.STAR, "*"), (K.SLASH, "/"), (K.PERCENT, "%")],
]


class Parser:
    """Parses a token stream into a :class:`c_ast.TranslationUnit`."""

    def __init__(self, tokens, filename="<source>", typedefs=None):
        self.tokens = tokens
        self.filename = filename
        self.pos = 0
        self.typedef_names = set(DEFAULT_TYPEDEFS)
        if typedefs:
            self.typedef_names.update(typedefs)
        self.struct_tags = {}

    # -- token stream helpers ------------------------------------------------

    def _peek(self, offset=0):
        index = min(self.pos + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def _advance(self):
        token = self.tokens[self.pos]
        if token.kind is not K.EOF:
            self.pos += 1
        return token

    def _check(self, kind):
        return self._peek().kind is kind

    def _accept(self, kind):
        if self._check(kind):
            return self._advance()
        return None

    def _expect(self, kind, what=None):
        token = self._peek()
        if token.kind is not kind:
            self.error("expected %s, found %r"
                       % (what or kind.name, token.value or "<eof>"), token)
        return self._advance()

    def error(self, message, token=None):
        token = token or self._peek()
        raise ParseError(message, token.line, token.column, self.filename)

    def _coord(self, token=None):
        token = token or self._peek()
        return c_ast.Coord(token.line, token.column, self.filename)

    # -- entry points ----------------------------------------------------------

    def parse_translation_unit(self, includes=None):
        decls = []
        while not self._check(K.EOF):
            if self._accept(K.SEMI):
                continue
            decls.extend(self._external_declaration())
        unit = c_ast.TranslationUnit(decls, includes=list(includes or []))
        c_ast.link_parents(unit)
        return unit

    def _external_declaration(self):
        start = self._peek()
        storage, quals, base_type = self._declaration_specifiers()

        # bare 'struct X {...};'
        if self._check(K.SEMI) and isinstance(base_type, ctypes.StructType):
            self._advance()
            return [c_ast.StructDecl(base_type, self._coord(start))]

        decls = []
        while True:
            ctype, name = self._declarator(base_type)
            if name is None:
                self.error("declarator without a name")
            if storage == "typedef":
                self.typedef_names.add(name)
                decls.append(c_ast.Decl(name, ctype, storage="typedef",
                                        quals=quals, coord=self._coord(start)))
            elif ctype.is_function and self._check(K.LBRACE):
                body = self._compound()
                func = c_ast.FuncDef(name, ctype.ret, self._last_params,
                                     body, self._coord(start),
                                     storage=storage)
                decls.append(func)
                return decls
            else:
                init = None
                if self._accept(K.ASSIGN):
                    init = self._initializer()
                decls.append(c_ast.Decl(name, ctype, init, storage, quals,
                                        self._coord(start)))
            if not self._accept(K.COMMA):
                break
        self._expect(K.SEMI, "';'")
        return decls

    # -- declaration specifiers -------------------------------------------------

    def _starts_type(self, offset=0):
        token = self._peek(offset)
        if token.kind in _TYPE_KEYWORDS or token.kind in _QUALIFIER_KEYWORDS \
                or token.kind in _STORAGE_KEYWORDS:
            return True
        return token.kind is K.IDENT and token.value in self.typedef_names

    def _declaration_specifiers(self):
        storage = None
        quals = []
        prim_words = []
        named = None
        struct = None
        start = self._peek()
        while True:
            token = self._peek()
            if token.kind in _STORAGE_KEYWORDS:
                if storage is not None:
                    self.error("multiple storage-class specifiers")
                storage = _STORAGE_KEYWORDS[token.kind]
                self._advance()
            elif token.kind in _QUALIFIER_KEYWORDS:
                quals.append(_QUALIFIER_KEYWORDS[token.kind])
                self._advance()
            elif token.kind in (K.KW_STRUCT, K.KW_UNION):
                struct = self._struct_specifier()
            elif token.kind is K.KW_ENUM:
                self._enum_specifier()
                prim_words.append("int")  # enums are ints in this subset
            elif token.kind in _TYPE_KEYWORDS:
                prim_words.append(token.value)
                self._advance()
            elif (token.kind is K.IDENT and token.value in self.typedef_names
                    and not prim_words and named is None and struct is None):
                # a typedef-name only counts as a type if we have no type yet
                # and the *next* token can start a declarator
                if self._peek(1).kind in (K.IDENT, K.STAR, K.LPAREN):
                    named = ctypes.NamedType(token.value)
                    self._advance()
                else:
                    break
            else:
                break

        if struct is not None:
            base = struct
        elif named is not None:
            base = named
        elif prim_words:
            base = self._primitive_from_words(prim_words, start)
        else:
            self.error("expected type specifier", start)
        return storage, quals, base

    def _primitive_from_words(self, words, start):
        canonical = {
            ("void",): "void",
            ("char",): "char",
            ("signed", "char"): "signed char",
            ("unsigned", "char"): "unsigned char",
            ("short",): "short",
            ("short", "int"): "short",
            ("unsigned", "short"): "unsigned short",
            ("unsigned", "short", "int"): "unsigned short",
            ("int",): "int",
            ("signed",): "int",
            ("signed", "int"): "int",
            ("unsigned",): "unsigned int",
            ("unsigned", "int"): "unsigned int",
            ("long",): "long",
            ("long", "int"): "long",
            ("signed", "long"): "long",
            ("unsigned", "long"): "unsigned long",
            ("unsigned", "long", "int"): "unsigned long",
            ("long", "long"): "long long",
            ("long", "long", "int"): "long long",
            ("unsigned", "long", "long"): "unsigned long long",
            ("unsigned", "long", "long", "int"): "unsigned long long",
            ("float",): "float",
            ("double",): "double",
            ("long", "double"): "long double",
        }
        key = tuple(words)
        if key not in canonical:
            key = tuple(sorted(words))
            for variant, name in canonical.items():
                if tuple(sorted(variant)) == key:
                    return ctypes.PrimitiveType(name)
            self.error("invalid type combination %r" % " ".join(words), start)
        return ctypes.PrimitiveType(canonical[key])

    def _struct_specifier(self):
        keyword = self._advance()  # struct / union
        is_union = keyword.kind is K.KW_UNION
        tag = None
        if self._check(K.IDENT):
            tag = self._advance().value
        fields = None
        if self._accept(K.LBRACE):
            fields = []
            while not self._accept(K.RBRACE):
                _, _, base = self._declaration_specifiers()
                while True:
                    ctype, name = self._declarator(base)
                    if name is None:
                        self.error("struct field without a name")
                    fields.append((name, ctype))
                    if not self._accept(K.COMMA):
                        break
                self._expect(K.SEMI, "';'")
            struct = ctypes.StructType(tag, fields, is_union)
            if tag:
                self.struct_tags[tag] = struct
            return struct
        if tag and tag in self.struct_tags:
            return self.struct_tags[tag]
        struct = ctypes.StructType(tag, None, is_union)
        if tag:
            self.struct_tags.setdefault(tag, struct)
        return struct

    def _enum_specifier(self):
        self._advance()  # enum
        if self._check(K.IDENT):
            self._advance()
        if self._accept(K.LBRACE):
            while not self._accept(K.RBRACE):
                self._expect(K.IDENT, "enumerator name")
                if self._accept(K.ASSIGN):
                    self._conditional_expr()
                if not self._accept(K.COMMA):
                    self._expect(K.RBRACE, "'}'")
                    break

    # -- declarators -----------------------------------------------------------

    def _declarator(self, base_type, abstract=False):
        """Parse a (possibly abstract) declarator; returns (ctype, name)."""
        while self._accept(K.STAR):
            while self._peek().kind in _QUALIFIER_KEYWORDS:
                self._advance()
            base_type = ctypes.PointerType(base_type)

        name = None
        inner_marker = None
        if self._check(K.IDENT):
            name = self._advance().value
        elif self._check(K.LPAREN) and not abstract \
                and self._declarator_paren_ahead():
            self._advance()
            inner_marker = self._declarator(_Hole(), abstract)
            self._expect(K.RPAREN, "')'")
        elif self._check(K.LPAREN) and abstract \
                and self._declarator_paren_ahead():
            self._advance()
            inner_marker = self._declarator(_Hole(), abstract)
            self._expect(K.RPAREN, "')'")

        suffix_type = base_type
        suffix_type = self._declarator_suffixes(suffix_type)

        if inner_marker is not None:
            inner_type, inner_name = inner_marker
            suffix_type = _fill_hole(inner_type, suffix_type)
            name = inner_name
        return suffix_type, name

    def _declarator_paren_ahead(self):
        """Is this '(' part of a declarator (e.g. ``(*fp)(...)``) rather
        than a parameter list?  Look at the token after '('."""
        nxt = self._peek(1)
        return nxt.kind in (K.STAR, K.IDENT, K.LPAREN) and not \
            (nxt.kind is K.IDENT and nxt.value in self.typedef_names) and not \
            (nxt.kind is K.IDENT and self._peek(2).kind in
             (K.COMMA, K.RPAREN) and self._looks_like_param_list())

    def _looks_like_param_list(self):
        # '(name,' or '(name)' after an identifier declarator is ambiguous;
        # benchmarks never use K&R parameter lists, so treat as declarator
        return False

    def _declarator_suffixes(self, ctype):
        if self._check(K.LBRACKET):
            self._advance()
            length = None
            if not self._check(K.RBRACKET):
                expr = self._conditional_expr()
                length = _const_int(expr)
            self._expect(K.RBRACKET, "']'")
            inner = self._declarator_suffixes(ctype)
            return ctypes.ArrayType(inner, length)
        if self._check(K.LPAREN):
            self._advance()
            params, varargs, param_decls = self._parameter_list()
            self._expect(K.RPAREN, "')'")
            self._last_params = param_decls
            return ctypes.FunctionType(ctype, params, varargs)
        return ctype

    _last_params = []

    def _parameter_list(self):
        params = []
        decls = []
        varargs = False
        if self._check(K.RPAREN):
            return params, varargs, decls
        if self._check(K.KW_VOID) and self._peek(1).kind is K.RPAREN:
            self._advance()
            return params, varargs, decls
        while True:
            if self._accept(K.ELLIPSIS):
                varargs = True
                break
            _, quals, base = self._declaration_specifiers()
            ctype, name = self._declarator(base, abstract=True)
            # arrays in parameters decay to pointers
            if isinstance(ctype, ctypes.ArrayType):
                ctype = ctypes.PointerType(ctype.base)
            params.append(ctype)
            decls.append(c_ast.Decl(name, ctype, quals=quals,
                                    coord=self._coord()))
            if not self._accept(K.COMMA):
                break
        return params, varargs, decls

    def _type_name(self):
        """Parse a type-name (for casts / sizeof)."""
        _, _, base = self._declaration_specifiers()
        ctype, _ = self._declarator(base, abstract=True)
        return ctype

    # -- statements -----------------------------------------------------------

    def _compound(self):
        start = self._expect(K.LBRACE, "'{'")
        items = []
        while not self._check(K.RBRACE):
            if self._check(K.EOF):
                self.error("unterminated block", start)
            items.append(self._block_item())
        self._advance()
        return c_ast.Compound(items, self._coord(start))

    def _block_item(self):
        if self._starts_type():
            return self._declaration_stmt()
        return self._statement()

    def _declaration_stmt(self):
        start = self._peek()
        storage, quals, base = self._declaration_specifiers()
        if self._check(K.SEMI) and isinstance(base, ctypes.StructType):
            self._advance()
            return c_ast.StructDecl(base, self._coord(start))
        decls = []
        while True:
            ctype, name = self._declarator(base)
            if name is None:
                self.error("declarator without a name")
            if storage == "typedef":
                self.typedef_names.add(name)
            init = None
            if self._accept(K.ASSIGN):
                init = self._initializer()
            decls.append(c_ast.Decl(name, ctype, init, storage, quals,
                                    self._coord(start)))
            if not self._accept(K.COMMA):
                break
        self._expect(K.SEMI, "';'")
        return c_ast.DeclStmt(decls, self._coord(start))

    def _initializer(self):
        if self._check(K.LBRACE):
            start = self._advance()
            exprs = []
            while not self._check(K.RBRACE):
                exprs.append(self._initializer())
                if not self._accept(K.COMMA):
                    break
            self._expect(K.RBRACE, "'}'")
            return c_ast.InitList(exprs, self._coord(start))
        return self._assignment_expr()

    def _statement(self):
        token = self._peek()
        kind = token.kind
        if kind is K.LBRACE:
            return self._compound()
        if kind is K.SEMI:
            self._advance()
            return c_ast.EmptyStmt(self._coord(token))
        if kind is K.KW_IF:
            return self._if_stmt()
        if kind is K.KW_WHILE:
            return self._while_stmt()
        if kind is K.KW_DO:
            return self._do_stmt()
        if kind is K.KW_FOR:
            return self._for_stmt()
        if kind is K.KW_RETURN:
            self._advance()
            expr = None
            if not self._check(K.SEMI):
                expr = self._expression()
            self._expect(K.SEMI, "';'")
            return c_ast.Return(expr, self._coord(token))
        if kind is K.KW_BREAK:
            self._advance()
            self._expect(K.SEMI, "';'")
            return c_ast.Break(self._coord(token))
        if kind is K.KW_CONTINUE:
            self._advance()
            self._expect(K.SEMI, "';'")
            return c_ast.Continue(self._coord(token))
        if kind is K.KW_SWITCH:
            return self._switch_stmt()
        if kind is K.KW_GOTO:
            self._advance()
            label = self._expect(K.IDENT, "label").value
            self._expect(K.SEMI, "';'")
            return c_ast.Goto(label, self._coord(token))
        if kind is K.IDENT and self._peek(1).kind is K.COLON:
            name = self._advance().value
            self._advance()  # ':'
            stmt = self._statement()
            return c_ast.Label(name, stmt, self._coord(token))
        expr = self._expression()
        self._expect(K.SEMI, "';'")
        return c_ast.ExprStmt(expr, self._coord(token))

    def _if_stmt(self):
        start = self._advance()
        self._expect(K.LPAREN, "'('")
        cond = self._expression()
        self._expect(K.RPAREN, "')'")
        then = self._statement()
        els = None
        if self._accept(K.KW_ELSE):
            els = self._statement()
        return c_ast.If(cond, then, els, self._coord(start))

    def _while_stmt(self):
        start = self._advance()
        self._expect(K.LPAREN, "'('")
        cond = self._expression()
        self._expect(K.RPAREN, "')'")
        body = self._statement()
        return c_ast.While(cond, body, self._coord(start))

    def _do_stmt(self):
        start = self._advance()
        body = self._statement()
        self._expect(K.KW_WHILE, "'while'")
        self._expect(K.LPAREN, "'('")
        cond = self._expression()
        self._expect(K.RPAREN, "')'")
        self._expect(K.SEMI, "';'")
        return c_ast.DoWhile(body, cond, self._coord(start))

    def _for_stmt(self):
        start = self._advance()
        self._expect(K.LPAREN, "'('")
        init = None
        if not self._check(K.SEMI):
            if self._starts_type():
                init = self._declaration_stmt()  # consumes ';'
            else:
                expr = self._expression()
                self._expect(K.SEMI, "';'")
                init = c_ast.ExprStmt(expr, expr.coord)
        else:
            self._advance()
        cond = None
        if not self._check(K.SEMI):
            cond = self._expression()
        self._expect(K.SEMI, "';'")
        step = None
        if not self._check(K.RPAREN):
            step = self._expression()
        self._expect(K.RPAREN, "')'")
        body = self._statement()
        return c_ast.For(init, cond, step, body, self._coord(start))

    def _switch_stmt(self):
        start = self._advance()
        self._expect(K.LPAREN, "'('")
        cond = self._expression()
        self._expect(K.RPAREN, "')'")
        self._expect(K.LBRACE, "'{'")
        items = []
        while not self._accept(K.RBRACE):
            if self._accept(K.KW_CASE):
                expr = self._conditional_expr()
                self._expect(K.COLON, "':'")
                stmts = self._case_body()
                items.append(c_ast.Case(expr, stmts, self._coord(start)))
            elif self._accept(K.KW_DEFAULT):
                self._expect(K.COLON, "':'")
                stmts = self._case_body()
                items.append(c_ast.Default(stmts, self._coord(start)))
            else:
                self.error("expected 'case' or 'default' in switch body")
        body = c_ast.Compound(items, self._coord(start))
        return c_ast.Switch(cond, body, self._coord(start))

    def _case_body(self):
        stmts = []
        while self._peek().kind not in (K.KW_CASE, K.KW_DEFAULT, K.RBRACE):
            stmts.append(self._block_item())
        return stmts

    # -- expressions ------------------------------------------------------------

    def _expression(self):
        start = self._peek()
        expr = self._assignment_expr()
        if self._check(K.COMMA):
            exprs = [expr]
            while self._accept(K.COMMA):
                exprs.append(self._assignment_expr())
            return c_ast.Comma(exprs, self._coord(start))
        return expr

    def _assignment_expr(self):
        start = self._peek()
        left = self._conditional_expr()
        token = self._peek()
        if token.kind in _ASSIGN_OPS:
            self._advance()
            right = self._assignment_expr()
            return c_ast.Assignment(_ASSIGN_OPS[token.kind], left, right,
                                    self._coord(start))
        return left

    def _conditional_expr(self):
        start = self._peek()
        cond = self._binary_expr(0)
        if self._accept(K.QUESTION):
            then = self._expression()
            self._expect(K.COLON, "':'")
            els = self._conditional_expr()
            return c_ast.TernaryOp(cond, then, els, self._coord(start))
        return cond

    def _binary_expr(self, level):
        if level >= len(_BINARY_LEVELS):
            return self._cast_expr()
        start = self._peek()
        left = self._binary_expr(level + 1)
        while True:
            matched = False
            for kind, op in _BINARY_LEVELS[level]:
                if self._check(kind):
                    self._advance()
                    right = self._binary_expr(level + 1)
                    left = c_ast.BinaryOp(op, left, right,
                                          self._coord(start))
                    matched = True
                    break
            if not matched:
                return left

    def _cast_expr(self):
        if self._check(K.LPAREN) and self._starts_type(1):
            start = self._advance()
            ctype = self._type_name()
            self._expect(K.RPAREN, "')'")
            expr = self._cast_expr()
            return c_ast.Cast(ctype, expr, self._coord(start))
        return self._unary_expr()

    def _unary_expr(self):
        token = self._peek()
        kind = token.kind
        if kind is K.PLUSPLUS:
            self._advance()
            return c_ast.UnaryOp("++", self._unary_expr(),
                                 self._coord(token))
        if kind is K.MINUSMINUS:
            self._advance()
            return c_ast.UnaryOp("--", self._unary_expr(),
                                 self._coord(token))
        unary_map = {
            K.PLUS: "+", K.MINUS: "-", K.BANG: "!", K.TILDE: "~",
            K.STAR: "*", K.AMP: "&",
        }
        if kind in unary_map:
            self._advance()
            return c_ast.UnaryOp(unary_map[kind], self._cast_expr(),
                                 self._coord(token))
        if kind is K.KW_SIZEOF:
            self._advance()
            if self._check(K.LPAREN) and self._starts_type(1):
                self._advance()
                ctype = self._type_name()
                self._expect(K.RPAREN, "')'")
                return c_ast.SizeofType(ctype, self._coord(token))
            return c_ast.UnaryOp("sizeof", self._unary_expr(),
                                 self._coord(token))
        return self._postfix_expr()

    def _postfix_expr(self):
        expr = self._primary_expr()
        while True:
            token = self._peek()
            if token.kind is K.LBRACKET:
                self._advance()
                index = self._expression()
                self._expect(K.RBRACKET, "']'")
                expr = c_ast.ArrayRef(expr, index, self._coord(token))
            elif token.kind is K.LPAREN:
                self._advance()
                args = []
                if not self._check(K.RPAREN):
                    args.append(self._assignment_expr())
                    while self._accept(K.COMMA):
                        args.append(self._assignment_expr())
                self._expect(K.RPAREN, "')'")
                expr = c_ast.FuncCall(expr, args, self._coord(token))
            elif token.kind is K.DOT:
                self._advance()
                member = self._expect(K.IDENT, "member name").value
                expr = c_ast.MemberRef(expr, member, False,
                                       self._coord(token))
            elif token.kind is K.ARROW:
                self._advance()
                member = self._expect(K.IDENT, "member name").value
                expr = c_ast.MemberRef(expr, member, True,
                                       self._coord(token))
            elif token.kind is K.PLUSPLUS:
                self._advance()
                expr = c_ast.UnaryOp("p++", expr, self._coord(token))
            elif token.kind is K.MINUSMINUS:
                self._advance()
                expr = c_ast.UnaryOp("p--", expr, self._coord(token))
            else:
                return expr

    def _primary_expr(self):
        token = self._peek()
        kind = token.kind
        if kind is K.IDENT:
            self._advance()
            return c_ast.Id(token.value, self._coord(token))
        if kind is K.INT_CONST:
            self._advance()
            return c_ast.Constant("int", int(token.value, 0), token.value,
                                  self._coord(token))
        if kind is K.FLOAT_CONST:
            self._advance()
            return c_ast.Constant("float", float(token.value), token.value,
                                  self._coord(token))
        if kind is K.CHAR_CONST:
            self._advance()
            return c_ast.Constant("char", ord(token.value),
                                  "'%s'" % token.value, self._coord(token))
        if kind is K.STRING:
            self._advance()
            value = token.value
            while self._check(K.STRING):  # adjacent literal concatenation
                value += self._advance().value
            return c_ast.StringLiteral(value, self._coord(token))
        if kind is K.LPAREN:
            self._advance()
            expr = self._expression()
            self._expect(K.RPAREN, "')'")
            return expr
        self.error("unexpected token %r in expression"
                   % (token.value or "<eof>"), token)


class _Hole(ctypes.CType):
    """Placeholder base type used while parsing parenthesized declarators."""

    def sizeof(self):
        return 0

    def to_c(self, declarator=""):
        return declarator


def _fill_hole(ctype, replacement):
    """Substitute the :class:`_Hole` leaf of ``ctype`` with ``replacement``."""
    if isinstance(ctype, _Hole):
        return replacement
    if isinstance(ctype, ctypes.PointerType):
        return ctypes.PointerType(_fill_hole(ctype.base, replacement))
    if isinstance(ctype, ctypes.ArrayType):
        return ctypes.ArrayType(_fill_hole(ctype.base, replacement),
                                ctype.length)
    if isinstance(ctype, ctypes.FunctionType):
        return ctypes.FunctionType(_fill_hole(ctype.ret, replacement),
                                   ctype.params, ctype.varargs)
    return ctype


def _const_int(expr):
    """Evaluate a constant integer expression for array lengths."""
    if isinstance(expr, c_ast.Constant) and expr.kind == "int":
        return expr.value
    if isinstance(expr, c_ast.BinaryOp):
        left = _const_int(expr.left)
        right = _const_int(expr.right)
        ops = {
            "+": lambda a, b: a + b,
            "-": lambda a, b: a - b,
            "*": lambda a, b: a * b,
            "/": lambda a, b: a // b,
            "%": lambda a, b: a % b,
            "<<": lambda a, b: a << b,
            ">>": lambda a, b: a >> b,
        }
        if expr.op in ops:
            return ops[expr.op](left, right)
    if isinstance(expr, c_ast.UnaryOp) and expr.op == "-":
        return -_const_int(expr.operand)
    raise ParseError("array length is not a constant expression",
                     expr.coord.line if expr.coord else None)


def parse(source, filename="<source>", includes=None, typedefs=None):
    """Parse already-preprocessed C ``source`` into a TranslationUnit."""
    tokens = tokenize(source, filename)
    parser = Parser(tokens, filename, typedefs)
    return parser.parse_translation_unit(includes)
