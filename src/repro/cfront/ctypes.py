"""C type model with IA-32 (SCC P54C) sizes.

Types are immutable value objects; ``sizeof`` follows the ILP32 model the
SCC's Pentium-class cores use: ``int``/``long``/pointers are 4 bytes,
``double`` is 8.  Pthread opaque types get fixed sizes so Stage 1 can fill
Table 4.1's Size column before Stage 5 removes them.
"""


class CType:
    """Base class for all C types."""

    def sizeof(self):
        raise NotImplementedError

    @property
    def is_pointer(self):
        return isinstance(self, PointerType)

    @property
    def is_array(self):
        return isinstance(self, ArrayType)

    @property
    def is_function(self):
        return isinstance(self, FunctionType)

    @property
    def is_void(self):
        return isinstance(self, PrimitiveType) and self.name == "void"

    @property
    def is_floating(self):
        return isinstance(self, PrimitiveType) and self.name in (
            "float", "double", "long double")

    @property
    def is_integral(self):
        return isinstance(self, PrimitiveType) and not self.is_floating \
            and not self.is_void

    def element_count(self):
        """Number of scalar elements (1 for scalars, N for arrays)."""
        return 1

    def __eq__(self, other):
        return type(self) is type(other) and self.__dict__ == other.__dict__

    def __hash__(self):
        return hash(repr(self))

    def __deepcopy__(self, memo):
        # types are immutable value objects (see module docstring):
        # deep copies of ASTs can safely share them, which keeps the
        # frontend's parse-cache copies cheap
        return self

    def __repr__(self):
        return "%s(%s)" % (type(self).__name__, self.to_c())

    def to_c(self, declarator=""):
        """Render the type as C source around an optional declarator."""
        raise NotImplementedError


# IA-32 / ILP32 sizes (§5.1: SCC cores are P54C Pentium-class x86).
PRIMITIVE_SIZES = {
    "void": 0,
    "char": 1,
    "signed char": 1,
    "unsigned char": 1,
    "short": 2,
    "unsigned short": 2,
    "int": 4,
    "unsigned int": 4,
    "long": 4,
    "unsigned long": 4,
    "long long": 8,
    "unsigned long long": 8,
    "float": 4,
    "double": 8,
    "long double": 8,
}

POINTER_SIZE = 4

# Opaque pthread types: sized per 32-bit NPTL so Table 4.1 can be computed.
OPAQUE_TYPE_SIZES = {
    "pthread_t": 4,
    "pthread_attr_t": 36,
    "pthread_mutex_t": 24,
    "pthread_mutexattr_t": 4,
    "pthread_cond_t": 48,
    "pthread_condattr_t": 4,
    "pthread_barrier_t": 20,
    "pthread_barrierattr_t": 4,
    "size_t": 4,
    "ssize_t": 4,
    "FILE": 4,
    "RCCE_FLAG": 4,
    "RCCE_COMM": 4,
}


class PrimitiveType(CType):
    """A builtin arithmetic type or ``void``."""

    def __init__(self, name):
        if name not in PRIMITIVE_SIZES:
            raise ValueError("unknown primitive type %r" % name)
        self.name = name

    def sizeof(self):
        return PRIMITIVE_SIZES[self.name]

    def to_c(self, declarator=""):
        if declarator:
            return "%s %s" % (self.name, declarator)
        return self.name


class NamedType(CType):
    """A typedef-name (including the opaque pthread/RCCE types)."""

    def __init__(self, name, underlying=None):
        self.name = name
        self.underlying = underlying

    def sizeof(self):
        if self.underlying is not None:
            return self.underlying.sizeof()
        if self.name in OPAQUE_TYPE_SIZES:
            return OPAQUE_TYPE_SIZES[self.name]
        return POINTER_SIZE  # unknown opaque handle: assume word-sized

    def to_c(self, declarator=""):
        if declarator:
            return "%s %s" % (self.name, declarator)
        return self.name


class PointerType(CType):
    """Pointer to ``base``."""

    def __init__(self, base):
        self.base = base

    def sizeof(self):
        return POINTER_SIZE

    def to_c(self, declarator=""):
        inner = "*%s" % declarator
        if isinstance(self.base, (ArrayType, FunctionType)):
            inner = "(%s)" % inner
        return self.base.to_c(inner)


class ArrayType(CType):
    """Array of ``base``; ``length`` may be None (incomplete)."""

    def __init__(self, base, length=None):
        self.base = base
        self.length = length

    def sizeof(self):
        if self.length is None:
            return 0
        return self.base.sizeof() * self.length

    def element_count(self):
        if self.length is None:
            return 1
        return self.length * self.base.element_count()

    def to_c(self, declarator=""):
        dims = "[%s]" % ("" if self.length is None else self.length)
        return self.base.to_c("%s%s" % (declarator, dims))


class StructType(CType):
    """``struct name { fields }``; fields is a list of (name, CType)."""

    def __init__(self, name=None, fields=None, is_union=False):
        self.name = name
        self.fields = list(fields) if fields is not None else None
        self.is_union = is_union

    def sizeof(self):
        if not self.fields:
            return 0
        sizes = [ctype.sizeof() for _, ctype in self.fields]
        if self.is_union:
            return max(sizes)
        # 4-byte alignment, good enough for the IA-32 subset we model
        total = 0
        for size in sizes:
            align = min(size, 4) or 1
            total = (total + align - 1) // align * align
            total += size
        return (total + 3) // 4 * 4

    def field_type(self, name):
        for field_name, ctype in self.fields or []:
            if field_name == name:
                return ctype
        raise KeyError("struct %s has no field %r" % (self.name, name))

    def field_offset(self, name):
        """Byte offset of a field under the 4-byte-alignment layout."""
        if self.is_union:
            if any(field_name == name for field_name, _ in self.fields or []):
                return 0
            raise KeyError("union %s has no field %r" % (self.name, name))
        offset = 0
        for field_name, ctype in self.fields or []:
            size = ctype.sizeof()
            align = min(size, 4) or 1
            offset = (offset + align - 1) // align * align
            if field_name == name:
                return offset
            offset += size
        raise KeyError("struct %s has no field %r" % (self.name, name))

    def to_c(self, declarator=""):
        keyword = "union" if self.is_union else "struct"
        tag = ("%s %s" % (keyword, self.name)) if self.name else keyword
        if declarator:
            return "%s %s" % (tag, declarator)
        return tag


class FunctionType(CType):
    """Function returning ``ret`` taking ``params`` (list of CType)."""

    def __init__(self, ret, params=None, varargs=False):
        self.ret = ret
        self.params = list(params or [])
        self.varargs = varargs

    def sizeof(self):
        return POINTER_SIZE  # decays to a function pointer

    def to_c(self, declarator=""):
        parts = [param.to_c() for param in self.params]
        if self.varargs:
            parts.append("...")
        if not parts:
            parts = ["void"]
        return self.ret.to_c("%s(%s)" % (declarator, ", ".join(parts)))


# Singletons for the common cases
VOID = PrimitiveType("void")
CHAR = PrimitiveType("char")
INT = PrimitiveType("int")
UINT = PrimitiveType("unsigned int")
LONG = PrimitiveType("long")
ULONG = PrimitiveType("unsigned long")
FLOAT = PrimitiveType("float")
DOUBLE = PrimitiveType("double")
VOID_PTR = PointerType(VOID)
CHAR_PTR = PointerType(CHAR)
INT_PTR = PointerType(INT)


def strip_arrays(ctype):
    """Peel array layers off ``ctype`` and return the element type."""
    while isinstance(ctype, ArrayType):
        ctype = ctype.base
    return ctype


def pointee(ctype):
    """The type pointed at (arrays decay); None for non-pointers."""
    if isinstance(ctype, PointerType):
        return ctype.base
    if isinstance(ctype, ArrayType):
        return ctype.base
    return None
