"""Error types for the C frontend, all carrying source coordinates."""


class CFrontError(Exception):
    """Base class for all frontend errors."""

    def __init__(self, message, line=None, column=None, filename=None):
        self.message = message
        self.line = line
        self.column = column
        self.filename = filename
        super().__init__(self._format())

    def _format(self):
        where = []
        if self.filename:
            where.append(self.filename)
        if self.line is not None:
            where.append("line %d" % self.line)
        if self.column is not None:
            where.append("col %d" % self.column)
        if where:
            return "%s (%s)" % (self.message, ", ".join(where))
        return self.message


class LexError(CFrontError):
    """Raised when the lexer meets a character sequence it cannot tokenize."""


class ParseError(CFrontError):
    """Raised when the parser meets a token sequence outside the grammar."""


class PreprocessError(CFrontError):
    """Raised for malformed preprocessor directives."""


class TypeError_(CFrontError):
    """Raised for C type system violations (named with underscore to avoid
    shadowing the builtin)."""
