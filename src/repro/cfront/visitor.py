"""Generic AST traversal: visitors, transformers, and search helpers."""

from repro.cfront import c_ast


class NodeVisitor:
    """Dispatches ``visit_<ClassName>`` methods; falls back to
    ``generic_visit`` which recurses into children."""

    def visit(self, node):
        method = getattr(self, "visit_" + type(node).__name__, None)
        if method is not None:
            return method(node)
        return self.generic_visit(node)

    def generic_visit(self, node):
        for _, child in node.children():
            self.visit(child)


class NodeTransformer:
    """Like :class:`NodeVisitor` but rebuilds the tree.

    ``visit_*`` methods return the replacement node, a list of nodes (to
    splice into list-valued fields), or ``None`` to delete the node.
    Returning the original node keeps it.
    """

    def visit(self, node):
        method = getattr(self, "visit_" + type(node).__name__, None)
        if method is not None:
            return method(node)
        return self.generic_visit(node)

    def generic_visit(self, node):
        for field in node._fields:
            value = getattr(node, field, None)
            if value is None:
                continue
            if isinstance(value, list):
                new_items = []
                for item in value:
                    if not isinstance(item, c_ast.Node):
                        new_items.append(item)
                        continue
                    result = self.visit(item)
                    if result is None:
                        continue
                    if isinstance(result, list):
                        new_items.extend(result)
                    else:
                        new_items.append(result)
                setattr(node, field, new_items)
            elif isinstance(value, c_ast.Node):
                result = self.visit(value)
                if isinstance(result, list):
                    raise ValueError(
                        "cannot splice a list into scalar field %r of %s"
                        % (field, type(node).__name__))
                setattr(node, field, result)
        return node


def find_all(root, node_type, predicate=None):
    """All nodes of ``node_type`` under ``root`` matching ``predicate``."""
    found = []
    for node in c_ast.walk(root):
        if isinstance(node, node_type) and (
                predicate is None or predicate(node)):
            found.append(node)
    return found


def find_first(root, node_type, predicate=None):
    """First node of ``node_type`` under ``root`` or None."""
    for node in c_ast.walk(root):
        if isinstance(node, node_type) and (
                predicate is None or predicate(node)):
            return node
    return None


def find_calls(root, name):
    """All direct calls to function ``name`` under ``root``."""
    return find_all(root, c_ast.FuncCall,
                    lambda call: call.callee_name == name)


def enclosing(node, node_type):
    """Nearest ancestor of ``node`` with type ``node_type`` (needs
    ``link_parents`` to have been run), or None."""
    current = node.parent
    while current is not None:
        if isinstance(current, node_type):
            return current
        current = current.parent
    return None


def is_inside_loop(node):
    """True if ``node`` sits inside a For/While/DoWhile (via parent links)."""
    return enclosing(node, (c_ast.For, c_ast.While, c_ast.DoWhile)) is not None
