"""Scope-aware symbol tables for declared names."""

from repro.cfront import c_ast


class Symbol:
    """One declared name with its type and the scope it lives in."""

    __slots__ = ("name", "ctype", "scope_kind", "decl", "function")

    def __init__(self, name, ctype, scope_kind, decl=None, function=None):
        self.name = name
        self.ctype = ctype
        self.scope_kind = scope_kind  # 'global' | 'param' | 'local'
        self.decl = decl
        self.function = function      # enclosing function name, or None

    @property
    def is_global(self):
        return self.scope_kind == "global"

    def __repr__(self):
        return "Symbol(%s: %s, %s%s)" % (
            self.name, self.ctype.to_c(), self.scope_kind,
            " in %s" % self.function if self.function else "")


class Scope:
    """A lexical scope; lookups fall back to the parent scope."""

    def __init__(self, parent=None, kind="block"):
        self.parent = parent
        self.kind = kind
        self.symbols = {}

    def define(self, symbol):
        self.symbols[symbol.name] = symbol
        return symbol

    def lookup(self, name):
        scope = self
        while scope is not None:
            if name in scope.symbols:
                return scope.symbols[name]
            scope = scope.parent
        return None

    def __contains__(self, name):
        return self.lookup(name) is not None


class SymbolTableBuilder:
    """Builds a flat index of every declared symbol in a translation unit.

    The result maps ``(function_or_None, name)`` to :class:`Symbol`; a
    per-function view and the set of global names are also exposed.
    """

    def __init__(self, unit):
        self.unit = unit
        self.globals = {}
        self.by_function = {}
        self._build()

    def _build(self):
        for decl in self.unit.decls:
            if isinstance(decl, c_ast.Decl) and not decl.is_typedef \
                    and not decl.ctype.is_function:
                self.globals[decl.name] = Symbol(
                    decl.name, decl.ctype, "global", decl)
            elif isinstance(decl, c_ast.FuncDef):
                self.by_function[decl.name] = self._function_symbols(decl)

    def _function_symbols(self, func):
        symbols = {}
        for param in func.params:
            if param.name:
                symbols[param.name] = Symbol(
                    param.name, param.ctype, "param", param, func.name)
        for node in c_ast.walk(func.body):
            if isinstance(node, c_ast.DeclStmt):
                for decl in node.decls:
                    if not decl.is_typedef:
                        symbols[decl.name] = Symbol(
                            decl.name, decl.ctype, "local", decl, func.name)
        return symbols

    def lookup(self, name, function=None):
        """Resolve ``name`` as seen from inside ``function`` (C scoping:
        locals and params shadow globals)."""
        if function is not None and function in self.by_function:
            local = self.by_function[function].get(name)
            if local is not None:
                return local
        return self.globals.get(name)

    def all_symbols(self):
        """Every symbol in the unit as (symbol,) in stable order."""
        out = list(self.globals.values())
        for func_name in self.by_function:
            out.extend(self.by_function[func_name].values())
        return out
