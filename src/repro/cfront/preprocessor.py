"""A small C preprocessor.

Supports what the benchmark corpus needs:

* ``#include <...>`` / ``#include "..."`` — recorded (and optionally
  expanded from a header map) rather than resolved from the filesystem;
  the frontend treats ``pthread.h``/``stdio.h``/``RCCE.h`` as known
  environment headers whose symbols the later stages understand.
* object-like ``#define NAME value`` with recursive token substitution,
* function-like ``#define NAME(a, b) body`` with argument substitution,
* ``#undef``, ``#ifdef`` / ``#ifndef`` / ``#else`` / ``#endif``,
* line continuations inside directives.

The output is plain C text with directives removed, plus the list of
included headers (the translator uses it to swap ``pthread.h`` for
``RCCE.h``).
"""

from repro.cfront.errors import PreprocessError

_IDENT_START = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_")
_IDENT_CONT = _IDENT_START | set("0123456789")


class MacroDefinition:
    """One ``#define``; ``params`` is None for object-like macros."""

    __slots__ = ("name", "params", "body")

    def __init__(self, name, body, params=None):
        self.name = name
        self.body = body
        self.params = params

    @property
    def is_function_like(self):
        return self.params is not None

    def __repr__(self):
        if self.is_function_like:
            return "MacroDefinition(%s(%s) -> %r)" % (
                self.name, ", ".join(self.params), self.body)
        return "MacroDefinition(%s -> %r)" % (self.name, self.body)


class PreprocessResult:
    """Preprocessed text plus everything the directives declared."""

    def __init__(self, text, includes, macros):
        self.text = text
        self.includes = includes
        self.macros = macros

    def __repr__(self):
        return "PreprocessResult(includes=%r, macros=%d)" % (
            self.includes, len(self.macros))


class Preprocessor:
    """Directive interpreter + macro expander over raw source text."""

    def __init__(self, predefined=None, header_map=None, filename="<source>"):
        self.macros = {}
        self.filename = filename
        self.header_map = dict(header_map or {})
        for name, value in (predefined or {}).items():
            self.macros[name] = MacroDefinition(name, str(value))

    def process(self, source):
        """Preprocess ``source`` and return a :class:`PreprocessResult`."""
        includes = []
        output_lines = []
        # condition stack: each entry is (taking, seen_true)
        cond_stack = []
        lines = self._merge_continuations(source.split("\n"))
        for lineno, line in lines:
            stripped = line.lstrip()
            if stripped.startswith("#"):
                self._directive(stripped[1:].strip(), lineno,
                                includes, cond_stack)
                output_lines.append("")  # preserve line numbering
                continue
            if cond_stack and not all(t for t, _ in cond_stack):
                output_lines.append("")
                continue
            output_lines.append(self._expand_line(line))
        if cond_stack:
            raise PreprocessError("unterminated #if block",
                                  filename=self.filename)
        return PreprocessResult("\n".join(output_lines), includes,
                                dict(self.macros))

    # -- directives --------------------------------------------------------

    def _directive(self, text, lineno, includes, cond_stack):
        name, _, rest = text.partition(" ")
        name = name.strip()
        rest = rest.strip()
        taking = not cond_stack or all(t for t, _ in cond_stack)

        if name in ("ifdef", "ifndef"):
            macro = rest.split()[0] if rest else ""
            if not macro:
                raise PreprocessError("#%s needs a macro name" % name,
                                      lineno, filename=self.filename)
            active = (macro in self.macros) == (name == "ifdef")
            cond_stack.append((taking and active, active))
            return
        if name == "else":
            if not cond_stack:
                raise PreprocessError("#else without #if", lineno,
                                      filename=self.filename)
            _, seen_true = cond_stack[-1]
            parent_taking = len(cond_stack) == 1 or all(
                t for t, _ in cond_stack[:-1])
            cond_stack[-1] = (parent_taking and not seen_true, True)
            return
        if name == "endif":
            if not cond_stack:
                raise PreprocessError("#endif without #if", lineno,
                                      filename=self.filename)
            cond_stack.pop()
            return

        if not taking:
            return

        if name == "include":
            header = rest.strip()
            if header.startswith("<") and header.endswith(">"):
                header = header[1:-1]
            elif header.startswith('"') and header.endswith('"'):
                header = header[1:-1]
            else:
                raise PreprocessError("malformed #include", lineno,
                                      filename=self.filename)
            includes.append(header)
            if header in self.header_map:
                nested = Preprocessor(header_map=self.header_map,
                                      filename=header)
                nested.macros = self.macros
                result = nested.process(self.header_map[header])
                includes.extend(result.includes)
            return
        if name == "define":
            self._define(rest, lineno)
            return
        if name == "undef":
            self.macros.pop(rest.split()[0], None)
            return
        if name == "pragma":
            return  # ignored, like most compilers ignore unknown pragmas
        raise PreprocessError("unsupported directive #%s" % name, lineno,
                              filename=self.filename)

    def _define(self, rest, lineno):
        if not rest:
            raise PreprocessError("#define needs a name", lineno,
                                  filename=self.filename)
        index = 0
        while index < len(rest) and rest[index] in _IDENT_CONT:
            index += 1
        name = rest[:index]
        if not name or name[0] not in _IDENT_START:
            raise PreprocessError("malformed #define", lineno,
                                  filename=self.filename)
        remainder = rest[index:]
        if remainder.startswith("("):
            close = remainder.find(")")
            if close < 0:
                raise PreprocessError("malformed macro parameter list",
                                      lineno, filename=self.filename)
            params_text = remainder[1:close].strip()
            params = ([p.strip() for p in params_text.split(",")]
                      if params_text else [])
            body = remainder[close + 1:].strip()
            self.macros[name] = MacroDefinition(name, body, params)
        else:
            self.macros[name] = MacroDefinition(name, remainder.strip())

    # -- macro expansion ---------------------------------------------------

    def _merge_continuations(self, raw_lines):
        merged = []
        buffer = ""
        start = None
        for number, line in enumerate(raw_lines, start=1):
            if start is None:
                start = number
            if line.endswith("\\"):
                buffer += line[:-1]
                continue
            merged.append((start, buffer + line))
            buffer = ""
            start = None
        if buffer:
            merged.append((start, buffer))
        return merged

    def _expand_line(self, line, active=None):
        """Expand macros in one line, skipping string/char literals."""
        if active is None:
            active = frozenset()
        out = []
        index = 0
        while index < len(line):
            ch = line[index]
            if ch in "\"'":
                end = self._skip_literal(line, index)
                out.append(line[index:end])
                index = end
                continue
            if ch in _IDENT_START:
                start = index
                while index < len(line) and line[index] in _IDENT_CONT:
                    index += 1
                word = line[start:index]
                macro = self.macros.get(word)
                if macro is None or word in active:
                    out.append(word)
                    continue
                if macro.is_function_like:
                    args, next_index = self._read_macro_args(line, index)
                    if args is None:
                        out.append(word)
                        continue
                    index = next_index
                    expansion = self._substitute(macro, args)
                else:
                    expansion = macro.body
                out.append(self._expand_line(expansion,
                                             active | {word}))
                continue
            out.append(ch)
            index += 1
        return "".join(out)

    def _skip_literal(self, line, index):
        quote = line[index]
        index += 1
        while index < len(line):
            if line[index] == "\\":
                index += 2
                continue
            if line[index] == quote:
                return index + 1
            index += 1
        return index

    def _read_macro_args(self, line, index):
        """Parse ``(arg, arg, ...)`` after a function-like macro name.

        Returns ``(args, next_index)`` or ``(None, index)`` if there is no
        call (the bare macro name is then left alone, matching cpp).
        """
        probe = index
        while probe < len(line) and line[probe] in " \t":
            probe += 1
        if probe >= len(line) or line[probe] != "(":
            return None, index
        depth = 0
        args = []
        current = []
        pos = probe
        while pos < len(line):
            ch = line[pos]
            if ch in "\"'":
                end = self._skip_literal(line, pos)
                current.append(line[pos:end])
                pos = end
                continue
            if ch == "(":
                depth += 1
                if depth > 1:
                    current.append(ch)
            elif ch == ")":
                depth -= 1
                if depth == 0:
                    args.append("".join(current).strip())
                    return args, pos + 1
                current.append(ch)
            elif ch == "," and depth == 1:
                args.append("".join(current).strip())
                current = []
            else:
                current.append(ch)
            pos += 1
        raise PreprocessError("unterminated macro invocation",
                              filename=self.filename)

    def _substitute(self, macro, args):
        if len(macro.params) != len(args) and not (
                len(macro.params) == 0 and args == [""]):
            raise PreprocessError(
                "macro %s expects %d arguments, got %d"
                % (macro.name, len(macro.params), len(args)),
                filename=self.filename)
        mapping = dict(zip(macro.params, args))
        out = []
        index = 0
        body = macro.body
        while index < len(body):
            ch = body[index]
            if ch in "\"'":
                end = self._skip_literal(body, index)
                out.append(body[index:end])
                index = end
                continue
            if ch in _IDENT_START:
                start = index
                while index < len(body) and body[index] in _IDENT_CONT:
                    index += 1
                word = body[start:index]
                out.append(mapping.get(word, word))
                continue
            out.append(ch)
            index += 1
        return "".join(out)


def preprocess(source, predefined=None, header_map=None,
               filename="<source>"):
    """One-shot preprocessing helper returning a :class:`PreprocessResult`."""
    return Preprocessor(predefined, header_map, filename).process(source)
