"""Token kinds and the Token record produced by the lexer."""

from enum import Enum, auto


class TokenKind(Enum):
    # literals / identifiers
    IDENT = auto()
    INT_CONST = auto()
    FLOAT_CONST = auto()
    CHAR_CONST = auto()
    STRING = auto()

    # keywords
    KW_AUTO = auto()
    KW_BREAK = auto()
    KW_CASE = auto()
    KW_CHAR = auto()
    KW_CONST = auto()
    KW_CONTINUE = auto()
    KW_DEFAULT = auto()
    KW_DO = auto()
    KW_DOUBLE = auto()
    KW_ELSE = auto()
    KW_ENUM = auto()
    KW_EXTERN = auto()
    KW_FLOAT = auto()
    KW_FOR = auto()
    KW_GOTO = auto()
    KW_IF = auto()
    KW_INLINE = auto()
    KW_INT = auto()
    KW_LONG = auto()
    KW_REGISTER = auto()
    KW_RESTRICT = auto()
    KW_RETURN = auto()
    KW_SHORT = auto()
    KW_SIGNED = auto()
    KW_SIZEOF = auto()
    KW_STATIC = auto()
    KW_STRUCT = auto()
    KW_SWITCH = auto()
    KW_TYPEDEF = auto()
    KW_UNION = auto()
    KW_UNSIGNED = auto()
    KW_VOID = auto()
    KW_VOLATILE = auto()
    KW_WHILE = auto()

    # punctuation / operators
    LPAREN = auto()      # (
    RPAREN = auto()      # )
    LBRACE = auto()      # {
    RBRACE = auto()      # }
    LBRACKET = auto()    # [
    RBRACKET = auto()    # ]
    SEMI = auto()        # ;
    COMMA = auto()       # ,
    DOT = auto()         # .
    ARROW = auto()       # ->
    ELLIPSIS = auto()    # ...
    QUESTION = auto()    # ?
    COLON = auto()       # :

    PLUS = auto()        # +
    MINUS = auto()       # -
    STAR = auto()        # *
    SLASH = auto()       # /
    PERCENT = auto()     # %
    AMP = auto()         # &
    PIPE = auto()        # |
    CARET = auto()       # ^
    TILDE = auto()       # ~
    BANG = auto()        # !
    LSHIFT = auto()      # <<
    RSHIFT = auto()      # >>
    LT = auto()          # <
    GT = auto()          # >
    LE = auto()          # <=
    GE = auto()          # >=
    EQ = auto()          # ==
    NE = auto()          # !=
    ANDAND = auto()      # &&
    OROR = auto()        # ||
    PLUSPLUS = auto()    # ++
    MINUSMINUS = auto()  # --

    ASSIGN = auto()          # =
    PLUS_ASSIGN = auto()     # +=
    MINUS_ASSIGN = auto()    # -=
    STAR_ASSIGN = auto()     # *=
    SLASH_ASSIGN = auto()    # /=
    PERCENT_ASSIGN = auto()  # %=
    AMP_ASSIGN = auto()      # &=
    PIPE_ASSIGN = auto()     # |=
    CARET_ASSIGN = auto()    # ^=
    LSHIFT_ASSIGN = auto()   # <<=
    RSHIFT_ASSIGN = auto()   # >>=

    EOF = auto()


KEYWORDS = {
    "auto": TokenKind.KW_AUTO,
    "break": TokenKind.KW_BREAK,
    "case": TokenKind.KW_CASE,
    "char": TokenKind.KW_CHAR,
    "const": TokenKind.KW_CONST,
    "continue": TokenKind.KW_CONTINUE,
    "default": TokenKind.KW_DEFAULT,
    "do": TokenKind.KW_DO,
    "double": TokenKind.KW_DOUBLE,
    "else": TokenKind.KW_ELSE,
    "enum": TokenKind.KW_ENUM,
    "extern": TokenKind.KW_EXTERN,
    "float": TokenKind.KW_FLOAT,
    "for": TokenKind.KW_FOR,
    "goto": TokenKind.KW_GOTO,
    "if": TokenKind.KW_IF,
    "inline": TokenKind.KW_INLINE,
    "int": TokenKind.KW_INT,
    "long": TokenKind.KW_LONG,
    "register": TokenKind.KW_REGISTER,
    "restrict": TokenKind.KW_RESTRICT,
    "return": TokenKind.KW_RETURN,
    "short": TokenKind.KW_SHORT,
    "signed": TokenKind.KW_SIGNED,
    "sizeof": TokenKind.KW_SIZEOF,
    "static": TokenKind.KW_STATIC,
    "struct": TokenKind.KW_STRUCT,
    "switch": TokenKind.KW_SWITCH,
    "typedef": TokenKind.KW_TYPEDEF,
    "union": TokenKind.KW_UNION,
    "unsigned": TokenKind.KW_UNSIGNED,
    "void": TokenKind.KW_VOID,
    "volatile": TokenKind.KW_VOLATILE,
    "while": TokenKind.KW_WHILE,
}

# Multi-character punctuators, longest first so the lexer can greedily match.
PUNCTUATORS = [
    ("...", TokenKind.ELLIPSIS),
    ("<<=", TokenKind.LSHIFT_ASSIGN),
    (">>=", TokenKind.RSHIFT_ASSIGN),
    ("->", TokenKind.ARROW),
    ("++", TokenKind.PLUSPLUS),
    ("--", TokenKind.MINUSMINUS),
    ("<<", TokenKind.LSHIFT),
    (">>", TokenKind.RSHIFT),
    ("<=", TokenKind.LE),
    (">=", TokenKind.GE),
    ("==", TokenKind.EQ),
    ("!=", TokenKind.NE),
    ("&&", TokenKind.ANDAND),
    ("||", TokenKind.OROR),
    ("+=", TokenKind.PLUS_ASSIGN),
    ("-=", TokenKind.MINUS_ASSIGN),
    ("*=", TokenKind.STAR_ASSIGN),
    ("/=", TokenKind.SLASH_ASSIGN),
    ("%=", TokenKind.PERCENT_ASSIGN),
    ("&=", TokenKind.AMP_ASSIGN),
    ("|=", TokenKind.PIPE_ASSIGN),
    ("^=", TokenKind.CARET_ASSIGN),
    ("(", TokenKind.LPAREN),
    (")", TokenKind.RPAREN),
    ("{", TokenKind.LBRACE),
    ("}", TokenKind.RBRACE),
    ("[", TokenKind.LBRACKET),
    ("]", TokenKind.RBRACKET),
    (";", TokenKind.SEMI),
    (",", TokenKind.COMMA),
    (".", TokenKind.DOT),
    ("?", TokenKind.QUESTION),
    (":", TokenKind.COLON),
    ("+", TokenKind.PLUS),
    ("-", TokenKind.MINUS),
    ("*", TokenKind.STAR),
    ("/", TokenKind.SLASH),
    ("%", TokenKind.PERCENT),
    ("&", TokenKind.AMP),
    ("|", TokenKind.PIPE),
    ("^", TokenKind.CARET),
    ("~", TokenKind.TILDE),
    ("!", TokenKind.BANG),
    ("<", TokenKind.LT),
    (">", TokenKind.GT),
    ("=", TokenKind.ASSIGN),
]


class Token:
    """A single lexical token with its source coordinates."""

    __slots__ = ("kind", "value", "line", "column")

    def __init__(self, kind, value, line, column):
        self.kind = kind
        self.value = value
        self.line = line
        self.column = column

    def __repr__(self):
        return "Token(%s, %r, %d:%d)" % (
            self.kind.name,
            self.value,
            self.line,
            self.column,
        )

    def __eq__(self, other):
        if not isinstance(other, Token):
            return NotImplemented
        return self.kind == other.kind and self.value == other.value

    def __hash__(self):
        return hash((self.kind, self.value))

    @property
    def is_keyword(self):
        return self.kind.name.startswith("KW_")
