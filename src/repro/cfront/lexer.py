"""Hand-written lexer for the C subset.

Skips whitespace and both comment styles, tracks line/column, and leaves
preprocessor directives (lines starting with ``#``) to the preprocessor —
when the lexer is handed already-preprocessed text it treats a stray ``#``
as an error.
"""

from repro.cfront.errors import LexError
from repro.cfront.tokens import KEYWORDS, PUNCTUATORS, Token, TokenKind

_IDENT_START = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_")
_IDENT_CONT = _IDENT_START | set("0123456789")
_DIGITS = set("0123456789")
_HEX_DIGITS = set("0123456789abcdefABCDEF")

_SIMPLE_ESCAPES = {
    "n": "\n",
    "t": "\t",
    "r": "\r",
    "0": "\0",
    "\\": "\\",
    "'": "'",
    '"': '"',
    "a": "\a",
    "b": "\b",
    "f": "\f",
    "v": "\v",
}


class Lexer:
    """Tokenizes a C source string into a list of :class:`Token`."""

    def __init__(self, source, filename="<source>"):
        self.source = source
        self.filename = filename
        self.pos = 0
        self.line = 1
        self.column = 1

    def error(self, message):
        raise LexError(message, self.line, self.column, self.filename)

    def tokenize(self):
        """Return the full token list, terminated by an EOF token."""
        tokens = []
        while True:
            token = self._next_token()
            tokens.append(token)
            if token.kind is TokenKind.EOF:
                return tokens

    # -- internals ---------------------------------------------------------

    def _peek(self, offset=0):
        """Next character, or "\\0" at end of input.  The NUL sentinel
        (never present in source text) keeps ``peek() in "uUlL"``-style
        membership tests from matching the empty string."""
        index = self.pos + offset
        if index < len(self.source):
            return self.source[index]
        return "\0"

    def _advance(self, count=1):
        for _ in range(count):
            if self.pos >= len(self.source):
                return
            if self.source[self.pos] == "\n":
                self.line += 1
                self.column = 1
            else:
                self.column += 1
            self.pos += 1

    def _skip_whitespace_and_comments(self):
        while self.pos < len(self.source):
            ch = self._peek()
            if ch in " \t\r\n\f\v":
                self._advance()
            elif ch == "/" and self._peek(1) == "/":
                while self.pos < len(self.source) and self._peek() != "\n":
                    self._advance()
            elif ch == "/" and self._peek(1) == "*":
                self._advance(2)
                while self.pos < len(self.source):
                    if self._peek() == "*" and self._peek(1) == "/":
                        self._advance(2)
                        break
                    self._advance()
                else:
                    self.error("unterminated block comment")
            elif ch == "\\" and self._peek(1) == "\n":
                self._advance(2)
            else:
                return

    def _next_token(self):
        self._skip_whitespace_and_comments()
        line, column = self.line, self.column
        if self.pos >= len(self.source):
            return Token(TokenKind.EOF, "", line, column)

        ch = self._peek()
        if ch in _IDENT_START:
            return self._lex_ident(line, column)
        if ch in _DIGITS or (ch == "." and self._peek(1) in _DIGITS):
            return self._lex_number(line, column)
        if ch == '"':
            return self._lex_string(line, column)
        if ch == "'":
            return self._lex_char(line, column)
        if ch == "#":
            self.error("preprocessor directive reached the lexer; "
                       "run the Preprocessor first")

        for text, kind in PUNCTUATORS:
            if self.source.startswith(text, self.pos):
                self._advance(len(text))
                return Token(kind, text, line, column)

        self.error("unexpected character %r" % ch)

    def _lex_ident(self, line, column):
        start = self.pos
        while self.pos < len(self.source) and self._peek() in _IDENT_CONT:
            self._advance()
        text = self.source[start:self.pos]
        kind = KEYWORDS.get(text, TokenKind.IDENT)
        return Token(kind, text, line, column)

    def _lex_number(self, line, column):
        start = self.pos
        is_float = False
        if self._peek() == "0" and self._peek(1) in "xX":
            self._advance(2)
            if self._peek() not in _HEX_DIGITS:
                self.error("malformed hex constant")
            while self._peek() in _HEX_DIGITS:
                self._advance()
            text = self.source[start:self.pos]
            self._skip_int_suffix()
            return Token(TokenKind.INT_CONST, text, line, column)

        while self._peek() in _DIGITS:
            self._advance()
        if self._peek() == ".":
            is_float = True
            self._advance()
            while self._peek() in _DIGITS:
                self._advance()
        if self._peek() in "eE" and (
            self._peek(1) in _DIGITS
            or (self._peek(1) in "+-" and self._peek(2) in _DIGITS)
        ):
            is_float = True
            self._advance()
            if self._peek() in "+-":
                self._advance()
            while self._peek() in _DIGITS:
                self._advance()
        text = self.source[start:self.pos]
        if is_float:
            if self._peek() in "fFlL":
                self._advance()
            return Token(TokenKind.FLOAT_CONST, text, line, column)
        self._skip_int_suffix()
        return Token(TokenKind.INT_CONST, text, line, column)

    def _skip_int_suffix(self):
        while self._peek() in "uUlL":
            self._advance()

    def _lex_string(self, line, column):
        self._advance()  # opening quote
        chars = []
        while True:
            if self.pos >= len(self.source):
                self.error("unterminated string literal")
            ch = self._peek()
            if ch == '"':
                self._advance()
                break
            if ch == "\n":
                self.error("newline in string literal")
            if ch == "\\":
                self._advance()
                chars.append(self._read_escape())
            else:
                chars.append(ch)
                self._advance()
        return Token(TokenKind.STRING, "".join(chars), line, column)

    def _lex_char(self, line, column):
        self._advance()  # opening quote
        if self.pos >= len(self.source):
            self.error("unterminated character constant")
        ch = self._peek()
        if ch == "\\":
            self._advance()
            value = self._read_escape()
        elif ch == "'":
            self.error("empty character constant")
        else:
            value = ch
            self._advance()
        if self._peek() != "'":
            self.error("unterminated character constant")
        self._advance()
        return Token(TokenKind.CHAR_CONST, value, line, column)

    def _read_escape(self):
        ch = self._peek()
        if ch in _SIMPLE_ESCAPES:
            self._advance()
            return _SIMPLE_ESCAPES[ch]
        if ch == "x":
            self._advance()
            digits = []
            while self._peek() in _HEX_DIGITS:
                digits.append(self._peek())
                self._advance()
            if not digits:
                self.error("malformed hex escape")
            return chr(int("".join(digits), 16))
        self.error("unknown escape sequence \\%s" % ch)


def tokenize(source, filename="<source>"):
    """Convenience wrapper: tokenize ``source`` and return the token list."""
    return Lexer(source, filename).tokenize()
