"""AST node classes — the "Cetus IR" of the reproduction.

Every node lists its child-bearing attributes in ``_fields`` so generic
traversal (``walk``, visitors, transformers) works without per-node code.
Type information is carried by :mod:`repro.cfront.ctypes` objects attached
to declarations, not by type AST nodes.
"""


class Coord:
    """Source coordinate (filename, line, column)."""

    __slots__ = ("filename", "line", "column")

    def __init__(self, line, column, filename="<source>"):
        self.line = line
        self.column = column
        self.filename = filename

    def __repr__(self):
        return "%s:%d:%d" % (self.filename, self.line, self.column)

    def __eq__(self, other):
        return (isinstance(other, Coord)
                and (self.filename, self.line, self.column)
                == (other.filename, other.line, other.column))

    def __deepcopy__(self, memo):
        return self  # immutable; shared freely across AST copies


class Node:
    """Base AST node."""

    _fields = ()

    def __init__(self, coord=None):
        self.coord = coord
        self.parent = None  # filled lazily by link_parents()

    def children(self):
        """Yield (field_name, child_node) pairs, flattening lists."""
        for field in self._fields:
            value = getattr(self, field, None)
            if value is None:
                continue
            if isinstance(value, list):
                for index, item in enumerate(value):
                    if isinstance(item, Node):
                        yield ("%s[%d]" % (field, index), item)
            elif isinstance(value, Node):
                yield (field, value)

    def __repr__(self):
        attrs = []
        for field in self._fields:
            value = getattr(self, field, None)
            if isinstance(value, Node):
                attrs.append("%s=%s" % (field, type(value).__name__))
            elif isinstance(value, list):
                attrs.append("%s=[%d]" % (field, len(value)))
            else:
                attrs.append("%s=%r" % (field, value))
        return "%s(%s)" % (type(self).__name__, ", ".join(attrs))


def link_parents(root):
    """Populate ``node.parent`` across the whole tree under ``root``."""
    for _, child in root.children():
        child.parent = root
        link_parents(child)
    return root


def walk(root):
    """Depth-first pre-order generator over all nodes."""
    yield root
    for _, child in root.children():
        yield from walk(child)


# ---------------------------------------------------------------------------
# Top level
# ---------------------------------------------------------------------------

class TranslationUnit(Node):
    """A whole source file: external declarations and function definitions."""

    _fields = ("decls",)

    def __init__(self, decls=None, coord=None, includes=None):
        super().__init__(coord)
        self.decls = decls if decls is not None else []
        self.includes = includes if includes is not None else []

    def functions(self):
        """All function definitions, in source order."""
        return [d for d in self.decls if isinstance(d, FuncDef)]

    def find_function(self, name):
        for func in self.functions():
            if func.name == name:
                return func
        return None

    def global_decls(self):
        """All file-scope variable declarations."""
        return [d for d in self.decls
                if isinstance(d, Decl) and not d.ctype.is_function]


class FuncDef(Node):
    """A function definition with its body."""

    _fields = ("params", "body")

    def __init__(self, name, return_type, params, body, coord=None,
                 storage=None):
        super().__init__(coord)
        self.name = name
        self.return_type = return_type
        self.params = params  # list of Decl
        self.body = body      # Compound
        self.storage = storage


class Decl(Node):
    """A declaration of one name (variable, parameter, or prototype)."""

    _fields = ("init",)

    def __init__(self, name, ctype, init=None, storage=None, quals=None,
                 coord=None):
        super().__init__(coord)
        self.name = name
        self.ctype = ctype
        self.init = init
        self.storage = storage       # 'static' / 'extern' / 'typedef' / None
        self.quals = quals or []     # ['const', 'volatile', ...]

    @property
    def is_typedef(self):
        return self.storage == "typedef"


class StructDecl(Node):
    """A bare ``struct name { ... };`` definition at file or block scope."""

    _fields = ()

    def __init__(self, struct_type, coord=None):
        super().__init__(coord)
        self.struct_type = struct_type


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------

class Statement(Node):
    """Marker base class for statements."""


class Compound(Statement):
    _fields = ("items",)

    def __init__(self, items=None, coord=None):
        super().__init__(coord)
        self.items = items if items is not None else []


class ExprStmt(Statement):
    _fields = ("expr",)

    def __init__(self, expr, coord=None):
        super().__init__(coord)
        self.expr = expr


class DeclStmt(Statement):
    """One or more declarations appearing in statement position."""

    _fields = ("decls",)

    def __init__(self, decls, coord=None):
        super().__init__(coord)
        self.decls = decls


class If(Statement):
    _fields = ("cond", "then", "els")

    def __init__(self, cond, then, els=None, coord=None):
        super().__init__(coord)
        self.cond = cond
        self.then = then
        self.els = els


class While(Statement):
    _fields = ("cond", "body")

    def __init__(self, cond, body, coord=None):
        super().__init__(coord)
        self.cond = cond
        self.body = body


class DoWhile(Statement):
    _fields = ("body", "cond")

    def __init__(self, body, cond, coord=None):
        super().__init__(coord)
        self.body = body
        self.cond = cond


class For(Statement):
    _fields = ("init", "cond", "step", "body")

    def __init__(self, init, cond, step, body, coord=None):
        super().__init__(coord)
        self.init = init  # DeclStmt, ExprStmt, or None
        self.cond = cond
        self.step = step
        self.body = body


class Return(Statement):
    _fields = ("expr",)

    def __init__(self, expr=None, coord=None):
        super().__init__(coord)
        self.expr = expr


class Break(Statement):
    _fields = ()


class Continue(Statement):
    _fields = ()


class EmptyStmt(Statement):
    _fields = ()


class Switch(Statement):
    _fields = ("cond", "body")

    def __init__(self, cond, body, coord=None):
        super().__init__(coord)
        self.cond = cond
        self.body = body


class Case(Statement):
    _fields = ("expr", "stmts")

    def __init__(self, expr, stmts, coord=None):
        super().__init__(coord)
        self.expr = expr
        self.stmts = stmts


class Default(Statement):
    _fields = ("stmts",)

    def __init__(self, stmts, coord=None):
        super().__init__(coord)
        self.stmts = stmts


class Goto(Statement):
    _fields = ()

    def __init__(self, label, coord=None):
        super().__init__(coord)
        self.label = label


class Label(Statement):
    _fields = ("stmt",)

    def __init__(self, name, stmt, coord=None):
        super().__init__(coord)
        self.name = name
        self.stmt = stmt


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------

class Expression(Node):
    """Marker base class for expressions."""


class Id(Expression):
    _fields = ()

    def __init__(self, name, coord=None):
        super().__init__(coord)
        self.name = name


class Constant(Expression):
    """An int/float/char constant; ``value`` is the Python value."""

    _fields = ()

    def __init__(self, kind, value, text=None, coord=None):
        super().__init__(coord)
        self.kind = kind  # 'int' | 'float' | 'char'
        self.value = value
        self.text = text if text is not None else repr(value)


class StringLiteral(Expression):
    _fields = ()

    def __init__(self, value, coord=None):
        super().__init__(coord)
        self.value = value


class BinaryOp(Expression):
    _fields = ("left", "right")

    def __init__(self, op, left, right, coord=None):
        super().__init__(coord)
        self.op = op
        self.left = left
        self.right = right


class UnaryOp(Expression):
    """Prefix ops ('-', '+', '!', '~', '*', '&', '++', '--', 'sizeof')
    and postfix ops ('p++', 'p--')."""

    _fields = ("operand",)

    def __init__(self, op, operand, coord=None):
        super().__init__(coord)
        self.op = op
        self.operand = operand


class Assignment(Expression):
    _fields = ("lvalue", "rvalue")

    def __init__(self, op, lvalue, rvalue, coord=None):
        super().__init__(coord)
        self.op = op  # '=', '+=', '-=', ...
        self.lvalue = lvalue
        self.rvalue = rvalue


class TernaryOp(Expression):
    _fields = ("cond", "then", "els")

    def __init__(self, cond, then, els, coord=None):
        super().__init__(coord)
        self.cond = cond
        self.then = then
        self.els = els


class FuncCall(Expression):
    _fields = ("func", "args")

    def __init__(self, func, args=None, coord=None):
        super().__init__(coord)
        self.func = func
        self.args = args if args is not None else []

    @property
    def callee_name(self):
        """The direct callee name, or None for indirect calls."""
        if isinstance(self.func, Id):
            return self.func.name
        return None


class ArrayRef(Expression):
    _fields = ("base", "index")

    def __init__(self, base, index, coord=None):
        super().__init__(coord)
        self.base = base
        self.index = index


class MemberRef(Expression):
    _fields = ("base",)

    def __init__(self, base, member, arrow=False, coord=None):
        super().__init__(coord)
        self.base = base
        self.member = member
        self.arrow = arrow


class Cast(Expression):
    _fields = ("expr",)

    def __init__(self, ctype, expr, coord=None):
        super().__init__(coord)
        self.ctype = ctype
        self.expr = expr


class SizeofType(Expression):
    _fields = ()

    def __init__(self, ctype, coord=None):
        super().__init__(coord)
        self.ctype = ctype


class Comma(Expression):
    _fields = ("exprs",)

    def __init__(self, exprs, coord=None):
        super().__init__(coord)
        self.exprs = exprs


class InitList(Expression):
    """A braced initializer list ``{a, b, c}``."""

    _fields = ("exprs",)

    def __init__(self, exprs, coord=None):
        super().__init__(coord)
        self.exprs = exprs
