"""Dynamic race detection and HSM coherence auditing for the simulator.

The paper's translation scheme is only sound if its stage 1-3 sharing
analysis is: every variable left private (and therefore *cacheable*)
must never be accessed conflictingly across cores, because the SCC has
no cache coherence.  :class:`RaceDetector` turns that claim into a
runtime check:

* **Happens-before races** (FastTrack): per-thread vector clocks are
  advanced by the synchronization the runtimes expose — pthread
  create/join and mutexes, SCC test-and-set registers, the RCCE
  barrier, flags, and send/recv rendezvous.  Every simulated load and
  store is stamped with its thread's epoch; a conflicting pair neither
  of whose epochs is covered by the other side's clock is a data race.

* **Eraser lockset refinement**: each word remembers the intersection
  of locks held across its writes.  A write-write vector-clock
  conflict whose candidate lockset is still non-empty is counted as
  suppressed, not reported — consistent protection through one lock is
  evidence of an ordering the clock model did not capture.

* **HSM coherence audit**: a word in a *cacheable* (private DRAM)
  segment that is touched by more than one core is flagged regardless
  of happens-before ordering — synchronization does not flush another
  core's cache on this platform, so even a perfectly ordered remote
  read can observe a stale line.  This is exactly the bug class the
  paper's "shared => uncacheable" rule exists to prevent.  Races whose
  read lands in the MPB are annotated ``stale_cacheable`` too (MPBT
  lines are L1-cached on real hardware and only invalidated at
  synchronization points).

The detector is pure observation: it is consulted through single
``is not None`` probes on the interpreter/runtime hot paths (the same
contract as :mod:`repro.faults`), never charges simulated cycles, and
never touches program values — cycles, output, and traces are
byte-identical with the detector absent.

Thread ids are whatever the active runtime reports
(``runtime.race_thread()``): pthread TIDs for the single-core
baseline, UE ranks for RCCE runs.  Core ids — used only by the
coherence audit — come from the interpreter, so a single-core pthread
run can race but never violate coherence.
"""

import threading

from repro.race.lockset import LockRegistry
from repro.race.report import (
    COHERENCE,
    RACE,
    RaceAccess,
    RaceFinding,
    RaceReport,
)
from repro.race.shadow import ShadowMemory, VariableMap
from repro.race.vectorclock import Epoch, VectorClock
from repro.scc.memmap import SegmentKind

__all__ = [
    "RaceDetector", "RaceReport", "RaceFinding", "RaceAccess",
    "VectorClock", "Epoch", "RACE", "COHERENCE",
]

# Findings stored verbatim; everything past the cap is counted only.
DEFAULT_MAX_FINDINGS = 64


class RaceDetector:
    """One detector serves one run on one chip (like FaultInjector).

    All mutable state sits behind one lock: RCCE runs execute each
    simulated core on its own host thread, and the detector's shadow
    state is genuinely shared between them.  The detection *verdict*
    is schedule-stable — an unordered conflicting pair is flagged in
    whichever order the host happens to interleave it — though which
    side appears as "prior" in the report may vary.
    """

    COLLECTOR_NAME = "race.detector"

    def __init__(self, max_findings=DEFAULT_MAX_FINDINGS):
        self.max_findings = max_findings
        self.chip = None
        self._space = None
        self._lock = threading.Lock()
        self._vcs = {}              # tid -> VectorClock
        self._locks = LockRegistry()
        self._variables = VariableMap()
        self._shadow = ShadowMemory()
        self._flags = {}            # flag id -> VectorClock at write
        self._conds = {}            # condvar key -> VectorClock at signal
        self._barriers = {}         # barrier key -> round state
        self._seen = set()          # finding dedup keys
        self.findings = []
        self.finding_counts = {RACE: 0, COHERENCE: 0}
        self.dropped = 0
        self.checks = 0
        self.sync_edges = 0
        self.lockset_suppressed = 0

    # -- wiring ------------------------------------------------------------

    def attach(self, chip):
        """Install this detector as ``chip.race`` and publish its
        counters through the chip's metrics registry."""
        self.chip = chip
        self._space = chip.address_space
        chip.race = self
        chip.metrics.register_collector(
            self.COLLECTOR_NAME, self._collect_metrics, self._reset)
        return self

    def detach(self):
        if self.chip is not None:
            if self.chip.race is self:
                self.chip.race = None
            self.chip.metrics.unregister_collector(self.COLLECTOR_NAME)
            self.chip = None

    def _collect_metrics(self):
        samples = [
            ("counter", "race_checks", {}, self.checks),
            ("counter", "race_sync_edges", {}, self.sync_edges),
            ("counter", "race_lockset_suppressed", {},
             self.lockset_suppressed),
        ]
        for category in (RACE, COHERENCE):
            samples.append(("counter", "race_findings",
                            {"category": category},
                            self.finding_counts.get(category, 0)))
        return samples

    def _reset(self):
        self.checks = 0
        self.sync_edges = 0
        self.lockset_suppressed = 0
        self.finding_counts = {RACE: 0, COHERENCE: 0}

    def report(self):
        with self._lock:
            return RaceReport(
                list(self.findings), checks=self.checks,
                sync_edges=self.sync_edges,
                lockset_suppressed=self.lockset_suppressed,
                dropped=self.dropped)

    # -- thread clocks ------------------------------------------------------

    def _vc(self, tid):
        vc = self._vcs.get(tid)
        if vc is None:
            vc = VectorClock()
            vc.tick(tid)
            self._vcs[tid] = vc
        return vc

    @staticmethod
    def _tid_of(interp):
        race_thread = getattr(interp.runtime, "race_thread", None)
        if race_thread is not None:
            return race_thread()
        return interp.core_id

    # -- synchronization edges ---------------------------------------------

    def thread_create(self, parent, child):
        """Fork edge: the child starts with the parent's clock."""
        with self._lock:
            parent_vc = self._vc(parent)
            child_vc = parent_vc.copy()
            child_vc.tick(child)
            self._vcs[child] = child_vc
            parent_vc.tick(parent)
            self.sync_edges += 1

    def thread_join(self, parent, child):
        """Join edge: the parent absorbs the child's clock."""
        with self._lock:
            child_vc = self._vcs.get(child)
            if child_vc is not None:
                self._vc(parent).join(child_vc)
            self.sync_edges += 1

    def lock_acquire(self, tid, lock_id):
        with self._lock:
            self._locks.acquire(tid, lock_id, self._vc(tid))
            self.sync_edges += 1

    def lock_release(self, tid, lock_id):
        with self._lock:
            self._locks.release(tid, lock_id, self._vc(tid))
            self.sync_edges += 1

    def barrier_enter(self, tid, parties, key=None):
        """Called before a thread blocks on a barrier.  Rounds are
        versioned: the accumulator the last arriving thread seals
        becomes the release clock for exactly this round's ``parties``
        exits, so round N+1 entries interleaving with round N exits
        never mix clocks."""
        with self._lock:
            state = self._barriers.get(key)
            if state is None:
                state = self._barriers[key] = {
                    "round": 0, "entered": 0, "acc": None,
                    "thread_round": {}, "release": {}}
            if state["entered"] == 0:
                state["acc"] = VectorClock()
                state["round"] += 1
            state["acc"].join(self._vc(tid))
            state["thread_round"][tid] = state["round"]
            state["entered"] += 1
            if state["entered"] >= parties:
                state["release"][state["round"]] = [state["acc"],
                                                   parties]
                state["entered"] = 0
                state["acc"] = None
            self.sync_edges += 1

    def barrier_exit(self, tid, key=None):
        """Called after the barrier released this thread: join the
        sealed round clock (release entries are refcounted and dropped
        once every participant has drained them)."""
        with self._lock:
            state = self._barriers.get(key)
            if state is None:
                return
            round_no = state["thread_round"].pop(tid, None)
            if round_no is None:
                return
            entry = state["release"].get(round_no)
            if entry is None:
                return
            vc = self._vc(tid)
            vc.join(entry[0])
            vc.tick(tid)
            entry[1] -= 1
            if entry[1] <= 0:
                del state["release"][round_no]

    def flag_write(self, tid, flag_id):
        """An RCCE flag write publishes the writer's clock."""
        with self._lock:
            vc = self._vc(tid)
            self._flags[flag_id] = vc.copy()
            vc.tick(tid)
            self.sync_edges += 1

    def flag_sync(self, tid, flag_id):
        """A flag read / successful wait acquires the writer's clock."""
        with self._lock:
            flag_vc = self._flags.get(flag_id)
            if flag_vc is not None:
                self._vc(tid).join(flag_vc)
            self.sync_edges += 1

    def cond_signal(self, tid, cond_id):
        """A pthread_cond_signal/broadcast publishes the signaller's
        clock (like a flag write: the waiter that consumes this signal
        is ordered after everything the signaller did first)."""
        with self._lock:
            vc = self._vc(tid)
            self._conds[cond_id] = vc.copy()
            vc.tick(tid)
            self.sync_edges += 1

    def cond_wakeup(self, tid, cond_id):
        """A woken pthread_cond_wait acquires the signaller's clock."""
        with self._lock:
            cond_vc = self._conds.get(cond_id)
            if cond_vc is not None:
                self._vc(tid).join(cond_vc)
            self.sync_edges += 1

    def channel_send(self, tid):
        """Rendezvous, sender side: returns the clock to ship with the
        payload."""
        with self._lock:
            vc = self._vc(tid)
            shipped = vc.copy()
            vc.tick(tid)
            self.sync_edges += 1
            return shipped

    def channel_recv(self, tid, sender_vc):
        """Rendezvous, receiver side: absorb the sender's clock and
        return the acknowledgement clock the sender will join (RCCE
        send/recv is fully synchronous, so the edge runs both ways)."""
        with self._lock:
            vc = self._vc(tid)
            if sender_vc is not None:
                vc.join(sender_vc)
            ack = vc.copy()
            vc.tick(tid)
            self.sync_edges += 1
            return ack

    def channel_ack(self, tid, ack_vc):
        with self._lock:
            if ack_vc is not None:
                self._vc(tid).join(ack_vc)
            self.sync_edges += 1

    # -- access recording ---------------------------------------------------

    def register(self, name, base, size, scope_kind, function=None):
        """Variable-extent registration (tracer protocol): resolves
        addresses to names in reports and invalidates shadow state when
        a stack slot is re-bound."""
        with self._lock:
            self._variables.register(name, base, size, scope_kind,
                                     function)

    def record(self, interp, addr, kind):
        """One simulated load (``kind="read"``) or store (``"write"``)."""
        tid = self._tid_of(interp)
        with self._lock:
            self._record_locked(tid, interp.core_id,
                                interp.current_function, interp.cycles,
                                addr, kind)

    def record_range(self, interp, base, count, stride, kind):
        """A block transfer (RCCE data movers) touching ``count`` words
        spaced ``stride`` bytes apart."""
        tid = self._tid_of(interp)
        core = interp.core_id
        function = interp.current_function
        cycles = interp.cycles
        with self._lock:
            for index in range(count):
                self._record_locked(tid, core, function, cycles,
                                    base + index * stride, kind)

    def _record_locked(self, tid, core, function, cycles, addr, kind):
        self.checks += 1
        try:
            segment = self._space.resolve(addr)[0]
        except ValueError:
            return  # outside every simulated segment; nothing to audit
        extent = self._variables.resolve(addr)
        word = self._shadow.lookup(addr, segment, extent)
        vc = self._vcs.get(tid)
        if vc is None:
            vc = self._vc(tid)
        clock = vc.clocks.get(tid, 0)
        cacheable = segment is SegmentKind.PRIVATE
        write = word.write
        if kind == "read":
            if write is not None and write[0] != tid:
                if cacheable and write[2] != core:
                    # ordered or not: another core's write sits in DRAM
                    # while this core's cache may still hold the old line
                    self._emit(COHERENCE, addr, segment, extent, write,
                               "write", (tid, clock, core, function,
                                         cycles), "read",
                               stale_cacheable=True)
                elif vc.clocks.get(write[0], 0) < write[1]:
                    self._emit(RACE, addr, segment, extent, write,
                               "write", (tid, clock, core, function,
                                         cycles), "read",
                               stale_cacheable=(
                                   segment is SegmentKind.MPB
                                   and write[2] != core))
            word.reads[tid] = (clock, core, function, cycles)
        else:
            refined = self._locks.refine(word, tid)
            current = (tid, clock, core, function, cycles)
            if write is not None and write[0] != tid and \
                    vc.clocks.get(write[0], 0) < write[1]:
                if refined:
                    # consistently lock-protected: an ordering the
                    # clock model missed, not a race
                    self.lockset_suppressed += 1
                else:
                    self._emit(RACE, addr, segment, extent, write,
                               "write", current, "write")
            for reader_tid, read in word.reads.items():
                if reader_tid != tid and \
                        vc.clocks.get(reader_tid, 0) < read[0]:
                    self._emit(RACE, addr, segment, extent,
                               (reader_tid,) + read, "read", current,
                               "write")
                    break
            if cacheable:
                if write is not None and write[2] != core:
                    self._emit(COHERENCE, addr, segment, extent, write,
                               "write", current, "write",
                               stale_cacheable=True)
                else:
                    for reader_tid, read in word.reads.items():
                        if read[1] != core:
                            self._emit(COHERENCE, addr, segment,
                                       extent, (reader_tid,) + read,
                                       "read", current, "write",
                                       stale_cacheable=True)
                            break
            word.write = current
            word.lockset = refined
            word.reads.clear()
        word.access_cores.add(core)

    # -- reporting ----------------------------------------------------------

    def _emit(self, category, addr, segment, extent, prior, prior_kind,
              current, current_kind, stale_cacheable=False):
        name = extent.name if extent is not None else addr
        key = (category, name, prior[0], current[0], prior_kind,
               current_kind)
        if key in self._seen:
            return
        self._seen.add(key)
        self.finding_counts[category] = \
            self.finding_counts.get(category, 0) + 1
        finding = RaceFinding(
            category, addr, str(segment),
            extent.describe() if extent is not None else None,
            RaceAccess(prior_kind, *prior),
            RaceAccess(current_kind, *current),
            stale_cacheable=stale_cacheable)
        if len(self.findings) < self.max_findings:
            self.findings.append(finding)
        else:
            self.dropped += 1
        chip = self.chip
        if chip is not None and chip.events.enabled:
            chip.events.instant(
                finding.current.core, finding.current.cycles,
                "race_detected", "race",
                {"category": category, "addr": addr,
                 "variable": finding.variable,
                 "segment": finding.segment}, pid=chip.trace_pid)
