"""Vector clocks and epochs for happens-before race detection.

A :class:`VectorClock` maps thread ids to logical clocks; an
:class:`Epoch` is the FastTrack-style compressed "tid @ clock" stamp of
one access.  Thread ids are whatever the runtimes hand the detector —
pthread TIDs for the single-core baseline, UE ranks for RCCE runs —
and clocks advance only at synchronization releases, so comparing an
epoch against a clock is O(1) and comparing two accesses never charges
simulated cycles.
"""


class VectorClock:
    """A sparse tid -> clock map (absent entries read as 0)."""

    __slots__ = ("clocks",)

    def __init__(self, clocks=None):
        self.clocks = dict(clocks) if clocks else {}

    def time_of(self, tid):
        return self.clocks.get(tid, 0)

    def tick(self, tid):
        """Advance this thread's own component (a release event)."""
        self.clocks[tid] = self.clocks.get(tid, 0) + 1

    def join(self, other):
        """Pointwise maximum (an acquire event)."""
        clocks = self.clocks
        for tid, clock in other.clocks.items():
            if clocks.get(tid, 0) < clock:
                clocks[tid] = clock

    def copy(self):
        return VectorClock(self.clocks)

    def covers(self, epoch):
        """True when ``epoch`` happens-before this clock's owner."""
        return self.clocks.get(epoch.tid, 0) >= epoch.clock

    def __repr__(self):
        inner = ", ".join("%s@%d" % (tid, clock)
                          for tid, clock in sorted(self.clocks.items(),
                                                   key=lambda kv: str(kv[0])))
        return "VectorClock(%s)" % inner


class Epoch:
    """One access's (tid, clock) stamp."""

    __slots__ = ("tid", "clock")

    def __init__(self, tid, clock):
        self.tid = tid
        self.clock = clock

    def happens_before(self, vc):
        return vc.time_of(self.tid) >= self.clock

    def __eq__(self, other):
        return isinstance(other, Epoch) and self.tid == other.tid \
            and self.clock == other.clock

    def __hash__(self):
        return hash((self.tid, self.clock))

    def __repr__(self):
        return "%s@%d" % (self.tid, self.clock)
