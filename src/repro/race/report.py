"""Structured race/coherence findings with per-access provenance.

Each :class:`RaceFinding` pairs two conflicting accesses, each carrying
core / function (the simulator's program-counter proxy) / variable /
epoch provenance, and converts to a
:class:`repro.diagnostics.Diagnostic` so the CLI renders findings with
the same machinery as pipeline warnings (and ``--strict`` can turn
them into exit 70).
"""

from repro.diagnostics import Diagnostic

RACE = "race"              # unordered conflicting accesses (HB)
COHERENCE = "coherence"    # cacheable line shared across cores (HSM)


class RaceAccess:
    """One side of a conflicting pair."""

    __slots__ = ("kind", "tid", "clock", "core", "function", "cycles")

    def __init__(self, kind, tid, clock, core, function, cycles):
        self.kind = kind          # "read" | "write"
        self.tid = tid
        self.clock = clock
        self.core = core
        self.function = function
        self.cycles = cycles

    @property
    def epoch(self):
        return "%s@%d" % (self.tid, self.clock)

    def describe(self):
        where = self.function or "<static>"
        return "%s by thread %s (epoch %s) on core %d in %s at cycle " \
            "%d" % (self.kind, self.tid, self.epoch, self.core, where,
                    self.cycles)

    def as_dict(self):
        return {"kind": self.kind, "tid": self.tid,
                "epoch": self.epoch, "core": self.core,
                "function": self.function, "cycles": self.cycles}


class RaceFinding:
    """One verified conflict on one simulated memory word."""

    __slots__ = ("category", "addr", "segment", "variable", "prior",
                 "current", "stale_cacheable")

    def __init__(self, category, addr, segment, variable, prior,
                 current, stale_cacheable=False):
        self.category = category        # RACE | COHERENCE
        self.addr = addr
        self.segment = segment          # "private" | "shared" | "mpb"
        self.variable = variable        # resolved name, or None
        self.prior = prior
        self.current = current
        # True when the racing read targets a cacheable line (MPB under
        # MPBT, or private DRAM) and may observe a stale value
        self.stale_cacheable = stale_cacheable

    def location(self):
        name = "'%s'" % self.variable if self.variable else "<anon>"
        return "%s (%s, addr 0x%x)" % (name, self.segment, self.addr)

    def message(self):
        if self.category == COHERENCE:
            head = "stale cacheable line: %s" % self.location()
            tail = ("core %d's %s is not flushed before the %s — the "
                    "line is cacheable and shared across cores, which "
                    "the SCC's coherence-free memory cannot keep "
                    "consistent"
                    % (self.prior.core, self.prior.describe(),
                       self.current.describe()))
            return "%s: %s" % (head, tail)
        head = "data race on %s" % self.location()
        tail = "%s is unordered with %s" % (self.current.describe(),
                                            self.prior.describe())
        if self.stale_cacheable:
            tail += " (and the read targets a cacheable line: it may" \
                " observe a stale value)"
        return "%s: %s" % (head, tail)

    def as_diagnostic(self):
        return Diagnostic.warning("race", self.message())

    def as_dict(self):
        return {"category": self.category, "addr": self.addr,
                "segment": self.segment, "variable": self.variable,
                "stale_cacheable": self.stale_cacheable,
                "prior": self.prior.as_dict(),
                "current": self.current.as_dict()}

    def __repr__(self):
        return "RaceFinding(%s)" % self.message()


class RaceReport:
    """Everything one detector run observed, ready to render/export."""

    def __init__(self, findings=(), checks=0, sync_edges=0,
                 lockset_suppressed=0, dropped=0):
        self.findings = list(findings)
        self.checks = checks
        self.sync_edges = sync_edges
        self.lockset_suppressed = lockset_suppressed
        # findings beyond the detector's cap (counted, not stored)
        self.dropped = dropped

    @property
    def has_findings(self):
        return bool(self.findings) or self.dropped > 0

    @property
    def ok(self):
        return not self.has_findings

    def counts(self):
        result = {RACE: 0, COHERENCE: 0}
        for finding in self.findings:
            result[finding.category] = result.get(finding.category,
                                                  0) + 1
        return result

    def diagnostics(self):
        return [finding.as_diagnostic() for finding in self.findings]

    def render(self):
        if not self.has_findings:
            return "race audit: clean (%d accesses checked, %d sync " \
                "edges)" % (self.checks, self.sync_edges)
        counts = self.counts()
        lines = ["race audit: %d race(s), %d coherence violation(s)%s"
                 % (counts.get(RACE, 0), counts.get(COHERENCE, 0),
                    " (+%d dropped past the cap)" % self.dropped
                    if self.dropped else "")]
        for finding in self.findings:
            lines.append("  " + finding.message())
        return "\n".join(lines)

    def as_dict(self):
        return {"checks": self.checks,
                "sync_edges": self.sync_edges,
                "lockset_suppressed": self.lockset_suppressed,
                "dropped": self.dropped,
                "counts": self.counts(),
                "findings": [f.as_dict() for f in self.findings]}

    def __len__(self):
        return len(self.findings)

    def __iter__(self):
        return iter(self.findings)
