"""Per-location shadow state and variable-name resolution.

Every simulated memory word the detector has seen carries a
:class:`ShadowWord`: the last write's epoch (with core/function/cycle
provenance), the reads since that write, the Eraser-style candidate
lockset of its writes, and — for the HSM coherence audit — which cores
have touched the word while it sat in a *cacheable* segment.

Stack reuse: the serial pthread baseline places successive threads'
frames at the same addresses.  Like
:class:`repro.sim.trace.AccessTracer`, every local binding registers a
fresh :class:`VariableExtent`; a shadow word whose owning extent has
been superseded is reset on its next access, so two threads' own
copies of one local are never mistaken for a race.
"""

import bisect


class VariableExtent:
    """One registered instance of a named variable's address range."""

    __slots__ = ("name", "base", "size", "scope_kind", "function")

    def __init__(self, name, base, size, scope_kind, function=None):
        self.name = name
        self.base = base
        self.size = max(size, 1)
        self.scope_kind = scope_kind
        self.function = function

    @property
    def end(self):
        return self.base + self.size

    def describe(self):
        if self.function:
            return "%s (local of %s)" % (self.name, self.function)
        return self.name

    def __repr__(self):
        return "VariableExtent(%s @ 0x%x+%d)" % (self.name, self.base,
                                                 self.size)


class VariableMap:
    """Bisect-indexed extents, newest instance wins at equal bases."""

    def __init__(self):
        self._bases = []
        self._extents = []

    def register(self, name, base, size, scope_kind, function=None):
        index = bisect.bisect_right(self._bases, base)
        if index > 0 and self._bases[index - 1] == base:
            previous = self._extents[index - 1]
            if scope_kind != "local" and previous.name == name and \
                    previous.size == max(size, 1):
                # a shared/heap segment re-registered by another core's
                # symmetric allocation call: keep the original instance
                # so its shadow words survive (only locals are rebound)
                return previous
            extent = VariableExtent(name, base, size, scope_kind,
                                    function)
            self._extents[index - 1] = extent
            return extent
        extent = VariableExtent(name, base, size, scope_kind, function)
        self._bases.insert(index, base)
        self._extents.insert(index, extent)
        return extent

    def resolve(self, addr):
        index = bisect.bisect_right(self._bases, addr) - 1
        if index < 0:
            return None
        extent = self._extents[index]
        if addr < extent.end:
            return extent
        return None


class ShadowWord:
    """Detector state for one simulated memory word."""

    __slots__ = ("segment", "owner", "write", "reads", "lockset",
                 "access_cores")

    def __init__(self, segment, owner):
        self.segment = segment
        self.owner = owner      # VariableExtent instance (or None)
        # last write: (tid, clock, core, function, cycles) or None
        self.write = None
        # reads since the last write: tid -> (clock, core, fn, cycles)
        self.reads = {}
        # intersection of locks held across all writes (Eraser)
        self.lockset = None
        # every core that touched the word (HSM coherence audit)
        self.access_cores = set()


class ShadowMemory:
    """addr -> ShadowWord, with extent-generation invalidation."""

    def __init__(self):
        self._words = {}

    def __len__(self):
        return len(self._words)

    def lookup(self, addr, segment, extent):
        """The live shadow word for ``addr``; a word owned by a
        superseded (rebound) extent is replaced with a fresh one."""
        word = self._words.get(addr)
        if word is None or word.owner is not extent:
            word = ShadowWord(segment, extent)
            self._words[addr] = word
        return word

    def clear(self):
        self._words.clear()
