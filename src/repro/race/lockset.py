"""Lock bookkeeping: held-lock sets and per-lock vector clocks.

Locks give the detector two things.  First, happens-before edges: a
release copies the holder's vector clock into the lock, an acquire
joins it back — so critical sections protected by one lock are ordered
and never race.  Second, the Eraser-style *candidate lockset* used as
a refinement on write-write conflicts: if every write to a location
was performed under some common lock, a vector-clock conflict (e.g.
through an unmodeled ordering) is reported as suppressed rather than
as a race.

Lock ids are namespaced tuples so pthread mutexes (keyed by the mutex
variable's address) and SCC test-and-set registers (keyed by register
index) never collide.
"""


class LockRegistry:
    """Held locks per thread + release clocks per lock."""

    def __init__(self):
        self._held = {}      # tid -> set of lock ids
        self._release = {}   # lock id -> VectorClock at last release

    def held(self, tid):
        locks = self._held.get(tid)
        return locks if locks is not None else frozenset()

    def acquire(self, tid, lock_id, vc):
        """Record the acquisition and join the lock's release clock
        into ``vc`` (the acquiring thread's vector clock)."""
        self._held.setdefault(tid, set()).add(lock_id)
        release_vc = self._release.get(lock_id)
        if release_vc is not None:
            vc.join(release_vc)

    def release(self, tid, lock_id, vc):
        """Record the release: the lock remembers ``vc`` and the
        holder's own component advances (a release event)."""
        held = self._held.get(tid)
        if held is not None:
            held.discard(lock_id)
        self._release[lock_id] = vc.copy()
        vc.tick(tid)

    def refine(self, word, tid):
        """Intersect ``word``'s candidate lockset with the locks the
        writing thread holds now; returns the new lockset (a set,
        possibly empty)."""
        held = self.held(tid)
        if word.lockset is None:
            return set(held)
        return word.lockset & held
