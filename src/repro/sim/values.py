"""Runtime value representations for the interpreter.

Scalars are plain Python ints/floats.  Pointers carry the address, the
pointee stride (for arithmetic), and whether the pointee is floating
(so loads return the right Python type).
"""

from repro.cfront import ctypes


class Pointer:
    """A typed address."""

    __slots__ = ("addr", "stride", "pointee")

    def __init__(self, addr, stride=4, pointee=None):
        self.addr = addr
        self.stride = max(stride, 1)
        self.pointee = pointee  # CType of what is pointed at, or None

    def offset(self, elements):
        return Pointer(self.addr + elements * self.stride, self.stride,
                       self.pointee)

    def __eq__(self, other):
        if isinstance(other, Pointer):
            return self.addr == other.addr
        if other in (0, None):
            return self.addr == 0
        return NotImplemented

    def __hash__(self):
        return hash(self.addr)

    def __bool__(self):
        return self.addr != 0

    def __repr__(self):
        return "Pointer(0x%x, stride=%d)" % (self.addr, self.stride)


NULL = Pointer(0, 1)


class FunctionRef:
    """A function designator value (for function pointers)."""

    __slots__ = ("name",)

    def __init__(self, name):
        self.name = name

    def __eq__(self, other):
        return isinstance(other, FunctionRef) and self.name == other.name

    def __hash__(self):
        return hash(self.name)

    def __repr__(self):
        return "FunctionRef(%s)" % self.name


def pointer_for(ctype, addr):
    """Build a Pointer matching a declared pointer/array C type."""
    pointee = ctypes.pointee(ctype)
    if pointee is None:
        return Pointer(addr, 4, None)
    stride = pointee.sizeof() or 4
    return Pointer(addr, stride, pointee)


def default_value(ctype):
    """The zero value of a C type."""
    if isinstance(ctype, ctypes.PrimitiveType) and ctype.is_floating:
        return 0.0
    if isinstance(ctype, (ctypes.PointerType, ctypes.ArrayType)):
        return NULL
    return 0


def coerce(ctype, value):
    """Convert ``value`` to the Python representation of ``ctype``."""
    if value is None:
        return default_value(ctype)
    if isinstance(ctype, ctypes.PrimitiveType):
        if ctype.is_floating:
            if isinstance(value, Pointer):
                return float(value.addr)
            return float(value)
        if ctype.is_integral:
            if isinstance(value, Pointer):
                return value.addr
            if isinstance(value, FunctionRef):
                return value
            return _truncate_int(int(value), ctype)
        return value  # void
    if isinstance(ctype, (ctypes.PointerType, ctypes.ArrayType)):
        if isinstance(value, (Pointer, FunctionRef)):
            if isinstance(value, Pointer):
                pointee = ctypes.pointee(ctype)
                if pointee is not None and not pointee.is_void:
                    return Pointer(value.addr, pointee.sizeof() or 1,
                                   pointee)
            return value
        if isinstance(value, (int, float)):
            pointee = ctypes.pointee(ctype)
            stride = (pointee.sizeof() or 1) if pointee else 1
            return Pointer(int(value), stride, pointee)
    return value


_INT_BITS = {1: 8, 2: 16, 4: 32, 8: 64}


def _truncate_int(value, ctype):
    """Wrap to the C type's width (two's complement for signed)."""
    size = ctype.sizeof() or 4
    bits = _INT_BITS.get(size, 32)
    mask = (1 << bits) - 1
    value &= mask
    unsigned = ctype.name.startswith("unsigned")
    if not unsigned and value >= (1 << (bits - 1)):
        value -= 1 << bits
    return value
