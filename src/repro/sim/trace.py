"""Memory-access tracing for the interpreter.

The related work the paper contrasts against (von Praun & Gross [30],
Pozniansky & Schuster [23], Xu et al. [32]) detects shared data *at
runtime* by observing which threads touch which locations.  This module
implements that observer: an :class:`AccessTracer` attached to an
interpreter records every load/store with the executing thread's
identity and maps addresses back to the variables that own them, so a
dynamic sharing detector (``repro.core.dynamic``) can be compared
against the paper's static Stage 1-3 analysis.

Locals are tracked per *instance*: every stack binding registers a
fresh extent, so two threads' own copies of the same local (which the
sequential baseline places at the same reused stack addresses) are not
mistaken for sharing — only a single instance touched by more than one
thread counts, exactly the semantics a per-thread-stack machine would
observe.
"""

import bisect


class VariableExtent:
    """One *instance* of a named variable's address range."""

    __slots__ = ("name", "base", "size", "scope_kind", "function",
                 "accessors", "reads", "writes")

    def __init__(self, name, base, size, scope_kind, function):
        self.name = name
        self.base = base
        self.size = size
        self.scope_kind = scope_kind
        self.function = function
        self.accessors = set()
        self.reads = 0
        self.writes = 0

    @property
    def end(self):
        return self.base + self.size

    @property
    def key(self):
        return (self.function, self.name)

    def __repr__(self):
        return "VariableExtent(%s @ 0x%x+%d, %d threads)" % (
            self.name, self.base, self.size, len(self.accessors))


class AccessTracer:
    """Records accesses and resolves them to registered variables.

    ``thread_of(interp)`` supplies the executing thread's identity (the
    pthread runtime exposes its current TID; RCCE cores just use their
    rank).
    """

    def __init__(self, thread_of=None):
        self.thread_of = thread_of or (lambda interp: interp.core_id)
        self._extents = []   # sorted by base; newest last among equals
        self._bases = []
        self.retired = []    # instances shadowed by re-registration
        self.unresolved = 0

    # -- registration ---------------------------------------------------------

    def register(self, name, base, size, scope_kind, function=None):
        extent = VariableExtent(name, base, max(size, 1), scope_kind,
                                function)
        index = bisect.bisect_right(self._bases, base)
        # an identical base means a reused stack slot: retire the old
        # instance so its accessor set stays frozen
        if index > 0 and self._bases[index - 1] == base:
            self.retired.append(self._extents[index - 1])
            self._bases[index - 1] = base
            self._extents[index - 1] = extent
            return extent
        self._bases.insert(index, base)
        self._extents.insert(index, extent)
        return extent

    def resolve(self, addr):
        """The live variable instance owning ``addr``, or None."""
        index = bisect.bisect_right(self._bases, addr) - 1
        if index < 0:
            return None
        extent = self._extents[index]
        if addr < extent.end:
            return extent
        return None

    # -- recording ----------------------------------------------------------------

    def record(self, interp, addr, kind):
        extent = self.resolve(addr)
        if extent is None:
            self.unresolved += 1
            return
        extent.accessors.add(self.thread_of(interp))
        if kind == "read":
            extent.reads += 1
        else:
            extent.writes += 1

    # -- results ---------------------------------------------------------------------

    def _all_instances(self):
        return list(self._extents) + self.retired

    def shared_keys(self):
        """Variables with at least one instance touched by more than
        one thread."""
        return {extent.key for extent in self._all_instances()
                if len(extent.accessors) > 1}

    def observed_keys(self):
        """Variables with at least one touched instance."""
        return {extent.key for extent in self._all_instances()
                if extent.accessors}

    def access_totals(self):
        """{key: (reads, writes)} aggregated over instances."""
        totals = {}
        for extent in self._all_instances():
            reads, writes = totals.get(extent.key, (0, 0))
            totals[extent.key] = (reads + extent.reads,
                                  writes + extent.writes)
        return totals
