"""libc subset available to simulated programs.

Builtins receive ``(interp, arg_nodes)`` and evaluate their own
arguments, which lets printf handle varargs.  Costs are charged in core
cycles: math library calls use their P54C-ish latencies, I/O charges a
flat cost (the paper's benchmarks only print results at the end).
"""

import math

from repro.sim.values import NULL, Pointer

PRINTF_COST = 400
MATH_CALL_COST = 60
ALLOC_COST = 120


def _eval_args(interp, arg_nodes):
    return [interp.eval_expr(node) for node in arg_nodes]


def _format_printf(interp, fmt, args):
    """A small %-formatter covering %d %i %u %ld %lu %f %lf %g %e %c %s
    %x %p and %%."""
    out = []
    arg_iter = iter(args)
    index = 0
    while index < len(fmt):
        ch = fmt[index]
        if ch != "%":
            out.append(ch)
            index += 1
            continue
        index += 1
        if index < len(fmt) and fmt[index] == "%":
            out.append("%")
            index += 1
            continue
        spec = "%"
        while index < len(fmt) and fmt[index] in "-+ #0123456789.*lhz":
            spec += fmt[index]
            index += 1
        if index >= len(fmt):
            out.append(spec)
            break
        conv = fmt[index]
        index += 1
        spec_clean = spec.replace("l", "").replace("h", "") \
            .replace("z", "")
        try:
            value = next(arg_iter)
        except StopIteration:
            out.append(spec + conv)
            continue
        if isinstance(value, Pointer):
            value = value.addr if conv != "s" else "<ptr>"
        if conv in "di":
            out.append((spec_clean + "d") % int(value))
        elif conv == "u":
            out.append((spec_clean + "d") % (int(value) & 0xFFFFFFFF))
        elif conv in "feEgG":
            out.append((spec_clean + conv) % float(value))
        elif conv == "c":
            out.append(chr(int(value)) if isinstance(value, (int, float))
                       else str(value))
        elif conv == "s":
            out.append(str(value))
        elif conv in "xX":
            out.append((spec_clean + conv) % int(value))
        elif conv == "p":
            out.append("0x%x" % int(value))
        else:
            out.append(spec + conv)
    return "".join(out)


def _printf(interp, arg_nodes):
    args = _eval_args(interp, arg_nodes)
    interp.charge(PRINTF_COST)
    if not args:
        return 0
    fmt = args[0]
    if not isinstance(fmt, str):
        return 0
    text = _format_printf(interp, fmt, args[1:])
    interp.write_output(text)
    return len(text)


def _fprintf(interp, arg_nodes):
    # ignore the stream argument
    return _printf(interp, arg_nodes[1:]) if arg_nodes else 0


def _sprintf(interp, arg_nodes):
    # writing into a char buffer is not modelled; just charge
    interp.charge(PRINTF_COST)
    _eval_args(interp, arg_nodes)
    return 0


def _math1(fn):
    def builtin(interp, arg_nodes):
        args = _eval_args(interp, arg_nodes)
        interp.charge(MATH_CALL_COST)
        return fn(float(args[0]))
    return builtin


def _math2(fn):
    def builtin(interp, arg_nodes):
        args = _eval_args(interp, arg_nodes)
        interp.charge(MATH_CALL_COST)
        return fn(float(args[0]), float(args[1]))
    return builtin


def _malloc(interp, arg_nodes):
    args = _eval_args(interp, arg_nodes)
    interp.charge(ALLOC_COST)
    size = max(int(args[0]), 4)
    segment = interp.chip.address_space.alloc_private(
        interp.core_id, size, "malloc")
    return Pointer(segment.base, 4, None)


def _calloc(interp, arg_nodes):
    args = _eval_args(interp, arg_nodes)
    interp.charge(ALLOC_COST)
    count = max(int(args[0]), 1)
    size = max(int(args[1]), 1) if len(args) > 1 else 4
    segment = interp.chip.address_space.alloc_private(
        interp.core_id, count * size, "calloc")
    interp.memory.memset(segment.base, 0, count, max(size, 1))
    return Pointer(segment.base, max(size, 1), None)


def _free(interp, arg_nodes):
    _eval_args(interp, arg_nodes)
    interp.charge(ALLOC_COST // 4)
    return None


def _block_charge(interp, count):
    """Charge a bulk word-copy cost (one cycle per word) and classify
    it for cycle attribution."""
    interp.charge(count)
    if interp._attr is not None:
        interp._attr.add(interp.core_id, "block_copy", count)


def _memset(interp, arg_nodes):
    args = _eval_args(interp, arg_nodes)
    pointer, value, nbytes = args[0], int(args[1]), int(args[2])
    if not isinstance(pointer, Pointer):
        return NULL
    count = max(nbytes // pointer.stride, 1)
    _block_charge(interp, count)  # one cycle per word, bulk
    interp.memory.memset(pointer.addr, value, count, pointer.stride)
    if interp._race is not None:
        # block builtins bypass interp.store, so shadow-record here
        interp._race.record_range(interp, pointer.addr, count,
                                  pointer.stride, "write")
    return pointer


def _memcpy(interp, arg_nodes):
    args = _eval_args(interp, arg_nodes)
    dst, src, nbytes = args[0], args[1], int(args[2])
    if not isinstance(dst, Pointer) or not isinstance(src, Pointer):
        return NULL
    count = max(nbytes // dst.stride, 1)
    _block_charge(interp, count)
    interp.memory.memcpy(dst.addr, src.addr, count, dst.stride)
    if interp._race is not None:
        interp._race.record_range(interp, src.addr, count, dst.stride,
                                  "read")
        interp._race.record_range(interp, dst.addr, count, dst.stride,
                                  "write")
    return dst


def _strcpy(interp, arg_nodes):
    """Strings are whole Python values in the memory model, so strcpy
    is one stored value — priced per word like the other block
    builtins."""
    args = _eval_args(interp, arg_nodes)
    if len(args) < 2 or not isinstance(args[0], Pointer):
        return NULL
    dst, src = args[0], args[1]
    if isinstance(src, Pointer):
        text = interp.memory.load(src.addr)
        if interp._race is not None:
            interp._race.record_range(interp, src.addr, 1,
                                      max(src.stride, 1), "read")
    else:
        text = src
    text = "" if text is None else str(text)
    count = max((len(text) + 1 + 3) // 4, 1)  # words incl. the NUL
    _block_charge(interp, count)
    interp.memory.store(dst.addr, text)
    if interp._race is not None:
        interp._race.record_range(interp, dst.addr, 1,
                                  max(dst.stride, 1), "write")
    return dst


def _abs(interp, arg_nodes):
    args = _eval_args(interp, arg_nodes)
    interp.charge_op("int_alu")
    return abs(int(args[0]))


def _rand(interp, arg_nodes):
    _eval_args(interp, arg_nodes)
    interp.charge(20)
    return interp.rand()


def _srand(interp, arg_nodes):
    args = _eval_args(interp, arg_nodes)
    interp._rand_state = int(args[0]) or 1
    return None


def _exit(interp, arg_nodes):
    from repro.sim.interpreter import ThreadExit
    args = _eval_args(interp, arg_nodes)
    raise ThreadExit(args[0] if args else 0)


def _atoi(interp, arg_nodes):
    args = _eval_args(interp, arg_nodes)
    interp.charge(30)
    try:
        return int(str(args[0]).strip())
    except ValueError:
        return 0


def _puts(interp, arg_nodes):
    args = _eval_args(interp, arg_nodes)
    interp.charge(PRINTF_COST)
    if args and isinstance(args[0], str):
        interp.write_output(args[0] + "\n")
    return 0


def default_builtins():
    """The builtin registry shared by all runtimes."""
    return {
        "printf": _printf,
        "fprintf": _fprintf,
        "sprintf": _sprintf,
        "puts": _puts,
        "sqrt": _math1(math.sqrt),
        "fabs": _math1(abs),
        "sin": _math1(math.sin),
        "cos": _math1(math.cos),
        "tan": _math1(math.tan),
        "exp": _math1(math.exp),
        "log": _math1(math.log),
        "floor": _math1(math.floor),
        "ceil": _math1(math.ceil),
        "pow": _math2(math.pow),
        "fmod": _math2(math.fmod),
        "atan2": _math2(math.atan2),
        "abs": _abs,
        "malloc": _malloc,
        "calloc": _calloc,
        "free": _free,
        "memset": _memset,
        "memcpy": _memcpy,
        "strcpy": _strcpy,
        "rand": _rand,
        "srand": _srand,
        "exit": _exit,
        "atoi": _atoi,
    }
