"""End-to-end program runners.

``run_pthread_single_core`` reproduces the paper's baseline: the whole
multithreaded program on one SCC core, threads time-sliced.

``run_rcce`` runs a translated program on N cores: one Python thread
per simulated core, a shared memory object, a shared RCCE world, and
per-core cycle clocks aligned at every barrier.  The reported runtime
is the slowest core's final clock — wall time, as the paper measures.

Both runners accept an optional ``faults`` spec (see ``repro.faults``)
and — for ``run_rcce`` — an optional ``watchdog`` (see
``repro.sim.watchdog``) and ``recovery``
(:class:`repro.recovery.RecoveryOptions`).  With all left at ``None``
every hook is a single attribute check and runs are byte-identical to
a build without this layer.

``run_rcce_supervised`` wraps ``run_rcce`` in a restart loop: when a
restartable fault kills a checkpointing run, it reloads the newest
snapshot and re-runs (restore-by-verified-replay) up to
``max_restarts`` times, reporting every attempt in a
:class:`~repro.recovery.RecoveryReport`.
"""

import hashlib
import os
import threading

from repro.cfront.frontend import parse_program
from repro.diagnostics import Diagnostic
from repro.faults import (
    FaultInjector,
    HostFaultPlan,
    parse_fault_spec,
    split_host_rules,
)
from repro.obs.attribution import AttributionEngine
from repro.race import RaceDetector
from repro.rcce.api import RCCEWorld
from repro.rcce.sync import SkewBarrier
from repro.recovery import (
    CheckpointManager,
    ECCScrubber,
    RecoveryOptions,
    RecoveryReport,
    ReplayVerifier,
    SendRetrier,
    Snapshot,
    SnapshotDivergenceError,
    SnapshotMismatchError,
    StateProbe,
    load_snapshot,
)
from repro.recovery.supervisor import RESTARTABLE_ERRORS  # noqa: F401
from repro.scc.chip import SCCChip
from repro.scc.config import Table61Config
from repro.sim.interpreter import (
    Interpreter,
    StepLimitExceeded,
    ThreadExit,
)
from repro.sim.machine import Memory
from repro.sim.pthread_rt import PthreadRuntime
from repro.sim.watchdog import (
    BarrierAbortedError,
    ShardRestartsExhaustedError,
    SimulationTimeout,
    WatchdogError,
    core_dumps,
)

class RunResult:
    """Outcome of one simulated program run."""

    def __init__(self, cycles, config, output, per_core_cycles=None,
                 exit_value=None, stats=None, metrics=None,
                 diagnostics=None):
        self.cycles = cycles
        self.config = config
        self.output = output
        self.per_core_cycles = per_core_cycles or {}
        self.exit_value = exit_value
        self.stats = stats or {}
        # the chip's metrics-registry snapshot taken at run end
        self.metrics = metrics or {}
        # runner-level findings (engine downgrades, recovery events)
        self.diagnostics = list(diagnostics) if diagnostics else []
        # RecoveryReport when the run went through the supervisor
        self.recovery = None
        # RaceReport when the run was audited (race=...)
        self.race = None
        # AttributionReport when cycle accounting ran (attribution=...)
        self.attribution = None

    @property
    def seconds(self):
        return self.config.seconds_from_cycles(self.cycles)

    def stdout(self):
        return "".join(self.output)

    def __repr__(self):
        return "RunResult(%d cycles = %.6f s)" % (self.cycles,
                                                  self.seconds)


def _as_unit(program):
    if isinstance(program, str):
        # the runner never mutates the AST, so it can share the parse
        # cache's master copy (repeat benchmark runs of one source then
        # also share the compiled-closure cache keyed on the unit)
        return parse_program(program, share=True)
    return program


def _prepare_chip(chip, interpreters, cores):
    """Per-run observability setup: reset the metrics registry so a
    reused chip does not bleed counters between runs, re-register the
    interpreter collector, and name the trace tracks."""
    chip.metrics.reset()

    def collect():
        samples = []
        for interp in list(interpreters):
            labels = {"core": interp.core_id}
            samples.append(("counter", "sim_steps", labels,
                            interp.steps))
            samples.append(("counter", "sim_cycles", labels,
                            interp.cycles))
        return samples

    chip.metrics.register_collector("sim.interpreters", collect)
    if chip.events.enabled:
        for core in cores:
            chip.events.set_thread(chip.trace_pid, core,
                                   "core %d" % core)


def _as_injector(faults):
    """Accept a spec string, a FaultInjector, or None."""
    if faults is None:
        return None
    if isinstance(faults, FaultInjector):
        return faults if faults.active else None
    injector = FaultInjector(faults)
    return injector if injector.active else None


def _as_detector(race):
    """Accept a RaceDetector, truthy (build a default one), or None."""
    if race is None or race is False:
        return None
    if isinstance(race, RaceDetector):
        return race
    return RaceDetector()


def _as_attribution(attribution):
    """Accept an AttributionEngine, truthy (build one), or None."""
    if attribution is None or attribution is False:
        return None
    if isinstance(attribution, AttributionEngine):
        return attribution
    return AttributionEngine()


def _source_sha(program):
    """Content hash of a source-string program (None for a pre-parsed
    unit) — snapshots record it so a restore from the wrong program is
    rejected instead of diverging confusingly mid-replay."""
    if isinstance(program, str):
        return hashlib.sha256(program.encode("utf-8")).hexdigest()
    return None


def _resolve_engine(engine, injector, checkpointed=False):
    """Pick the engine actually used; returns ``(engine, warning)``.

    Fault-injected and checkpointed runs need the reference
    tree-walking engine: the compiled engine inlines memory fast paths
    that would bypass value-flip hooks, and checkpoints capture the
    tree walker's state at barrier quiesce points.  The two engines
    are verified cycle-identical so nothing is lost — but a requested
    ``compiled`` run is downgraded *loudly*, as a warning
    :class:`Diagnostic` the CLI prints (and refuses under
    ``--strict``), never silently."""
    needs_tree = injector is not None or checkpointed
    if not needs_tree or engine != "compiled":
        return engine, None
    reasons = []
    if injector is not None:
        reasons.append("fault injection")
    if checkpointed:
        reasons.append("checkpoint/restore")
    return "tree", Diagnostic.warning(
        "simulate",
        "engine 'compiled' was requested but %s requires the "
        "reference tree engine; running with engine 'tree' (verified "
        "cycle-identical)" % " and ".join(reasons))


def _resolve_parallel_backend(backend, jobs, program, injector,
                              detector, attr, recovery, chip):
    """Pick the parallel backend actually used for ``jobs > 1``;
    returns ``(backend, warning)``.

    The process backend shards chip replicas across worker processes,
    so every feature that needs one shared live world — fault
    injection, the race detector, cycle attribution, recovery,
    event tracing — and pre-parsed program units (workers re-parse
    source) force the shared-world *thread* backend instead.  Like
    engine downgrades, this happens loudly: a warning
    :class:`Diagnostic` the CLI prints (and refuses under
    ``--strict``), never silently.  The watchdog no longer forces a
    downgrade: the parallel coordinator sees every sync wait, so it
    maps the watchdog's lock/barrier timeouts onto its own
    parked/wall-clock supervision."""
    if jobs <= 1:
        return "none", None
    if backend not in ("process", "thread"):
        raise ValueError("unknown parallel backend %r" % (backend,))
    if backend == "thread":
        return "thread", None
    reasons = []
    if not isinstance(program, str):
        reasons.append("a pre-parsed program unit")
    if injector is not None:
        reasons.append("fault injection")
    if detector is not None:
        reasons.append("race detection")
    if attr is not None:
        reasons.append("cycle attribution")
    if recovery is not None:
        reasons.append("recovery")
    if chip.events.enabled:
        reasons.append("event tracing")
    if not reasons:
        return "process", None
    return "thread", Diagnostic.warning(
        "simulate",
        "jobs=%d requested but %s requires the shared-world thread "
        "backend; running with backend 'thread' (verified "
        "cycle-identical)" % (jobs, " and ".join(reasons)))


def _install_quantum_hook(interp, skew, shard, chip):
    """Thread-backend lax sync: publish this interpreter's clock at
    every quantum boundary.  Bookkeeping only — cycles are untouched,
    so runs stay byte-identical for any quantum."""
    events = chip.events

    def hook(i, _skew=skew, _shard=shard, _events=events,
             _pid=chip.trace_pid):
        deadline = _skew.note_quantum(_shard, i.cycles)
        if _events.enabled:
            _events.instant(i.core_id, i.cycles, "quantum_sync",
                            "parallel", {"shard": _shard}, pid=_pid)
        return deadline

    interp._quantum_hook = hook
    interp._quantum_deadline = skew.quantum


def _timeout_from(exc, interpreters, ranks=None):
    """Convert a step-budget overrun into a SimulationTimeout carrying
    per-core state dumps; attach dumps to watchdog errors too."""
    dumps = core_dumps(interpreters, ranks)
    if isinstance(exc, StepLimitExceeded) and \
            not isinstance(exc, SimulationTimeout):
        return SimulationTimeout(str(exc), dumps)
    if isinstance(exc, (WatchdogError, SimulationTimeout)) and \
            not exc.dumps:
        exc.dumps = dumps
    return exc


def run_pthread_single_core(program, config=None, chip=None, core=0,
                            max_steps=200_000_000, engine="compiled",
                            faults=None, race=None, attribution=None,
                            jobs=1):
    """Run a Pthreads program with all threads on one core."""
    unit = _as_unit(program)
    config = config or Table61Config()
    chip = chip or SCCChip(config)
    injector = _as_injector(faults)
    detector = _as_detector(race)
    attr = _as_attribution(attribution)
    engine, downgrade = _resolve_engine(engine, injector)
    diagnostics = [downgrade] if downgrade is not None else []
    if jobs < 1:
        raise ValueError("jobs must be >= 1")
    if jobs > 1:
        # the paper's baseline time-slices every thread on ONE core —
        # there is nothing to shard; decline loudly, never silently
        diagnostics.append(Diagnostic.warning(
            "simulate",
            "jobs=%d requested but the pthread baseline time-slices "
            "all threads on a single core; running sequentially"
            % jobs))
    if injector is not None:
        injector.attach(chip)
    if detector is not None:
        detector.attach(chip)
    if attr is not None:
        attr.attach(chip)  # before _prepare_chip: its reset hooks in
    memory = Memory()
    runtime = PthreadRuntime()
    interpreters = []
    _prepare_chip(chip, interpreters, [core])
    interp = Interpreter(unit, chip, core, memory, runtime, max_steps,
                         engine=engine)
    interpreters.append(interp)
    chip.activate_core(core)
    try:
        try:
            exit_value = interp.run_main()
        except ThreadExit as texit:
            exit_value = texit.value
        except StepLimitExceeded as exc:
            timeout = _timeout_from(exc, interpreters)
            timeout.threads = runtime.state_dump()
            raise timeout from None
        runtime.run_pending(interp)
    finally:
        chip.deactivate_core(core)
        metrics = chip.metrics.snapshot()
        if attr is not None:
            attr.detach()
        if detector is not None:
            detector.detach()
        if injector is not None:
            injector.detach()
    overhead = runtime.scheduling_overhead_cycles(config, interp.cycles)
    if attr is not None and overhead:
        # the quantum tax is paid outside the interpreter loop; classify
        # it so the conservation invariant covers the reported total
        attr.add(core, "sched_overhead", overhead)
    total = interp.cycles + overhead
    result = RunResult(
        total, config, interp.output,
        per_core_cycles={core: total},
        exit_value=exit_value,
        stats={
            "threads": len(runtime.order),
            "compute_cycles": interp.cycles,
            "scheduling_overhead_cycles": overhead,
            "cache": chip.cache_stats(core),
        },
        metrics=metrics,
        diagnostics=diagnostics)
    if detector is not None:
        result.race = detector.report()
        result.diagnostics.extend(result.race.diagnostics())
    if attr is not None:
        result.attribution = attr.report({core: total})
    return result


class _CoreError:
    """Mutable holder for exceptions raised inside core threads."""

    def __init__(self):
        self.exc = None
        self.lock = threading.Lock()

    def record(self, exc):
        with self.lock:
            if self.exc is None:
                self.exc = exc
            elif isinstance(self.exc, BarrierAbortedError) and \
                    not isinstance(exc, BarrierAbortedError):
                # a peer's secondary barrier abort won the race; the
                # originating failure is the one worth reporting
                self.exc = exc


def run_rcce(program, num_ues, config=None, chip=None, core_map=None,
             max_steps=200_000_000, engine="compiled", faults=None,
             watchdog=None, recovery=None, race=None, attribution=None,
             jobs=1, quantum=None, parallel_backend="process",
             chaos=None, shard_restarts=None, heartbeat_timeout=None):
    """Run a translated RCCE program on ``num_ues`` simulated cores.

    ``jobs > 1`` shards the simulated cores over host workers with
    Graphite-style lax clock sync (see ``repro.sim.parallel``):
    processes under the default ``parallel_backend="process"`` — or
    host threads (``"thread"``), which every feature composes with and
    which incompatible-feature runs downgrade to, loudly.  ``quantum``
    is the lax-sync reconciliation interval in simulated cycles.
    Cycles and outputs are byte-identical to ``jobs=1`` for any shard
    count and any quantum.

    ``chaos`` injects deterministic *host-level* faults into the
    process backend's workers (kill/stall/IPC delay; a
    :class:`~repro.faults.HostFaultPlan` or spec string); host-fault
    clauses inside ``faults`` are routed there too.  ``shard_restarts``
    bounds per-shard respawns (default 2) and ``heartbeat_timeout``
    bounds a worker's silence before it is declared stalled.  When the
    restart budget runs out the run degrades — loudly — to the thread
    backend and re-runs from the beginning.
    """
    unit = _as_unit(program)
    config = config or Table61Config()
    chip = chip or SCCChip(config)
    if jobs < 1:
        raise ValueError("jobs must be >= 1")
    # one --faults spec may mix chip- and host-level clauses; host
    # clauses join the chaos plan instead of the chip injector
    chaos_plan = chaos
    if isinstance(chaos_plan, str):
        chaos_plan = HostFaultPlan(chaos_plan)
    if faults is not None and not isinstance(faults, FaultInjector):
        chip_rules, host_rules = split_host_rules(
            parse_fault_spec(faults))
        if host_rules:
            chaos_plan = HostFaultPlan(
                (chaos_plan.rules if chaos_plan is not None else [])
                + host_rules)
        faults = chip_rules
    if chaos_plan is not None and not chaos_plan.active:
        chaos_plan = None
    injector = _as_injector(faults)
    detector = _as_detector(race)
    attr = _as_attribution(attribution)
    if recovery is not None and not recovery.active:
        recovery = None
    checkpointed = recovery is not None and recovery.checkpointed
    engine, downgrade = _resolve_engine(engine, injector, checkpointed)
    diagnostics = [downgrade] if downgrade is not None else []
    backend, parallel_downgrade = _resolve_parallel_backend(
        parallel_backend, jobs, program, injector, detector, attr,
        recovery, chip)
    if parallel_downgrade is not None:
        diagnostics.append(parallel_downgrade)
    degraded_report = None
    if backend == "process":
        # nothing below composes with sharded worker processes (that
        # is exactly what _resolve_parallel_backend just checked), so
        # hand the whole run to the process backend; the parse above
        # already surfaced any front-end error in this process
        from repro.sim.parallel import run_rcce_parallel
        try:
            return run_rcce_parallel(
                program, num_ues, config, chip, core_map, max_steps,
                engine, jobs, quantum=quantum,
                diagnostics=diagnostics,
                heartbeat_timeout=heartbeat_timeout,
                shard_restarts=shard_restarts, chaos=chaos_plan,
                watchdog=watchdog)
        except ShardRestartsExhaustedError as exc:
            # the graceful rung below hard failure: finish the run on
            # the shared-world thread backend, from the beginning
            diagnostics.append(Diagnostic.warning(
                "simulate",
                "%s; degraded to the thread backend and re-ran from "
                "the beginning (verified cycle-identical)" % exc))
            degraded_report = exc.report
            if degraded_report is not None:
                diagnostics.extend(degraded_report.diagnostics())
            backend = "thread"
            chaos_plan = None  # host faults died with the workers
    if chaos_plan is not None:
        diagnostics.append(Diagnostic.warning(
            "simulate",
            "host chaos targets the process backend's workers; this "
            "run uses %s, so the chaos plan is ignored"
            % ("the thread backend" if backend == "thread"
               else "no worker processes (jobs=1)")))
    plan = skew = None
    if backend == "thread":
        from repro.sim.parallel import ShardPlan, parallel_collector
        plan = ShardPlan(num_ues, jobs)
        skew = SkewBarrier(plan.jobs,
                           quantum or SkewBarrier.DEFAULT_QUANTUM)
        chip.metrics.register_collector(
            "sim.parallel", parallel_collector(skew, plan.jobs))
    if injector is not None:
        injector.attach(chip)
    if detector is not None:
        detector.attach(chip)  # before the world: it reads chip.race
    if attr is not None:
        attr.attach(chip)  # before the world: it binds the rank map
    if engine == "compiled":
        # lower the unit once, before any core thread spawns: the
        # compiled-unit cache is shared and this keeps thread startup
        # deterministic and contention-free
        from repro.sim.compile import compile_unit
        compile_unit(unit)
    interpreters = []
    _prepare_chip(chip, interpreters,
                  list(core_map) if core_map else range(num_ues))
    world = RCCEWorld(chip, num_ues, core_map, watchdog)
    memory = Memory()
    error = _CoreError()
    ranks = {}

    scrubber = manager = verifier = snapshot = None
    if recovery is not None:
        if recovery.ecc:
            scrubber = ECCScrubber(recovery.scrub_cycles).attach(chip)
        if recovery.retry:
            world.retrier = SendRetrier(injector,
                                        recovery.retry_policy)
        if recovery.restore is not None:
            snapshot = recovery.restore
            if not isinstance(snapshot, Snapshot):
                snapshot = load_snapshot(snapshot, config=config,
                                         source_sha=_source_sha(program))
            if snapshot.num_ues != num_ues or \
                    snapshot.core_map != world.core_map:
                raise SnapshotMismatchError(
                    "snapshot %s was taken with num_ues=%d "
                    "core_map=%r, not num_ues=%d core_map=%r"
                    % (snapshot.path or "<snapshot>",
                       snapshot.num_ues, snapshot.core_map,
                       num_ues, world.core_map))
            verifier = ReplayVerifier(snapshot)
        if recovery.checkpoint_path:
            manager = CheckpointManager(recovery.checkpoint_path,
                                        recovery.checkpoint_every)
    extra_round_hook = recovery.on_round if recovery is not None \
        else None
    if manager is not None or verifier is not None \
            or extra_round_hook is not None:
        hooks = []
        if manager is not None or verifier is not None:
            probe = StateProbe(chip, world, memory, interpreters,
                               ranks, num_ues, world.core_map,
                               source_sha=_source_sha(program))
            if verifier is not None:
                hooks.append(verifier.bind(probe).on_round)
            if manager is not None:
                hooks.append(manager.bind(probe).on_round)
        if extra_round_hook is not None:
            # after verifier/manager: a preemption raised here sees
            # the round's checkpoint already on disk
            hooks.append(extra_round_hook)
        if len(hooks) == 1:
            world.barrier.on_round = hooks[0]
        else:
            def barrier_round(round_id, _hooks=tuple(hooks)):
                for hook in _hooks:
                    hook(round_id)
            world.barrier.on_round = barrier_round
    if skew is not None:
        # after the recovery hooks: bind() chains, preserving them
        skew.bind(world.barrier, plan.shard_of.__getitem__)

    def core_main(rank):
        try:
            runtime = world.runtime_for(rank)
            interp = Interpreter(unit, chip, runtime.core_id, memory,
                                 runtime, max_steps, engine=engine)
            ranks[interp.core_id] = rank
            interpreters.append(interp)
            if skew is not None:
                _install_quantum_hook(interp, skew,
                                      plan.shard_of[rank], chip)
            try:
                interp.run_main()
            except ThreadExit:
                pass
        except Exception as exc:  # noqa: BLE001 - surfaced to caller
            error.record(exc)
            # unblock every peer parked at the clock barrier or inside
            # a watchdog-supervised lock wait; the originating
            # exception rides along so peers report the real cause
            world.abort(exc)

    # register every core with its memory controller BEFORE any core
    # starts executing: the contention model must not depend on host
    # thread-start skew (determinism)
    for rank in range(num_ues):
        chip.activate_core(world.core_map[rank])
    threads = [threading.Thread(target=core_main, args=(rank,),
                                name="scc-ue%d" % rank)
               for rank in range(num_ues)]
    try:
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
    finally:
        for rank in range(num_ues):
            chip.deactivate_core(world.core_map[rank])
        world.barrier.on_round = None
        # snapshot metrics before unhooking so the recovery collectors
        # (checkpoints, ECC) contribute their final counts
        metrics = chip.metrics.snapshot()
        if manager is not None:
            manager.unbind()
        if scrubber is not None:
            scrubber.detach()
        if attr is not None:
            attr.detach()
        if detector is not None:
            detector.detach()
        if injector is not None:
            injector.detach()
    if error.exc is not None:
        raise _timeout_from(error.exc, interpreters, ranks)
    if verifier is not None and not verifier.verified:
        raise SnapshotDivergenceError(
            "run finished without reaching snapshot round %d (%s) — "
            "the snapshot does not belong to this run"
            % (snapshot.round, snapshot.path or "<snapshot>"))

    per_core = {interp.core_id: interp.cycles for interp in interpreters}
    total = max(per_core.values())
    outputs = []
    for interp in sorted(interpreters, key=lambda i: i.core_id):
        outputs.extend(interp.output)
    stats = {
        "num_ues": num_ues,
        "barrier_rounds": world.barrier.rounds,
        "mpb_fallbacks": world.mpb_fallbacks,
        "controllers": {index: (stats.reads, stats.writes)
                        for index, stats
                        in chip.controller_stats().items()},
    }
    if skew is not None:
        from repro.sim.parallel import parallel_stats
        stats["parallel"] = parallel_stats("thread", skew, plan.jobs)
    result = RunResult(
        total, config, outputs,
        per_core_cycles=per_core,
        stats=stats,
        metrics=metrics,
        diagnostics=diagnostics)
    if degraded_report is not None:
        result.recovery = degraded_report
    if detector is not None:
        result.race = detector.report()
        result.diagnostics.extend(result.race.diagnostics())
    if attr is not None:
        result.attribution = attr.report(per_core,
                                         core_of=world.core_map)
    return result


def run_rcce_supervised(program, num_ues, config=None, core_map=None,
                        max_steps=200_000_000, engine="compiled",
                        faults=None, recovery=None, max_restarts=1,
                        chip_factory=None, watchdog_factory=None,
                        race=None, attribution=None, jobs=1,
                        quantum=None, shard_restarts=None,
                        heartbeat_timeout=None):
    """Run an RCCE program under a restarting supervisor.

    The run checkpoints at barrier rounds
    (``recovery.checkpoint_path`` is required); when it dies from a
    :data:`RESTARTABLE_ERRORS` failure, the supervisor reloads the
    newest snapshot and re-runs on a fresh chip — keeping the *same*
    fault injector, with its RNG streams reset, so the replayed prefix
    reproduces the original injection schedule and one-shot faults
    stay fired.  After ``max_restarts`` restarts the last error
    propagates with the :class:`RecoveryReport` attached as
    ``recovery_report``.

    ``chip_factory``/``watchdog_factory`` build one chip/watchdog per
    attempt (both are stateful across a failed run: a watchdog's abort
    latch is sticky and a chip's address space accumulates).
    """
    config = config or Table61Config()
    recovery = recovery if recovery is not None else RecoveryOptions()
    if not recovery.checkpoint_path:
        raise ValueError(
            "supervised runs need recovery.checkpoint_path")
    injector = _as_injector(faults)
    report = RecoveryReport(max_restarts)
    source_sha = _source_sha(program)
    options = recovery
    attempt = 0
    while True:
        chip = chip_factory() if chip_factory is not None \
            else SCCChip(config)
        watchdog = watchdog_factory() if watchdog_factory is not None \
            else None
        # a fresh detector per attempt (race=True builds one here):
        # epochs must not leak between attempts, or replayed accesses
        # would look unordered against the dead run's.  Built
        # explicitly — not inside run_rcce — so a failed attempt's
        # audit can still be reported per attempt.
        attempt_race = _as_detector(
            race if not isinstance(race, RaceDetector)
            else RaceDetector(race.max_findings))
        try:
            result = run_rcce(
                program, num_ues, config=config, chip=chip,
                core_map=core_map, max_steps=max_steps, engine=engine,
                faults=injector, watchdog=watchdog, recovery=options,
                race=attempt_race, attribution=attribution,
                jobs=jobs, quantum=quantum,
                shard_restarts=shard_restarts,
                heartbeat_timeout=heartbeat_timeout)
        except RESTARTABLE_ERRORS as exc:
            if attempt >= max_restarts:
                exc.recovery_report = report
                raise
            snapshot = None
            restored = None
            if os.path.exists(recovery.checkpoint_path):
                snapshot = load_snapshot(recovery.checkpoint_path,
                                         config=config,
                                         source_sha=source_sha)
                restored = snapshot.round
            report.record_failure(
                attempt, exc, restored,
                audit=attempt_race.report()
                if attempt_race is not None else None)
            options = recovery.with_restore(snapshot)
            if injector is not None:
                injector.reset_streams()
            attempt += 1
            continue
        report.restarts = attempt
        report.recovered = attempt > 0
        result.recovery = report
        result.diagnostics.extend(report.diagnostics())
        if report.restarts:
            result.metrics.setdefault("counters", {})[
                "recovery_restarts"] = [{"labels": {},
                                         "value": report.restarts}]
        return result
