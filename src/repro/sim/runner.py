"""End-to-end program runners.

``run_pthread_single_core`` reproduces the paper's baseline: the whole
multithreaded program on one SCC core, threads time-sliced.

``run_rcce`` runs a translated program on N cores: one Python thread
per simulated core, a shared memory object, a shared RCCE world, and
per-core cycle clocks aligned at every barrier.  The reported runtime
is the slowest core's final clock — wall time, as the paper measures.

Both runners accept an optional ``faults`` spec (see ``repro.faults``)
and — for ``run_rcce`` — an optional ``watchdog`` (see
``repro.sim.watchdog``).  With both left at ``None`` every hook is a
single attribute check and runs are byte-identical to a build without
this layer.
"""

import threading

from repro.cfront.frontend import parse_program
from repro.faults import FaultInjector
from repro.rcce.api import RCCEWorld
from repro.scc.chip import SCCChip
from repro.scc.config import Table61Config
from repro.sim.interpreter import (
    Interpreter,
    StepLimitExceeded,
    ThreadExit,
)
from repro.sim.machine import Memory
from repro.sim.pthread_rt import PthreadRuntime
from repro.sim.watchdog import (
    SimulationTimeout,
    WatchdogError,
    core_dumps,
)


class RunResult:
    """Outcome of one simulated program run."""

    def __init__(self, cycles, config, output, per_core_cycles=None,
                 exit_value=None, stats=None, metrics=None):
        self.cycles = cycles
        self.config = config
        self.output = output
        self.per_core_cycles = per_core_cycles or {}
        self.exit_value = exit_value
        self.stats = stats or {}
        # the chip's metrics-registry snapshot taken at run end
        self.metrics = metrics or {}

    @property
    def seconds(self):
        return self.config.seconds_from_cycles(self.cycles)

    def stdout(self):
        return "".join(self.output)

    def __repr__(self):
        return "RunResult(%d cycles = %.6f s)" % (self.cycles,
                                                  self.seconds)


def _as_unit(program):
    if isinstance(program, str):
        # the runner never mutates the AST, so it can share the parse
        # cache's master copy (repeat benchmark runs of one source then
        # also share the compiled-closure cache keyed on the unit)
        return parse_program(program, share=True)
    return program


def _prepare_chip(chip, interpreters, cores):
    """Per-run observability setup: reset the metrics registry so a
    reused chip does not bleed counters between runs, re-register the
    interpreter collector, and name the trace tracks."""
    chip.metrics.reset()

    def collect():
        samples = []
        for interp in list(interpreters):
            labels = {"core": interp.core_id}
            samples.append(("counter", "sim_steps", labels,
                            interp.steps))
            samples.append(("counter", "sim_cycles", labels,
                            interp.cycles))
        return samples

    chip.metrics.register_collector("sim.interpreters", collect)
    if chip.events.enabled:
        for core in cores:
            chip.events.set_thread(chip.trace_pid, core,
                                   "core %d" % core)


def _as_injector(faults):
    """Accept a spec string, a FaultInjector, or None."""
    if faults is None:
        return None
    if isinstance(faults, FaultInjector):
        return faults if faults.active else None
    injector = FaultInjector(faults)
    return injector if injector.active else None


def _attach_faults(chip, injector, engine):
    """Attach the injector and pick the engine actually used.

    Fault runs force the reference tree-walking engine: the compiled
    engine inlines memory fast paths that would bypass value-flip
    hooks, and the two engines are verified cycle-identical so nothing
    is lost."""
    if injector is None:
        return engine
    injector.attach(chip)
    return "tree"


def _timeout_from(exc, interpreters, ranks=None):
    """Convert a step-budget overrun into a SimulationTimeout carrying
    per-core state dumps; attach dumps to watchdog errors too."""
    dumps = core_dumps(interpreters, ranks)
    if isinstance(exc, StepLimitExceeded) and \
            not isinstance(exc, SimulationTimeout):
        return SimulationTimeout(str(exc), dumps)
    if isinstance(exc, (WatchdogError, SimulationTimeout)) and \
            not exc.dumps:
        exc.dumps = dumps
    return exc


def run_pthread_single_core(program, config=None, chip=None, core=0,
                            max_steps=200_000_000, engine="compiled",
                            faults=None):
    """Run a Pthreads program with all threads on one core."""
    unit = _as_unit(program)
    config = config or Table61Config()
    chip = chip or SCCChip(config)
    injector = _as_injector(faults)
    engine = _attach_faults(chip, injector, engine)
    memory = Memory()
    runtime = PthreadRuntime()
    interpreters = []
    _prepare_chip(chip, interpreters, [core])
    interp = Interpreter(unit, chip, core, memory, runtime, max_steps,
                         engine=engine)
    interpreters.append(interp)
    chip.activate_core(core)
    try:
        try:
            exit_value = interp.run_main()
        except ThreadExit as texit:
            exit_value = texit.value
        except StepLimitExceeded as exc:
            timeout = _timeout_from(exc, interpreters)
            timeout.threads = runtime.state_dump()
            raise timeout from None
        runtime.run_pending(interp)
    finally:
        chip.deactivate_core(core)
        metrics = chip.metrics.snapshot()
        if injector is not None:
            injector.detach()
    overhead = runtime.scheduling_overhead_cycles(config, interp.cycles)
    total = interp.cycles + overhead
    return RunResult(
        total, config, interp.output,
        per_core_cycles={core: total},
        exit_value=exit_value,
        stats={
            "threads": len(runtime.order),
            "compute_cycles": interp.cycles,
            "scheduling_overhead_cycles": overhead,
            "cache": chip.cache_stats(core),
        },
        metrics=metrics)


class _CoreError:
    """Mutable holder for exceptions raised inside core threads."""

    def __init__(self):
        self.exc = None
        self.lock = threading.Lock()

    def record(self, exc):
        with self.lock:
            if self.exc is None:
                self.exc = exc


def run_rcce(program, num_ues, config=None, chip=None, core_map=None,
             max_steps=200_000_000, engine="compiled", faults=None,
             watchdog=None):
    """Run a translated RCCE program on ``num_ues`` simulated cores."""
    unit = _as_unit(program)
    config = config or Table61Config()
    chip = chip or SCCChip(config)
    injector = _as_injector(faults)
    engine = _attach_faults(chip, injector, engine)
    if engine == "compiled":
        # lower the unit once, before any core thread spawns: the
        # compiled-unit cache is shared and this keeps thread startup
        # deterministic and contention-free
        from repro.sim.compile import compile_unit
        compile_unit(unit)
    interpreters = []
    _prepare_chip(chip, interpreters,
                  list(core_map) if core_map else range(num_ues))
    world = RCCEWorld(chip, num_ues, core_map, watchdog)
    memory = Memory()
    error = _CoreError()
    ranks = {}

    def core_main(rank):
        try:
            runtime = world.runtime_for(rank)
            interp = Interpreter(unit, chip, runtime.core_id, memory,
                                 runtime, max_steps, engine=engine)
            ranks[interp.core_id] = rank
            interpreters.append(interp)
            try:
                interp.run_main()
            except ThreadExit:
                pass
        except Exception as exc:  # noqa: BLE001 - surfaced to caller
            error.record(exc)
            # unblock every peer parked at the clock barrier or inside
            # a watchdog-supervised lock wait; the originating
            # exception rides along so peers report the real cause
            world.abort(exc)

    # register every core with its memory controller BEFORE any core
    # starts executing: the contention model must not depend on host
    # thread-start skew (determinism)
    for rank in range(num_ues):
        chip.activate_core(world.core_map[rank])
    threads = [threading.Thread(target=core_main, args=(rank,),
                                name="scc-ue%d" % rank)
               for rank in range(num_ues)]
    try:
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
    finally:
        for rank in range(num_ues):
            chip.deactivate_core(world.core_map[rank])
        metrics = chip.metrics.snapshot()
        if injector is not None:
            injector.detach()
    if error.exc is not None:
        raise _timeout_from(error.exc, interpreters, ranks)

    per_core = {interp.core_id: interp.cycles for interp in interpreters}
    total = max(per_core.values())
    outputs = []
    for interp in sorted(interpreters, key=lambda i: i.core_id):
        outputs.extend(interp.output)
    return RunResult(
        total, config, outputs,
        per_core_cycles=per_core,
        stats={
            "num_ues": num_ues,
            "barrier_rounds": world.barrier.rounds,
            "mpb_fallbacks": world.mpb_fallbacks,
            "controllers": {index: (stats.reads, stats.writes)
                            for index, stats
                            in chip.controller_stats().items()},
        },
        metrics=metrics)
