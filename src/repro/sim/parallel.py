"""Parallel host execution: shard per-core interpreters across
processes with Graphite-style relaxed clock synchronization.

The sequential ``run_rcce`` steps every simulated core inside one
GIL-bound host process.  This backend shards the ``num_ues`` ranks
round-robin across N worker *processes*; each shard runs its ranks
under the existing compiled engine on a full **chip replica**, letting
its simulated clocks run ahead of its peers' (lax sync) up to a
configurable quantum of cycles, and reconciling

* at **quantum boundaries** — a non-blocking checkpoint (the shard
  publishes its clock and ships its dirty shared memory home; it never
  waits, because a peer parked inside ``recv`` must not be waited on);
* **early, at every true sync point** — barrier rounds, test-and-set
  registers, MPB flag publish/consume, send/recv rendezvous — which
  are routed through a single-threaded **coordinator** event loop in
  the parent process.

Determinism contract: cycles and outputs are **byte-identical to the
sequential engine for any shard count and any quantum**.  That holds
by construction, not by tuning:

* every cross-rank value and every cross-rank clock comparison already
  flows through the coordinator-routed sync primitives, which replay
  the sequential semantics exactly (barrier = max of published clocks
  + cost; rendezvous = max of both clocks + transfer cost; flag wait =
  max of waiter clock and the satisfying write's clock);
* each chip replica's timing state is either per-core (caches — a core
  runs wholly inside one worker), statically geometric (mesh hops), or
  statically determined by the full ``activate_core`` registration
  that every replica performs for *all* ranks (DRAM queue depth);
* symmetric heap allocations replay in SPMD program order against
  identical per-replica bump pointers, so all replicas agree on every
  address.

Shared memory consistency uses dirty-address write logging: every
worker store to a non-private address is logged and shipped to the
coordinator's versioned global delta log at the next reconciliation;
sync replies carry the other shards' deltas back (contiguous version
ranges per worker, applied in order).  For well-synchronized programs
— the only programs whose sequential result is deterministic in the
first place — this release/acquire shipping delivers exactly the
values the sequential run would read.  Racy programs should run under
the race detector, which (like every other incompatible feature)
forces a loud downgrade to the shared-world thread backend.
"""

import multiprocessing
import multiprocessing.connection
import pickle
import threading
import time
import traceback

from collections import deque

from repro.scc.chip import SCCChip
from repro.scc.memmap import SHARED_BASE
from repro.rcce.api import RCCEWorld
from repro.rcce.comm import CommDeadlockError
from repro.rcce.sync import SkewBarrier
from repro.sim.interpreter import (
    Interpreter,
    InterpreterError,
    StepLimitExceeded,
    ThreadExit,
)
from repro.sim.machine import Memory
from repro.sim.watchdog import (
    BarrierAbortedError,
    SimulationTimeout,
    WatchdogError,
    core_dumps,
)

__all__ = ["ShardMemory", "ShardPlan", "ParallelRunError",
           "parallel_collector", "parallel_stats",
           "run_rcce_parallel"]

# Wall-clock bounds enforced by the coordinator (there is no per-worker
# watchdog: the coordinator sees every sync wait, so it substitutes).
# ``PARKED_TIMEOUT``: every unfinished rank is parked at a sync point
# and nothing has moved — the simulated program is deadlocked.
# ``WALL_TIMEOUT``: nothing at all has moved (not even quantum ticks)
# — a worker died silently or is wedged.
PARKED_TIMEOUT_SECONDS = 10.0
WALL_TIMEOUT_SECONDS = 600.0


class ParallelRunError(Exception):
    """A worker failed in a way that could not be reproduced locally
    (e.g. its exception did not survive pickling)."""


class ShardPlan:
    """Deterministic round-robin rank -> shard assignment."""

    def __init__(self, num_ues, jobs):
        if num_ues < 1:
            raise ValueError("need at least one UE")
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        self.num_ues = num_ues
        # an empty shard would idle a whole process; clamp instead
        self.jobs = min(jobs, num_ues)
        self.shard_of = [rank % self.jobs for rank in range(num_ues)]

    def ranks_of(self, shard):
        return [rank for rank in range(self.num_ues)
                if self.shard_of[rank] == shard]

    def __repr__(self):
        return "ShardPlan(%d UEs over %d shards)" % (self.num_ues,
                                                     self.jobs)


def parallel_collector(skew, jobs):
    """Build the ``sim.parallel`` metrics collector — shared by the
    process backend and the thread backend so both report the same
    sample shapes."""

    def collect():
        samples = [
            ("gauge", "parallel_jobs", {}, jobs),
            ("gauge", "parallel_quantum_cycles", {}, skew.quantum),
            ("gauge", "parallel_max_skew_cycles", {}, skew.max_skew),
        ]
        for shard in range(jobs):
            labels = {"shard": shard}
            samples.append(("counter", "parallel_reconciliations",
                            labels, skew.reconciliations(shard)))
            samples.append(("counter",
                            "parallel_quantum_reconciliations",
                            labels,
                            skew.quantum_reconciliations[shard]))
            samples.append(("counter", "parallel_sync_reconciliations",
                            labels, skew.sync_reconciliations[shard]))
        return samples

    return collect


def parallel_stats(backend, skew, jobs, **extra):
    """The ``stats["parallel"]`` block both backends report."""
    stats = {
        "backend": backend,
        "jobs": jobs,
        "quantum": skew.quantum,
        "reconciliations": skew.total_reconciliations(),
        "max_skew_cycles": skew.max_skew,
    }
    stats.update(extra)
    return stats


class ShardMemory(Memory):
    """A worker replica's memory with dirty-address write logging.

    Stores to addresses at or above ``SHARED_BASE`` (shared DRAM, MPB,
    split windows — everything another shard could legally read) are
    appended to a thread-safe pending log, drained at every
    reconciliation.  Private-window stores are skipped: a core runs
    wholly inside one worker, so no other shard can see them — unless
    a LUT reconfiguration has blurred the private/shared line, in
    which case :meth:`log_everything` flips the filter off.
    """

    __slots__ = ("_pending", "_log_all")

    def __init__(self):
        super().__init__()
        self._pending = deque()   # (addr, value); append/popleft atomic
        self._log_all = [False]
        self._rebind()

    def _rebind(self):
        """Install the logging ``put`` (the compiled engine binds
        ``memory.put`` once per interpreter, so this must be in place
        before any interpreter is built)."""
        data = self._data
        pend = self._pending.append
        log_all = self._log_all

        def put(addr, value, _data=data, _pend=pend, _all=log_all,
                _base=SHARED_BASE):
            _data[addr] = value
            if addr >= _base or _all[0]:
                _pend((addr, value))

        self.put = put

    def log_everything(self):
        """Conservative mode: log every store (LUT reconfiguration can
        re-classify private windows as shared)."""
        self._log_all[0] = True

    def store(self, addr, value):
        self.put(addr, value)

    def memset(self, addr, value, count, stride):
        put = self.put
        with self._lock:
            for index in range(count):
                put(addr + index * stride, value)

    def memcpy(self, dst, src, count, stride, default=0):
        put = self.put
        get = self._data.get
        with self._lock:
            for index in range(count):
                put(dst + index * stride,
                    get(src + index * stride, default))

    def drain_dirty(self):
        """Pop every pending (addr, value) in FIFO order.  Callers
        serialize on the client's drain lock, so two reconciliations
        never interleave one rank's entries out of order."""
        pending = self._pending
        entries = []
        while True:
            try:
                entries.append(pending.popleft())
            except IndexError:
                return entries

    def apply_remote(self, entries):
        """Apply another shard's shipped writes (no re-logging)."""
        data = self._data
        for addr, value in entries:
            data[addr] = value


# -- wire format helpers -----------------------------------------------------

def _pack_error(exc):
    """Serialize an exception for the trip home.  Exceptions whose
    pickling round-trip fails degrade to (type name, message)."""
    try:
        blob = pickle.dumps(exc)
        pickle.loads(blob)
        return ("pickle", blob)
    except Exception:  # noqa: BLE001 - any pickling failure degrades
        return ("named", type(exc).__name__, str(exc),
                traceback.format_exc())


_ERRORS_BY_NAME = {
    cls.__name__: cls
    for cls in (CommDeadlockError, InterpreterError, StepLimitExceeded,
                SimulationTimeout, BarrierAbortedError, WatchdogError,
                MemoryError, ValueError, RuntimeError)
}


def _unpack_error(packed):
    if packed[0] == "pickle":
        try:
            return pickle.loads(packed[1])
        except Exception:  # noqa: BLE001 - fall through to a generic error
            return ParallelRunError("worker error did not survive "
                                    "unpickling")
    _, name, message, trace = packed
    cls = _ERRORS_BY_NAME.get(name)
    if cls is not None:
        try:
            return cls(message)
        except Exception:  # noqa: BLE001 - odd constructor signature
            pass
    return ParallelRunError("%s: %s\n%s" % (name, message, trace))


# -- worker side -------------------------------------------------------------

class _ShardClient:
    """A worker's connection bundle to the coordinator.

    Each rank thread owns one duplex pipe for request/reply sync RPCs;
    the whole worker shares one FIFO control pipe for one-way traffic
    (delta shipments, quantum ticks, errors, results).  The drain lock
    makes [drain dirty log -> send on control pipe] atomic, so the
    control pipe's FIFO order *is* the worker's global write order.
    """

    def __init__(self, shard, memory, rank_conns, control_conn):
        self.shard = shard
        self.memory = memory
        self.rank_conns = rank_conns      # rank -> Connection
        self.control = control_conn
        self._local = threading.local()
        self._drain_lock = threading.Lock()
        self._control_lock = threading.Lock()
        # remote-delta application: contiguous version ranges arrive on
        # any rank conn; apply strictly in version order
        self._apply = threading.Condition()
        self._watermark = 0
        self._ranges = {}                 # vfrom -> (vto, entries)

    def bind_thread(self, rank):
        self._local.rank = rank
        self._local.conn = self.rank_conns[rank]

    def _send_control(self, message):
        with self._control_lock:
            self.control.send(message)

    def flush(self, kind="deltas", clock=None):
        """Ship pending dirty writes home (one-way, never blocks on a
        reply).  A "tick" flush is sent even when empty: it doubles as
        the liveness signal behind the coordinator's wall-clock
        supervision."""
        with self._drain_lock:
            entries = self.memory.drain_dirty()
            if entries or kind == "tick":
                self._send_control((kind, self.shard, entries, clock))

    def tick(self, clock):
        """Quantum-boundary reconciliation: non-blocking publish +
        abort poll (a pushed coordinator error must be able to stop a
        rank that is deep in a compute loop)."""
        conn = self._local.conn
        if conn.poll():
            status, payload, _ = conn.recv()
            if status == "error":
                raise _unpack_error(payload)
        self.flush(kind="tick", clock=clock)

    def request(self, op, *args):
        """One synchronous sync-point RPC: flush dirty writes, send,
        block for the reply, apply the peers' deltas it carries."""
        self.flush()
        conn = self._local.conn
        conn.send((op, self._local.rank) + args)
        status, payload, batch = conn.recv()
        if batch is not None:
            self._apply_batch(batch)
        if status == "error":
            raise _unpack_error(payload)
        return payload

    def _apply_batch(self, batch):
        """Apply one contiguous version range of remote writes.  A
        later range that arrives first (two ranks of this worker woken
        out of order) waits for the earlier range's owner to apply."""
        vfrom, vto, entries = batch
        with self._apply:
            if vto > vfrom:
                self._ranges[vfrom] = (vto, entries)
            # an empty range still gates resumption: this rank may not
            # read memory until every delta version below ``vto`` —
            # possibly carried by a sibling rank's reply — is applied
            while True:
                pending = self._ranges.pop(self._watermark, None)
                if pending is not None:
                    next_vto, next_entries = pending
                    self.memory.apply_remote(next_entries)
                    self._watermark = next_vto
                    self._apply.notify_all()
                    continue
                if self._watermark >= vto:
                    return
                if not self._apply.wait(WALL_TIMEOUT_SECONDS):
                    raise ParallelRunError(
                        "remote delta range [%d, %d) never became "
                        "applicable" % (vfrom, vto))

    def rank_done(self, rank):
        self.flush()
        self._send_control(("rank_done", self.shard, rank, None))

    def report_error(self, exc, dumps=None, threads=None):
        self.flush()
        self._send_control(("error", self.shard,
                            _pack_error(exc), (dumps, threads)))

    def report_result(self, payload):
        self.flush()
        self._send_control(("result", self.shard, payload, None))


class _ProxyBarrier:
    """ClockBarrier stand-in: the round lives in the coordinator."""

    def __init__(self, client, parties):
        self.client = client
        self.parties = parties
        self.rounds = 0       # authoritative count lives coordinator-side
        self.on_round = None
        self.race = None

    def wait(self, rank, clock):
        return self.client.request("barrier", clock)

    def abort(self, failure=None):
        # local failures travel on the control pipe (report_error);
        # nothing to break locally — peers are parked coordinator-side
        pass


class _ProxyRegisters:
    """Test-and-set registers proxied to the coordinator's FIFO grant
    queue.  Acquisition counts are kept locally (each worker counts its
    own ranks' grants; the coordinator sums them at shutdown)."""

    __test__ = False

    def __init__(self, client, num_cores):
        self.client = client
        self.num_cores = num_cores
        self.acquisitions = [0] * num_cores
        self.owners = {}
        self.race = None
        self.watchdog = None

    def contended(self, register):
        return self.client.request("lock_contended",
                                   register % self.num_cores)

    def reset_counts(self):
        self.acquisitions = [0] * self.num_cores

    def acquire(self, register, rank=None):
        index = register % self.num_cores
        self.client.request("lock_acquire", index)
        self.acquisitions[index] += 1

    def release(self, register, rank=None):
        self.client.request("lock_release", register % self.num_cores)


class _ProxyFlagTable:
    """MPB flag table proxied to the coordinator (symmetric allocation
    and write-clock propagation replay the sequential semantics)."""

    def __init__(self, client):
        self.client = client

    def alloc(self, rank=0):
        return self.client.request("flag_alloc")

    def free(self, flag_id):
        self.client.request("flag_free", flag_id)

    def write(self, flag_id, value, clock, race=None, tid=None):
        self.client.request("flag_write", flag_id, value, clock)

    def read(self, flag_id, race=None, tid=None):
        return self.client.request("flag_read", flag_id)

    def wait_until(self, flag_id, value, clock, race=None, tid=None):
        return self.client.request("flag_wait", flag_id, value, clock)


class _ProxyChannel:
    """One (source, dest) rendezvous pair routed through the
    coordinator — synchronous on both sides, like the sequential
    :class:`~repro.rcce.comm.Channel`."""

    def __init__(self, client, source, dest):
        self.client = client
        self.source = source
        self.dest = dest

    def send(self, values, clock, seq=None, race=None, tid=None):
        return self.client.request("send", self.dest, list(values),
                                   clock, seq)

    def recv(self, clock, transfer_cost, race=None, tid=None):
        values, done = self.client.request("recv", self.source, clock,
                                           transfer_cost)
        return values, done


class _ProxyFabric:
    def __init__(self, client):
        self.client = client
        self._channels = {}

    def channel(self, source, dest):
        key = (source, dest)
        channel = self._channels.get(key)
        if channel is None:
            channel = self._channels[key] = _ProxyChannel(
                self.client, source, dest)
        return channel


class _ProxyCollectives:
    """Collective staging proxied to the coordinator, which shares its
    round counter with the plain barrier exactly as the sequential
    :class:`~repro.rcce.comm.CollectiveArea` shares the world
    barrier."""

    def __init__(self, client):
        self.client = client

    def exchange(self, rank, clock, values, round_id):
        deposits, aligned = self.client.request(
            "exchange", clock, list(values), round_id)
        return deposits, aligned


class _SampleList:
    """Histogram stand-in: record raw samples for shipment home."""

    __slots__ = ("samples",)

    def __init__(self):
        self.samples = []

    def observe(self, value):
        self.samples.append(value)


class ShardWorld(RCCEWorld):
    """An RCCE world whose cross-shard primitives are coordinator
    proxies.  Everything replica-local (symmetric heaps, counters, the
    chip binding) is inherited unchanged."""

    def __init__(self, chip, num_ues, core_map, client):
        super().__init__(chip, num_ues, core_map, watchdog=None)
        self.client = client
        self.barrier = _ProxyBarrier(client, num_ues)
        self.registers = _ProxyRegisters(client, chip.config.num_cores)
        self.flags = _ProxyFlagTable(client)
        self.fabric = _ProxyFabric(client)
        self.collectives = _ProxyCollectives(client)
        self.barrier_wait = _SampleList()

    def abort(self, failure=None):
        pass  # handled by the worker's error report


def _worker_main(shard, ranks, source, num_ues, core_map, config,
                 max_steps, engine, quantum, rank_conns, control_conn):
    """One worker process: a full chip replica running ``ranks`` as
    host threads, every sync point an RPC to the coordinator.
    Module-level and argument-complete, so it is spawn-safe."""
    try:
        if engine == "compiled":
            from repro.sim.compile import warm_process_cache
            unit = warm_process_cache(source)
        else:
            from repro.cfront.frontend import parse_program
            unit = parse_program(source, share=True)
        chip = SCCChip(config)
        memory = ShardMemory()
        client = _ShardClient(shard, memory, rank_conns, control_conn)
        world = ShardWorld(chip, num_ues, core_map, client)

        original_configure = chip.configure_window

        def configure_window(core, addr, shared,
                             _orig=original_configure, _mem=memory):
            # a reconfigured LUT can turn private windows shared; from
            # here on every store must be shipped, not just >= SHARED
            _mem.log_everything()
            return _orig(core, addr, shared)

        chip.configure_window = configure_window

        # register EVERY rank's core with its memory controller, not
        # just this shard's: DRAM queue depth is part of the timing
        # model and must match the sequential run's full active set
        for rank in range(num_ues):
            chip.activate_core(world.core_map[rank])

        interpreters = []
        rank_of_core = {}
        failed = threading.Event()

        def rank_main(rank):
            client.bind_thread(rank)
            try:
                runtime = world.runtime_for(rank)
                interp = Interpreter(unit, chip, runtime.core_id,
                                     memory, runtime, max_steps,
                                     engine=engine)
                rank_of_core[interp.core_id] = rank
                interpreters.append(interp)
                if quantum:
                    def hook(i, _client=client, _q=quantum):
                        _client.tick(i.cycles)
                        return i.cycles + _q
                    interp._quantum_hook = hook
                    interp._quantum_deadline = quantum
                try:
                    interp.run_main()
                except ThreadExit:
                    pass
                client.rank_done(rank)
            except Exception as exc:  # noqa: BLE001 - shipped home
                failed.set()
                dumps = threads = None
                if isinstance(exc, StepLimitExceeded):
                    dumps = core_dumps(interpreters, rank_of_core)
                client.report_error(exc, dumps, threads)

        threads = [threading.Thread(target=rank_main, args=(rank,),
                                    name="shard%d-ue%d" % (shard, rank))
                   for rank in ranks]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        if failed.is_set():
            return  # the error already went home on the control pipe

        per_rank = {}
        for interp in interpreters:
            rank = rank_of_core[interp.core_id]
            per_rank[rank] = {
                "core": interp.core_id,
                "cycles": interp.cycles,
                "steps": interp.steps,
                "output": list(interp.output),
            }
        client.report_result({
            "ranks": per_rank,
            "chip": chip.counter_state(),
            "world": {
                "messages_sent": world.messages_sent,
                "put_bytes": world.put_bytes,
                "get_bytes": world.get_bytes,
                "send_bytes": world.send_bytes,
                "lock_contentions": world.lock_contentions,
                "mpb_fallbacks": world.mpb_fallbacks,
                "acquisitions": list(world.registers.acquisitions),
            },
            "barrier_wait": list(world.barrier_wait.samples),
        })
    except Exception as exc:  # noqa: BLE001 - worker setup failure
        try:
            control_conn.send(("error", shard, _pack_error(exc),
                               (None, None)))
        except Exception:  # noqa: BLE001 - parent already gone
            pass


# -- coordinator side --------------------------------------------------------

class _Coordinator:
    """Single-threaded event loop replaying the sequential sync
    semantics over worker pipes.

    Replies are deterministic: whenever one event releases several
    parked ranks (a barrier round completing, a rendezvous matching),
    they are replied to in ascending rank order — the fixed round-robin
    reconciliation order that keeps reruns identical.
    """

    def __init__(self, plan, config, skew):
        self.plan = plan
        self.num_ues = plan.num_ues
        self.config = config
        self.skew = skew
        self.barrier_cost = (config.barrier_base_cycles
                             + plan.num_ues
                             * config.barrier_per_core_cycles)
        self.conns = {}             # rank -> parent-side Connection
        self.controls = {}          # shard -> parent-side Connection
        # delta log: (origin shard, addr, value); versions are absolute
        # (log_base + list index) so the prefix can be truncated
        self.log = []
        self.log_base = 0
        self.sent_upto = [0] * plan.jobs
        # sync state
        self.rounds = 0
        self.barrier_arrivals = {}  # rank -> (clock, kind, extra)
        self.deposits = {}          # round_id -> {rank: values}
        self.readers = {}           # round_id -> count
        self.lock_owner = {}        # register index -> rank
        self.lock_waiters = {}      # register index -> deque of ranks
        self.flag_values = {}
        self.flag_clocks = {}
        self.flag_next_id = 1
        self.flag_sequence = {}
        self.flag_allocations = []
        self.flag_waiters = {}      # flag id -> [(rank, value, clock)]
        self.channels = {}          # (src, dst) key -> channel state
        # bookkeeping
        self.pending = {}           # rank -> op currently parked
        self.finished = set()
        self.results = {}           # shard -> result payload
        self.failure = None
        self.failure_dumps = None
        self.error_pushed = set()   # ranks already sent an error

    # -- delta log ---------------------------------------------------------

    def append_deltas(self, shard, entries):
        for addr, value in entries:
            self.log.append((shard, addr, value))

    def _range_for(self, shard):
        vfrom = self.sent_upto[shard]
        vto = self.log_base + len(self.log)
        entries = [(addr, value)
                   for origin, addr, value
                   in self.log[vfrom - self.log_base:]
                   if origin != shard]
        self.sent_upto[shard] = vto
        self._maybe_truncate()
        return (vfrom, vto, entries)

    def _maybe_truncate(self):
        floor = min(self.sent_upto)
        if floor - self.log_base > 65536:
            drop = floor - self.log_base
            del self.log[:drop]
            self.log_base = floor

    # -- replies -----------------------------------------------------------

    def reply(self, rank, result):
        self.pending.pop(rank, None)
        shard = self.plan.shard_of[rank]
        self.conns[rank].send(("ok", result, self._range_for(shard)))

    def reply_error(self, rank, packed):
        self.pending.pop(rank, None)
        self.error_pushed.add(rank)
        conn = self.conns.get(rank)
        if conn is not None:
            conn.send(("error", packed, None))

    def push_failure(self, packed):
        """First failure wins (a secondary BarrierAborted never
        overrides the originating cause); every rank gets one error
        push — parked ranks consume it as their reply, computing ranks
        at their next tick or RPC."""
        for rank in range(self.num_ues):
            if rank in self.finished or rank in self.error_pushed:
                continue
            try:
                self.reply_error(rank, packed)
            except (OSError, ValueError):
                pass

    def record_failure(self, exc_packed, extra=None):
        if self.failure is None:
            self.failure = exc_packed
            if extra is not None:
                self.failure_dumps = extra
        self.push_failure(self.failure)

    # -- dispatch ----------------------------------------------------------

    def handle_control(self, shard, message):
        kind, _shard, payload, extra = message
        if kind in ("deltas", "tick"):
            self.append_deltas(shard, payload)
            if kind == "tick":
                self.skew.note_quantum(shard, extra)
        elif kind == "rank_done":
            self.finished.add(payload)
        elif kind == "error":
            self.record_failure(payload, extra)
        elif kind == "result":
            self.results[shard] = payload

    def handle_request(self, message):
        op = message[0]
        rank = message[1]
        if self.failure is not None:
            self.reply_error(rank, self.failure)
            return
        self.pending[rank] = op
        shard = self.plan.shard_of[rank]
        handler = getattr(self, "_op_" + op)
        try:
            handler(rank, *message[2:])
        except Exception as exc:  # noqa: BLE001 - a simulated-program
            # error (unallocated flag, protocol misuse): surface it in
            # the requesting rank exactly as the sequential primitive
            # would have raised it there
            self.reply_error(rank, _pack_error(exc))
        self.skew.note_sync(shard, self._clock_of(op, message))

    @staticmethod
    def _clock_of(op, message):
        # message = (op, rank, *args); which arg carries the clock
        # depends on the op's wire signature
        if op in ("barrier", "exchange"):
            return message[2]
        if op in ("flag_write", "flag_wait", "send"):
            return message[4]
        if op == "recv":
            return message[3]
        return None

    # barrier + collectives share one round state machine, because the
    # sequential CollectiveArea synchronizes on the world barrier and
    # shares its ``rounds`` counter

    def _op_barrier(self, rank, clock):
        self._barrier_arrive(rank, clock, "barrier", None)

    def _op_exchange(self, rank, clock, values, round_id):
        self.deposits.setdefault(round_id, {})[rank] = values
        self._barrier_arrive(rank, clock, "exchange", round_id)

    def _barrier_arrive(self, rank, clock, kind, extra):
        self.barrier_arrivals[rank] = (clock, kind, extra)
        if len(self.barrier_arrivals) < self.num_ues:
            return
        arrivals = self.barrier_arrivals
        self.barrier_arrivals = {}
        aligned = max(entry[0] for entry in arrivals.values()) \
            + self.barrier_cost
        self.rounds += 1
        for waiter in sorted(arrivals):
            _, waiter_kind, waiter_extra = arrivals[waiter]
            if waiter_kind == "barrier":
                self.reply(waiter, aligned)
            else:
                round_id = waiter_extra
                snapshot = dict(self.deposits.get(round_id, {}))
                readers = self.readers.get(round_id, 0) + 1
                self.readers[round_id] = readers
                if readers == self.num_ues:
                    self.deposits.pop(round_id, None)
                    del self.readers[round_id]
                self.reply(waiter, (snapshot, aligned))

    def _op_lock_contended(self, rank, index):
        self.reply(rank, index in self.lock_owner)

    def _op_lock_acquire(self, rank, index):
        if index not in self.lock_owner:
            self.lock_owner[index] = rank
            self.reply(rank, None)
        else:
            self.lock_waiters.setdefault(index, deque()).append(rank)

    def _op_lock_release(self, rank, index):
        if self.lock_owner.get(index) == rank:
            del self.lock_owner[index]
        self.reply(rank, None)
        waiters = self.lock_waiters.get(index)
        if waiters and index not in self.lock_owner:
            waiter = waiters.popleft()
            self.lock_owner[index] = waiter
            self.reply(waiter, None)

    def _op_flag_alloc(self, rank):
        index = self.flag_sequence.get(rank, 0)
        self.flag_sequence[rank] = index + 1
        if index < len(self.flag_allocations):
            self.reply(rank, self.flag_allocations[index])
            return
        flag_id = self.flag_next_id
        self.flag_next_id += 1
        self.flag_values[flag_id] = 0
        self.flag_clocks[flag_id] = 0
        self.flag_allocations.append(flag_id)
        self.reply(rank, flag_id)

    def _op_flag_free(self, rank, flag_id):
        self.flag_values.pop(flag_id, None)
        self.flag_clocks.pop(flag_id, None)
        self.reply(rank, None)

    def _op_flag_write(self, rank, flag_id, value, clock):
        if flag_id not in self.flag_values:
            raise CommDeadlockError(
                "write to unallocated flag %r" % flag_id)
        self.flag_values[flag_id] = value
        self.flag_clocks[flag_id] = clock
        self.reply(rank, None)
        waiters = self.flag_waiters.get(flag_id)
        if not waiters:
            return
        still = []
        for waiter, wanted, waiter_clock in waiters:
            if wanted == value:
                self.reply(waiter, max(waiter_clock, clock))
            else:
                still.append((waiter, wanted, waiter_clock))
        if still:
            self.flag_waiters[flag_id] = still
        else:
            del self.flag_waiters[flag_id]

    def _op_flag_read(self, rank, flag_id):
        if flag_id not in self.flag_values:
            raise CommDeadlockError(
                "read of unallocated flag %r" % flag_id)
        self.reply(rank, self.flag_values[flag_id])

    def _op_flag_wait(self, rank, flag_id, value, clock):
        if flag_id not in self.flag_values:
            raise CommDeadlockError(
                "wait on unallocated flag %r" % flag_id)
        if self.flag_values[flag_id] == value:
            self.reply(rank, max(clock, self.flag_clocks[flag_id]))
        else:
            self.flag_waiters.setdefault(flag_id, []).append(
                (rank, value, clock))

    def _channel(self, source, dest):
        key = (source, dest)
        state = self.channels.get(key)
        if state is None:
            state = self.channels[key] = {
                "payload": None,       # (sender rank, values, clock)
                "send_queue": deque(), # senders parked behind a payload
                "recv_waiter": None,   # (rank, clock, cost)
            }
        return state

    def _op_send(self, rank, dest, values, posted, seq):
        state = self._channel(rank, dest)
        if state["payload"] is not None:
            state["send_queue"].append((rank, values, posted))
            return
        state["payload"] = (rank, values, posted)
        self._try_rendezvous(state)

    def _op_recv(self, rank, source, clock, transfer_cost):
        state = self._channel(source, rank)
        if state["recv_waiter"] is not None:
            raise CommDeadlockError(
                "two concurrent recvs on one channel")
        state["recv_waiter"] = (rank, clock, transfer_cost)
        self._try_rendezvous(state)

    def _try_rendezvous(self, state):
        if state["payload"] is None or state["recv_waiter"] is None:
            return
        sender, values, sender_clock = state["payload"]
        receiver, recv_clock, cost = state["recv_waiter"]
        state["payload"] = None
        state["recv_waiter"] = None
        done = max(recv_clock, sender_clock) + cost
        # deterministic order: lower rank first
        for waiter in sorted((sender, receiver)):
            if waiter == sender:
                self.reply(sender, done)
            else:
                self.reply(receiver, (values, done))
        if state["send_queue"]:
            next_sender, next_values, next_posted = \
                state["send_queue"].popleft()
            state["payload"] = (next_sender, next_values, next_posted)
            self._try_rendezvous(state)

    # -- supervision -------------------------------------------------------

    def all_parked(self):
        return (len(self.pending) + len(self.finished)) >= self.num_ues

    def parked_description(self):
        rows = ["rank %d parked in %s" % (rank, op)
                for rank, op in sorted(self.pending.items())]
        return "; ".join(rows) if rows \
            else "no rank has reached a sync point"


def run_rcce_parallel(source, num_ues, config, chip, core_map,
                      max_steps, engine, jobs, quantum=None,
                      start_method=None, diagnostics=None,
                      wall_timeout=WALL_TIMEOUT_SECONDS,
                      parked_timeout=PARKED_TIMEOUT_SECONDS):
    """Run an RCCE source program sharded over ``jobs`` worker
    processes.  Returns the same :class:`~repro.sim.runner.RunResult`
    shape as the sequential ``run_rcce`` — cycles, outputs, stats and
    metrics included — byte-identical in cycles and outputs.

    ``source`` must be the program's *source text* (workers re-parse it
    through the shared sha256 memo); the caller (``run_rcce``) already
    downgrades pre-parsed units to the thread backend.
    """
    from repro.sim.runner import RunResult

    if not isinstance(source, str):
        raise TypeError("the process backend needs program source text")
    quantum = quantum or SkewBarrier.DEFAULT_QUANTUM
    plan = ShardPlan(num_ues, jobs)
    world_core_map = list(core_map) if core_map \
        else list(range(num_ues))
    skew = SkewBarrier(plan.jobs, quantum)
    coord = _Coordinator(plan, config, skew)

    method = start_method
    if method is None:
        methods = multiprocessing.get_all_start_methods()
        method = "fork" if "fork" in methods else methods[0]
    ctx = multiprocessing.get_context(method)

    child_rank_conns = {shard: {} for shard in range(plan.jobs)}
    for rank in range(num_ues):
        parent_end, child_end = ctx.Pipe()
        coord.conns[rank] = parent_end
        child_rank_conns[plan.shard_of[rank]][rank] = child_end
    child_controls = {}
    for shard in range(plan.jobs):
        parent_end, child_end = ctx.Pipe(duplex=False)
        coord.controls[shard] = parent_end
        child_controls[shard] = child_end

    workers = []
    for shard in range(plan.jobs):
        worker = ctx.Process(
            target=_worker_main,
            args=(shard, plan.ranks_of(shard), source, num_ues,
                  world_core_map, config, max_steps, engine, quantum,
                  child_rank_conns[shard], child_controls[shard]),
            name="repro-shard%d" % shard, daemon=True)
        workers.append(worker)
    for worker in workers:
        worker.start()
    # the parent's copies of the child ends must close, or EOF on a
    # dead worker would never surface
    for shard in range(plan.jobs):
        for conn in child_rank_conns[shard].values():
            conn.close()
        child_controls[shard].close()

    conn_shard = {id(conn): shard
                  for shard, conn in coord.controls.items()}
    conn_rank = {id(conn): rank for rank, conn in coord.conns.items()}

    def drain_control(shard):
        control = coord.controls.get(shard)
        while control is not None and control.poll():
            try:
                coord.handle_control(shard, control.recv())
            except EOFError:
                coord.controls.pop(shard, None)
                return

    try:
        last_activity = time.monotonic()
        parked_since = None
        while len(coord.results) < plan.jobs and \
                coord.failure is None:
            waitable = list(coord.controls.values()) \
                + list(coord.conns.values())
            if not waitable:
                break
            ready = multiprocessing.connection.wait(waitable,
                                                    timeout=0.25)
            if ready:
                last_activity = time.monotonic()
                parked_since = None
            for conn in ready:
                shard = conn_shard.get(id(conn))
                if shard is not None:
                    drain_control(shard)
                    continue
                rank = conn_rank[id(conn)]
                # the rank's dirty writes travel on its worker's
                # control pipe and were sent first; log them before
                # computing any reply this request triggers
                drain_control(coord.plan.shard_of[rank])
                try:
                    message = conn.recv()
                except EOFError:
                    coord.conns.pop(rank, None)
                    if rank not in coord.finished and \
                            coord.failure is None:
                        coord.record_failure(_pack_error(
                            ParallelRunError(
                                "worker for rank %d died without "
                                "reporting an error" % rank)))
                    continue
                coord.handle_request(message)
            if not ready:
                now = time.monotonic()
                if coord.all_parked() and \
                        len(coord.finished) < num_ues:
                    if parked_since is None:
                        parked_since = now
                    elif now - parked_since > parked_timeout:
                        coord.record_failure(_pack_error(
                            CommDeadlockError(
                                "simulated program deadlocked: %s"
                                % coord.parked_description())))
                elif now - last_activity > wall_timeout:
                    coord.record_failure(_pack_error(
                        ParallelRunError(
                            "no worker activity for %gs (%s)"
                            % (wall_timeout,
                               coord.parked_description()))))
        # drain any result/error messages still in flight
        deadline = time.monotonic() + 5.0
        while coord.failure is None and \
                len(coord.results) < plan.jobs and \
                time.monotonic() < deadline:
            for shard in list(coord.controls):
                drain_control(shard)
            time.sleep(0.01)
    finally:
        for worker in workers:
            worker.join(timeout=5.0)
        for worker in workers:
            if worker.is_alive():
                worker.terminate()
                worker.join(timeout=5.0)
        for conn in coord.conns.values():
            conn.close()
        for conn in coord.controls.values():
            conn.close()

    if coord.failure is not None:
        exc = _unpack_error(coord.failure)
        if isinstance(exc, StepLimitExceeded) and \
                not isinstance(exc, SimulationTimeout):
            dumps = (coord.failure_dumps or (None, None))[0]
            exc = SimulationTimeout(str(exc), dumps or [])
        elif isinstance(exc, (WatchdogError, SimulationTimeout)) and \
                not getattr(exc, "dumps", None):
            dumps = (coord.failure_dumps or (None, None))[0]
            if dumps:
                exc.dumps = dumps
        raise exc
    if len(coord.results) < plan.jobs:
        raise ParallelRunError(
            "only %d of %d workers reported results"
            % (len(coord.results), plan.jobs))

    # -- merge: one parent-side snapshot, structurally identical to the
    # sequential runner's -------------------------------------------------
    chip.metrics.reset()
    per_rank = {}
    for shard in sorted(coord.results):
        payload = coord.results[shard]
        chip.merge_counter_state(payload["chip"])
        per_rank.update(payload["ranks"])
    if len(per_rank) != num_ues:
        raise ParallelRunError(
            "workers reported %d of %d ranks" % (len(per_rank),
                                                 num_ues))

    world = RCCEWorld(chip, num_ues, world_core_map, watchdog=None)
    world.barrier.rounds = coord.rounds
    for shard in sorted(coord.results):
        state = coord.results[shard]["world"]
        world.messages_sent += state["messages_sent"]
        world.put_bytes += state["put_bytes"]
        world.get_bytes += state["get_bytes"]
        world.send_bytes += state["send_bytes"]
        world.lock_contentions += state["lock_contentions"]
        world.mpb_fallbacks += state["mpb_fallbacks"]
        for index, count in enumerate(state["acquisitions"]):
            world.registers.acquisitions[index] += count
    for shard in sorted(coord.results):
        for sample in coord.results[shard]["barrier_wait"]:
            world.barrier_wait.observe(sample)

    def collect_interpreters(_rows=per_rank):
        samples = []
        for rank in sorted(_rows):
            row = _rows[rank]
            labels = {"core": row["core"]}
            samples.append(("counter", "sim_steps", labels,
                            row["steps"]))
            samples.append(("counter", "sim_cycles", labels,
                            row["cycles"]))
        return samples

    chip.metrics.register_collector("sim.interpreters",
                                    collect_interpreters)

    chip.metrics.register_collector("sim.parallel",
                                    parallel_collector(skew, plan.jobs))
    metrics = chip.metrics.snapshot()

    per_core = {row["core"]: row["cycles"]
                for row in per_rank.values()}
    total = max(per_core.values())
    outputs = []
    for core in sorted(per_core):
        rank = next(r for r, row in per_rank.items()
                    if row["core"] == core)
        outputs.extend(per_rank[rank]["output"])
    result = RunResult(
        total, config, outputs,
        per_core_cycles=per_core,
        stats={
            "num_ues": num_ues,
            "barrier_rounds": coord.rounds,
            "mpb_fallbacks": world.mpb_fallbacks,
            "controllers": {index: (stats.reads, stats.writes)
                            for index, stats
                            in chip.controller_stats().items()},
            "parallel": parallel_stats("process", skew, plan.jobs,
                                       start_method=method),
        },
        metrics=metrics,
        diagnostics=diagnostics)
    return result
