"""Parallel host execution: shard per-core interpreters across
processes with Graphite-style relaxed clock synchronization.

The sequential ``run_rcce`` steps every simulated core inside one
GIL-bound host process.  This backend shards the ``num_ues`` ranks
round-robin across N worker *processes*; each shard runs its ranks
under the existing compiled engine on a full **chip replica**, letting
its simulated clocks run ahead of its peers' (lax sync) up to a
configurable quantum of cycles, and reconciling

* at **quantum boundaries** — a non-blocking checkpoint (the shard
  publishes its clock and ships its dirty shared memory home; it never
  waits, because a peer parked inside ``recv`` must not be waited on);
* **early, at every true sync point** — barrier rounds, test-and-set
  registers, MPB flag publish/consume, send/recv rendezvous — which
  are routed through a single-threaded **coordinator** event loop in
  the parent process.

Determinism contract: cycles and outputs are **byte-identical to the
sequential engine for any shard count and any quantum**.  That holds
by construction, not by tuning:

* every cross-rank value and every cross-rank clock comparison already
  flows through the coordinator-routed sync primitives, which replay
  the sequential semantics exactly (barrier = max of published clocks
  + cost; rendezvous = max of both clocks + transfer cost; flag wait =
  max of waiter clock and the satisfying write's clock);
* each chip replica's timing state is either per-core (caches — a core
  runs wholly inside one worker), statically geometric (mesh hops), or
  statically determined by the full ``activate_core`` registration
  that every replica performs for *all* ranks (DRAM queue depth);
* symmetric heap allocations replay in SPMD program order against
  identical per-replica bump pointers, so all replicas agree on every
  address.

Shared memory consistency uses dirty-address write logging: every
worker store to a non-private address is logged and shipped to the
coordinator's versioned global delta log at the next reconciliation;
sync replies carry the other shards' deltas back (contiguous version
ranges per worker, applied in order).  For well-synchronized programs
— the only programs whose sequential result is deterministic in the
first place — this release/acquire shipping delivers exactly the
values the sequential run would read.  Racy programs should run under
the race detector, which (like every other incompatible feature)
forces a loud downgrade to the shared-world thread backend.

**Fault tolerance.**  The coordinator supervises its workers: every
control-pipe message is a heartbeat, worker process exit (EOF without
a reported simulated error) raises :class:`~repro.sim.watchdog.
WorkerDeathError`, and heartbeat silence while a shard still has
runnable ranks raises :class:`~repro.sim.watchdog.WorkerStallError`.
A dead shard is respawned with exponential backoff under a bounded
restart budget and recovered by **verified replay** (see
:class:`~repro.recovery.checkpoint.ShardCheckpoint`): the coordinator
records every reply it sends per rank, serves the recorded sequence
to the respawned worker's deterministic re-execution without touching
the live sync state machine, suppresses the re-produced shared-write
deltas against per-rank cursors, and hash-verifies the replayed
prefix.  Recovered runs remain byte-identical to the sequential
engine.  Deterministic host-level chaos (``worker_kill`` /
``worker_stall`` / ``ipc_delay``) comes from
:class:`repro.faults.HostFaultPlan`; an exhausted restart budget
raises :class:`~repro.sim.watchdog.ShardRestartsExhaustedError`,
which ``run_rcce`` converts into a graceful thread-backend downgrade.
"""

import multiprocessing
import multiprocessing.connection
import os
import pickle
import signal
import threading
import time
import traceback

from collections import deque

from repro.faults import HostFaultPlan
from repro.scc.chip import SCCChip
from repro.scc.memmap import SHARED_BASE
from repro.rcce.api import RCCEWorld
from repro.rcce.comm import CommDeadlockError
from repro.rcce.sync import SkewBarrier
from repro.recovery.checkpoint import ShardCheckpoint
from repro.recovery.supervisor import RecoveryReport
from repro.sim.interpreter import (
    Interpreter,
    InterpreterError,
    StepLimitExceeded,
    ThreadExit,
)
from repro.sim.machine import Memory
from repro.sim.watchdog import (
    BarrierAbortedError,
    ShardRestartsExhaustedError,
    SimulationTimeout,
    WatchdogError,
    WorkerDeathError,
    WorkerStallError,
    core_dumps,
)

__all__ = ["ShardMemory", "ShardPlan", "ParallelRunError",
           "parallel_collector", "parallel_stats",
           "run_rcce_parallel"]

# Wall-clock bounds enforced by the coordinator (the coordinator IS
# the parallel run's watchdog: it sees every sync wait and every
# heartbeat, so the sequential watchdog's lock/barrier timeouts map
# onto these bounds).
# ``PARKED_TIMEOUT``: every unfinished rank is parked at a sync point
# and nothing has moved — the simulated program is deadlocked.
# ``WALL_TIMEOUT``: nothing at all has moved (not even quantum ticks)
# — a worker died silently or is wedged.
# ``HEARTBEAT_TIMEOUT``: one shard with runnable ranks went silent —
# its worker process is hung (host-level stall, not a simulated
# deadlock); the supervisor terminates and respawns it.
PARKED_TIMEOUT_SECONDS = 10.0
WALL_TIMEOUT_SECONDS = 600.0
HEARTBEAT_TIMEOUT_SECONDS = 30.0

# Shard supervision: restart budget per shard and the exponential
# backoff between respawns.
DEFAULT_SHARD_RESTARTS = 2
RESPAWN_BACKOFF_BASE = 0.05
RESPAWN_BACKOFF_CAP = 1.0

# Worker-side IPC sends retry transient interruptions with bounded
# exponential backoff before giving up.
IPC_SEND_RETRIES = 5
IPC_RETRY_BACKOFF = 0.01


def _ipc_send(conn, message):
    """Send on a multiprocessing Connection, absorbing transient
    interruptions (EINTR, momentarily full pipe) with bounded
    exponential backoff.  A broken pipe (dead peer) still raises."""
    delay = IPC_RETRY_BACKOFF
    for attempt in range(IPC_SEND_RETRIES):
        try:
            conn.send(message)
            return
        except (InterruptedError, BlockingIOError):
            if attempt == IPC_SEND_RETRIES - 1:
                raise
            time.sleep(delay)
            delay = min(delay * 2, 1.0)


class ParallelRunError(Exception):
    """A worker failed in a way that could not be reproduced locally
    (e.g. its exception did not survive pickling)."""


class ParallelInterrupted(KeyboardInterrupt):
    """SIGTERM/SIGINT landed mid-run: the coordinator terminated and
    joined its workers, closed the control pipes, and unwound — no
    orphans.  A ``KeyboardInterrupt`` subclass so generic ``except
    Exception`` recovery paths never swallow an operator's interrupt;
    the CLI maps it to exit 130 with the one-line diagnostic."""

    def __init__(self, signum, workers):
        name = {getattr(signal, "SIGINT", 2): "SIGINT",
                getattr(signal, "SIGTERM", 15): "SIGTERM"}.get(
                    signum, "signal %s" % signum)
        super().__init__(
            "interrupted by %s: terminated %d parallel worker(s) "
            "and unwound cleanly" % (name, workers))
        self.signum = signum
        self.workers = workers


class ShardPlan:
    """Deterministic round-robin rank -> shard assignment."""

    def __init__(self, num_ues, jobs):
        if num_ues < 1:
            raise ValueError("need at least one UE")
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        self.num_ues = num_ues
        # an empty shard would idle a whole process; clamp instead
        self.jobs = min(jobs, num_ues)
        self.shard_of = [rank % self.jobs for rank in range(num_ues)]

    def ranks_of(self, shard):
        return [rank for rank in range(self.num_ues)
                if self.shard_of[rank] == shard]

    def __repr__(self):
        return "ShardPlan(%d UEs over %d shards)" % (self.num_ues,
                                                     self.jobs)


def parallel_collector(skew, jobs, respawns=None):
    """Build the ``sim.parallel`` metrics collector — shared by the
    process backend and the thread backend so both report the same
    sample shapes.  ``respawns`` (shard -> count) adds the process
    backend's supervision counters."""

    def collect():
        samples = [
            ("gauge", "parallel_jobs", {}, jobs),
            ("gauge", "parallel_quantum_cycles", {}, skew.quantum),
            ("gauge", "parallel_max_skew_cycles", {}, skew.max_skew),
        ]
        for shard in range(jobs):
            labels = {"shard": shard}
            samples.append(("counter", "parallel_reconciliations",
                            labels, skew.reconciliations(shard)))
            samples.append(("counter",
                            "parallel_quantum_reconciliations",
                            labels,
                            skew.quantum_reconciliations[shard]))
            samples.append(("counter", "parallel_sync_reconciliations",
                            labels, skew.sync_reconciliations[shard]))
            if respawns is not None:
                samples.append(("counter", "parallel_shard_respawns",
                                labels, respawns.get(shard, 0)))
        return samples

    return collect


def parallel_stats(backend, skew, jobs, **extra):
    """The ``stats["parallel"]`` block both backends report."""
    stats = {
        "backend": backend,
        "jobs": jobs,
        "quantum": skew.quantum,
        "reconciliations": skew.total_reconciliations(),
        "max_skew_cycles": skew.max_skew,
    }
    stats.update(extra)
    return stats


class ShardMemory(Memory):
    """A worker replica's memory with dirty-address write logging.

    Stores to addresses at or above ``SHARED_BASE`` (shared DRAM, MPB,
    split windows — everything another shard could legally read) are
    appended to a thread-safe pending log, drained at every
    reconciliation.  Private-window stores are skipped: a core runs
    wholly inside one worker, so no other shard can see them — unless
    a LUT reconfiguration has blurred the private/shared line, in
    which case :meth:`log_everything` flips the filter off.

    Every logged entry is tagged with the *rank* whose thread made the
    store (``(rank, addr, value)``): rank threads interleave
    non-deterministically inside one worker, so shard-level entry
    counts are not reproducible — but each single rank's write order
    is.  The coordinator's per-rank cursors
    (:meth:`~repro.recovery.checkpoint.ShardCheckpoint.record_delta`)
    depend on exactly that.
    """

    __slots__ = ("_pending", "_log_all", "_rank_local")

    def __init__(self):
        super().__init__()
        self._pending = deque()   # (rank, addr, value); append atomic
        self._log_all = [False]
        self._rank_local = threading.local()
        self._rebind()

    def _rebind(self):
        """Install the logging ``put`` (the compiled engine binds
        ``memory.put`` once per interpreter, so this must be in place
        before any interpreter is built)."""
        data = self._data
        pend = self._pending.append
        log_all = self._log_all
        local = self._rank_local

        def put(addr, value, _data=data, _pend=pend, _all=log_all,
                _base=SHARED_BASE, _local=local):
            _data[addr] = value
            if addr >= _base or _all[0]:
                _pend((getattr(_local, "rank", None), addr, value))

        self.put = put

    def set_thread_rank(self, rank):
        """Tag every logged store from the calling thread with
        ``rank`` (each rank thread calls this once, before running)."""
        self._rank_local.rank = rank

    def log_everything(self):
        """Conservative mode: log every store (LUT reconfiguration can
        re-classify private windows as shared)."""
        self._log_all[0] = True

    def store(self, addr, value):
        self.put(addr, value)

    def memset(self, addr, value, count, stride):
        put = self.put
        with self._lock:
            for index in range(count):
                put(addr + index * stride, value)

    def memcpy(self, dst, src, count, stride, default=0):
        put = self.put
        get = self._data.get
        with self._lock:
            for index in range(count):
                put(dst + index * stride,
                    get(src + index * stride, default))

    def drain_dirty(self):
        """Pop every pending (rank, addr, value) in FIFO order.
        Callers serialize on the client's drain lock, so two
        reconciliations never interleave one rank's entries out of
        order."""
        pending = self._pending
        entries = []
        while True:
            try:
                entries.append(pending.popleft())
            except IndexError:
                return entries

    def apply_remote(self, entries):
        """Apply another shard's shipped writes (no re-logging)."""
        data = self._data
        for addr, value in entries:
            data[addr] = value


# -- wire format helpers -----------------------------------------------------

def _pack_error(exc):
    """Serialize an exception for the trip home.  Exceptions whose
    pickling round-trip fails degrade to (type name, message)."""
    try:
        blob = pickle.dumps(exc)
        pickle.loads(blob)
        return ("pickle", blob)
    except Exception:  # noqa: BLE001 - any pickling failure degrades
        return ("named", type(exc).__name__, str(exc),
                traceback.format_exc())


_ERRORS_BY_NAME = {
    cls.__name__: cls
    for cls in (CommDeadlockError, InterpreterError, StepLimitExceeded,
                SimulationTimeout, BarrierAbortedError, WatchdogError,
                MemoryError, ValueError, RuntimeError)
}


def _unpack_error(packed):
    if packed[0] == "pickle":
        try:
            return pickle.loads(packed[1])
        except Exception:  # noqa: BLE001 - fall through to a generic error
            return ParallelRunError("worker error did not survive "
                                    "unpickling")
    _, name, message, trace = packed
    cls = _ERRORS_BY_NAME.get(name)
    if cls is not None:
        try:
            return cls(message)
        except Exception:  # noqa: BLE001 - odd constructor signature
            pass
    return ParallelRunError("%s: %s\n%s" % (name, message, trace))


# -- worker side -------------------------------------------------------------

class _ShardClient:
    """A worker's connection bundle to the coordinator.

    Each rank thread owns one duplex pipe for request/reply sync RPCs;
    the whole worker shares one FIFO control pipe for one-way traffic
    (delta shipments, quantum ticks, errors, results).  The drain lock
    makes [drain dirty log -> send on control pipe] atomic, so the
    control pipe's FIFO order *is* the worker's global write order.
    """

    def __init__(self, shard, memory, rank_conns, control_conn,
                 chaos=None):
        self.shard = shard
        self.memory = memory
        self.rank_conns = rank_conns      # rank -> Connection
        self.control = control_conn
        self.chaos = chaos                # HostFaultPlan or None
        self.anchor_rank = min(rank_conns) if rank_conns else None
        self._tick_index = 0              # anchor rank's quantum ticks
        self._local = threading.local()
        self._drain_lock = threading.Lock()
        self._control_lock = threading.Lock()
        # remote-delta application: contiguous version ranges arrive on
        # any rank conn; apply strictly in version order
        self._apply = threading.Condition()
        self._watermark = 0
        self._ranges = {}                 # vfrom -> (vto, entries)

    def bind_thread(self, rank):
        self._local.rank = rank
        self._local.conn = self.rank_conns[rank]
        self.memory.set_thread_rank(rank)

    def _ipc_delay(self):
        if self.chaos is not None and self.chaos.ipc_rules:
            seconds = self.chaos.ipc_delay_seconds(self.shard)
            if seconds > 0.0:
                time.sleep(seconds)

    def _send_control(self, message):
        self._ipc_delay()
        with self._control_lock:
            _ipc_send(self.control, message)

    def flush(self, kind="deltas", clock=None):
        """Ship pending dirty writes home (one-way, never blocks on a
        reply).  A "tick" flush is sent even when empty: it doubles as
        the liveness signal behind the coordinator's wall-clock
        supervision."""
        with self._drain_lock:
            entries = self.memory.drain_dirty()
            if entries or kind == "tick":
                self._send_control((kind, self.shard, entries, clock))

    def tick(self, clock):
        """Quantum-boundary reconciliation: non-blocking publish +
        abort poll (a pushed coordinator error must be able to stop a
        rank that is deep in a compute loop).  The shard's *anchor*
        rank (its lowest) additionally evaluates the host chaos plan
        here: its quantum boundaries fall at deterministic simulated
        cycles, so kill/stall schedules reproduce run-to-run."""
        conn = self._local.conn
        if conn.poll():
            status, payload, _ = conn.recv()
            if status == "error":
                raise _unpack_error(payload)
        if self.chaos is not None \
                and self._local.rank == self.anchor_rank:
            self._tick_index += 1
            for action in self.chaos.on_tick(self.shard,
                                             self._tick_index):
                self._deliver_chaos(action)
        self.flush(kind="tick", clock=clock)

    def _deliver_chaos(self, action):
        """Deliver one host-fault action.  The one-shot note goes home
        first so the coordinator never re-arms a delivered fault in
        the plan it ships to the respawned worker."""
        if action[0] == "kill":
            _, rule_index, tick = action
            try:
                self._send_control(("chaos", self.shard,
                                    (rule_index, tick, "worker_kill"),
                                    None))
            except Exception:  # noqa: BLE001 - dying anyway
                pass
            # abrupt: no flush, no cleanup — pending deltas are lost
            # exactly as a real worker crash would lose them
            os._exit(17)
        _, rule_index, tick, seconds = action
        try:
            self._send_control(("chaos", self.shard,
                                (rule_index, tick, "worker_stall"),
                                None))
        except Exception:  # noqa: BLE001 - stall anyway
            pass
        # freeze the whole worker, not just this thread: holding both
        # locks blocks every sibling flush/RPC, so the shard goes
        # heartbeat-silent and the supervisor's stall detection fires
        with self._drain_lock:
            with self._control_lock:
                time.sleep(seconds)

    def request(self, op, *args):
        """One synchronous sync-point RPC: flush dirty writes, send,
        block for the reply, apply the peers' deltas it carries."""
        self.flush()
        conn = self._local.conn
        self._ipc_delay()
        _ipc_send(conn, (op, self._local.rank) + args)
        status, payload, batch = conn.recv()
        if batch is not None:
            self._apply_batch(batch)
        if status == "error":
            raise _unpack_error(payload)
        return payload

    def _apply_batch(self, batch):
        """Apply one contiguous version range of remote writes.  A
        later range that arrives first (two ranks of this worker woken
        out of order) waits for the earlier range's owner to apply."""
        vfrom, vto, entries = batch
        with self._apply:
            if vto > vfrom:
                self._ranges[vfrom] = (vto, entries)
            # an empty range still gates resumption: this rank may not
            # read memory until every delta version below ``vto`` —
            # possibly carried by a sibling rank's reply — is applied
            while True:
                pending = self._ranges.pop(self._watermark, None)
                if pending is not None:
                    next_vto, next_entries = pending
                    self.memory.apply_remote(next_entries)
                    self._watermark = next_vto
                    self._apply.notify_all()
                    continue
                if self._watermark >= vto:
                    return
                if not self._apply.wait(WALL_TIMEOUT_SECONDS):
                    raise ParallelRunError(
                        "remote delta range [%d, %d) never became "
                        "applicable" % (vfrom, vto))

    def rank_done(self, rank):
        self.flush()
        self._send_control(("rank_done", self.shard, rank, None))

    def report_error(self, exc, dumps=None, threads=None):
        self.flush()
        self._send_control(("error", self.shard,
                            _pack_error(exc), (dumps, threads)))

    def report_result(self, payload):
        self.flush()
        self._send_control(("result", self.shard, payload, None))


class _ProxyBarrier:
    """ClockBarrier stand-in: the round lives in the coordinator."""

    def __init__(self, client, parties):
        self.client = client
        self.parties = parties
        self.rounds = 0       # authoritative count lives coordinator-side
        self.on_round = None
        self.race = None

    def wait(self, rank, clock):
        return self.client.request("barrier", clock)

    def abort(self, failure=None):
        # local failures travel on the control pipe (report_error);
        # nothing to break locally — peers are parked coordinator-side
        pass


class _ProxyRegisters:
    """Test-and-set registers proxied to the coordinator's FIFO grant
    queue.  Acquisition counts are kept locally (each worker counts its
    own ranks' grants; the coordinator sums them at shutdown)."""

    __test__ = False

    def __init__(self, client, num_cores):
        self.client = client
        self.num_cores = num_cores
        self.acquisitions = [0] * num_cores
        self.owners = {}
        self.race = None
        self.watchdog = None

    def contended(self, register):
        return self.client.request("lock_contended",
                                   register % self.num_cores)

    def reset_counts(self):
        self.acquisitions = [0] * self.num_cores

    def acquire(self, register, rank=None):
        index = register % self.num_cores
        self.client.request("lock_acquire", index)
        self.acquisitions[index] += 1

    def release(self, register, rank=None):
        self.client.request("lock_release", register % self.num_cores)


class _ProxyFlagTable:
    """MPB flag table proxied to the coordinator (symmetric allocation
    and write-clock propagation replay the sequential semantics)."""

    def __init__(self, client):
        self.client = client

    def alloc(self, rank=0):
        return self.client.request("flag_alloc")

    def free(self, flag_id):
        self.client.request("flag_free", flag_id)

    def write(self, flag_id, value, clock, race=None, tid=None):
        self.client.request("flag_write", flag_id, value, clock)

    def read(self, flag_id, race=None, tid=None):
        return self.client.request("flag_read", flag_id)

    def wait_until(self, flag_id, value, clock, race=None, tid=None):
        return self.client.request("flag_wait", flag_id, value, clock)


class _ProxyChannel:
    """One (source, dest) rendezvous pair routed through the
    coordinator — synchronous on both sides, like the sequential
    :class:`~repro.rcce.comm.Channel`."""

    def __init__(self, client, source, dest):
        self.client = client
        self.source = source
        self.dest = dest

    def send(self, values, clock, seq=None, race=None, tid=None):
        return self.client.request("send", self.dest, list(values),
                                   clock, seq)

    def recv(self, clock, transfer_cost, race=None, tid=None):
        values, done = self.client.request("recv", self.source, clock,
                                           transfer_cost)
        return values, done


class _ProxyFabric:
    def __init__(self, client):
        self.client = client
        self._channels = {}

    def channel(self, source, dest):
        key = (source, dest)
        channel = self._channels.get(key)
        if channel is None:
            channel = self._channels[key] = _ProxyChannel(
                self.client, source, dest)
        return channel


class _ProxyCollectives:
    """Collective staging proxied to the coordinator, which shares its
    round counter with the plain barrier exactly as the sequential
    :class:`~repro.rcce.comm.CollectiveArea` shares the world
    barrier."""

    def __init__(self, client):
        self.client = client

    def exchange(self, rank, clock, values, round_id):
        deposits, aligned = self.client.request(
            "exchange", clock, list(values), round_id)
        return deposits, aligned


class _SampleList:
    """Histogram stand-in: record raw samples for shipment home."""

    __slots__ = ("samples",)

    def __init__(self):
        self.samples = []

    def observe(self, value):
        self.samples.append(value)


class ShardWorld(RCCEWorld):
    """An RCCE world whose cross-shard primitives are coordinator
    proxies.  Everything replica-local (symmetric heaps, counters, the
    chip binding) is inherited unchanged."""

    def __init__(self, chip, num_ues, core_map, client):
        super().__init__(chip, num_ues, core_map, watchdog=None)
        self.client = client
        self.barrier = _ProxyBarrier(client, num_ues)
        self.registers = _ProxyRegisters(client, chip.config.num_cores)
        self.flags = _ProxyFlagTable(client)
        self.fabric = _ProxyFabric(client)
        self.collectives = _ProxyCollectives(client)
        self.barrier_wait = _SampleList()

    def abort(self, failure=None):
        pass  # handled by the worker's error report


def _worker_main(shard, ranks, source, num_ues, core_map, config,
                 max_steps, engine, quantum, rank_conns, control_conn,
                 chaos=None):
    """One worker process: a full chip replica running ``ranks`` as
    host threads, every sync point an RPC to the coordinator.
    Module-level and argument-complete, so it is spawn-safe.  A
    respawned worker gets the same arguments (plus the chaos plan's
    accumulated fired set) and simply re-executes; the coordinator
    serves it recorded replies until it catches up."""
    # under fork the worker inherits the coordinator's deferred
    # SIGTERM/SIGINT handlers, which would make ``terminate()`` a
    # no-op; workers take the default (die) disposition instead
    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            signal.signal(signum, signal.SIG_DFL)
        except ValueError:
            break  # not the main thread (thread-backend tests)
    try:
        if engine == "compiled":
            from repro.sim.compile import warm_process_cache
            unit = warm_process_cache(source)
        else:
            from repro.cfront.frontend import parse_program
            unit = parse_program(source, share=True)
        chip = SCCChip(config)
        memory = ShardMemory()
        client = _ShardClient(shard, memory, rank_conns, control_conn,
                              chaos=chaos)
        world = ShardWorld(chip, num_ues, core_map, client)

        original_configure = chip.configure_window

        def configure_window(core, addr, shared,
                             _orig=original_configure, _mem=memory):
            # a reconfigured LUT can turn private windows shared; from
            # here on every store must be shipped, not just >= SHARED
            _mem.log_everything()
            return _orig(core, addr, shared)

        chip.configure_window = configure_window

        # register EVERY rank's core with its memory controller, not
        # just this shard's: DRAM queue depth is part of the timing
        # model and must match the sequential run's full active set
        for rank in range(num_ues):
            chip.activate_core(world.core_map[rank])

        interpreters = []
        rank_of_core = {}
        failed = threading.Event()

        def rank_main(rank):
            client.bind_thread(rank)
            try:
                runtime = world.runtime_for(rank)
                interp = Interpreter(unit, chip, runtime.core_id,
                                     memory, runtime, max_steps,
                                     engine=engine)
                rank_of_core[interp.core_id] = rank
                interpreters.append(interp)
                if quantum:
                    def hook(i, _client=client, _q=quantum):
                        _client.tick(i.cycles)
                        return i.cycles + _q
                    interp._quantum_hook = hook
                    interp._quantum_deadline = quantum
                try:
                    interp.run_main()
                except ThreadExit:
                    pass
                client.rank_done(rank)
            except Exception as exc:  # noqa: BLE001 - shipped home
                failed.set()
                dumps = threads = None
                if isinstance(exc, StepLimitExceeded):
                    dumps = core_dumps(interpreters, rank_of_core)
                client.report_error(exc, dumps, threads)

        threads = [threading.Thread(target=rank_main, args=(rank,),
                                    name="shard%d-ue%d" % (shard, rank))
                   for rank in ranks]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        if failed.is_set():
            return  # the error already went home on the control pipe

        per_rank = {}
        for interp in interpreters:
            rank = rank_of_core[interp.core_id]
            per_rank[rank] = {
                "core": interp.core_id,
                "cycles": interp.cycles,
                "steps": interp.steps,
                "output": list(interp.output),
            }
        client.report_result({
            "ranks": per_rank,
            "chip": chip.counter_state(),
            "world": {
                "messages_sent": world.messages_sent,
                "put_bytes": world.put_bytes,
                "get_bytes": world.get_bytes,
                "send_bytes": world.send_bytes,
                "lock_contentions": world.lock_contentions,
                "mpb_fallbacks": world.mpb_fallbacks,
                "acquisitions": list(world.registers.acquisitions),
            },
            "barrier_wait": list(world.barrier_wait.samples),
        })
    except Exception as exc:  # noqa: BLE001 - worker setup failure
        try:
            control_conn.send(("error", shard, _pack_error(exc),
                               (None, None)))
        except Exception:  # noqa: BLE001 - parent already gone
            pass


# -- coordinator side --------------------------------------------------------

class _Coordinator:
    """Single-threaded event loop replaying the sequential sync
    semantics over worker pipes.

    Replies are deterministic: whenever one event releases several
    parked ranks (a barrier round completing, a rendezvous matching),
    they are replied to in ascending rank order — the fixed round-robin
    reconciliation order that keeps reruns identical.
    """

    def __init__(self, plan, config, skew):
        self.plan = plan
        self.num_ues = plan.num_ues
        self.config = config
        self.skew = skew
        self.barrier_cost = (config.barrier_base_cycles
                             + plan.num_ues
                             * config.barrier_per_core_cycles)
        self.conns = {}             # rank -> parent-side Connection
        self.controls = {}          # shard -> parent-side Connection
        # delta log: (origin shard, addr, value); versions are absolute
        # (log_base + list index) so the prefix can be truncated
        self.log = []
        self.log_base = 0
        self.sent_upto = [0] * plan.jobs
        # sync state
        self.rounds = 0
        self.barrier_arrivals = {}  # rank -> (clock, kind, extra)
        self.deposits = {}          # round_id -> {rank: values}
        self.readers = {}           # round_id -> count
        self.lock_owner = {}        # register index -> rank
        self.lock_waiters = {}      # register index -> deque of ranks
        self.flag_values = {}
        self.flag_clocks = {}
        self.flag_next_id = 1
        self.flag_sequence = {}
        self.flag_allocations = []
        self.flag_waiters = {}      # flag id -> [(rank, value, clock)]
        self.channels = {}          # (src, dst) key -> channel state
        # bookkeeping
        self.pending = {}           # rank -> op currently parked
        self.finished = set()
        self.results = {}           # shard -> result payload
        self.failure = None
        self.failure_dumps = None
        self.error_pushed = set()   # ranks already sent an error
        # shard supervision (armed by enable_supervision)
        self.checkpoints = None     # shard -> ShardCheckpoint
        self.fired_host = set()     # delivered (rule index, shard)
        self.chaos_events = []      # (shard, kind, rule index, tick)
        self.errored_shards = set() # shards that reported a simulated
                                    # (deterministic) error — never
                                    # respawned
        self.respawns = {}          # shard -> respawns performed
        self.fatal = None           # coordinator-local fatal error

    def enable_supervision(self):
        """Arm per-shard recovery records; called before workers start
        whenever the restart budget allows at least one respawn."""
        self.checkpoints = {
            shard: ShardCheckpoint(shard, self.plan.ranks_of(shard))
            for shard in range(self.plan.jobs)}

    def _checkpoint(self, shard):
        if self.checkpoints is None:
            return None
        return self.checkpoints.get(shard)

    # -- delta log ---------------------------------------------------------

    def append_deltas(self, shard, entries):
        checkpoint = self._checkpoint(shard)
        if checkpoint is None:
            for _rank, addr, value in entries:
                self.log.append((shard, addr, value))
            return
        for rank, addr, value in entries:
            # replayed entries are already in the log: suppress them
            # (and hash-verify the replayed prefix); fresh entries —
            # everything past the rank's recorded cursor — enter live
            if checkpoint.record_delta(rank, addr, value):
                self.log.append((shard, addr, value))

    def _range_for(self, shard):
        vfrom = self.sent_upto[shard]
        vto = self.log_base + len(self.log)
        entries = [(addr, value)
                   for origin, addr, value
                   in self.log[vfrom - self.log_base:]
                   if origin != shard]
        self.sent_upto[shard] = vto
        self._maybe_truncate()
        return (vfrom, vto, entries)

    def _maybe_truncate(self):
        floor = min(self.sent_upto)
        if floor - self.log_base > 65536:
            drop = floor - self.log_base
            del self.log[:drop]
            self.log_base = floor

    # -- replies -----------------------------------------------------------

    def reply(self, rank, result):
        op = self.pending.pop(rank, None)
        shard = self.plan.shard_of[rank]
        batch = self._range_for(shard)
        checkpoint = self._checkpoint(shard)
        if checkpoint is not None:
            # record BEFORE sending: if the worker just died, this
            # reply still happened as far as the sync state machine is
            # concerned, and the respawned shard is served exactly it
            checkpoint.record_reply(rank, op, "ok", result, batch)
        conn = self.conns.get(rank)
        if conn is not None:
            try:
                conn.send(("ok", result, batch))
            except (OSError, ValueError):
                pass  # dead worker; supervision handles the EOF

    def reply_error(self, rank, packed):
        self.pending.pop(rank, None)
        self.error_pushed.add(rank)
        conn = self.conns.get(rank)
        if conn is not None:
            try:
                conn.send(("error", packed, None))
            except (OSError, ValueError):
                pass

    def push_failure(self, packed):
        """First failure wins (a secondary BarrierAborted never
        overrides the originating cause); every rank gets one error
        push — parked ranks consume it as their reply, computing ranks
        at their next tick or RPC."""
        for rank in range(self.num_ues):
            if rank in self.finished or rank in self.error_pushed:
                continue
            try:
                self.reply_error(rank, packed)
            except (OSError, ValueError):
                pass

    def record_failure(self, exc_packed, extra=None):
        if self.failure is None:
            self.failure = exc_packed
            if extra is not None:
                self.failure_dumps = extra
        self.push_failure(self.failure)

    # -- dispatch ----------------------------------------------------------

    def handle_control(self, shard, message):
        kind, _shard, payload, extra = message
        if kind in ("deltas", "tick"):
            try:
                self.append_deltas(shard, payload)
            except Exception as exc:  # noqa: BLE001 - replay diverged
                self.record_failure(_pack_error(exc))
                return
            if kind == "tick":
                self.skew.note_quantum(shard, extra)
                checkpoint = self._checkpoint(shard)
                if checkpoint is not None:
                    checkpoint.note_tick(checkpoint.acked_tick + 1)
        elif kind == "rank_done":
            self.finished.add(payload)
        elif kind == "error":
            self.errored_shards.add(shard)
            self.record_failure(payload, extra)
        elif kind == "result":
            self.results[shard] = payload
        elif kind == "chaos":
            rule_index, tick, fault_kind = payload
            self.fired_host.add((rule_index, shard))
            self.chaos_events.append((shard, fault_kind, rule_index,
                                      tick))

    def handle_request(self, message):
        op = message[0]
        rank = message[1]
        if self.failure is not None:
            self.reply_error(rank, self.failure)
            return
        shard = self.plan.shard_of[rank]
        checkpoint = self._checkpoint(shard)
        if checkpoint is not None and checkpoint.replaying(rank):
            # a respawned shard re-executing its recorded prefix: the
            # live sync state machine already processed this request
            # in the original timeline — serve the recorded reply
            self._serve_replay(checkpoint, rank, op)
            return
        self.pending[rank] = op
        handler = getattr(self, "_op_" + op)
        try:
            handler(rank, *message[2:])
        except Exception as exc:  # noqa: BLE001 - a simulated-program
            # error (unallocated flag, protocol misuse): surface it in
            # the requesting rank exactly as the sequential primitive
            # would have raised it there
            self.reply_error(rank, _pack_error(exc))
        self.skew.note_sync(shard, self._clock_of(op, message))

    def _serve_replay(self, checkpoint, rank, op):
        try:
            _op, status, payload, batch = checkpoint.next_reply(rank,
                                                                op)
        except Exception as exc:  # noqa: BLE001 - replay diverged
            self.record_failure(_pack_error(exc))
            return
        conn = self.conns.get(rank)
        if conn is not None:
            try:
                conn.send((status, payload, batch))
            except (OSError, ValueError):
                pass

    @staticmethod
    def _clock_of(op, message):
        # message = (op, rank, *args); which arg carries the clock
        # depends on the op's wire signature
        if op in ("barrier", "exchange"):
            return message[2]
        if op in ("flag_write", "flag_wait", "send"):
            return message[4]
        if op == "recv":
            return message[3]
        return None

    # barrier + collectives share one round state machine, because the
    # sequential CollectiveArea synchronizes on the world barrier and
    # shares its ``rounds`` counter

    def _op_barrier(self, rank, clock):
        self._barrier_arrive(rank, clock, "barrier", None)

    def _op_exchange(self, rank, clock, values, round_id):
        self.deposits.setdefault(round_id, {})[rank] = values
        self._barrier_arrive(rank, clock, "exchange", round_id)

    def _barrier_arrive(self, rank, clock, kind, extra):
        self.barrier_arrivals[rank] = (clock, kind, extra)
        if len(self.barrier_arrivals) < self.num_ues:
            return
        arrivals = self.barrier_arrivals
        self.barrier_arrivals = {}
        aligned = max(entry[0] for entry in arrivals.values()) \
            + self.barrier_cost
        self.rounds += 1
        for waiter in sorted(arrivals):
            _, waiter_kind, waiter_extra = arrivals[waiter]
            if waiter_kind == "barrier":
                self.reply(waiter, aligned)
            else:
                round_id = waiter_extra
                snapshot = dict(self.deposits.get(round_id, {}))
                readers = self.readers.get(round_id, 0) + 1
                self.readers[round_id] = readers
                if readers == self.num_ues:
                    self.deposits.pop(round_id, None)
                    del self.readers[round_id]
                self.reply(waiter, (snapshot, aligned))

    def _op_lock_contended(self, rank, index):
        self.reply(rank, index in self.lock_owner)

    def _op_lock_acquire(self, rank, index):
        if index not in self.lock_owner:
            self.lock_owner[index] = rank
            self.reply(rank, None)
        else:
            self.lock_waiters.setdefault(index, deque()).append(rank)

    def _op_lock_release(self, rank, index):
        if self.lock_owner.get(index) == rank:
            del self.lock_owner[index]
        self.reply(rank, None)
        waiters = self.lock_waiters.get(index)
        if waiters and index not in self.lock_owner:
            waiter = waiters.popleft()
            self.lock_owner[index] = waiter
            self.reply(waiter, None)

    def _op_flag_alloc(self, rank):
        index = self.flag_sequence.get(rank, 0)
        self.flag_sequence[rank] = index + 1
        if index < len(self.flag_allocations):
            self.reply(rank, self.flag_allocations[index])
            return
        flag_id = self.flag_next_id
        self.flag_next_id += 1
        self.flag_values[flag_id] = 0
        self.flag_clocks[flag_id] = 0
        self.flag_allocations.append(flag_id)
        self.reply(rank, flag_id)

    def _op_flag_free(self, rank, flag_id):
        self.flag_values.pop(flag_id, None)
        self.flag_clocks.pop(flag_id, None)
        self.reply(rank, None)

    def _op_flag_write(self, rank, flag_id, value, clock):
        if flag_id not in self.flag_values:
            raise CommDeadlockError(
                "write to unallocated flag %r" % flag_id)
        self.flag_values[flag_id] = value
        self.flag_clocks[flag_id] = clock
        self.reply(rank, None)
        waiters = self.flag_waiters.get(flag_id)
        if not waiters:
            return
        still = []
        for waiter, wanted, waiter_clock in waiters:
            if wanted == value:
                self.reply(waiter, max(waiter_clock, clock))
            else:
                still.append((waiter, wanted, waiter_clock))
        if still:
            self.flag_waiters[flag_id] = still
        else:
            del self.flag_waiters[flag_id]

    def _op_flag_read(self, rank, flag_id):
        if flag_id not in self.flag_values:
            raise CommDeadlockError(
                "read of unallocated flag %r" % flag_id)
        self.reply(rank, self.flag_values[flag_id])

    def _op_flag_wait(self, rank, flag_id, value, clock):
        if flag_id not in self.flag_values:
            raise CommDeadlockError(
                "wait on unallocated flag %r" % flag_id)
        if self.flag_values[flag_id] == value:
            self.reply(rank, max(clock, self.flag_clocks[flag_id]))
        else:
            self.flag_waiters.setdefault(flag_id, []).append(
                (rank, value, clock))

    def _channel(self, source, dest):
        key = (source, dest)
        state = self.channels.get(key)
        if state is None:
            state = self.channels[key] = {
                "payload": None,       # (sender rank, values, clock)
                "send_queue": deque(), # senders parked behind a payload
                "recv_waiter": None,   # (rank, clock, cost)
            }
        return state

    def _op_send(self, rank, dest, values, posted, seq):
        state = self._channel(rank, dest)
        if state["payload"] is not None:
            state["send_queue"].append((rank, values, posted))
            return
        state["payload"] = (rank, values, posted)
        self._try_rendezvous(state)

    def _op_recv(self, rank, source, clock, transfer_cost):
        state = self._channel(source, rank)
        if state["recv_waiter"] is not None:
            raise CommDeadlockError(
                "two concurrent recvs on one channel")
        state["recv_waiter"] = (rank, clock, transfer_cost)
        self._try_rendezvous(state)

    def _try_rendezvous(self, state):
        if state["payload"] is None or state["recv_waiter"] is None:
            return
        sender, values, sender_clock = state["payload"]
        receiver, recv_clock, cost = state["recv_waiter"]
        state["payload"] = None
        state["recv_waiter"] = None
        done = max(recv_clock, sender_clock) + cost
        # deterministic order: lower rank first
        for waiter in sorted((sender, receiver)):
            if waiter == sender:
                self.reply(sender, done)
            else:
                self.reply(receiver, (values, done))
        if state["send_queue"]:
            next_sender, next_values, next_posted = \
                state["send_queue"].popleft()
            state["payload"] = (next_sender, next_values, next_posted)
            self._try_rendezvous(state)

    # -- supervision -------------------------------------------------------

    # which user-facing sync site an RPC op parks at, for deadlock
    # messages (the satellite contract: name the rank AND the site)
    SYNC_SITE_KINDS = {
        "barrier": "barrier", "exchange": "barrier",
        "lock_contended": "lock", "lock_acquire": "lock",
        "lock_release": "lock",
        "flag_alloc": "flag", "flag_free": "flag",
        "flag_write": "flag", "flag_read": "flag", "flag_wait": "flag",
        "send": "send", "recv": "recv",
    }

    def all_parked(self):
        return (len(self.pending) + len(self.finished)) >= self.num_ues

    def parked_description(self):
        rows = ["rank %d parked at %s sync site"
                % (rank, self.SYNC_SITE_KINDS.get(op, op))
                for rank, op in sorted(self.pending.items())]
        return "; ".join(rows) if rows \
            else "no rank has reached a sync point"

    def rollback_rank(self, rank):
        """Scrub a dead rank's *un-replied* pending request from the
        sync state machine before its shard replays.  Replied requests
        need no rollback: the state machine already transitioned, and
        the recorded reply is served verbatim during replay."""
        op = self.pending.pop(rank, None)
        if op is None:
            return
        if op in ("barrier", "exchange"):
            arrival = self.barrier_arrivals.pop(rank, None)
            if arrival is not None and arrival[1] == "exchange":
                round_id = arrival[2]
                deposits = self.deposits.get(round_id)
                if deposits is not None:
                    deposits.pop(rank, None)
                    if not deposits:
                        self.deposits.pop(round_id, None)
        elif op == "lock_acquire":
            for waiters in self.lock_waiters.values():
                try:
                    waiters.remove(rank)
                except ValueError:
                    pass
        elif op == "flag_wait":
            for flag_id in list(self.flag_waiters):
                remaining = [entry
                             for entry in self.flag_waiters[flag_id]
                             if entry[0] != rank]
                if remaining:
                    self.flag_waiters[flag_id] = remaining
                else:
                    del self.flag_waiters[flag_id]
        elif op == "send":
            for state in self.channels.values():
                payload = state["payload"]
                if payload is not None and payload[0] == rank:
                    queue = state["send_queue"]
                    state["payload"] = queue.popleft() if queue \
                        else None
                elif state["send_queue"]:
                    state["send_queue"] = deque(
                        entry for entry in state["send_queue"]
                        if entry[0] != rank)
        elif op == "recv":
            for state in self.channels.values():
                waiter = state["recv_waiter"]
                if waiter is not None and waiter[0] == rank:
                    state["recv_waiter"] = None


def run_rcce_parallel(source, num_ues, config, chip, core_map,
                      max_steps, engine, jobs, quantum=None,
                      start_method=None, diagnostics=None,
                      wall_timeout=WALL_TIMEOUT_SECONDS,
                      parked_timeout=PARKED_TIMEOUT_SECONDS,
                      heartbeat_timeout=None, shard_restarts=None,
                      chaos=None, watchdog=None):
    """Run an RCCE source program sharded over ``jobs`` worker
    processes.  Returns the same :class:`~repro.sim.runner.RunResult`
    shape as the sequential ``run_rcce`` — cycles, outputs, stats and
    metrics included — byte-identical in cycles and outputs.

    ``source`` must be the program's *source text* (workers re-parse it
    through the shared sha256 memo); the caller (``run_rcce``) already
    downgrades pre-parsed units to the thread backend.

    Shard supervision: each worker is watched through its process
    sentinel (death) and its control-pipe heartbeat (hangs).  A dead
    or stalled worker is respawned up to ``shard_restarts`` times with
    exponential backoff and replayed to its crash point from the
    coordinator's quantum-aligned :class:`ShardCheckpoint`; an
    exhausted budget raises :class:`ShardRestartsExhaustedError` (the
    caller downgrades to the thread backend).  ``chaos`` takes a
    :class:`~repro.faults.HostFaultPlan` or host-fault spec string;
    ``watchdog`` maps a sequential :class:`~repro.sim.watchdog.
    Watchdog`'s lock/barrier timeouts onto the coordinator's
    parked/wall bounds (the coordinator sees every sync wait, so it
    subsumes the per-thread watchdog).
    """
    from repro.sim.runner import RunResult

    if not isinstance(source, str):
        raise TypeError("the process backend needs program source text")
    quantum = quantum or SkewBarrier.DEFAULT_QUANTUM
    plan = ShardPlan(num_ues, jobs)
    world_core_map = list(core_map) if core_map \
        else list(range(num_ues))
    skew = SkewBarrier(plan.jobs, quantum)
    coord = _Coordinator(plan, config, skew)

    if isinstance(chaos, str):
        chaos = HostFaultPlan(chaos)
    if chaos is not None and not chaos.active:
        chaos = None
    if shard_restarts is None:
        shard_restarts = DEFAULT_SHARD_RESTARTS
    if heartbeat_timeout is None:
        heartbeat_timeout = HEARTBEAT_TIMEOUT_SECONDS
    if watchdog is not None:
        # every unfinished rank parked = every rank is inside a sync
        # wait, which is exactly what the sequential watchdog's lock
        # timeout bounds; total silence maps onto its barrier timeout
        parked_timeout = min(parked_timeout, watchdog.lock_timeout)
        wall_timeout = min(wall_timeout, watchdog.barrier_timeout)
    report = RecoveryReport(max_restarts=shard_restarts)
    if shard_restarts > 0:
        coord.enable_supervision()

    method = start_method
    if method is None:
        methods = multiprocessing.get_all_start_methods()
        method = "fork" if "fork" in methods else methods[0]
    ctx = multiprocessing.get_context(method)

    processes = {}        # shard -> live Process (None once reaped)
    all_workers = []      # every process ever spawned, for teardown
    last_control = {}     # shard -> monotonic time of last heartbeat
    conn_shard = {}       # id(control conn) -> shard
    conn_rank = {}        # id(rank conn) -> rank

    def spawn_shard(shard):
        ranks = plan.ranks_of(shard)
        rank_children = {}
        for rank in ranks:
            parent_end, child_end = ctx.Pipe()
            coord.conns[rank] = parent_end
            conn_rank[id(parent_end)] = rank
            rank_children[rank] = child_end
        control_parent, control_child = ctx.Pipe(duplex=False)
        coord.controls[shard] = control_parent
        conn_shard[id(control_parent)] = shard
        plan_for_worker = None
        if chaos is not None:
            # ship the accumulated fired set: a delivered one-shot
            # fault must not re-fire while the respawn replays
            plan_for_worker = HostFaultPlan(
                chaos.rules, fired=chaos.fired | coord.fired_host)
        worker = ctx.Process(
            target=_worker_main,
            args=(shard, ranks, source, num_ues, world_core_map,
                  config, max_steps, engine, quantum, rank_children,
                  control_child, plan_for_worker),
            name="repro-shard%d" % shard, daemon=True)
        worker.start()
        processes[shard] = worker
        all_workers.append(worker)
        # the parent's copies of the child ends must close, or EOF on
        # a dead worker would never surface
        for conn in rank_children.values():
            conn.close()
        control_child.close()
        last_control[shard] = time.monotonic()

    def close_shard_conns(shard):
        control = coord.controls.pop(shard, None)
        if control is not None:
            conn_shard.pop(id(control), None)
            control.close()
        for rank in plan.ranks_of(shard):
            conn = coord.conns.pop(rank, None)
            if conn is not None:
                conn_rank.pop(id(conn), None)
                conn.close()

    def drain_control(shard):
        """Drain buffered control messages; False means the pipe hit
        EOF (worker gone) and the caller decides recover vs. close."""
        control = coord.controls.get(shard)
        while control is not None and control.poll():
            try:
                message = control.recv()
            except (EOFError, OSError):
                return False
            last_control[shard] = time.monotonic()
            coord.handle_control(shard, message)
        return True

    def reap_worker(shard):
        proc = processes.get(shard)
        if proc is not None:
            if proc.is_alive():
                proc.terminate()
            proc.join(timeout=5.0)
        processes[shard] = None

    def shard_runnable(shard):
        """Whether the shard owes the coordinator activity: at least
        one of its ranks is neither finished nor parked at a sync
        point awaiting a reply."""
        return any(rank not in coord.finished
                   and rank not in coord.pending
                   for rank in plan.ranks_of(shard))

    def recover_shard(shard, cause):
        # the control pipe may still hold the worker's last words — a
        # result, a deterministic error, or chaos one-shot notes — and
        # those change the verdict, so drain before classifying
        drain_control(shard)
        reap_worker(shard)
        close_shard_conns(shard)
        if shard in coord.results or shard in coord.errored_shards \
                or coord.failure is not None \
                or coord.fatal is not None:
            return
        checkpoint = coord._checkpoint(shard)
        used = coord.respawns.get(shard, 0)
        if checkpoint is None or used >= shard_restarts:
            report.record_failure(used, cause, shard=shard)
            coord.fatal = ShardRestartsExhaustedError(
                "shard %d %s and the restart budget (%d) is "
                "exhausted"
                % (shard,
                   "worker stalled"
                   if isinstance(cause, WorkerStallError)
                   else "worker died", shard_restarts),
                shard=shard, report=report)
            return
        report.record_failure(used, cause, shard=shard,
                              restored_round=checkpoint.acked_tick)
        # only un-replied pending requests roll back: replied ones
        # already transitioned the sync state machine, and the replay
        # serves their recorded replies verbatim
        for rank in plan.ranks_of(shard):
            coord.rollback_rank(rank)
        time.sleep(min(RESPAWN_BACKOFF_BASE * (2 ** used),
                       RESPAWN_BACKOFF_CAP))
        coord.respawns[shard] = used + 1
        report.restarts += 1
        checkpoint.begin_replay()
        spawn_shard(shard)

    def handle_worker_eof(shard, why):
        if shard in coord.results or shard in coord.errored_shards \
                or coord.failure is not None \
                or coord.fatal is not None:
            reap_worker(shard)
            close_shard_conns(shard)
            return
        recover_shard(shard, WorkerDeathError(why, shard=shard))

    # graceful interrupt: a SIGTERM/SIGINT mid-run sets a flag; the
    # event loop notices within one wait() timeout, and the teardown
    # switches to terminate-first so no worker is orphaned.  Handlers
    # are installable only from the main thread; elsewhere (a nested
    # coordinator on a helper thread) the default delivery applies.
    interrupted = []
    previous_handlers = {}
    if threading.current_thread() is threading.main_thread():
        def _on_interrupt(signum, _frame):
            interrupted.append(signum)
        for signum in (signal.SIGINT, signal.SIGTERM):
            previous_handlers[signum] = signal.signal(signum,
                                                      _on_interrupt)

    for shard in range(plan.jobs):
        spawn_shard(shard)

    try:
        last_activity = time.monotonic()
        parked_since = None
        while len(coord.results) < plan.jobs and \
                coord.failure is None and coord.fatal is None and \
                not interrupted:
            sentinel_shard = {}
            for shard, proc in processes.items():
                if proc is not None and shard not in coord.results:
                    sentinel_shard[proc.sentinel] = shard
            waitable = list(coord.controls.values()) \
                + list(coord.conns.values()) \
                + list(sentinel_shard)
            if not waitable:
                break
            ready = multiprocessing.connection.wait(waitable,
                                                    timeout=0.25)
            if ready:
                last_activity = time.monotonic()
                parked_since = None
            # data first, sentinels last: a worker that finished (or
            # crashed) may have parting messages buffered, and those
            # decide whether its exit is completion or a casualty
            for conn in ready:
                if conn in sentinel_shard:
                    continue
                shard = conn_shard.get(id(conn))
                if shard is not None:
                    if not drain_control(shard):
                        handle_worker_eof(
                            shard,
                            "shard %d worker closed its control "
                            "pipe without reporting a result"
                            % shard)
                    continue
                rank = conn_rank.get(id(conn))
                if rank is None:
                    continue  # shard already recovered this round
                shard = coord.plan.shard_of[rank]
                # the rank's dirty writes travel on its worker's
                # control pipe and were sent first; log them before
                # computing any reply this request triggers
                drain_control(shard)
                if coord.conns.get(rank) is not conn:
                    continue
                try:
                    message = conn.recv()
                except (EOFError, OSError):
                    handle_worker_eof(
                        shard,
                        "shard %d worker died without reporting a "
                        "result (EOF on rank %d)" % (shard, rank))
                    continue
                coord.handle_request(message)
            for sentinel in ready:
                shard = sentinel_shard.get(sentinel)
                if shard is None:
                    continue
                proc = processes.get(shard)
                if proc is None or proc.is_alive():
                    continue  # already handled, or spurious wakeup
                handle_worker_eof(
                    shard,
                    "shard %d worker process exited with code %s "
                    "before reporting a result"
                    % (shard, proc.exitcode))
            if not ready:
                now = time.monotonic()
                if coord.failure is None and coord.fatal is None:
                    for shard in list(coord.controls):
                        if shard in coord.results \
                                or shard in coord.errored_shards:
                            continue
                        quiet = now - last_control.get(shard, now)
                        if quiet > heartbeat_timeout \
                                and shard_runnable(shard):
                            recover_shard(shard, WorkerStallError(
                                "shard %d made no quantum progress "
                                "for %.1fs (heartbeat timeout %gs)"
                                % (shard, quiet, heartbeat_timeout),
                                shard=shard))
                if coord.all_parked() and \
                        len(coord.finished) < num_ues:
                    if parked_since is None:
                        parked_since = now
                    elif now - parked_since > parked_timeout:
                        coord.record_failure(_pack_error(
                            CommDeadlockError(
                                "simulated program deadlocked: %s"
                                % coord.parked_description())))
                elif now - last_activity > wall_timeout:
                    coord.record_failure(_pack_error(
                        ParallelRunError(
                            "no worker activity for %gs (%s)"
                            % (wall_timeout,
                               coord.parked_description()))))
        # drain any result/error messages still in flight
        deadline = time.monotonic() + 5.0
        while coord.failure is None and coord.fatal is None and \
                not interrupted and \
                len(coord.results) < plan.jobs and \
                time.monotonic() < deadline:
            for shard in list(coord.controls):
                drain_control(shard)
            time.sleep(0.01)
    finally:
        if interrupted:
            # terminate-first: an interrupted run's workers are not
            # going to finish, so a 5s join per worker would only
            # stretch the operator's Ctrl-C
            for worker in all_workers:
                if worker.is_alive():
                    worker.terminate()
        for worker in all_workers:
            worker.join(timeout=5.0)
        for worker in all_workers:
            if worker.is_alive():
                worker.terminate()
                worker.join(timeout=5.0)
        for conn in coord.conns.values():
            conn.close()
        for conn in coord.controls.values():
            conn.close()
        for signum, handler in previous_handlers.items():
            signal.signal(signum, handler)

    if interrupted:
        raise ParallelInterrupted(interrupted[0], len(all_workers))
    if coord.fatal is not None:
        raise coord.fatal
    if coord.failure is not None:
        exc = _unpack_error(coord.failure)
        if isinstance(exc, StepLimitExceeded) and \
                not isinstance(exc, SimulationTimeout):
            dumps = (coord.failure_dumps or (None, None))[0]
            exc = SimulationTimeout(str(exc), dumps or [])
        elif isinstance(exc, (WatchdogError, SimulationTimeout)) and \
                not getattr(exc, "dumps", None):
            dumps = (coord.failure_dumps or (None, None))[0]
            if dumps:
                exc.dumps = dumps
        raise exc
    if len(coord.results) < plan.jobs:
        raise ParallelRunError(
            "only %d of %d workers reported results"
            % (len(coord.results), plan.jobs))

    # -- merge: one parent-side snapshot, structurally identical to the
    # sequential runner's -------------------------------------------------
    chip.metrics.reset()
    per_rank = {}
    for shard in sorted(coord.results):
        payload = coord.results[shard]
        chip.merge_counter_state(payload["chip"])
        per_rank.update(payload["ranks"])
    if len(per_rank) != num_ues:
        raise ParallelRunError(
            "workers reported %d of %d ranks" % (len(per_rank),
                                                 num_ues))

    world = RCCEWorld(chip, num_ues, world_core_map, watchdog=None)
    world.barrier.rounds = coord.rounds
    for shard in sorted(coord.results):
        state = coord.results[shard]["world"]
        world.messages_sent += state["messages_sent"]
        world.put_bytes += state["put_bytes"]
        world.get_bytes += state["get_bytes"]
        world.send_bytes += state["send_bytes"]
        world.lock_contentions += state["lock_contentions"]
        world.mpb_fallbacks += state["mpb_fallbacks"]
        for index, count in enumerate(state["acquisitions"]):
            world.registers.acquisitions[index] += count
    for shard in sorted(coord.results):
        for sample in coord.results[shard]["barrier_wait"]:
            world.barrier_wait.observe(sample)

    def collect_interpreters(_rows=per_rank):
        samples = []
        for rank in sorted(_rows):
            row = _rows[rank]
            labels = {"core": row["core"]}
            samples.append(("counter", "sim_steps", labels,
                            row["steps"]))
            samples.append(("counter", "sim_cycles", labels,
                            row["cycles"]))
        return samples

    chip.metrics.register_collector("sim.interpreters",
                                    collect_interpreters)

    chip.metrics.register_collector(
        "sim.parallel",
        parallel_collector(skew, plan.jobs, respawns=coord.respawns))
    metrics = chip.metrics.snapshot()

    per_core = {row["core"]: row["cycles"]
                for row in per_rank.values()}
    total = max(per_core.values())
    outputs = []
    for core in sorted(per_core):
        rank = next(r for r, row in per_rank.items()
                    if row["core"] == core)
        outputs.extend(per_rank[rank]["output"])

    extra = {"start_method": method}
    if coord.respawns:
        extra["shard_respawns"] = dict(coord.respawns)
    if coord.chaos_events:
        extra["chaos_events"] = [
            {"shard": shard, "kind": kind, "rule": rule_index,
             "tick": tick}
            for shard, kind, rule_index, tick in coord.chaos_events]
    if report.failures:
        report.recovered = True
        merged = list(diagnostics) if diagnostics else []
        merged.extend(report.diagnostics())
        diagnostics = merged

    result = RunResult(
        total, config, outputs,
        per_core_cycles=per_core,
        stats={
            "num_ues": num_ues,
            "barrier_rounds": coord.rounds,
            "mpb_fallbacks": world.mpb_fallbacks,
            "controllers": {index: (stats.reads, stats.writes)
                            for index, stats
                            in chip.controller_stats().items()},
            "parallel": parallel_stats("process", skew, plan.jobs,
                                       **extra),
        },
        metrics=metrics,
        diagnostics=diagnostics)
    if report.failures:
        result.recovery = report
    return result
