"""Tree-walking C interpreter with cycle accounting.

Every arithmetic operation is charged from :data:`OP_COSTS` (P54C-class
latencies: integer divide ≫ multiply > add; FDIV ≈ 39 cycles) and every
memory access is priced by the :class:`~repro.scc.SCCChip` timing model,
so runtimes reflect where data lives — private cacheable DRAM, shared
uncacheable DRAM, or on-die MPB.
"""

import math

from repro.cfront import c_ast, ctypes
from repro.sim import builtins as sim_builtins
from repro.sim.machine import StackAllocator
from repro.sim.values import (
    NULL,
    FunctionRef,
    Pointer,
    coerce,
    default_value,
    pointer_for,
)

# P54C-flavoured operation latencies, in core cycles.
OP_COSTS = {
    "int_alu": 1,       # add/sub/logic/shift/compare
    "int_mul": 9,
    "int_div": 41,
    "float_alu": 3,     # FADD/FSUB
    "float_mul": 3,
    "float_div": 39,    # the famous P5 FDIV latency class
    "branch": 1,
    "call": 10,
    "cast": 1,
}

_INT_DIV_OPS = {"/", "%"}
_MUL_OPS = {"*"}


class InterpreterError(Exception):
    """Runtime error inside the simulated program."""


class StepLimitExceeded(InterpreterError):
    """The program exceeded its instruction budget (likely an infinite
    loop, or a workload too large for simulation)."""


class _Return(Exception):
    def __init__(self, value):
        self.value = value


class _Break(Exception):
    pass


class _Continue(Exception):
    pass


class ThreadExit(Exception):
    """pthread_exit from inside a simulated thread."""

    def __init__(self, value=None):
        self.value = value


# Stack size reserved per core inside its private window.
STACK_BYTES = 1024 * 1024

# Interpreter steps per traced "retire_batch" span (power of two: the
# batch check is a single mask on the hot path).
RETIRE_BATCH = 4096


class Interpreter:
    """Executes one simulated core's view of a program."""

    def __init__(self, unit, chip, core_id=0, memory=None, runtime=None,
                 max_steps=200_000_000, tracer=None, engine="compiled"):
        self.unit = unit
        self.chip = chip
        self.core_id = core_id
        self.tracer = tracer
        if memory is None:
            from repro.sim.machine import Memory
            memory = Memory()
        self.memory = memory
        self.runtime = runtime
        self.max_steps = max_steps

        self.cycles = 0
        self.steps = 0
        self._batch_start_cycles = 0
        self.output = []
        self.functions = {f.name: f for f in unit.functions()}
        self.globals_env = {}
        self.scopes = []
        self.current_function = None
        self._rand_state = 12345 + core_id  # deterministic per core

        # fast-path state shared by both engines (the compiled engine's
        # closures reach these attributes directly)
        self._mem_get = memory.get
        self._mem_set = memory.put
        self._global_addr = {}
        self._site_cache = {}   # site id -> (epoch, lo, hi, cost fn)
        self.site_fills = 0     # inline-cache misses (diagnostics)
        # fault injection (repro.faults): the chip-attached injector,
        # or None — in which case the read/tick hooks are dead branches
        faults = getattr(chip, "faults", None)
        self._faults = faults if faults is not None and faults.active \
            else None
        # ECC scrubbing (repro.recovery.ecc) only matters when a read
        # can actually be flipped, so it rides the fault gate
        self._ecc = getattr(chip, "ecc", None) \
            if self._faults is not None else None
        # race detection (repro.race): the chip-attached detector, or
        # None — in which case every hook is a dead branch and cycles,
        # output, and traces are byte-identical to an unaudited run
        self._race = getattr(chip, "race", None)
        # cycle attribution (repro.obs.attribution): same contract.
        # The load/store hot path carries NO per-op hook — memory-op
        # counts come from the chip's own per-core access counters,
        # which both engines already maintain identically
        self._attr = getattr(chip, "attribution", None)
        # lax clock sync (repro.sim.parallel): a quantum hook fires at
        # the next retire-batch boundary after ``cycles`` crosses
        # ``_quantum_deadline``; None costs one attribute check per
        # RETIRE_BATCH steps, keeping un-sharded runs byte-identical
        self._quantum_hook = None
        self._quantum_deadline = 0

        stack_segment = chip.address_space.alloc_private(
            core_id, STACK_BYTES, "stack-core%d" % core_id)
        self.stack = StackAllocator(stack_segment.base, STACK_BYTES)

        self.builtins = sim_builtins.default_builtins()
        if runtime is not None:
            self.builtins.update(runtime.builtins())

        self.load_globals()

        if engine == "compiled":
            from repro.sim import compile as sim_compile
            self._compiled = sim_compile.compile_unit(unit)
            self._invoke = sim_compile.invoke
            chip.register_site_cache_holder(self)
            # Builtins evaluate their arguments through eval_expr; in
            # compiled mode those arguments arrive as pre-compiled
            # BoundArg thunks, while tree-fallback function bodies
            # still pass raw AST nodes.  An instance-level override
            # routes each to the right evaluator.
            tree_eval = Interpreter.eval_expr
            bound_arg = sim_compile.BoundArg

            def eval_expr(node, _self=self, _thunk=bound_arg,
                          _tree=tree_eval):
                if node.__class__ is _thunk:
                    return node.fn(node.I, node.F)
                return _tree(_self, node)
            self.eval_expr = eval_expr
        elif engine == "tree":
            self._compiled = None
            self._invoke = None
        else:
            raise ValueError("unknown engine %r (use 'compiled' or"
                             " 'tree')" % engine)
        self.engine = engine

    # -- setup --------------------------------------------------------------

    def load_globals(self):
        """Allocate and statically initialize file-scope variables in
        this core's private window (shared data only becomes shared via
        the explicit RCCE allocations the translator inserted)."""
        for decl in self.unit.global_decls():
            if decl.is_typedef:
                continue
            size = max(decl.ctype.sizeof(), 4)
            segment = self.chip.address_space.alloc_private(
                self.core_id, size, decl.name)
            self.globals_env[decl.name] = (segment.base, decl.ctype)
            self._global_addr[decl.name] = segment.base
            if self.tracer is not None:
                self.tracer.register(decl.name, segment.base, size,
                                     "global")
            if self._race is not None:
                self._race.register(decl.name, segment.base, size,
                                    "global")
            self._static_init(segment.base, decl.ctype, decl.init)

    def _static_init(self, addr, ctype, init):
        """Static initialization: free of cycle charges, zero default."""
        if isinstance(ctype, ctypes.ArrayType):
            element = ctype.base
            stride = element.sizeof() or 4
            length = ctype.length or 0
            values = []
            if isinstance(init, c_ast.InitList):
                values = [self._const_expr(e) for e in init.exprs]
            for index in range(length):
                if index < len(values):
                    value = coerce(element, values[index])
                else:
                    value = (coerce(element, values[-1])
                             if values and len(values) == 1 and length > 1
                             and isinstance(init, c_ast.InitList)
                             and len(init.exprs) == 1
                             else default_value(element))
                self.memory.store(addr + index * stride, value)
            return
        if init is None:
            self.memory.store(addr, default_value(ctype))
        else:
            self.memory.store(addr, coerce(ctype, self._const_expr(init)))

    def _const_expr(self, expr):
        """Evaluate a constant initializer without charging cycles."""
        if isinstance(expr, c_ast.Constant):
            return expr.value
        if isinstance(expr, c_ast.UnaryOp) and expr.op == "-":
            return -self._const_expr(expr.operand)
        if isinstance(expr, c_ast.StringLiteral):
            return expr.value
        if isinstance(expr, c_ast.Cast):
            return coerce(expr.ctype, self._const_expr(expr.expr))
        if isinstance(expr, c_ast.SizeofType):
            return expr.ctype.sizeof()
        if isinstance(expr, c_ast.BinaryOp):
            left = self._const_expr(expr.left)
            right = self._const_expr(expr.right)
            return self._apply_binop(expr.op, left, right, charge=False)
        raise InterpreterError(
            "unsupported constant initializer: %r" % expr)

    # -- cycle accounting helpers ------------------------------------------------

    def charge(self, cycles):
        self.cycles += cycles

    def charge_op(self, kind):
        self.cycles += OP_COSTS[kind]

    def load(self, addr, ctype=None):
        self.cycles += self.chip.access_cost(self.core_id, addr, "read",
                                             4, self.cycles)
        if self.tracer is not None:
            self.tracer.record(self, addr, "read")
        if self._race is not None:
            self._race.record(self, addr, "read")
        value = self.memory.load(addr)
        if self._faults is not None:
            raw = value
            value = self._faults.filter_load(self, addr, value)
            if self._ecc is not None and value is not raw:
                value = self._ecc.scrub(self, addr, value, raw)
        if ctype is not None and isinstance(value, int) and \
                isinstance(ctype, ctypes.PrimitiveType) and \
                ctype.is_floating:
            return float(value)
        return value

    def store(self, addr, value, ctype=None):
        self.cycles += self.chip.access_cost(self.core_id, addr,
                                             "write", 4, self.cycles)
        if self.tracer is not None:
            self.tracer.record(self, addr, "write")
        if self._race is not None:
            self._race.record(self, addr, "write")
        if ctype is not None:
            value = coerce(ctype, value)
        self.memory.store(addr, value)
        return value

    def _step(self):
        self.steps += 1
        if self.steps > self.max_steps:
            raise StepLimitExceeded(
                "exceeded %d interpreter steps on core %d"
                % (self.max_steps, self.core_id))
        if self._faults is not None and not self.steps & 255:
            # scheduled core stalls/crashes, checked every 256 steps
            # (fault runs always use this tree-walking engine)
            self._faults.core_tick(self)
        if not self.steps & (RETIRE_BATCH - 1):
            self._batch_tick()

    def _batch_tick(self):
        """Flush one retire batch: cycles accumulated locally since the
        last batch boundary become a traced "retire_batch" span.  Both
        engines hit this every RETIRE_BATCH steps (the compiled
        engine's closures inline the mask check and call here).  The
        parallel backend's quantum checkpoint also anchors here: the
        hook publishes this core's clock (never blocking) and returns
        the next quantum deadline."""
        hook = self._quantum_hook
        if hook is not None and self.cycles >= self._quantum_deadline:
            self._quantum_deadline = hook(self)
        events = self.chip.events
        if events.enabled:
            events.complete(
                self.core_id, self._batch_start_cycles,
                self.cycles - self._batch_start_cycles,
                "retire_batch", "cpu", {"steps": RETIRE_BATCH},
                pid=self.chip.trace_pid)
            self._batch_start_cycles = self.cycles

    def _fill_site(self, site, addr):
        """Inline-cache miss: rebuild one load/store site's entry from
        the chip.  Entries carry no version stamp — the chip clears the
        whole ``_site_cache`` dict when address translation changes
        (see ``SCCChip._bump_mem_epoch``), so presence means valid."""
        entry = self.chip.access_fastpath(self.core_id, addr)
        self._site_cache[site] = entry
        self.site_fills += 1
        return entry

    # -- variable binding -----------------------------------------------------------

    def bind_local(self, name, ctype):
        size = max(ctype.sizeof(), 4)
        addr = self.stack.alloc(size)
        self.scopes[-1][name] = (addr, ctype)
        if self.tracer is not None:
            self.tracer.register(name, addr, size, "local",
                                 self.current_function)
        if self._race is not None:
            self._race.register(name, addr, size, "local",
                                self.current_function)
        return addr

    def lookup(self, name):
        for scope in reversed(self.scopes):
            if name in scope:
                return scope[name]
        if name in self.globals_env:
            return self.globals_env[name]
        return None

    # -- function execution -----------------------------------------------------------

    def call_function(self, name, args=()):
        """Call a user-defined function by name with Python values."""
        if self._compiled is not None:
            cf = self._compiled.functions.get(name)
            if cf is None:
                raise InterpreterError("undefined function %r" % name)
            return self._invoke(self, cf, args)
        return self._call_function_tree(name, args)

    def _call_function_tree(self, name, args=()):
        """The tree-walking call path (also the fallback the compiled
        engine uses for functions it could not lower)."""
        func = self.functions.get(name)
        if func is None:
            raise InterpreterError("undefined function %r" % name)
        self.charge_op("call")
        saved_scopes = self.scopes
        saved_function = self.current_function
        self.scopes = [{}]
        self.current_function = name
        try:
            with self.stack.frame():
                for param, value in zip(func.params, args):
                    if param.name is None:
                        continue
                    addr = self.bind_local(param.name, param.ctype)
                    self.memory.store(addr, coerce(param.ctype, value))
                try:
                    self.exec_stmt(func.body)
                except _Return as ret:
                    return coerce(func.return_type, ret.value) \
                        if ret.value is not None else None
                return None
        finally:
            self.scopes = saved_scopes
            self.current_function = saved_function

    def run_main(self, argv=()):
        """Run main / RCCE_APP; returns its exit value."""
        for entry in ("RCCE_APP", "main"):
            if entry in self.functions:
                func = self.functions[entry]
                args = []
                if len(func.params) >= 2:
                    args = [len(argv) + 1, NULL]
                return self.call_function(entry, args)
        raise InterpreterError("program has no main or RCCE_APP")

    # -- statements ----------------------------------------------------------------------

    def exec_stmt(self, stmt):
        self._step()
        method = self._STMT_DISPATCH.get(type(stmt))
        if method is None:
            raise InterpreterError("cannot execute %s"
                                   % type(stmt).__name__)
        method(self, stmt)

    def _exec_compound(self, stmt):
        self.scopes.append({})
        try:
            for item in stmt.items:
                self.exec_stmt(item)
        finally:
            self.scopes.pop()

    def _exec_declstmt(self, stmt):
        for decl in stmt.decls:
            if decl.is_typedef:
                continue
            addr = self.bind_local(decl.name, decl.ctype)
            if isinstance(decl.ctype, ctypes.ArrayType):
                if isinstance(decl.init, c_ast.InitList):
                    element = decl.ctype.base
                    stride = element.sizeof() or 4
                    values = [self.eval_expr(e) for e in decl.init.exprs]
                    length = decl.ctype.length or len(values)
                    for index in range(length):
                        value = (values[index] if index < len(values)
                                 else default_value(element))
                        self.store(addr + index * stride, value, element)
            elif decl.init is not None:
                value = self.eval_expr(decl.init)
                self.store(addr, value, decl.ctype)

    def _exec_exprstmt(self, stmt):
        self.eval_expr(stmt.expr)

    def _exec_if(self, stmt):
        self.charge_op("branch")
        if self._truthy(self.eval_expr(stmt.cond)):
            self.exec_stmt(stmt.then)
        elif stmt.els is not None:
            self.exec_stmt(stmt.els)

    def _exec_while(self, stmt):
        while True:
            self._step()
            self.charge_op("branch")
            if not self._truthy(self.eval_expr(stmt.cond)):
                break
            try:
                self.exec_stmt(stmt.body)
            except _Break:
                break
            except _Continue:
                continue

    def _exec_dowhile(self, stmt):
        while True:
            self._step()
            try:
                self.exec_stmt(stmt.body)
            except _Break:
                break
            except _Continue:
                pass
            self.charge_op("branch")
            if not self._truthy(self.eval_expr(stmt.cond)):
                break

    def _exec_for(self, stmt):
        self.scopes.append({})
        try:
            if stmt.init is not None:
                self.exec_stmt(stmt.init)
            while True:
                self._step()
                if stmt.cond is not None:
                    self.charge_op("branch")
                    if not self._truthy(self.eval_expr(stmt.cond)):
                        break
                try:
                    self.exec_stmt(stmt.body)
                except _Break:
                    break
                except _Continue:
                    pass
                if stmt.step is not None:
                    self.eval_expr(stmt.step)
        finally:
            self.scopes.pop()

    def _exec_return(self, stmt):
        value = self.eval_expr(stmt.expr) if stmt.expr is not None else None
        raise _Return(value)

    def _exec_break(self, stmt):
        raise _Break()

    def _exec_continue(self, stmt):
        raise _Continue()

    def _exec_empty(self, stmt):
        pass

    def _exec_switch(self, stmt):
        self.charge_op("branch")
        value = self.eval_expr(stmt.cond)
        matched = False
        try:
            for item in stmt.body.items:
                if not matched:
                    if isinstance(item, c_ast.Case):
                        if self._const_expr(item.expr) == value:
                            matched = True
                    elif isinstance(item, c_ast.Default):
                        matched = True
                if matched:
                    for inner in item.stmts:
                        self.exec_stmt(inner)
        except _Break:
            pass

    def _exec_label(self, stmt):
        self.exec_stmt(stmt.stmt)

    def _exec_goto(self, stmt):
        raise InterpreterError("goto is not supported by the simulator")

    def _exec_structdecl(self, stmt):
        pass

    _STMT_DISPATCH = {}

    # -- expressions ------------------------------------------------------------------------

    def eval_expr(self, expr):
        self._step()
        method = self._EXPR_DISPATCH.get(type(expr))
        if method is None:
            raise InterpreterError("cannot evaluate %s"
                                   % type(expr).__name__)
        return method(self, expr)

    # Environment constants declared by the modelled headers.
    ENV_CONSTANTS = {
        "NULL": NULL,
        "RCCE_COMM_WORLD": 0,
        "RCCE_SUCCESS": 0,
        "PTHREAD_MUTEX_INITIALIZER": 0,
        "stdout": 1,
        "stderr": 2,
        "RAND_MAX": (1 << 31) - 1,
        # RCCE reduction ops and element types
        "RCCE_SUM": 0,
        "RCCE_MAX": 1,
        "RCCE_MIN": 2,
        "RCCE_PROD": 3,
        "RCCE_INT": 0,
        "RCCE_DOUBLE": 1,
        "RCCE_FLAG_SET": 1,
        "RCCE_FLAG_UNSET": 0,
    }

    def _eval_id(self, expr):
        binding = self.lookup(expr.name)
        if binding is None:
            if expr.name in self.functions or expr.name in self.builtins:
                return FunctionRef(expr.name)
            if expr.name in self.ENV_CONSTANTS:
                return self.ENV_CONSTANTS[expr.name]
            raise InterpreterError("undefined identifier %r" % expr.name)
        addr, ctype = binding
        if isinstance(ctype, ctypes.ArrayType):
            return pointer_for(ctype, addr)  # array decay, no load
        return self.load(addr, ctype)

    def _eval_constant(self, expr):
        return expr.value

    def _eval_string(self, expr):
        return expr.value

    def _eval_binop(self, expr):
        op = expr.op
        if op == "&&":
            self.charge_op("branch")
            if not self._truthy(self.eval_expr(expr.left)):
                return 0
            return 1 if self._truthy(self.eval_expr(expr.right)) else 0
        if op == "||":
            self.charge_op("branch")
            if self._truthy(self.eval_expr(expr.left)):
                return 1
            return 1 if self._truthy(self.eval_expr(expr.right)) else 0
        left = self.eval_expr(expr.left)
        right = self.eval_expr(expr.right)
        return self._apply_binop(op, left, right, charge=True)

    def _apply_binop(self, op, left, right, charge=True):
        # pointer arithmetic
        if isinstance(left, Pointer) or isinstance(right, Pointer):
            return self._pointer_binop(op, left, right, charge)
        is_float = isinstance(left, float) or isinstance(right, float)
        if charge:
            if op in _INT_DIV_OPS:
                self.charge_op("float_div" if is_float else "int_div")
            elif op in _MUL_OPS:
                self.charge_op("float_mul" if is_float else "int_mul")
            elif is_float:
                self.charge_op("float_alu")
            else:
                self.charge_op("int_alu")
        if op == "+":
            return left + right
        if op == "-":
            return left - right
        if op == "*":
            return left * right
        if op == "/":
            if right == 0:
                raise InterpreterError("division by zero")
            if is_float:
                return left / right
            quotient = abs(left) // abs(right)
            return quotient if (left < 0) == (right < 0) else -quotient
        if op == "%":
            if right == 0:
                raise InterpreterError("modulo by zero")
            if is_float:
                return math.fmod(left, right)
            remainder = abs(left) % abs(right)
            return remainder if left >= 0 else -remainder
        if op == "<":
            return 1 if left < right else 0
        if op == ">":
            return 1 if left > right else 0
        if op == "<=":
            return 1 if left <= right else 0
        if op == ">=":
            return 1 if left >= right else 0
        if op == "==":
            return 1 if left == right else 0
        if op == "!=":
            return 1 if left != right else 0
        if op == "&":
            return int(left) & int(right)
        if op == "|":
            return int(left) | int(right)
        if op == "^":
            return int(left) ^ int(right)
        if op == "<<":
            return int(left) << int(right)
        if op == ">>":
            return int(left) >> int(right)
        raise InterpreterError("unsupported binary operator %r" % op)

    def _pointer_binop(self, op, left, right, charge):
        if charge:
            self.charge_op("int_alu")
        if op == "+":
            if isinstance(left, Pointer):
                return left.offset(int(right))
            return right.offset(int(left))
        if op == "-":
            if isinstance(left, Pointer) and isinstance(right, Pointer):
                return (left.addr - right.addr) // left.stride
            if isinstance(left, Pointer):
                return left.offset(-int(right))
            raise InterpreterError("cannot subtract pointer from int")
        left_key = left.addr if isinstance(left, Pointer) else left
        right_key = right.addr if isinstance(right, Pointer) else right
        comparisons = {
            "==": left_key == right_key, "!=": left_key != right_key,
            "<": left_key < right_key, ">": left_key > right_key,
            "<=": left_key <= right_key, ">=": left_key >= right_key,
        }
        if op in comparisons:
            return 1 if comparisons[op] else 0
        raise InterpreterError("unsupported pointer operator %r" % op)

    def _eval_unaryop(self, expr):
        op = expr.op
        if op == "&":
            if isinstance(expr.operand, c_ast.Id) and \
                    self.lookup(expr.operand.name) is None:
                if expr.operand.name in self.functions:
                    return FunctionRef(expr.operand.name)
                if expr.operand.name in self.ENV_CONSTANTS:
                    return NULL  # e.g. &RCCE_COMM_WORLD: an opaque handle
            addr, ctype = self.resolve_lvalue(expr.operand)
            stride = ctype.sizeof() or 4
            return Pointer(addr, stride, ctype)
        if op == "*":
            pointer = self.eval_expr(expr.operand)
            if not isinstance(pointer, Pointer):
                raise InterpreterError("dereference of non-pointer")
            if pointer.addr == 0:
                raise InterpreterError("NULL pointer dereference")
            return self.load(pointer.addr, pointer.pointee)
        if op in ("++", "--", "p++", "p--"):
            addr, ctype = self.resolve_lvalue(expr.operand)
            old = self.load(addr, ctype)
            delta = 1 if "+" in op else -1
            self.charge_op("int_alu")
            if isinstance(old, Pointer):
                new = old.offset(delta)
            else:
                new = old + delta
            self.store(addr, new, ctype)
            return old if op.startswith("p") else new
        if op == "sizeof":
            return self._sizeof_expr(expr.operand)
        value = self.eval_expr(expr.operand)
        self.charge_op("int_alu")
        if op == "-":
            return -value
        if op == "+":
            return value
        if op == "!":
            return 0 if self._truthy(value) else 1
        if op == "~":
            return ~int(value)
        raise InterpreterError("unsupported unary operator %r" % op)

    def _sizeof_expr(self, operand):
        if isinstance(operand, c_ast.Id):
            binding = self.lookup(operand.name)
            if binding is not None:
                return binding[1].sizeof() or 4
        return 4

    def _eval_assignment(self, expr):
        addr, ctype = self.resolve_lvalue(expr.lvalue)
        if expr.op == "=":
            value = self.eval_expr(expr.rvalue)
        else:
            old = self.load(addr, ctype)
            rhs = self.eval_expr(expr.rvalue)
            value = self._apply_binop(expr.op[:-1], old, rhs, charge=True)
        return self.store(addr, value, ctype)

    def _eval_ternary(self, expr):
        self.charge_op("branch")
        if self._truthy(self.eval_expr(expr.cond)):
            return self.eval_expr(expr.then)
        return self.eval_expr(expr.els)

    def _eval_funccall(self, expr):
        name = expr.callee_name
        if name is None:
            target = self.eval_expr(expr.func)
            if isinstance(target, FunctionRef):
                name = target.name
            else:
                raise InterpreterError("call through non-function value")
        if name not in self.functions and name not in self.builtins:
            # maybe a variable holding a function pointer
            binding = self.lookup(name)
            if binding is not None:
                value = self.load(binding[0], binding[1])
                if isinstance(value, FunctionRef):
                    name = value.name
        if name in self.functions:
            args = [self.eval_expr(arg) for arg in expr.args]
            return self.call_function(name, args)
        builtin = self.builtins.get(name)
        if builtin is None:
            raise InterpreterError("call to unknown function %r" % name)
        return builtin(self, expr.args)

    def _eval_arrayref(self, expr):
        addr, ctype = self.resolve_lvalue(expr)
        if isinstance(ctype, ctypes.ArrayType):
            return pointer_for(ctype, addr)  # row of a 2-D array decays
        return self.load(addr, ctype)

    def _eval_memberref(self, expr):
        addr, ctype = self.resolve_lvalue(expr)
        if isinstance(ctype, ctypes.ArrayType):
            return pointer_for(ctype, addr)
        return self.load(addr, ctype)

    def _eval_cast(self, expr):
        value = self.eval_expr(expr.expr)
        self.charge_op("cast")
        return coerce(expr.ctype, value)

    def _eval_sizeoftype(self, expr):
        return expr.ctype.sizeof()

    def _eval_comma(self, expr):
        value = None
        for item in expr.exprs:
            value = self.eval_expr(item)
        return value

    _EXPR_DISPATCH = {}

    # -- lvalue resolution ----------------------------------------------------------------------

    def resolve_lvalue(self, expr):
        """Return (address, ctype) for an assignable expression."""
        if isinstance(expr, c_ast.Id):
            binding = self.lookup(expr.name)
            if binding is None:
                raise InterpreterError("undefined identifier %r"
                                       % expr.name)
            return binding
        if isinstance(expr, c_ast.UnaryOp) and expr.op == "*":
            pointer = self.eval_expr(expr.operand)
            if not isinstance(pointer, Pointer):
                raise InterpreterError("dereference of non-pointer")
            pointee = pointer.pointee or ctypes.INT
            return pointer.addr, pointee
        if isinstance(expr, c_ast.ArrayRef):
            base = self.eval_expr(expr.base)
            index = self.eval_expr(expr.index)
            if not isinstance(base, Pointer):
                raise InterpreterError("subscript of non-pointer")
            self.charge_op("int_alu")  # address computation
            element = base.pointee or ctypes.INT
            addr = base.addr + int(index) * base.stride
            return addr, element
        if isinstance(expr, c_ast.MemberRef):
            if expr.arrow:
                base_ptr = self.eval_expr(expr.base)
                if not isinstance(base_ptr, Pointer):
                    raise InterpreterError("-> on non-pointer")
                struct = base_ptr.pointee
                base_addr = base_ptr.addr
            else:
                base_addr, struct = self.resolve_lvalue(expr.base)
            struct = ctypes.strip_arrays(struct)
            if not isinstance(struct, ctypes.StructType):
                raise InterpreterError("member access on non-struct")
            offset = struct.field_offset(expr.member)
            return base_addr + offset, struct.field_type(expr.member)
        if isinstance(expr, c_ast.Cast):
            return self.resolve_lvalue(expr.expr)
        raise InterpreterError("expression is not an lvalue: %s"
                               % type(expr).__name__)

    # -- misc ----------------------------------------------------------------------------------------

    @staticmethod
    def _truthy(value):
        if isinstance(value, Pointer):
            return value.addr != 0
        return bool(value)

    def rand(self):
        """Deterministic LCG (glibc constants)."""
        self._rand_state = (self._rand_state * 1103515245 + 12345) \
            % (1 << 31)
        return self._rand_state

    def write_output(self, text):
        self.output.append(text)


Interpreter._STMT_DISPATCH = {
    c_ast.Compound: Interpreter._exec_compound,
    c_ast.DeclStmt: Interpreter._exec_declstmt,
    c_ast.ExprStmt: Interpreter._exec_exprstmt,
    c_ast.If: Interpreter._exec_if,
    c_ast.While: Interpreter._exec_while,
    c_ast.DoWhile: Interpreter._exec_dowhile,
    c_ast.For: Interpreter._exec_for,
    c_ast.Return: Interpreter._exec_return,
    c_ast.Break: Interpreter._exec_break,
    c_ast.Continue: Interpreter._exec_continue,
    c_ast.EmptyStmt: Interpreter._exec_empty,
    c_ast.Switch: Interpreter._exec_switch,
    c_ast.Label: Interpreter._exec_label,
    c_ast.Goto: Interpreter._exec_goto,
    c_ast.StructDecl: Interpreter._exec_structdecl,
}

Interpreter._EXPR_DISPATCH = {
    c_ast.Id: Interpreter._eval_id,
    c_ast.Constant: Interpreter._eval_constant,
    c_ast.StringLiteral: Interpreter._eval_string,
    c_ast.BinaryOp: Interpreter._eval_binop,
    c_ast.UnaryOp: Interpreter._eval_unaryop,
    c_ast.Assignment: Interpreter._eval_assignment,
    c_ast.TernaryOp: Interpreter._eval_ternary,
    c_ast.FuncCall: Interpreter._eval_funccall,
    c_ast.ArrayRef: Interpreter._eval_arrayref,
    c_ast.MemberRef: Interpreter._eval_memberref,
    c_ast.Cast: Interpreter._eval_cast,
    c_ast.SizeofType: Interpreter._eval_sizeoftype,
    c_ast.Comma: Interpreter._eval_comma,
}
